"""Repo-root pytest configuration shared by tests/ and benchmarks/.

The ``--slow`` option and the ``paper_scale`` skip logic live here (once)
so that ``pytest tests benchmarks`` in a single invocation works — both
trees used to register the option and pytest rejects duplicates. For the
same reason ``benchmarks/`` has **no** conftest.py of its own: the bench
helpers moved to :mod:`repro.eval.tables`, because ``import conftest``
resolves to whichever tree's conftest pytest loaded first.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--slow", action="store_true", default=False,
        help="run paper-scale (n >= 2^12) tests/benchmarks marked paper_scale",
    )


def pytest_collection_modifyitems(config, items):
    """``paper_scale`` items only run when explicitly requested.

    They take seconds to minutes each (real chip-model traffic at
    n = 2^12 and 2^13), so the tier-1 suite skips them;
    ``tools/run_checks.sh --slow`` turns them on.
    """
    if config.getoption("--slow"):
        return
    skip = pytest.mark.skip(reason="paper-scale: pass --slow to run")
    for item in items:
        if "paper_scale" in item.keywords:
            item.add_marker(skip)
