"""Scheduler and noise-model benchmarks.

* the data-movement layer: how much polynomial load/store time the DMA
  double-buffering hides for Algorithm 3 (Section III-F's claim that it
  happens "transparently in the background");
* the noise model: multiplicative depth vs relinearization digit width at
  the paper's parameter sets — the trade the Table X per-application digit
  choices encode.
"""

from repro.eval.tables import print_table

from repro.bfv.noise import NoiseModel, security_level_bits
from repro.bfv.params import BfvParameters
from repro.core.scheduler import Scheduler, ciphertext_multiply_program


def test_dma_overlap_savings(benchmark):
    def run():
        return Scheduler(n=8192, num_buffers=6, prefetch=True).compile(
            ciphertext_multiply_program()
        )

    sched = benchmark(run)
    no_pf = Scheduler(n=8192, num_buffers=6, prefetch=False).compile(
        ciphertext_multiply_program()
    )
    rows = [
        {"config": "with DMA double-buffering",
         "compute_cc": sched.compute_cycles,
         "exposed_io_cc": sched.dma_exposed_cycles,
         "total_cc": sched.total_cycles},
        {"config": "blocking transfers",
         "compute_cc": no_pf.compute_cycles,
         "exposed_io_cc": no_pf.dma_exposed_cycles,
         "total_cc": no_pf.total_cycles},
    ]
    print_table("Algorithm 3 data movement (n = 2^13)", rows,
                ["config", "compute_cc", "exposed_io_cc", "total_cc"])
    print(f"hidden fraction: {sched.savings_fraction():.0%}, "
          f"peak buffers: {sched.peak_buffers}")
    assert sched.total_cycles < no_pf.total_cycles
    assert sched.peak_buffers <= 6


def test_noise_depth_vs_digit_width(benchmark):
    params = BfvParameters.from_paper(n=8192, log_q=218)
    model = NoiseModel(params)

    def run():
        return {bits: model.multiplicative_depth(bits)
                for bits in (5, 13, 22, 30, 45)}

    depths = benchmark(run)
    rows = [{"digit_bits": b, "num_digits": -(-params.log_q // b),
             "mult_depth": d} for b, d in depths.items()]
    print_table("Depth vs relin digit width (n=2^13, log q=218)", rows,
                ["digit_bits", "num_digits", "mult_depth"])
    # finer digits never reduce achievable depth
    ordered = [depths[b] for b in sorted(depths)]
    assert ordered == sorted(ordered, reverse=True)


def test_security_of_paper_parameters(benchmark):
    rows = benchmark(
        lambda: [
            {"n": n, "log_q": lq, "security_bits": security_level_bits(n, lq)}
            for n, lq in ((4096, 109), (8192, 218))
        ]
    )
    print_table("HE-standard security of the evaluation sets", rows,
                ["n", "log_q", "security_bits"])
    assert all(r["security_bits"] == 128 for r in rows)  # Section VI-B
