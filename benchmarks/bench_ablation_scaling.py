"""Scalability ablations (Sections VI-B and VIII-A).

* radix-4 / 4-PE variant: ~4x NTT speedup for +1.9 mm^2, "exceeds the
  performance achieved with 16 threads";
* split-polynomial parallelism: doubling multiplier pools + dual-port
  banks approaches 2x throughput (log n - 1 stages at II = 1/2);
* memory scaling: area linear in n, clock degrading with read latency.
"""

import pytest
from repro.eval.tables import print_table

from repro.baselines.software import CpuCostModel
from repro.bfv.params import BfvParameters
from repro.core.scaling import (
    MemoryScaling,
    RadixConfig,
    SplitParallelConfig,
    radix4_speedup,
)
from repro.core.timing import TimingModel


def test_radix4_speedup(benchmark):
    speedup = benchmark(radix4_speedup, 2**13)
    rows = [
        {
            "radix": radix,
            "ntt_cycles": RadixConfig(radix=radix).ntt_cycles(2**13),
            "speedup": round(
                TimingModel().ntt_cycles(2**13)
                / RadixConfig(radix=radix).ntt_cycles(2**13), 2,
            ),
            "extra_area_mm2": RadixConfig(radix=radix).extra_area_mm2(),
        }
        for radix in (2, 4)
    ]
    print_table("Radix-4 (4 PE) scaling, n = 2^13", rows,
                ["radix", "ntt_cycles", "speedup", "extra_area_mm2"])
    assert 3.5 < speedup < 4.5  # "performance would increase by ~4x"
    assert RadixConfig(radix=4).extra_area_mm2() == 1.9


def test_radix4_beats_16_threads(benchmark):
    """Section VI-B: the 4-PE variant exceeds the 16-thread CPU."""
    params = BfvParameters.from_paper(n=2**13, log_q=218)
    cpu16_ms = CpuCostModel().ciphertext_mult_ms(params, threads=16)
    base_ms = benchmark(
        lambda: TimingModel().ciphertext_mult_cycles(2**13, 2) / 250e3
    )
    radix4_ms = base_ms / radix4_speedup(2**13)
    print(f"\nCPU 16T {cpu16_ms:.3f} ms | CoFHEE {base_ms:.3f} ms | "
          f"4-PE CoFHEE {radix4_ms:.3f} ms")
    assert cpu16_ms < base_ms  # 16 threads beat fabricated CoFHEE...
    assert radix4_ms < cpu16_ms  # ...but not the 4-PE variant


def test_split_parallel_throughput(benchmark):
    gain = benchmark(SplitParallelConfig(pools=2).throughput_gain, 2**13)
    rows = [
        {
            "pools": p,
            "ntt_cycles": SplitParallelConfig(pools=p).ntt_cycles(2**13),
            "gain": round(SplitParallelConfig(pools=p).throughput_gain(2**13), 3),
            "extra_dp_banks": SplitParallelConfig(pools=p).extra_dual_port_banks(),
        }
        for p in (1, 2, 4)
    ]
    print_table("Split-polynomial scaling, n = 2^13", rows,
                ["pools", "ntt_cycles", "gain", "extra_dp_banks"])
    # "Doubling this improves throughput by close to 2x" (< 2 because the
    # final recombination stage stays II = 1).
    assert 1.7 < gain < 2.0


def test_memory_scaling(benchmark):
    model = MemoryScaling()
    rows = benchmark(
        lambda: [
            {
                "n": n,
                "memory_mm2": round(model.memory_area_mm2(n), 2),
                "read_ns": round(model.read_latency_ns(n), 2),
                "clock_mhz": round(model.clock_mhz(n), 1),
            }
            for n in (2**13, 2**14, 2**15, 2**16)
        ]
    )
    print_table("Memory scaling with polynomial degree", rows,
                ["n", "memory_mm2", "read_ns", "clock_mhz"])
    assert rows[1]["memory_mm2"] == pytest.approx(2 * rows[0]["memory_mm2"],
                                                  rel=0.01)  # linear
    assert rows[-1]["clock_mhz"] < rows[0]["clock_mhz"]  # minor clock loss
