"""Table X: end-to-end applications (CryptoNets, logistic regression).

Prices the Section VI-C operation mixes on both platforms and checks the
headline speedups (2.23x and 1.46x).
"""

from repro.eval.tables import print_table

from repro.eval.table10 import table10_rows

COLUMNS = [
    "application", "cpu_s", "paper_cpu_s", "cofhee_s", "paper_cofhee_s",
    "speedup", "paper_speedup",
]


def test_table10(benchmark):
    rows = benchmark(table10_rows)
    print_table("Table X: end-to-end applications", rows, COLUMNS)
    for row in rows:
        # CoFHEE totals from the simulator within 2% of the silicon estimate.
        assert abs(row["cofhee_s"] - row["paper_cofhee_s"]) / row["paper_cofhee_s"] < 0.02
        assert abs(row["speedup"] - row["paper_speedup"]) < 0.05
