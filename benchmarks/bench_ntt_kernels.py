"""NTT kernel microbenchmarks (Section IV-B's complexity argument).

Times the reproduction's reference kernels: the O(n log n) negacyclic NTT
multiply vs the O(n^2) schoolbook baseline, and the chip-fidelity MDMC
execution path. Asserts the asymptotic crossover the paper's whole design
rests on.
"""

import random

from repro.core.chip import CoFHEE
from repro.core.driver import CofheeDriver
from repro.polymath.ntt import NttContext, reference_negacyclic_multiply
from repro.polymath.primes import ntt_friendly_prime

N = 256
Q = ntt_friendly_prime(N, 60)
RNG = random.Random(17)
A = [RNG.randrange(Q) for _ in range(N)]
B = [RNG.randrange(Q) for _ in range(N)]
CTX = NttContext(N, Q)


def test_ntt_forward(benchmark):
    result = benchmark(CTX.forward, A)
    assert CTX.inverse(result) == A


def test_ntt_multiply(benchmark):
    result = benchmark(CTX.negacyclic_multiply, A, B)
    assert result == reference_negacyclic_multiply(A, B, Q)


def test_schoolbook_multiply(benchmark):
    benchmark(reference_negacyclic_multiply, A, B, Q)


def test_ntt_beats_schoolbook():
    """The complexity crossover: at n = 256 the NTT path must already win
    (the paper's O(n^2) -> O(n log n) motivation)."""
    import time

    start = time.perf_counter()
    for _ in range(3):
        CTX.negacyclic_multiply(A, B)
    ntt_time = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(3):
        reference_negacyclic_multiply(A, B, Q)
    schoolbook_time = time.perf_counter() - start
    assert ntt_time < schoolbook_time


def test_chip_ntt_vector_fidelity(benchmark):
    """MDMC 'vector' fidelity: full bank-resident execution of one NTT."""
    chip = CoFHEE()
    driver = CofheeDriver(chip)
    driver.program(Q, N)
    driver.load_polynomial("P0", A)

    def run():
        return driver.ntt("P0", "P1")

    report = benchmark(run)
    assert report.cycles == chip.timing.ntt_cycles(N)
