"""Fig. 6: ciphertext multiplication — CoFHEE vs SEAL on the Ryzen CPU.

Regenerates both panels (execution time across thread counts, power) and
the Section VI-B PDP analysis. The qualitative shape asserted: CoFHEE
beats single-threaded SEAL ~1.8-1.9x, multi-threaded SEAL eventually
overtakes one CoFHEE instance, and CoFHEE's PDP is ~2 orders of magnitude
better.
"""

from repro.eval.tables import print_table

from repro.bfv.params import BfvParameters
from repro.eval.fig6 import crossover_row, fig6_pdp_rows, fig6_rows

COLUMNS = [
    "n", "log_q", "platform", "threads", "towers",
    "time_ms", "paper_time_ms", "power_w", "paper_power_w",
]
PDP_COLUMNS = [
    "n", "cpu_pdp_w_ms", "paper_cpu_pdp",
    "cofhee_pdp_w_ms", "paper_cofhee_pdp", "efficiency_ratio",
]


def test_fig6_time_and_power(benchmark):
    rows = benchmark(fig6_rows)
    print_table("Fig. 6: ciphertext-mult time/power", rows, COLUMNS)
    by_key = {(r["n"], r["platform"], r["threads"]): r for r in rows}
    for n in (2**12, 2**13):
        cofhee = by_key[(n, "CoFHEE", 1)]
        cpu1 = by_key[(n, "CPU (SEAL)", 1)]
        cpu16 = by_key[(n, "CPU (SEAL)", 16)]
        # CoFHEE beats 1 thread; 16 threads beat one CoFHEE (paper's shape).
        assert cofhee["time_ms"] < cpu1["time_ms"]
        assert cpu16["time_ms"] < cofhee["time_ms"]
        # Power gap: two orders of magnitude.
        assert cpu1["power_w"] / cofhee["power_w"] > 50


def test_fig6_pdp(benchmark):
    rows = benchmark(fig6_pdp_rows)
    print_table("Section VI-B: Power-Delay Product", rows, PDP_COLUMNS)
    for row in rows:
        assert row["efficiency_ratio"] > 100  # 2-3 orders of magnitude


def test_fig6_crossover(benchmark):
    params = BfvParameters.from_paper(n=2**13, log_q=218)
    row = benchmark(crossover_row, params)
    print_table("Thread crossover vs one CoFHEE", [row],
                ["n", "cofhee_ms", "crossover_threads"])
    assert row["crossover_threads"] is not None
    assert 2 <= row["crossover_threads"] <= 16
