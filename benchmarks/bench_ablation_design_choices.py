"""Design-choice ablations (Sections III-A, IV-A, VIII-B).

* Barrett vs Montgomery: Barrett needs no operand transformation — for the
  streaming NTT workload a Montgomery datapath pays domain conversions at
  the boundaries (and this reproduction's pure-Python timing shows the
  same relative shape);
* dual-port vs single-port banks: II = 1 vs II = 2 against the 2x bank
  area premium — quantifying the Section VIII-B lesson that exactly three
  dual-port banks is the sweet spot;
* shared iNTT twiddles: the permute+negate address transform vs storing a
  second table (one full bank of savings).
"""

import random

from repro.eval.tables import print_table

from repro.core.scaling import dual_port_tradeoff
from repro.core.timing import TimingModel
from repro.polymath.modmath import BarrettReducer, MontgomeryReducer
from repro.polymath.primes import ntt_friendly_prime

Q = ntt_friendly_prime(2**12, 109)
RNG = random.Random(99)
OPERANDS = [(RNG.randrange(Q), RNG.randrange(Q)) for _ in range(512)]


def test_barrett_multiplier(benchmark):
    barrett = BarrettReducer(Q)

    def run():
        acc = 0
        for a, b in OPERANDS:
            acc ^= barrett.mulmod(a, b)
        return acc

    benchmark(run)
    # correctness cross-check
    assert all(barrett.mulmod(a, b) == a * b % Q for a, b in OPERANDS[:16])


def test_montgomery_multiplier_with_transforms(benchmark):
    """The apples-to-apples comparison for a streaming workload: operands
    arrive in normal domain, so Montgomery pays both transformations."""
    mont = MontgomeryReducer(Q)

    def run():
        acc = 0
        for a, b in OPERANDS:
            acc ^= mont.mulmod_plain(a, b)
        return acc

    benchmark(run)
    assert all(mont.mulmod_plain(a, b) == a * b % Q for a, b in OPERANDS[:16])


def test_dual_port_tradeoff(benchmark):
    result = benchmark(dual_port_tradeoff, 3, 4)
    tm_dp = TimingModel(dual_port_words=8192)
    tm_sp = TimingModel(dual_port_words=0)  # force II = 2 everywhere
    rows = [
        {
            "layout": "3 DP + 4 SP (fabricated)",
            "area_mm2": result["area_mm2"],
            "II": result["butterfly_ii"],
            "ntt_cycles_2^13": tm_dp.ntt_cycles(2**13),
        },
        {
            "layout": "7 SP (all single-port)",
            "area_mm2": result["all_single_port_area_mm2"],
            "II": result["all_single_port_ii"],
            "ntt_cycles_2^13": tm_sp.ntt_cycles(2**13),
        },
    ]
    print_table("Dual-port vs single-port banks", rows,
                ["layout", "area_mm2", "II", "ntt_cycles_2^13"])
    # the fabricated mix trades 1.43x memory area for ~2x NTT throughput
    assert result["area_mm2"] > result["all_single_port_area_mm2"]
    assert rows[1]["ntt_cycles_2^13"] > 1.9 * rows[0]["ntt_cycles_2^13"] - 600


def test_shared_twiddle_saving(benchmark):
    """Section VIII-B: one psi table serves NTT and iNTT via the
    permute+negate transform, saving a full 128 KiB bank."""
    from repro.core.chip import CoFHEE

    def banks_needed():
        chip = CoFHEE()
        twiddle_banks_shared = 1
        twiddle_banks_separate = 2
        bank_bytes = chip.memory_map.bank("TWD").bytes
        return (twiddle_banks_separate - twiddle_banks_shared) * bank_bytes

    saved = benchmark(banks_needed)
    print(f"\nshared-twiddle saving: {saved // 1024} KiB of SRAM")
    assert saved == 8192 * 16
