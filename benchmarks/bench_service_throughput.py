"""Serving-layer throughput: jobs/sec, makespan, and tower-sharding scaling.

Pushes a fixed mixed workload (EvalMult + additions) through the serving
stack on a **3-tower** parameter set and reports modeled/measured
jobs-per-second for the software baseline, the vectorized numpy backend,
and chip pools of 1/2/4 — the serving-layer analogue of the paper's Fig. 6
platform comparison. With tower sharding, every EvalMult fans its RNS
towers out across the pool, so the pool-of-4 makespan must come in at
least 1.5x under the pool-of-1 makespan (PR 1's job-level pool showed no
intra-job scaling at all: towers ran sequentially on one worker).

The wire-transport rows push the same jobs — and the compiled Section
VI-C app circuits (logreg, CryptoNets) — through a real localhost
socket, every payload checked bit-identical against in-process
execution.

Run:  pytest benchmarks/bench_service_throughput.py --benchmark-only -s
      (or with --benchmark-disable for a single smoke pass, as
      tools/run_checks.sh does)
"""

import random
import time

import pytest
from repro.eval.tables import print_table

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.jobs import JobKind
from repro.service.serialization import (
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

#: Three chip-native towers: each EvalMult splits into 3 work units.
PARAMS = BfvParameters.toy_rns(n=16, towers=3, tower_bits=20)
N_MULTS = 6
N_ADDS = 6

COLUMNS = [
    "backend", "pool", "jobs", "wall_s", "jobs_per_s",
    "wall_cycles", "batch_makespan", "total_cycles", "chip_jobs",
]


def _traffic():
    """Fixed workload plus per-op ground truth (third tuple element)."""
    bfv = Bfv(PARAMS, seed=31337)
    keys = bfv.keygen(relin_digit_bits=12)
    encoder = BatchEncoder(PARAMS)
    rng = random.Random(3)
    ops = []
    for kind, count in ((JobKind.MULTIPLY, N_MULTS), (JobKind.ADD, N_ADDS)):
        for _ in range(count):
            a = bfv.encrypt(
                encoder.encode([rng.randrange(32) for _ in range(PARAMS.n)]),
                keys.public,
            )
            b = bfv.encrypt(
                encoder.encode([rng.randrange(32) for _ in range(PARAMS.n)]),
                keys.public,
            )
            expected = (
                bfv.multiply_relin(a, b, keys.relin)
                if kind is JobKind.MULTIPLY else bfv.add(a, b)
            )
            ops.append((
                kind,
                (serialize_ciphertext(a), serialize_ciphertext(b)),
                serialize_ciphertext(expected),
            ))
    return keys, ops


def _serve(pool_size: int, backend: str, keys, ops) -> list[dict]:
    server = FheServer(pool_size=pool_size, max_batch=4)
    sid = server.open_session(
        "bench",
        serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
    )
    for kind, operands, _expected in ops:
        server.submit(sid, kind, operands, backend=backend)
    server.run()
    rows = server.throughput_rows()
    if backend == "chip_pool":
        report = server.pool_report()
        for row in rows:
            row["chip_jobs"] = report["fidelity"].get("chip", 0)
            row["batch_makespan"] = report["batch_makespan_cycles"]
    return rows


def test_service_throughput(benchmark):
    keys, ops = _traffic()

    def sweep():
        rows = []
        for pool_size in (1, 2, 4):
            rows.extend(_serve(pool_size, "chip_pool", keys, ops))
        for backend in ("software", "fastntt"):
            rows.extend(_serve(1, backend, keys, ops))
        return rows

    rows = benchmark(sweep)
    print_table(
        f"Serving throughput ({N_MULTS} EvalMult + {N_ADDS} Add jobs, "
        f"{PARAMS.cofhee_tower_count} towers)",
        rows, COLUMNS,
    )
    by_pool = {r["pool"]: r for r in rows if "pool" in r}
    # Tower sharding: same total work, >= 1.5x shorter makespan on 4
    # chips — on both wall-time views (utilization and the conservative
    # sum of per-batch makespans under the gather barrier).
    assert by_pool[4]["total_cycles"] == by_pool[1]["total_cycles"]
    assert by_pool[4]["wall_cycles"] * 3 <= by_pool[1]["wall_cycles"] * 2
    assert by_pool[4]["batch_makespan"] * 3 <= by_pool[1]["batch_makespan"] * 2
    # Every EvalMult ran all of its towers through worker drivers (chip
    # rows must carry the counter; defaulting would hide a dead branch).
    assert all(r["chip_jobs"] == N_MULTS for r in by_pool.values())
    assert all(r["jobs"] == N_MULTS + N_ADDS for r in rows)


# ----------------------------------------------------------------------
# Wire-transport serving: the same workload through a real localhost
# socket — length-prefixed CRC frames, the worker-thread execution pump,
# and pushed completion events instead of polling.
# ----------------------------------------------------------------------


def test_transport_throughput(benchmark):
    from repro.service.client import FheClient
    from repro.service.transport import ThreadedTransportServer

    keys, ops = _traffic()

    def over_the_wire():
        with ThreadedTransportServer(pool_size=4, max_batch=4) as ts:
            start = time.perf_counter()
            with FheClient(ts.host, ts.port) as client:
                sid = client.open_session(
                    "bench", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                jids = [
                    client.submit(sid, kind, operands)
                    for kind, operands, _expected in ops
                ]
                wires = [client.result(j) for j in jids]
            wall = time.perf_counter() - start
            report = ts.fhe.pool_report()
        return wires, wall, report

    wires, wall, report = benchmark.pedantic(
        over_the_wire, rounds=1, iterations=1
    )
    assert wires == [expected for _, _, expected in ops], (
        "transport results diverged from Bfv ground truth"
    )
    assert report["fidelity"].get("chip") == N_MULTS
    print_table(
        f"Wire-transport serving ({len(ops)} jobs over localhost TCP)",
        [{
            "backend": "chip_pool+tcp",
            "pool": 4,
            "jobs": len(ops),
            "wall_s": wall,
            "jobs_per_s": len(ops) / wall if wall > 0 else float("inf"),
            "batch_makespan": report["batch_makespan_cycles"],
            "total_cycles": report["total_cycles"],
            "chip_jobs": report["fidelity"].get("chip", 0),
        }],
        COLUMNS,
    )


# ----------------------------------------------------------------------
# App circuits over the wire: the Section VI-C applications compiled to
# the circuit encoding and served through a real localhost socket, with
# every payload checked bit-identical against in-process execution.
# ----------------------------------------------------------------------


def _app_circuits():
    """Rows of (label, model, compiled circuit, input wire bytes)."""
    from repro.apps.cryptonets import MiniCryptoNets
    from repro.apps.logreg import MiniLogisticRegression
    from repro.polymath.primes import ntt_friendly_prime

    rng = random.Random(17)
    rows = []

    lr_params = BfvParameters.toy_rns(
        n=16, towers=5, tower_bits=28, t=ntt_friendly_prime(16, 21)
    )
    logreg = MiniLogisticRegression(params=lr_params, num_features=6, seed=11)
    samples = [[rng.randint(-3, 3) for _ in range(6)] for _ in range(4)]
    rows.append((
        "logreg", logreg, logreg.to_circuit(batch=len(samples)),
        tuple(serialize_ciphertext(ct)
              for ct in logreg.encrypt_features(samples)),
    ))

    cn_params = BfvParameters.toy_rns(
        n=16, towers=4, tower_bits=30, t=ntt_friendly_prime(16, 20)
    )
    cnn = MiniCryptoNets(params=cn_params, seed=7)
    images = [[rng.randint(-2, 2) for _ in range(36)] for _ in range(3)]
    rows.append((
        "cryptonets", cnn, cnn.to_circuit(),
        tuple(serialize_ciphertext(ct) for ct in cnn.encrypt_images(images)),
    ))
    return rows


def test_circuit_transport_throughput(benchmark):
    from repro.service.client import FheClient
    from repro.service.transport import ThreadedTransportServer

    apps = _app_circuits()

    # In-process ground truth per app (same server class, no socket).
    expected = {}
    for label, model, circuit, inputs in apps:
        server = FheServer(pool_size=4, max_batch=4)
        sid = server.open_session(
            "truth", serialize_params(model.params),
            relin_key=serialize_relin_key(model.keys.relin, model.params),
        )
        expected[label] = server.result(server.submit(
            sid, JobKind.CIRCUIT, inputs, payload=circuit
        ))

    def over_the_wire():
        results = {}
        with ThreadedTransportServer(pool_size=4, max_batch=4) as ts:
            with FheClient(ts.host, ts.port) as client:
                for label, model, circuit, inputs in apps:
                    sid = client.open_session(
                        label, serialize_params(model.params),
                        relin_key=serialize_relin_key(
                            model.keys.relin, model.params
                        ),
                    )
                    start = time.perf_counter()
                    payload = client.result(
                        client.submit_circuit(sid, circuit, inputs)
                    )
                    results[label] = (
                        payload, time.perf_counter() - start, circuit
                    )
            report = ts.fhe.pool_report()
        return results, report

    results, report = benchmark.pedantic(over_the_wire, rounds=1, iterations=1)
    for label, (payload, _wall, _circuit) in results.items():
        assert payload == expected[label], (
            f"{label} over the wire diverged from in-process execution"
        )
    assert report["fidelity"].get("chip") == len(apps)
    print_table(
        "App circuits over localhost TCP (bit-identical to in-process)",
        [
            {
                "backend": f"{label}+tcp",
                "pool": 4,
                "jobs": 1,
                "wall_s": wall,
                "jobs_per_s": 1 / wall if wall > 0 else float("inf"),
                "total_cycles": report["total_cycles"],
                "chip_jobs": report["fidelity"].get("chip", 0),
                "steps": len(circuit.steps),
                "tensors": len(circuit.tensor_steps),
            }
            for label, (_payload, wall, circuit) in results.items()
        ],
        COLUMNS + ["steps", "tensors"],
    )


# ----------------------------------------------------------------------
# Paper-scale serving: n = 2^13 (the Section VI-B large configuration),
# chip-native towers, tower-sharded across a pool of 4. Slow-marked; run
# via ``tools/run_checks.sh --slow`` or ``pytest ... --slow``.
# ----------------------------------------------------------------------

PAPER_MULTS = 2


@pytest.mark.paper_scale
def test_service_throughput_paper_scale():
    """EvalMult at n = 2^13 through the full serving stack.

    The batched engine is what makes this affordable: the host-side
    tensor, the ground-truth relinearization, and every per-tower mod-q
    cross-check all run vectorized, while the chip pool shards the
    4-tower tensor across its workers.
    """
    params = BfvParameters.toy_rns(n=2**13, towers=4, tower_bits=30)
    bfv = Bfv(params, seed=131)
    keys = bfv.keygen(relin_digit_bits=30)
    encoder = BatchEncoder(params)
    rng = random.Random(8)
    cts = []
    ops = []
    for _ in range(PAPER_MULTS):
        a = bfv.encrypt(
            encoder.encode([rng.randrange(64) for _ in range(params.n)]),
            keys.public,
        )
        b = bfv.encrypt(
            encoder.encode([rng.randrange(64) for _ in range(params.n)]),
            keys.public,
        )
        cts.append((a, b))
        ops.append((JobKind.MULTIPLY, (serialize_ciphertext(a), serialize_ciphertext(b))))

    start = time.perf_counter()
    server = FheServer(pool_size=4, max_batch=4)
    sid = server.open_session(
        "paper",
        serialize_params(params),
        relin_key=serialize_relin_key(keys.relin, params),
    )
    jids = [server.submit(sid, kind, operands) for kind, operands in ops]
    wires = [server.result(jid) for jid in jids]
    wall = time.perf_counter() - start

    report = server.pool_report()
    rows = server.throughput_rows()
    for row in rows:
        row["chip_jobs"] = report["fidelity"].get("chip", 0)
        row["batch_makespan"] = report["batch_makespan_cycles"]
    print_table(
        f"Paper-scale serving ({PAPER_MULTS} EvalMult, "
        f"{params.describe()}, wall {wall:.1f}s)",
        rows, COLUMNS,
    )
    # Every tensor executed chip-natively, tower-sharded across workers.
    assert report["fidelity"].get("chip") == PAPER_MULTS
    assert len(report["tower_cycles"]) == params.cofhee_tower_count
    metrics = server.job_metrics(jids[0])
    assert len(set(metrics.tower_workers)) == params.cofhee_tower_count
    # The engine-backed serving stack answers bit-for-bit with local
    # ground truth at paper scale.
    expected = bfv.multiply_relin(cts[0][0], cts[0][1], keys.relin)
    assert wires[0] == serialize_ciphertext(expected)
