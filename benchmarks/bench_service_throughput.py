"""Serving-layer throughput: jobs/sec, makespan, and tower-sharding scaling.

Pushes a fixed mixed workload (EvalMult + additions) through the serving
stack on a **3-tower** parameter set and reports modeled/measured
jobs-per-second for the software baseline, the vectorized numpy backend,
and chip pools of 1/2/4 — the serving-layer analogue of the paper's Fig. 6
platform comparison. With tower sharding, every EvalMult fans its RNS
towers out across the pool, so the pool-of-4 makespan must come in at
least 1.5x under the pool-of-1 makespan (PR 1's job-level pool showed no
intra-job scaling at all: towers ran sequentially on one worker).

The wire-transport rows push the same jobs — and the compiled Section
VI-C app circuits (logreg, CryptoNets) — through a real localhost
socket, every payload checked bit-identical against in-process
execution.

Run:  pytest benchmarks/bench_service_throughput.py --benchmark-only -s
      (or with --benchmark-disable for a single smoke pass, as
      tools/run_checks.sh does)
"""

import json
import os
import random
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest
from repro.eval.tables import print_table

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.jobs import JobKind
from repro.service.serialization import (
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

#: Three chip-native towers: each EvalMult splits into 3 work units.
PARAMS = BfvParameters.toy_rns(n=16, towers=3, tower_bits=20)
N_MULTS = 6
N_ADDS = 6

COLUMNS = [
    "backend", "pool", "jobs", "wall_s", "jobs_per_s",
    "wall_cycles", "batch_makespan", "total_cycles", "chip_jobs",
]


def _traffic():
    """Fixed workload plus per-op ground truth (third tuple element)."""
    bfv = Bfv(PARAMS, seed=31337)
    keys = bfv.keygen(relin_digit_bits=12)
    encoder = BatchEncoder(PARAMS)
    rng = random.Random(3)
    ops = []
    for kind, count in ((JobKind.MULTIPLY, N_MULTS), (JobKind.ADD, N_ADDS)):
        for _ in range(count):
            a = bfv.encrypt(
                encoder.encode([rng.randrange(32) for _ in range(PARAMS.n)]),
                keys.public,
            )
            b = bfv.encrypt(
                encoder.encode([rng.randrange(32) for _ in range(PARAMS.n)]),
                keys.public,
            )
            expected = (
                bfv.multiply_relin(a, b, keys.relin)
                if kind is JobKind.MULTIPLY else bfv.add(a, b)
            )
            ops.append((
                kind,
                (serialize_ciphertext(a), serialize_ciphertext(b)),
                serialize_ciphertext(expected),
            ))
    return keys, ops


def _serve(pool_size: int, backend: str, keys, ops) -> list[dict]:
    server = FheServer(pool_size=pool_size, max_batch=4)
    sid = server.open_session(
        "bench",
        serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
    )
    for kind, operands, _expected in ops:
        server.submit(sid, kind, operands, backend=backend)
    server.run()
    rows = server.throughput_rows()
    if backend == "chip_pool":
        report = server.pool_report()
        for row in rows:
            row["chip_jobs"] = report["fidelity"].get("chip", 0)
            row["batch_makespan"] = report["batch_makespan_cycles"]
    return rows


def test_service_throughput(benchmark):
    keys, ops = _traffic()

    def sweep():
        rows = []
        for pool_size in (1, 2, 4):
            rows.extend(_serve(pool_size, "chip_pool", keys, ops))
        for backend in ("software", "fastntt"):
            rows.extend(_serve(1, backend, keys, ops))
        return rows

    rows = benchmark(sweep)
    print_table(
        f"Serving throughput ({N_MULTS} EvalMult + {N_ADDS} Add jobs, "
        f"{PARAMS.cofhee_tower_count} towers)",
        rows, COLUMNS,
    )
    by_pool = {r["pool"]: r for r in rows if "pool" in r}
    # Tower sharding: same total work, >= 1.5x shorter makespan on 4
    # chips — on both wall-time views (utilization and the conservative
    # sum of per-batch makespans under the gather barrier).
    assert by_pool[4]["total_cycles"] == by_pool[1]["total_cycles"]
    assert by_pool[4]["wall_cycles"] * 3 <= by_pool[1]["wall_cycles"] * 2
    assert by_pool[4]["batch_makespan"] * 3 <= by_pool[1]["batch_makespan"] * 2
    # Every EvalMult ran all of its towers through worker drivers (chip
    # rows must carry the counter; defaulting would hide a dead branch).
    assert all(r["chip_jobs"] == N_MULTS for r in by_pool.values())
    assert all(r["jobs"] == N_MULTS + N_ADDS for r in rows)


# ----------------------------------------------------------------------
# Wire-transport serving: the same workload through a real localhost
# socket — length-prefixed CRC frames, the worker-thread execution pump,
# and pushed completion events instead of polling.
# ----------------------------------------------------------------------


def test_transport_throughput(benchmark):
    from repro.service.client import FheClient
    from repro.service.transport import ThreadedTransportServer

    keys, ops = _traffic()

    def over_the_wire():
        with ThreadedTransportServer(pool_size=4, max_batch=4) as ts:
            start = time.perf_counter()
            with FheClient(ts.host, ts.port) as client:
                sid = client.open_session(
                    "bench", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                jids = [
                    client.submit(sid, kind, operands)
                    for kind, operands, _expected in ops
                ]
                wires = [client.result(j) for j in jids]
            wall = time.perf_counter() - start
            report = ts.fhe.pool_report()
        return wires, wall, report

    wires, wall, report = benchmark.pedantic(
        over_the_wire, rounds=1, iterations=1
    )
    assert wires == [expected for _, _, expected in ops], (
        "transport results diverged from Bfv ground truth"
    )
    assert report["fidelity"].get("chip") == N_MULTS
    print_table(
        f"Wire-transport serving ({len(ops)} jobs over localhost TCP)",
        [{
            "backend": "chip_pool+tcp",
            "pool": 4,
            "jobs": len(ops),
            "wall_s": wall,
            "jobs_per_s": len(ops) / wall if wall > 0 else float("inf"),
            "batch_makespan": report["batch_makespan_cycles"],
            "total_cycles": report["total_cycles"],
            "chip_jobs": report["fidelity"].get("chip", 0),
        }],
        COLUMNS,
    )


# ----------------------------------------------------------------------
# App circuits over the wire: the Section VI-C applications compiled to
# the circuit encoding and served through a real localhost socket, with
# every payload checked bit-identical against in-process execution.
# ----------------------------------------------------------------------


def _app_circuits():
    """Rows of (label, model, compiled circuit, input wire bytes)."""
    from repro.apps.cryptonets import MiniCryptoNets
    from repro.apps.logreg import MiniLogisticRegression
    from repro.polymath.primes import ntt_friendly_prime

    rng = random.Random(17)
    rows = []

    lr_params = BfvParameters.toy_rns(
        n=16, towers=5, tower_bits=28, t=ntt_friendly_prime(16, 21)
    )
    logreg = MiniLogisticRegression(params=lr_params, num_features=6, seed=11)
    samples = [[rng.randint(-3, 3) for _ in range(6)] for _ in range(4)]
    rows.append((
        "logreg", logreg, logreg.to_circuit(batch=len(samples)),
        tuple(serialize_ciphertext(ct)
              for ct in logreg.encrypt_features(samples)),
    ))

    cn_params = BfvParameters.toy_rns(
        n=16, towers=4, tower_bits=30, t=ntt_friendly_prime(16, 20)
    )
    cnn = MiniCryptoNets(params=cn_params, seed=7)
    images = [[rng.randint(-2, 2) for _ in range(36)] for _ in range(3)]
    rows.append((
        "cryptonets", cnn, cnn.to_circuit(),
        tuple(serialize_ciphertext(ct) for ct in cnn.encrypt_images(images)),
    ))
    return rows


def test_circuit_transport_throughput(benchmark):
    from repro.service.client import FheClient
    from repro.service.transport import ThreadedTransportServer

    apps = _app_circuits()

    # In-process ground truth per app (same server class, no socket).
    expected = {}
    for label, model, circuit, inputs in apps:
        server = FheServer(pool_size=4, max_batch=4)
        sid = server.open_session(
            "truth", serialize_params(model.params),
            relin_key=serialize_relin_key(model.keys.relin, model.params),
        )
        expected[label] = server.result(server.submit(
            sid, JobKind.CIRCUIT, inputs, payload=circuit
        ))

    def over_the_wire():
        results = {}
        with ThreadedTransportServer(pool_size=4, max_batch=4) as ts:
            with FheClient(ts.host, ts.port) as client:
                for label, model, circuit, inputs in apps:
                    sid = client.open_session(
                        label, serialize_params(model.params),
                        relin_key=serialize_relin_key(
                            model.keys.relin, model.params
                        ),
                    )
                    start = time.perf_counter()
                    payload = client.result(
                        client.submit_circuit(sid, circuit, inputs)
                    )
                    results[label] = (
                        payload, time.perf_counter() - start, circuit
                    )
            report = ts.fhe.pool_report()
        return results, report

    results, report = benchmark.pedantic(over_the_wire, rounds=1, iterations=1)
    for label, (payload, _wall, _circuit) in results.items():
        assert payload == expected[label], (
            f"{label} over the wire diverged from in-process execution"
        )
    assert report["fidelity"].get("chip") == len(apps)
    print_table(
        "App circuits over localhost TCP (bit-identical to in-process)",
        [
            {
                "backend": f"{label}+tcp",
                "pool": 4,
                "jobs": 1,
                "wall_s": wall,
                "jobs_per_s": 1 / wall if wall > 0 else float("inf"),
                "total_cycles": report["total_cycles"],
                "chip_jobs": report["fidelity"].get("chip", 0),
                "steps": len(circuit.steps),
                "tensors": len(circuit.tensor_steps),
            }
            for label, (_payload, wall, circuit) in results.items()
        ],
        COLUMNS + ["steps", "tensors"],
    )


# ----------------------------------------------------------------------
# Server-side circuit optimization: the same CryptoNets program served
# twice through identical chip pools — once with the optimizer off and
# once at level "lazy" (deferred relinearization). The work (executed
# tensor + key-switch units) must shrink >= 15% and the pool makespan
# must not regress; both servings must decode to the plaintext
# reference scores.
# ----------------------------------------------------------------------

OPTIMIZER_UNIT_GATE = 0.85  # lazy units <= 85% of unoptimized units


def _serve_cryptonets(level: str, cnn, circuit, inputs) -> tuple[dict, dict]:
    """One CryptoNets inference at ``optimizer_level=level``; row + outputs."""
    from repro.service.serialization import deserialize_circuit_outputs

    server = FheServer(pool_size=4, max_batch=4, optimizer_level=level)
    sid = server.open_session(
        f"cnn-{level}", serialize_params(cnn.params),
        relin_key=serialize_relin_key(cnn.keys.relin, cnn.params),
    )
    start = time.perf_counter()
    jid = server.submit(sid, JobKind.CIRCUIT, inputs, payload=circuit)
    payload = server.result(jid)
    wall = time.perf_counter() - start
    rewrite = server.job_metrics(jid).rewrite
    report = server.pool_report()
    row = {
        "op": "serve_cryptonets_optimizer",
        "n": cnn.params.n,
        "towers": cnn.params.cofhee_tower_count,
        "engine": f"chip-x4-opt-{level}",
        "jobs": 1,
        "wall_s": round(wall, 3),
        "steps": rewrite["steps_after"],
        "tensor_units": rewrite["tensor_units"],
        "relin_units": rewrite["relin_units"],
        "work_units": rewrite["tensor_units"] + rewrite["relin_units"],
        "makespan_cycles": report["batch_makespan_cycles"],
    }
    return row, deserialize_circuit_outputs(payload, cnn.params)


def test_cryptonets_optimizer_units():
    """Optimized vs unoptimized CryptoNets on identical chip pools.

    Level ``lazy`` turns the per-multiply eager key switches into
    deferred batchable runs, so the served program must execute >= 15%
    fewer tensor + relinearization units than the submitted one — and
    the chip-pool makespan must not regress — while still decoding to
    the plaintext reference scores.
    """
    from repro.apps.cryptonets import MiniCryptoNets
    from repro.polymath.primes import ntt_friendly_prime

    params = BfvParameters.toy_rns(
        n=16, towers=4, tower_bits=30, t=ntt_friendly_prime(16, 20)
    )
    cnn = MiniCryptoNets(params=params, seed=7)
    rng = random.Random(19)
    images = [[rng.randint(-2, 2) for _ in range(36)] for _ in range(3)]
    circuit = cnn.to_circuit()
    inputs = tuple(
        serialize_ciphertext(ct) for ct in cnn.encrypt_images(images)
    )
    expected = cnn.infer_plain(images)

    eager, eager_outs = _serve_cryptonets("none", cnn, circuit, inputs)
    lazy, lazy_outs = _serve_cryptonets("lazy", cnn, circuit, inputs)
    for label, outs in (("unoptimized", eager_outs), ("lazy", lazy_outs)):
        scores = cnn.scores_from_outputs(outs, len(images))
        assert scores == expected, (
            f"{label} CryptoNets serving diverged from plaintext reference"
        )
    saved = 1 - lazy["work_units"] / eager["work_units"]
    lazy["units_saved_pct"] = round(100 * saved, 1)
    print_table(
        f"CryptoNets optimizer ({len(images)} images, "
        f"{len(circuit.steps)} submitted steps)",
        [eager, lazy],
        ["engine", "steps", "tensor_units", "relin_units", "work_units",
         "makespan_cycles", "wall_s"],
    )
    # The optimizer-off serving executes the submitted program verbatim.
    assert eager["steps"] == len(circuit.steps), eager
    # Lazy relinearization sheds >= 15% of the tensor + key-switch work…
    assert (lazy["work_units"]
            <= eager["work_units"] * OPTIMIZER_UNIT_GATE), (
        f"lazy executed {lazy['work_units']} tensor+relin units, "
        f"needed <= {OPTIMIZER_UNIT_GATE}x of eager "
        f"{eager['work_units']}"
    )
    # …and never at the cost of the pool's critical path.
    assert lazy["makespan_cycles"] <= eager["makespan_cycles"], (
        f"lazy makespan {lazy['makespan_cycles']} regressed past "
        f"unoptimized {eager['makespan_cycles']}"
    )
    _merge_bench_rows([eager, lazy])
    print(f"\nlazy relinearization sheds {100 * saved:.0f}% of the "
          f"tensor+relin units with no makespan regression ✓")


# ----------------------------------------------------------------------
# Paper-scale serving: n = 2^13 (the Section VI-B large configuration),
# chip-native towers, tower-sharded across a pool of 4. Slow-marked; run
# via ``tools/run_checks.sh --slow`` or ``pytest ... --slow``.
# ----------------------------------------------------------------------

PAPER_MULTS = 2


@pytest.mark.paper_scale
def test_service_throughput_paper_scale():
    """EvalMult at n = 2^13 through the full serving stack.

    The batched engine is what makes this affordable: the host-side
    tensor, the ground-truth relinearization, and every per-tower mod-q
    cross-check all run vectorized, while the chip pool shards the
    4-tower tensor across its workers.
    """
    params = BfvParameters.toy_rns(n=2**13, towers=4, tower_bits=30)
    bfv = Bfv(params, seed=131)
    keys = bfv.keygen(relin_digit_bits=30)
    encoder = BatchEncoder(params)
    rng = random.Random(8)
    cts = []
    ops = []
    for _ in range(PAPER_MULTS):
        a = bfv.encrypt(
            encoder.encode([rng.randrange(64) for _ in range(params.n)]),
            keys.public,
        )
        b = bfv.encrypt(
            encoder.encode([rng.randrange(64) for _ in range(params.n)]),
            keys.public,
        )
        cts.append((a, b))
        ops.append((JobKind.MULTIPLY, (serialize_ciphertext(a), serialize_ciphertext(b))))

    start = time.perf_counter()
    server = FheServer(pool_size=4, max_batch=4)
    sid = server.open_session(
        "paper",
        serialize_params(params),
        relin_key=serialize_relin_key(keys.relin, params),
    )
    jids = [server.submit(sid, kind, operands) for kind, operands in ops]
    wires = [server.result(jid) for jid in jids]
    wall = time.perf_counter() - start

    report = server.pool_report()
    rows = server.throughput_rows()
    for row in rows:
        row["chip_jobs"] = report["fidelity"].get("chip", 0)
        row["batch_makespan"] = report["batch_makespan_cycles"]
    print_table(
        f"Paper-scale serving ({PAPER_MULTS} EvalMult, "
        f"{params.describe()}, wall {wall:.1f}s)",
        rows, COLUMNS,
    )
    # Every tensor executed chip-natively, tower-sharded across workers.
    assert report["fidelity"].get("chip") == PAPER_MULTS
    assert len(report["tower_cycles"]) == params.cofhee_tower_count
    metrics = server.job_metrics(jids[0])
    assert len(set(metrics.tower_workers)) == params.cofhee_tower_count
    # The engine-backed serving stack answers bit-for-bit with local
    # ground truth at paper scale.
    expected = bfv.multiply_relin(cts[0][0], cts[0][1], keys.relin)
    assert wires[0] == serialize_ciphertext(expected)


# ----------------------------------------------------------------------
# Multi-process fleet serving: client and server in SEPARATE
# interpreters — ``repro-serve --fleet N`` spawned as a subprocess, the
# sync client driving it over localhost TCP. Four parameter sets whose
# digests route to four distinct workers, so a fleet of 4 overlaps the
# work a fleet of 1 serializes; the gate is the repo's makespan
# convention (modeled cycles on the busiest worker — worker processes
# execute concurrently, so the busiest worker is the wall time).
# Slow-marked; run via ``tools/run_checks.sh --slow``.
# ----------------------------------------------------------------------

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernels.json"
FLEET_N = 2**12
FLEET_SETS = 4
_CYCLES_LINE = re.compile(
    r'repro_fleet_worker_cycles_total\{[^}]*worker="(\d+)"[^}]*\}\s+'
    r"([0-9.eE+]+)"
)


def _fleet_param_sets(size: int) -> list:
    """Parameter sets whose digests route to ``size`` distinct workers."""
    from repro.service.fleet import route_index
    from repro.service.serialization import params_digest

    chosen = {}
    for towers in (3, 4):
        for bits in range(24, 31):
            params = BfvParameters.toy_rns(
                n=FLEET_N, towers=towers, tower_bits=bits
            )
            slot = route_index(params_digest(params), size)
            chosen.setdefault(slot, params)
            if len(chosen) == size:
                return [chosen[i] for i in range(size)]
    raise AssertionError(
        f"could not spread {size} digests over {size} workers"
    )


def _fleet_traffic(param_sets):
    """One EvalMult per parameter set, with local ground truth."""
    from repro.polymath.fastntt import RnsExactMultiplier

    rng = random.Random(23)
    traffic = []
    for i, params in enumerate(param_sets):
        bfv = Bfv(params, seed=500 + i,
                  multiplier=RnsExactMultiplier(params.n, params.q))
        keys = bfv.keygen(relin_digit_bits=30)
        encoder = BatchEncoder(params)
        a = bfv.encrypt(encoder.encode(
            [rng.randrange(64) for _ in range(256)]), keys.public)
        b = bfv.encrypt(encoder.encode(
            [rng.randrange(64) for _ in range(256)]), keys.public)
        expected = serialize_ciphertext(
            bfv.multiply_relin(a, b, keys.relin)
        )
        traffic.append((params, keys, (
            serialize_ciphertext(a), serialize_ciphertext(b),
        ), expected))
    return traffic


def _spawn_fleet_server(fleet: int) -> tuple[subprocess.Popen, str, int]:
    """``repro-serve --fleet N`` in its own interpreter; parse the bind."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service.demo",
         "--listen", "127.0.0.1:0", "--fleet", str(fleet), "--max-batch", "4"],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    assert proc.stdout is not None
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    raise AssertionError("repro-serve never announced its listen address")


def _drive_fleet(fleet: int, traffic) -> dict:
    """Serve the shared traffic from a separate-interpreter fleet."""
    from repro.service.client import FheClient

    proc, host, port = _spawn_fleet_server(fleet)
    try:
        with FheClient(host, port, timeout=600.0) as client:
            start = time.perf_counter()
            jids = []
            for i, (params, keys, operands, _expected) in enumerate(traffic):
                sid = client.open_session(
                    f"bench{i}", serialize_params(params),
                    relin_key=serialize_relin_key(keys.relin, params),
                )
                jids.append(client.submit(sid, JobKind.MULTIPLY, operands))
            wires = [client.result(j) for j in jids]
            wall = time.perf_counter() - start
            per_worker = {
                int(w): int(float(c))
                for w, c in _CYCLES_LINE.findall(client.stats())
            }
    finally:
        proc.terminate()
        try:
            proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()
    for wire, (_p, _k, _ops, expected) in zip(wires, traffic):
        assert wire == expected, (
            f"fleet x{fleet} result diverged from Bfv ground truth"
        )
    return {
        "op": "serve_fleet_paper",
        "n": FLEET_N,
        "towers": "3-4",
        "engine": f"fleet-x{fleet}",
        "jobs": len(traffic),
        "wall_s": round(wall, 3),
        "jobs_per_s": round(len(traffic) / wall, 3) if wall > 0 else 0.0,
        "workers_used": len(per_worker),
        "total_cycles": sum(per_worker.values()),
        "makespan_cycles": max(per_worker.values(), default=0),
    }


def _bench_row_key(row: dict) -> tuple:
    """The identity of one benchmark row: ``(op, n, towers, engine)``.

    Keying on ``op`` alone would let one configuration's row clobber
    another's — e.g. the fleet bench's x1 and x4 rows share an op and
    differ only by engine, and a re-run at a different degree must
    replace only its own row.
    """
    return (row.get("op"), row.get("n"), row.get("towers"), row.get("engine"))


def _merge_bench_rows(rows: list[dict]) -> None:
    """Record serving rows in BENCH_kernels.json, keeping foreign rows.

    Only rows whose full ``(op, n, towers, engine)`` identity matches one
    being written are replaced, so the fleet and spill-over benches own
    their configurations without clobbering each other, the kernel rows,
    or sibling rows of the same op.
    """
    keys = {_bench_row_key(row) for row in rows}
    existing = []
    if BENCH_JSON.exists():
        existing = [
            row for row in json.loads(BENCH_JSON.read_text())
            if _bench_row_key(row) not in keys
        ]
    BENCH_JSON.write_text(json.dumps(existing + rows, indent=2) + "\n")


@pytest.mark.paper_scale
def test_fleet_throughput_paper_scale():
    """Fleet of 4 worker processes vs fleet of 1 on identical traffic.

    Four parameter sets, digests spread across all four workers; every
    result checked bit-identical to local ground truth. The fleet of 4
    must serve the traffic with a >= 2x shorter makespan (busiest-worker
    cycles) than the fleet of 1 — the work does not shrink, it spreads.
    """
    param_sets = _fleet_param_sets(FLEET_SETS)
    traffic = _fleet_traffic(param_sets)
    rows = [_drive_fleet(fleet, traffic) for fleet in (1, 4)]
    x1, x4 = rows
    speedup = (
        x1["makespan_cycles"] / x4["makespan_cycles"]
        if x4["makespan_cycles"] else 0.0
    )
    x4["makespan_speedup_vs_x1"] = round(speedup, 2)
    print_table(
        f"Fleet serving ({FLEET_SETS} param sets, separate interpreters, "
        f"n = {FLEET_N})",
        rows,
        ["engine", "jobs", "workers_used", "wall_s", "jobs_per_s",
         "total_cycles", "makespan_cycles"],
    )
    # The single fleet worker served everything; the fleet of 4 spread
    # the digests across every worker.
    assert x1["workers_used"] == 1, x1
    assert x4["workers_used"] == FLEET_SETS, x4
    # Same modeled work either way (the chips don't get faster)...
    assert x4["total_cycles"] == x1["total_cycles"]
    # ...but the busiest worker's share — the fleet's wall time, since
    # workers are concurrent interpreters — drops >= 2x.
    assert x4["makespan_cycles"] * 2 <= x1["makespan_cycles"], (
        f"fleet x4 makespan {x4['makespan_cycles']} not >= 2x better "
        f"than x1 {x1['makespan_cycles']}"
    )
    _merge_bench_rows(rows)
    print(f"\nfleet x4 makespan is {speedup:.2f}x shorter than x1 "
          f"on identical paper-scale traffic ✓")


# ----------------------------------------------------------------------
# Spill-over routing under a skewed tenant mix: one hot tenant supplies
# 80% of the traffic, so digest-pinned routing piles its whole load onto
# one worker while the rest of the fleet idles. The same traffic with
# ``spill_threshold=1`` must spread across the fleet and cut the
# makespan (busiest-worker cycles) by >= 1.3x. Thread-mode workers keep
# this fast enough for the smoke pass; every payload is checked
# bit-identical against local Bfv ground truth either way.
# ----------------------------------------------------------------------

SPILL_FLEET = 4
SPILL_HOT_JOBS = 8
SPILL_COLD_JOBS = 2
SPILL_GATE = 1.3


def _spillover_traffic():
    """A hot tenant (80% of jobs) and a cold tenant, with ground truth.

    The tenants use different tower widths so their digests are
    distinct sessions; the skew — not the digest spread — is what the
    bench exercises.
    """
    rng = random.Random(41)
    tenants = []
    for label, bits, jobs in (
        ("hot", 20, SPILL_HOT_JOBS), ("cold", 21, SPILL_COLD_JOBS)
    ):
        params = BfvParameters.toy_rns(n=16, towers=3, tower_bits=bits)
        bfv = Bfv(params, seed=900 + bits)
        keys = bfv.keygen(relin_digit_bits=12)
        encoder = BatchEncoder(params)
        ops = []
        for _ in range(jobs):
            a = bfv.encrypt(
                encoder.encode([rng.randrange(32) for _ in range(params.n)]),
                keys.public,
            )
            b = bfv.encrypt(
                encoder.encode([rng.randrange(32) for _ in range(params.n)]),
                keys.public,
            )
            ops.append((
                (serialize_ciphertext(a), serialize_ciphertext(b)),
                serialize_ciphertext(bfv.multiply_relin(a, b, keys.relin)),
            ))
        tenants.append((label, params, keys, ops))
    return tenants


def _serve_spillover(spill_threshold: int, tenants) -> dict:
    """Serve the skewed traffic through a thread-mode fleet of 4."""
    server = FheServer(
        fleet_size=SPILL_FLEET, fleet_mode="thread",
        default_backend="fleet", max_batch=4,
        fleet_options={"spill_threshold": spill_threshold},
    )
    with server:
        checks = []
        start = time.perf_counter()
        for label, params, keys, ops in tenants:
            sid = server.open_session(
                label, serialize_params(params),
                relin_key=serialize_relin_key(keys.relin, params),
            )
            for operands, expected in ops:
                checks.append((
                    server.submit(sid, JobKind.MULTIPLY, operands),
                    expected, label,
                ))
        server.run()
        wall = time.perf_counter() - start
        for jid, expected, label in checks:
            assert server.result(jid) == expected, (
                f"{label} tenant diverged from Bfv ground truth at "
                f"spill_threshold={spill_threshold}"
            )
        report = server.fleet_report()
        worker_cycles = dict(server.fleet.worker_cycles)
    assert report["in_flight"] == 0, report
    return {
        "op": "serve_fleet_spillover",
        "n": 16,
        "towers": 3,
        "engine": f"fleet-x{SPILL_FLEET}-"
                  + (f"spill{spill_threshold}" if spill_threshold
                     else "pinned"),
        "jobs": len(checks),
        "hot_jobs": SPILL_HOT_JOBS,
        "wall_s": round(wall, 3),
        "jobs_per_s": round(len(checks) / wall, 3) if wall > 0 else 0.0,
        "workers_used": sum(1 for c in worker_cycles.values() if c),
        "total_cycles": report["total_cycles"],
        "makespan_cycles": report["makespan_cycles"],
        "spillovers": report["routing"]["spill"],
    }


def test_fleet_spillover_skewed_tenant():
    """Spill-over routing vs digest pinning on a hot-tenant skew.

    Identical traffic both times — the work (total cycles) must not
    change; only where it lands does. The gate is the repo's makespan
    convention: busiest-worker cycles, >= 1.3x shorter with spill-over.
    """
    tenants = _spillover_traffic()
    pinned = _serve_spillover(0, tenants)
    spill = _serve_spillover(1, tenants)
    speedup = (
        pinned["makespan_cycles"] / spill["makespan_cycles"]
        if spill["makespan_cycles"] else 0.0
    )
    spill["makespan_speedup_vs_pinned"] = round(speedup, 2)
    print_table(
        f"Spill-over routing ({SPILL_HOT_JOBS}+{SPILL_COLD_JOBS} jobs, "
        f"hot tenant = 80% of traffic, fleet of {SPILL_FLEET})",
        [pinned, spill],
        ["engine", "jobs", "workers_used", "spillovers", "wall_s",
         "total_cycles", "makespan_cycles"],
    )
    # Pinned routing never spills and strands the hot tenant's load on
    # its home worker; spill-over spreads it across the fleet.
    assert pinned["spillovers"] == 0, pinned
    assert spill["spillovers"] >= 1, spill
    assert spill["workers_used"] > pinned["workers_used"], (pinned, spill)
    # Same modeled work either way (the chips don't get faster)...
    assert spill["total_cycles"] == pinned["total_cycles"], (pinned, spill)
    # ...but the busiest worker sheds >= 1.3x of its share.
    assert (spill["makespan_cycles"] * SPILL_GATE
            <= pinned["makespan_cycles"]), (
        f"spill-over makespan {spill['makespan_cycles']} not >= "
        f"{SPILL_GATE}x better than pinned {pinned['makespan_cycles']}"
    )
    _merge_bench_rows([pinned, spill])
    print(f"\nspill-over makespan is {speedup:.2f}x shorter than pinned "
          f"routing on the skewed tenant mix ✓")
