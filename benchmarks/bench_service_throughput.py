"""Serving-layer throughput: jobs/sec per backend and chip-pool size.

Pushes a fixed mixed workload (EvalMult + additions) through the serving
stack and reports modeled/measured jobs-per-second for the software
baseline, the vectorized numpy backend, and chip pools of 1/2/4 — the
serving-layer analogue of the paper's Fig. 6 platform comparison.

Run:  pytest benchmarks/bench_service_throughput.py --benchmark-only -s
      (or with --benchmark-disable for a single smoke pass, as
      tools/run_checks.sh does)
"""

import random

from conftest import print_table

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.jobs import JobKind
from repro.service.serialization import (
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

PARAMS = BfvParameters.toy(n=16, log_q=80)
N_MULTS = 6
N_ADDS = 6

COLUMNS = ["backend", "pool", "jobs", "wall_s", "jobs_per_s", "wall_cycles"]


def _traffic():
    bfv = Bfv(PARAMS, seed=31337)
    keys = bfv.keygen(relin_digit_bits=12)
    encoder = BatchEncoder(PARAMS)
    rng = random.Random(3)
    ops = []
    for kind, count in ((JobKind.MULTIPLY, N_MULTS), (JobKind.ADD, N_ADDS)):
        for _ in range(count):
            a = bfv.encrypt(
                encoder.encode([rng.randrange(32) for _ in range(PARAMS.n)]),
                keys.public,
            )
            b = bfv.encrypt(
                encoder.encode([rng.randrange(32) for _ in range(PARAMS.n)]),
                keys.public,
            )
            ops.append((kind, (serialize_ciphertext(a), serialize_ciphertext(b))))
    return keys, ops


def _serve(pool_size: int, backend: str, keys, ops) -> list[dict]:
    server = FheServer(pool_size=pool_size, max_batch=4)
    sid = server.open_session(
        "bench",
        serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
    )
    for kind, operands in ops:
        server.submit(sid, kind, operands, backend=backend)
    server.run()
    return server.throughput_rows()


def test_service_throughput(benchmark):
    keys, ops = _traffic()

    def sweep():
        rows = []
        for pool_size in (1, 2, 4):
            rows.extend(_serve(pool_size, "chip_pool", keys, ops))
        for backend in ("software", "fastntt"):
            rows.extend(_serve(1, backend, keys, ops))
        return rows

    rows = benchmark(sweep)
    print_table(
        f"Serving throughput ({N_MULTS} EvalMult + {N_ADDS} Add jobs)",
        rows, COLUMNS,
    )
    by_pool = {r["pool"]: r for r in rows if "pool" in r}
    assert by_pool[4]["wall_cycles"] < by_pool[1]["wall_cycles"]
    assert all(r["jobs"] == N_MULTS + N_ADDS for r in rows)
