"""Table XI: normalized NTT efficiency vs related ASIC/FPGA designs.

Regenerates the cross-design comparison: tower factors, tech scaling
(area/16.7, delay/3.7 for CoFHEE's 55 nm), and the efficiency metric with
CoFHEE's speedups over F1 (6.3x), CraterLake (1.39x), BTS (46.19x), and
ARK (4.72x).
"""

from repro.eval.tables import print_table

from repro.eval.table11 import table11_rows

COLUMNS = [
    "design", "technology", "log_q_bits", "tower_factor", "ntt_cycles",
    "freq_mhz", "efficiency", "paper_efficiency",
    "cofhee_speedup", "paper_speedup", "silicon_proven",
]


def test_table11(benchmark):
    rows = benchmark(table11_rows)
    print_table("Table XI: NTT efficiency comparison", rows, COLUMNS)
    for row in rows:
        if row["paper_efficiency"] is not None:
            assert (
                abs(row["efficiency"] - row["paper_efficiency"])
                / row["paper_efficiency"] < 0.01
            )
        if row["paper_speedup"] is not None:
            assert abs(row["cofhee_speedup"] - row["paper_speedup"]) < 0.05
    # Only CoFHEE is silicon-proven — the paper's headline claim.
    assert [r["design"] for r in rows if r["silicon_proven"]] == ["CoFHEE"]
