"""Shared helpers for the benchmark suite.

Every bench regenerates one paper table/figure: it benchmarks the harness
call with pytest-benchmark and prints the model-vs-paper rows so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.
"""

from __future__ import annotations


def print_table(title: str, rows: list[dict], columns: list[str]) -> None:
    """Render rows as a fixed-width table to stdout."""
    print(f"\n=== {title} ===")
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for r in rows:
        print("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and abs(value) < 1e-2:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
