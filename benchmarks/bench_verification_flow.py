"""Verification-flow benchmarks (Sections III-J and V-F).

Times the pre-silicon regression (vector generation + golden-harness
replay at bit-exact fidelity) and the post-silicon bring-up ladder, and
checks the flow-level facts: full pass rate, fault detection, the Nexys 4
n = 2^12 capacity limit.
"""

from repro.eval.tables import print_table

from repro.verification import (
    FpgaBuild,
    GoldenHarness,
    PostSiliconValidator,
    TestVectorGenerator,
)
from repro.verification.fpga import NEXYS4


def test_pre_silicon_regression(benchmark):
    gen = TestVectorGenerator(n=64, coeff_bits=60, seed=7)
    suite = gen.regression_suite() + gen.directed_corner_vectors()

    def run():
        return GoldenHarness().run_suite(suite)

    results = benchmark(run)
    summary = GoldenHarness.summarize(results)
    rows = [{"vector": r.vector.description, "cycles": r.cycles,
             "status": "PASS" if r.passed else "FAIL"} for r in results]
    print_table("Pre-silicon regression (pe fidelity)", rows,
                ["vector", "cycles", "status"])
    assert summary["failed"] == 0


def test_post_silicon_bringup(benchmark):
    def run():
        return PostSiliconValidator().run(smoke_degree=128)

    report = benchmark(run)
    rows = [{"step": s.name, "status": "PASS" if s.passed else "FAIL",
             "detail": s.detail} for s in report.steps]
    print_table("Post-silicon bring-up (Section V-F)", rows,
                ["step", "status", "detail"])
    print(f"UART time: {report.uart_seconds * 1e3:.1f} ms")
    assert report.fully_functional


def test_fpga_capacity(benchmark):
    build = FpgaBuild(NEXYS4, clock_mhz=10.0)
    max_degree = benchmark(build.max_degree)
    rows = [
        {"n": f"2^{d.bit_length() - 1}",
         "bram_kbits": round(build.total_kbits(d), 1),
         "fits": build.fits(d)}
        for d in (2**11, 2**12, 2**13)
    ]
    print_table("Nexys 4 capacity (Section III-J)", rows,
                ["n", "bram_kbits", "fits"])
    assert max_degree == 2**12  # the paper's FPGA build point
    assert build.slowdown_vs_silicon() == 25.0  # 10 MHz vs 250 MHz
