"""API claims of Section III-C: II and communication across degrees.

* n <= 2^13: fully on-chip at II = 1;
* n = 2^14: on-chip but through single-port banks, II = 2;
* n >= 2^15: host-assisted four-step NTT — communication over the 50 MHz
  SPI dominates ("for larger polynomials the communication costs
  increase, and the NTT operation becomes more expensive").
"""

from repro.eval.tables import print_table

from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.core.timing import TimingModel


def ntt_cost_sweep() -> list[dict[str, object]]:
    tm = TimingModel()
    chip = CoFHEE(ChipConfig(fidelity="timing"))
    driver = CofheeDriver(chip)
    rows = []
    for log_n in (12, 13, 14, 15, 16):
        n = 1 << log_n
        ii = tm.butterfly_initiation_interval(n)
        if n <= 2 * tm.dual_port_words:
            compute_us = tm.cycles_to_us(tm.ntt_cycles(n))
            io_ms = 0.0
        else:
            report = driver.large_ntt_report(n)
            compute_us = report.latency_us
            io_ms = report.io_seconds * 1e3
        rows.append(
            {
                "n": f"2^{log_n}",
                "II": ii,
                "compute_us": round(compute_us, 1),
                "host_io_ms": round(io_ms, 3),
                "io_dominates": io_ms * 1000 > compute_us,
            }
        )
    return rows


def test_large_n_sweep(benchmark):
    rows = benchmark(ntt_cost_sweep)
    print_table("NTT cost vs polynomial degree (Section III-C)", rows,
                ["n", "II", "compute_us", "host_io_ms", "io_dominates"])
    by_n = {r["n"]: r for r in rows}
    assert by_n["2^13"]["II"] == 1 and by_n["2^13"]["host_io_ms"] == 0
    assert by_n["2^14"]["II"] == 2 and by_n["2^14"]["host_io_ms"] == 0
    assert by_n["2^15"]["io_dominates"]
    assert by_n["2^16"]["io_dominates"]


def test_execution_mode_overheads(benchmark):
    """Section III-I: direct-register mode pays link latency per command;
    FIFO batches it; CM0 eliminates it for long sequences."""
    def run():
        results = {}
        for mode in ("direct", "fifo", "cm0"):
            chip = CoFHEE(ChipConfig(fidelity="timing"))
            driver = CofheeDriver(chip, mode=mode)
            from repro.polymath.primes import ntt_friendly_prime
            driver.program(ntt_friendly_prime(2**12, 109), 2**12)
            cmds = [driver.ntt_command("P0", "P1") for _ in range(16)]
            report = driver.execute(cmds, label=mode)
            results[mode] = report
        return results

    results = benchmark(run)
    rows = [
        {
            "mode": mode,
            "compute_ms": round(r.compute_seconds * 1e3, 3),
            "host_io_ms": round(r.io_seconds * 1e3, 3),
            "total_ms": round(r.total_seconds * 1e3, 3),
        }
        for mode, r in results.items()
    ]
    print_table("Execution-mode overheads (16 NTT commands)", rows,
                ["mode", "compute_ms", "host_io_ms", "total_ms"])
    # Direct mode is the slowest, CM0 the leanest on host IO (paper order).
    assert results["direct"].io_seconds > results["fifo"].io_seconds
    assert results["cm0"].io_seconds < results["fifo"].io_seconds
