"""Table V: CoFHEE operation latency and power at n = 2^12 and 2^13.

Regenerates the paper's silicon measurements from the cycle-calibrated
simulator: PolyMul/NTT/iNTT cycles, microseconds at 250 MHz, and
average/peak power.
"""

from repro.eval.tables import print_table

from repro.eval.table5 import table5_rows

COLUMNS = [
    "n", "op", "cycles", "paper_cycles", "latency_us", "paper_us",
    "avg_mw", "paper_avg_mw", "peak_mw", "paper_peak_mw",
]


def test_table5(benchmark):
    rows = benchmark(table5_rows)
    print_table("Table V: CoFHEE performance/power", rows, COLUMNS)
    for row in rows:
        assert abs(row["cycles"] - row["paper_cycles"]) / row["paper_cycles"] < 0.001
        assert abs(row["avg_mw"] - row["paper_avg_mw"]) / row["paper_avg_mw"] < 0.05
