"""Table VIII: post-synthesis area and timing of CoFHEE's blocks.

Regenerates the block inventory from the synthesis estimator (SRAM
bit-area laws, quadratic multiplier law, crossbar port-product law).
"""

from repro.eval.tables import print_table

from repro.eval.table8 import table8_rows
from repro.physical.synthesis import SynthesisEstimator

COLUMNS = ["module", "model_mm2", "paper_mm2", "error_pct", "delay_ns"]


def test_table8(benchmark):
    rows = benchmark(table8_rows)
    print_table("Table VIII: post-synthesis areas", rows, COLUMNS)
    for row in rows:
        assert abs(row["error_pct"]) < 1.0
    total = next(r for r in rows if r["module"] == "Total")
    assert abs(total["model_mm2"] - 9.8345) < 0.01


def test_memory_dominance(benchmark):
    fraction = benchmark(SynthesisEstimator().memory_fraction)
    print(f"\nSRAM fraction of synthesized area: {fraction:.1%}")
    # "The majority of the available chip area is occupied by the SRAMs."
    assert fraction > 0.85
