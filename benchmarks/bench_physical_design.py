"""Physical-design tables: III (PnR statistics), IV (layout parameters),
VII (redundant vias), IX (pads + clock tree QoR).

Each sub-bench runs the corresponding flow model and compares against the
fabricated chip's reported statistics.
"""

from repro.eval.tables import print_table

from repro.eval.physical_tables import (
    TABLE4_PAPER,
    table3_rows,
    table4_row,
    table7_rows,
    table9_rows,
)


def test_table3_pnr_statistics(benchmark):
    rows = benchmark(table3_rows)
    print_table(
        "Table III: PnR statistics",
        rows,
        ["stage", "std_cells", "paper_std_cells", "bufinv", "paper_bufinv",
         "utilization_pct", "paper_utilization_pct",
         "signal_nets", "paper_signal_nets"],
    )
    for row in rows:
        assert abs(row["std_cells"] - row["paper_std_cells"]) / row["paper_std_cells"] < 0.001
        assert abs(row["signal_nets"] - row["paper_signal_nets"]) / row["paper_signal_nets"] < 0.001
        model_vt = row["vt_mix"]
        paper_vt = row["paper_vt_mix"]
        assert all(abs(m - p) < 0.5 for m, p in zip(model_vt, paper_vt))


def test_table4_floorplan(benchmark):
    result = benchmark(table4_row)
    rows = [
        {"parameter": k, "model": result["model"].get(k), "paper": v}
        for k, v in TABLE4_PAPER.items()
    ]
    print_table("Table IV: layout physical parameters", rows,
                ["parameter", "model", "paper"])
    model = result["model"]
    assert model["DW_um"] == TABLE4_PAPER["DW_um"]
    assert model["DH_um"] == TABLE4_PAPER["DH_um"]
    assert abs(model["A"] - TABLE4_PAPER["A"]) < 0.01
    assert abs(model["MA_um2"] - TABLE4_PAPER["MA_um2"]) / TABLE4_PAPER["MA_um2"] < 0.01
    assert result["macros_placed"] == 68
    # 15 mm^2 die including seal ring margin (paper: "total die area,
    # including the seal ring, is 15mm^2"; 3.66 x 3.842 = 14.06 before it).
    assert 13.5 < result["die_area_mm2"] < 15.0


def test_table7_redundant_vias(benchmark):
    rows = benchmark(table7_rows)
    print_table("Table VII: redundant-via statistics", rows,
                ["layer", "multi_cut", "paper_multi_cut", "total",
                 "paper_total", "multi_cut_pct", "paper_pct"])
    for row in rows:
        assert abs(row["multi_cut_pct"] - row["paper_pct"]) < 0.1
        # lower via layers convert >98%
        if row["layer"].startswith("V"):
            assert row["multi_cut_pct"] > 98.0


def test_table9_design_statistics(benchmark):
    result = benchmark(table9_rows)
    rows = [
        {"parameter": k, "model": result["model"].get(k), "paper": v}
        for k, v in result["paper"].items()
    ]
    print_table("Table IX: design statistics", rows,
                ["parameter", "model", "paper"])
    model, paper = result["model"], result["paper"]
    assert model["Signal_pads"] == paper["Signal_pads"]
    assert model["PG_pads"] == paper["PG_pads"]
    assert model["Levels"] == paper["Levels"]
    assert abs(model["Clock_tree_buffers"] - paper["Clock_tree_buffers"]) <= 5
    assert abs(model["Global_skew_ps"] - paper["Global_skew_ps"]) <= 15
    assert abs(model["Longest_ins_delay_ns"] - paper["Longest_ins_delay_ns"]) < 0.05
