"""ADPLL (Section V-E): lock acquisition across the tuning range.

The fabricated ADPLL is 0.05 mm^2 / 350 uW with a wide tuning range; the
behavioral model must lock at every target including the 250 MHz operating
point, with sub-LSB residual error and SAR-speed acquisition.
"""

from repro.eval.tables import print_table

from repro.core.adpll import Adpll
from repro.eval.adpll_eval import adpll_rows, adpll_summary

COLUMNS = ["target_mhz", "locked", "final_mhz", "error_ppm",
           "fll_steps", "pll_steps", "lock_time_us"]


def test_adpll_lock_sweep(benchmark):
    rows = benchmark(adpll_rows)
    print_table("ADPLL lock acquisition sweep", rows, COLUMNS)
    summary = adpll_summary()
    print(f"implementation: {summary}")
    pll = Adpll()
    for row in rows:
        assert row["locked"]
        # residual error bounded by one fine DCO LSB
        bound_ppm = pll.quantization_error_bound_hz() / (row["target_mhz"] * 1e6) * 1e6
        assert abs(row["error_ppm"]) <= bound_ppm * 1.5
        # SAR acquisition: exactly one step per control bit
        assert row["fll_steps"] == pll.dco.code_bits


def test_adpll_tuning_range(benchmark):
    pll = Adpll()
    lo, hi = benchmark(pll.tuning_range)
    print(f"\ntuning range: {lo/1e6:.1f} - {hi/1e6:.1f} MHz")
    # "wide tuning range": covers the 250 MHz operating point with margin
    assert lo < 100e6 and hi > 400e6
