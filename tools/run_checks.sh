#!/usr/bin/env bash
# Repo health check: tier-1 tests, the serving-layer benchmark in smoke
# mode (one pass, no timing statistics), the docs gate (doctest every
# docs/ code block + intra-repo link resolution), and the transport-based
# examples smoke. Run from anywhere.
#
#   tools/run_checks.sh              # tier-1 + benchmark smoke + docs
#                                    # + observability + fleet + examples
#                                    # smoke
#   tools/run_checks.sh --docs       # only the docs stage (when given
#                                    # alone; with other flags the full
#                                    # pipeline runs and already
#                                    # includes the docs gate)
#   tools/run_checks.sh --bench      # also the kernel + serving micro-bench
#                                    # (writes BENCH_kernels.json and enforces
#                                    # the >= 10x EvalMult perf gate and the
#                                    # serving-row gates: >= 8x software,
#                                    # >= 4x chip-pool), then the phase
#                                    # profiler with the relin-tail share
#                                    # regression gate
#   tools/run_checks.sh --obs        # only the observability stage (when
#                                    # given alone; it is already part of
#                                    # the default pipeline): the telemetry
#                                    # test battery + the phase profiler in
#                                    # smoke mode (>= 90% coverage gate)
#   tools/run_checks.sh --transport  # also the wire-transport smoke stage
#                                    # (localhost listener, EvalMult + logreg
#                                    # circuit round-trips, assert bit-identical)
#   tools/run_checks.sh --fleet      # only the fleet stage (when given
#                                    # alone; it is already part of the
#                                    # default pipeline): the chaos test
#                                    # battery + the fleet property suite
#                                    # + a 2-process worker-fleet smoke
#                                    # over a real socket (spawn-safe:
#                                    # each worker is a fresh interpreter)
#                                    # + the spill-over routing bench
#                                    # (skewed hot tenant, >= 1.3x gate)
#   tools/run_checks.sh --slow       # also the paper-scale suites
#                                    # (n = 2^12 pool scaling, n = 2^13 serving)
#   tools/run_checks.sh --cov        # also the line-coverage stage: the
#                                    # service + property suites under
#                                    # coverage.py with an 80% line floor
#                                    # on src/repro/service/ (skipped with
#                                    # a notice when coverage/pytest-cov
#                                    # is not installed — nothing is
#                                    # downloaded)
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_SLOW=0
RUN_BENCH=0
RUN_TRANSPORT=0
RUN_COV=0
DOCS_ONLY=0
OBS_ONLY=0
FLEET_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --slow) RUN_SLOW=1 ;;
    --bench) RUN_BENCH=1 ;;
    --transport) RUN_TRANSPORT=1 ;;
    --cov) RUN_COV=1 ;;
    --docs) DOCS_ONLY=1 ;;
    --obs) OBS_ONLY=1 ;;
    --fleet) FLEET_ONLY=1 ;;
    *) echo "unknown option: $arg (supported: --slow, --bench, --transport, --cov, --docs, --obs, --fleet)" >&2; exit 2 ;;
  esac
done

#: Line-coverage floor (percent) for src/repro/service/ under --cov.
#: Set just below the measured suite coverage so meaningful regressions
#: (a new module landing untested, a test file going dark) fail the
#: stage without flaking on single-line drift.
COV_FLOOR=80

run_cov() {
  echo
  echo "== line coverage (src/repro/service/, floor ${COV_FLOOR}%) =="
  if ! python -c "import coverage" >/dev/null 2>&1; then
    echo "coverage.py not installed; skipping the coverage stage" \
         "(install 'coverage' to enable — this stage never downloads it)"
    return 0
  fi
  if python -c "import pytest_cov" >/dev/null 2>&1; then
    python -m pytest tests/service tests/property -q \
      --cov=repro.service --cov-report=term --cov-fail-under="$COV_FLOOR"
  else
    # coverage.py without the pytest plugin: same floor, two commands.
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
      python -m coverage run --source=src/repro/service \
      -m pytest tests/service tests/property -q
    python -m coverage report --fail-under="$COV_FLOOR"
  fi
}

run_docs() {
  echo
  echo "== docs check (doctest code blocks + intra-repo links) =="
  PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python tools/check_docs.py
}

run_obs() {
  echo
  echo "== observability (telemetry suite + phase profiler smoke) =="
  python -m pytest tests/service/test_telemetry.py \
    tests/service/test_stats_wire.py \
    tests/property/test_property_telemetry.py -q
  PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python tools/profile_serve.py --smoke
}

run_fleet() {
  echo
  echo "== fleet (chaos battery + property suite + 2-process smoke) =="
  python -m pytest tests/service/test_fleet_faults.py \
    tests/property/test_property_fleet.py -q
  PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.service.demo --fleet-smoke
  echo
  echo "== spill-over routing bench (skewed hot tenant, >= 1.3x gate) =="
  python -m pytest benchmarks/bench_service_throughput.py -k spillover \
    -q -s --benchmark-disable
}

# --docs / --obs / --fleet alone are fast paths; combined with other
# flags every requested stage still runs (the default pipeline includes
# all three).
if [ "$DOCS_ONLY" = 1 ] && [ "$OBS_ONLY$FLEET_ONLY$RUN_SLOW$RUN_BENCH$RUN_TRANSPORT$RUN_COV" = "000000" ]; then
  run_docs
  echo
  echo "docs stage passed"
  exit 0
fi
if [ "$OBS_ONLY" = 1 ] && [ "$DOCS_ONLY$FLEET_ONLY$RUN_SLOW$RUN_BENCH$RUN_TRANSPORT$RUN_COV" = "000000" ]; then
  run_obs
  echo
  echo "observability stage passed"
  exit 0
fi
if [ "$FLEET_ONLY" = 1 ] && [ "$DOCS_ONLY$OBS_ONLY$RUN_SLOW$RUN_BENCH$RUN_TRANSPORT$RUN_COV" = "000000" ]; then
  run_fleet
  echo
  echo "fleet stage passed"
  exit 0
fi

echo "== tier-1 test suite =="
# Includes the transport concurrency battery (tests/service/test_transport.py),
# the frame-fuzz suite (tests/property/test_property_transport.py), the
# circuit wire-format fuzz suite (tests/property/test_property_circuit_wire.py),
# and the app-circuit serving suites (tests/service/test_circuit_*.py).
python -m pytest -x -q

echo
echo "== serving-layer benchmark (smoke) =="
python -m pytest benchmarks/bench_service_throughput.py -q -s --benchmark-disable

run_docs

run_obs

run_fleet

echo
echo "== examples smoke (3 tenants over the wire transport) =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python examples/encrypted_service_demo.py

if [ "$RUN_TRANSPORT" = 1 ]; then
  echo
  echo "== wire-transport smoke (localhost EvalMult + circuit round-trips) =="
  PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.service.demo --smoke
fi

if [ "$RUN_BENCH" = 1 ]; then
  echo
  echo "== kernel + serving micro-benchmarks (BENCH_kernels.json) =="
  PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python tools/bench_kernels.py
  echo
  echo "== phase profiler (BENCH_serve_phases.json + relin-tail gate) =="
  PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python tools/profile_serve.py
fi

if [ "$RUN_COV" = 1 ]; then
  run_cov
fi

if [ "$RUN_SLOW" = 1 ]; then
  echo
  echo "== paper-scale pool scaling (n = 2^12, --slow) =="
  python -m pytest tests/service/test_pool_scaling_paper.py --slow -q -s
  echo
  echo "== paper-scale serving benchmark (n = 2^13, --slow) =="
  python -m pytest benchmarks/bench_service_throughput.py --slow -q -s \
    --benchmark-disable
fi

echo
echo "all checks passed"
