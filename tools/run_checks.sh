#!/usr/bin/env bash
# Repo health check: tier-1 tests + the serving-layer benchmark in smoke
# mode (one pass, no timing statistics). Run from anywhere.
#
#   tools/run_checks.sh              # tier-1 + benchmark smoke
#   tools/run_checks.sh --bench      # also the kernel + serving micro-bench
#                                    # (writes BENCH_kernels.json and enforces
#                                    # the >= 10x EvalMult perf gate)
#   tools/run_checks.sh --transport  # also the wire-transport smoke stage
#                                    # (localhost listener, one EvalMult
#                                    # round-trip, assert bit-identical)
#   tools/run_checks.sh --slow       # also the paper-scale suites
#                                    # (n = 2^12 pool scaling, n = 2^13 serving)
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_SLOW=0
RUN_BENCH=0
RUN_TRANSPORT=0
for arg in "$@"; do
  case "$arg" in
    --slow) RUN_SLOW=1 ;;
    --bench) RUN_BENCH=1 ;;
    --transport) RUN_TRANSPORT=1 ;;
    *) echo "unknown option: $arg (supported: --slow, --bench, --transport)" >&2; exit 2 ;;
  esac
done

echo "== tier-1 test suite =="
# Includes the transport concurrency battery (tests/service/test_transport.py)
# and the frame-fuzz suite (tests/property/test_property_transport.py).
python -m pytest -x -q

echo
echo "== serving-layer benchmark (smoke) =="
python -m pytest benchmarks/bench_service_throughput.py -q -s --benchmark-disable

if [ "$RUN_TRANSPORT" = 1 ]; then
  echo
  echo "== wire-transport smoke (localhost EvalMult round-trip) =="
  PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.service.demo --smoke
fi

if [ "$RUN_BENCH" = 1 ]; then
  echo
  echo "== kernel + serving micro-benchmarks (BENCH_kernels.json) =="
  PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python tools/bench_kernels.py
fi

if [ "$RUN_SLOW" = 1 ]; then
  echo
  echo "== paper-scale pool scaling (n = 2^12, --slow) =="
  python -m pytest tests/service/test_pool_scaling_paper.py --slow -q -s
  echo
  echo "== paper-scale serving benchmark (n = 2^13, --slow) =="
  python -m pytest benchmarks/bench_service_throughput.py --slow -q -s \
    --benchmark-disable
fi

echo
echo "all checks passed"
