#!/usr/bin/env bash
# Repo health check: tier-1 tests + the serving-layer benchmark in smoke
# mode (one pass, no timing statistics). Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== serving-layer benchmark (smoke) =="
python -m pytest benchmarks/bench_service_throughput.py -q -s --benchmark-disable

echo
echo "all checks passed"
