#!/usr/bin/env python
"""Docs health check: doctest every code block, resolve every link.

Two gates over the ``docs/`` tree (plus README.md for links):

1. ``python -m doctest`` semantics over each page — every ``>>>``
   example inside the markdown executes and its output must match, so
   the docs can never drift from the API they describe.
2. Intra-repo links resolve: every relative ``[text](target)`` must
   point at a file that exists (anchors are stripped; external
   ``http(s)://`` links are skipped).

Run directly or via ``tools/run_checks.sh --docs`` (also part of the
default check set).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Markdown link: [text](target) — excluding images handled identically.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doctest_file(path: Path) -> tuple[int, int]:
    """Run the file's doctests; returns (failures, attempts)."""
    result = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    return result.failed, result.attempted


def check_links(path: Path) -> tuple[int, list[str]]:
    """Check one markdown file's links; returns (checked, broken)."""
    targets = _LINK.findall(path.read_text(encoding="utf-8"))
    broken = []
    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:  # pure in-page anchor
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(f"{path.relative_to(REPO)}: broken link -> {target}")
    return len(targets), broken


def main() -> int:
    docs = sorted((REPO / "docs").glob("*.md"))
    if not docs:
        print("check_docs: no docs/*.md found", file=sys.stderr)
        return 1
    failures = 0
    attempts = 0
    for page in docs:
        failed, attempted = doctest_file(page)
        status = "ok" if failed == 0 else f"{failed} FAILED"
        print(f"  doctest {page.relative_to(REPO)}: "
              f"{attempted} example(s), {status}")
        failures += failed
        attempts += attempted
    link_count = 0
    broken: list[str] = []
    for page in docs + [REPO / "README.md"]:
        checked, bad = check_links(page)
        link_count += checked
        broken.extend(bad)
    for line in broken:
        print(f"  {line}", file=sys.stderr)
    print(f"  links: {link_count} checked, {len(broken)} broken")
    if failures or broken:
        return 1
    if attempts == 0:
        print("check_docs: docs contain no runnable examples", file=sys.stderr)
        return 1
    print("docs check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
