#!/usr/bin/env python
"""Serving-path phase profiler -> BENCH_serve_phases.json.

Drives a mixed raw-op/app-circuit workload through an **in-process**
:class:`~repro.service.server.FheServer` once per backend and prints the
span-tracing phase-attribution table that
:func:`~repro.service.telemetry.aggregate_phases` folds out of the jobs'
:class:`~repro.service.telemetry.JobTrace` records: wall seconds and
percent of end-to-end job latency per phase, with a ``(total)`` coverage
row saying how much of the measured latency the spans explain.

This is the tool the tracing subsystem exists for: BENCH_kernels.json
says the kernels got 16-27x faster while ``serve_job`` improved ~2-2.6x,
and this table shows where the remaining serving time actually goes
(queue wait? batch planning? the gather barrier? serialization?) per
backend, so the next perf PR can aim at the biggest bar instead of
guessing.

The script **fails** (exit 1) if coverage — the ``(total)`` row's
percent — drops below ``GATE_COVERAGE_PERCENT`` for any profiled
backend: an instrumentation gap (a phase nobody spans anymore) should
break the build, not silently shrink the table.

It also gates the chip-pool **relinearization share**: the combined
``relin_tail`` + ``keyswitch`` percent of job latency must stay at or
below the share recorded in the previous ``BENCH_serve_phases.json``
(read *before* this run overwrites it), plus a small noise slack. The
batched key-switch fold collapsed that share to well under a percent;
this gate keeps a future change from quietly re-growing the tail the
vectorization work paid down.

Run via ``tools/run_checks.sh --obs`` (smoke scale) or directly with
``PYTHONPATH=src python tools/profile_serve.py``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bfv import BatchEncoder, Bfv, BfvParameters  # noqa: E402
from repro.service.circuits import CircuitBuilder  # noqa: E402
from repro.service.jobs import JobKind, JobStatus  # noqa: E402
from repro.service.serialization import (  # noqa: E402
    serialize_ciphertext,
    serialize_circuit,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer  # noqa: E402

#: Acceptance gate: the recorded phases must explain at least this much
#: of the summed end-to-end job latency, per backend.
GATE_COVERAGE_PERCENT = 90.0

#: Relin-share regression slack, in absolute percentage points: the new
#: chip-pool ``relin_tail + keyswitch`` share may exceed the baseline
#: file's share by at most this much (the share itself is tiny, so a
#: fixed absolute slack absorbs timer noise without hiding a real
#: regression back toward per-digit Python folds).
GATE_RELIN_SHARE_SLACK_POINTS = 1.0

BACKENDS = ("software", "chip_pool")

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve_phases.json"


def _mix_circuit():
    """Depth-1 two-input circuit: ``out = square_relin(x) + y``."""
    b = CircuitBuilder("profile-mix")
    x = b.input("x")
    y = b.input("y")
    b.output("out", b.add(b.square_relin(x), y))
    return b.build()


def _make_workload(params, keys, *, mults, adds, circuits, seed=29):
    """A submit-ready mixed job list: ``(kind, operands, payload)``."""
    bfv = Bfv(params, seed=99)
    encoder = BatchEncoder(params)
    rng = random.Random(seed)

    def fresh_ct():
        return serialize_ciphertext(bfv.encrypt(
            encoder.encode([rng.randrange(16) for _ in range(params.n)]),
            keys.public,
        ))

    circuit_wire = serialize_circuit(_mix_circuit())
    jobs = []
    for _ in range(mults):
        jobs.append((JobKind.MULTIPLY, (fresh_ct(), fresh_ct()), None))
    for _ in range(adds):
        jobs.append((JobKind.ADD, (fresh_ct(), fresh_ct()), None))
    for _ in range(circuits):
        jobs.append((JobKind.CIRCUIT, (fresh_ct(), fresh_ct()), circuit_wire))
    rng.shuffle(jobs)
    return jobs


def profile_backend(backend, params, keys, jobs, *, pool_size, max_batch):
    """Run the workload on one backend; return (rows, wall_seconds)."""
    server = FheServer(
        pool_size=pool_size, max_batch=max_batch, result_cache_size=0
    )
    sid = server.open_session(
        "profiler", serialize_params(params),
        relin_key=serialize_relin_key(keys.relin, params),
    )
    t0 = time.perf_counter()
    job_ids = [
        server.submit(sid, kind, operands, payload=payload, backend=backend)
        for kind, operands, payload in jobs
    ]
    server.run()
    wall = time.perf_counter() - t0
    for job_id in job_ids:
        status = server.poll(job_id)
        if status is not JobStatus.DONE:
            raise SystemExit(
                f"profiler job {job_id} on {backend} ended {status}"
            )
        server.result(job_id)  # records the serialize span
    return server.phase_report(backend=backend), wall


def _relin_share(rows, backend="chip_pool") -> float:
    """Combined relin_tail + keyswitch percent of job latency.

    ``rows`` may be per-backend rows (no ``backend`` key) or the flat
    JSON rows the previous run wrote; phases that never ran count as 0.
    """
    return sum(
        r["percent"]
        for r in rows
        if r.get("backend", backend) == backend
        and r.get("phase") in ("relin_tail", "keyswitch")
    )


def print_table(backend, rows, wall):
    print(f"\n{backend} backend — phase attribution "
          f"({rows[-1]['spans']} spans, {wall * 1e3:.1f} ms end to end)")
    print(f"  {'phase':<16} {'ms':>10} {'% of job wall':>14} {'spans':>7}")
    for r in rows:
        marker = "=" * max(1, round(r["percent"] / 2.5))
        if r["phase"] == "(total)":
            print(f"  {'-' * 51}")
            marker = ""
        print(
            f"  {r['phase']:<16} {r['seconds'] * 1e3:>10.3f} "
            f"{r['percent']:>13.1f}% {r['spans']:>7}  {marker}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="profile_serve",
        description="phase-attribute the FHE serving path per backend",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI: still gates coverage, skips the JSON",
    )
    parser.add_argument("--pool", type=int, default=4, metavar="W",
                        help="chip pool size (default 4)")
    parser.add_argument("--max-batch", type=int, default=4, metavar="N",
                        help="scheduler batch size (default 4)")
    args = parser.parse_args(argv)

    if args.smoke:
        n, mults, adds, circuits = 64, 2, 2, 1
    else:
        n, mults, adds, circuits = 256, 4, 4, 2
    params = BfvParameters.toy_rns(n=n, towers=3, tower_bits=24)
    keys = Bfv(params, seed=99).keygen(relin_digit_bits=20)
    jobs = _make_workload(params, keys, mults=mults, adds=adds,
                          circuits=circuits)

    # Read the previous run's relin share BEFORE overwriting the file:
    # it is the regression baseline for this run.
    baseline_share = None
    if not args.smoke and OUT_PATH.exists():
        try:
            baseline_share = _relin_share(json.loads(OUT_PATH.read_text()))
        except (json.JSONDecodeError, OSError, KeyError, TypeError):
            baseline_share = None

    all_rows = []
    failures = []
    for backend in BACKENDS:
        rows, wall = profile_backend(
            backend, params, keys, jobs,
            pool_size=args.pool, max_batch=args.max_batch,
        )
        print_table(backend, rows, wall)
        coverage = rows[-1]["percent"]
        if coverage < GATE_COVERAGE_PERCENT:
            failures.append((backend, coverage))
        all_rows.extend({"backend": backend, **r} for r in rows)

    relin_failed = False
    if not args.smoke:
        share = _relin_share(all_rows)
        OUT_PATH.write_text(json.dumps(all_rows, indent=2) + "\n")
        print(f"\nwrote {OUT_PATH}")
        if baseline_share is not None:
            ceiling = baseline_share + GATE_RELIN_SHARE_SLACK_POINTS
            if share > ceiling:
                print(
                    f"RELIN SHARE GATE FAILED: chip_pool relin_tail + "
                    f"keyswitch now {share:.2f}% of job latency > baseline "
                    f"{baseline_share:.2f}% + {GATE_RELIN_SHARE_SLACK_POINTS}"
                    " points slack",
                    file=sys.stderr,
                )
                relin_failed = True
            else:
                print(
                    f"relin share gate ok: chip_pool relin_tail + keyswitch "
                    f"{share:.2f}% <= baseline {baseline_share:.2f}% "
                    f"+ {GATE_RELIN_SHARE_SLACK_POINTS} points"
                )
    for backend, coverage in failures:
        print(
            f"COVERAGE GATE FAILED: {backend} phases explain "
            f"{coverage:.1f}% < {GATE_COVERAGE_PERCENT}% of job latency",
            file=sys.stderr,
        )
    if failures or relin_failed:
        return 1
    print(
        f"coverage gate ok: all backends >= {GATE_COVERAGE_PERCENT}% "
        "of end-to-end job latency attributed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
