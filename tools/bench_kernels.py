#!/usr/bin/env python
"""Kernel + serving micro-benchmarks -> BENCH_kernels.json (perf gate).

Measures the batched RNS tower engine against the exact pure-Python path
on the kernels that dominate the software serving path — forward/inverse
negacyclic NTT over a full tower stack and the 3-tower Eq. 4 EvalMult
tensor at the paper's n = 2^12 — plus an end-to-end chip-pool serving
micro-benchmark run twice (engine auto-selected vs ``REPRO_ENGINE=off``).

Every row is machine-readable so the perf trajectory is diffable from PR
to PR:

    {"op", "n", "towers", "engine", "ns_per_op", "speedup_vs_pure_python"}

The script **fails** (exit 1) if the 3-tower n = 2^12 EvalMult speedup
drops below ``GATE_EVALMULT_SPEEDUP`` — the acceptance gate that keeps
the hot path from quietly regressing to per-butterfly Python — or if an
end-to-end serving row falls under its floor
(``GATE_SERVE_SOFTWARE_SPEEDUP`` / ``GATE_SERVE_CHIP_POOL_SPEEDUP``),
the gates that keep serving-layer overhead (scheduling, telemetry,
serialization) from eating the kernel wins.

Run via ``tools/run_checks.sh --bench`` (or directly with
``PYTHONPATH=src python tools/bench_kernels.py``).
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.baselines.software import SoftwareBfv  # noqa: E402
from repro.bfv import BatchEncoder, Bfv, BfvParameters  # noqa: E402
from repro.polymath.engine import BatchedRnsEngine  # noqa: E402
from repro.polymath.ntt import NttContext  # noqa: E402
from repro.polymath.rns import RnsBasis, plan_towers  # noqa: E402
from repro.service.jobs import JobKind  # noqa: E402
from repro.service.serialization import (  # noqa: E402
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer  # noqa: E402

#: Acceptance gate: engine vs pure-Python on the 3-tower n=2^12 EvalMult.
GATE_EVALMULT_SPEEDUP = 10.0

#: Acceptance gates on the end-to-end serving rows: with the engine on,
#: each serving row must beat the ``REPRO_ENGINE=off`` path by its
#: factor. The software row is pure host arithmetic, so batched tensors,
#: the shared key-switch fold, and warm key-row NTT forms carry almost
#: the whole job; the chip-pool gate is lower because the
#: cycle-accounted chip simulation runs identically either way (the
#: residual Amdahl gap ``tools/profile_serve.py`` itemizes).
GATE_SERVE_SOFTWARE_SPEEDUP = 8.0
GATE_SERVE_CHIP_POOL_SPEEDUP = 4.0

#: Kernel benchmark scale (the paper's small configuration).
KERNEL_N = 2**12
KERNEL_TOWERS = 3
KERNEL_TOWER_BITS = 30

#: Serving micro-benchmark scale (chip-native multi-tower toy set).
SERVE_N = 256
SERVE_TOWERS = 3
SERVE_MULTS = 2
SERVE_ADDS = 2

#: Software-backend serving benchmark scale (host arithmetic only).
SERVE_SW_N = 512

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _best(fn, repeats: int) -> float:
    """Best-of-N wall seconds for one call (first call warms caches)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _row(op, n, towers, engine, seconds, baseline_seconds=None) -> dict:
    return {
        "op": op,
        "n": n,
        "towers": towers,
        "engine": engine,
        "ns_per_op": round(seconds * 1e9, 1),
        "speedup_vs_pure_python": (
            round(baseline_seconds / seconds, 2)
            if baseline_seconds is not None else 1.0
        ),
    }


def bench_kernels() -> list[dict]:
    """NTT + EvalMult kernels: one 'op' = one full tower-stack operation."""
    n, towers = KERNEL_N, KERNEL_TOWERS
    basis = RnsBasis(plan_towers(KERNEL_TOWER_BITS * towers, KERNEL_TOWER_BITS, n))
    engine = BatchedRnsEngine(basis, n)
    refs = [NttContext(n, q) for q in basis.moduli]
    rng = random.Random(17)
    stack_list = [[rng.randrange(q) for _ in range(n)] for q in basis.moduli]
    stack = engine.stack(stack_list)
    fwd = engine.forward(stack)
    fwd_list = fwd.tolist()

    rows = []
    for op, pure_fn, fast_fn in (
        (
            "ntt_forward",
            lambda: [ref.forward(t) for ref, t in zip(refs, stack_list)],
            lambda: engine.forward(stack),
        ),
        (
            "ntt_inverse",
            lambda: [ref.inverse(t) for ref, t in zip(refs, fwd_list)],
            lambda: engine.inverse(fwd),
        ),
    ):
        pure_s = _best(pure_fn, repeats=2)
        fast_s = _best(fast_fn, repeats=5)
        rows.append(_row(op, n, towers, "pure-python", pure_s))
        rows.append(_row(op, n, towers, "batched-rns", fast_s, pure_s))

    # The acceptance-gated row: the full software-path EvalMult tensor.
    Q = basis.modulus
    ca = tuple([rng.randrange(Q) for _ in range(n)] for _ in range(2))
    cb = tuple([rng.randrange(Q) for _ in range(n)] for _ in range(2))
    pure_sw = SoftwareBfv(basis, n, engine="pure")
    fast_sw = SoftwareBfv(basis, n, engine="batched")
    reference = pure_sw.ciphertext_multiply(ca, cb)
    if fast_sw.ciphertext_multiply(ca, cb) != reference:
        raise SystemExit("engine EvalMult diverged from pure-Python — abort")
    pure_s = _best(lambda: pure_sw.ciphertext_multiply(ca, cb), repeats=2)
    fast_s = _best(lambda: fast_sw.ciphertext_multiply(ca, cb), repeats=5)
    rows.append(_row("evalmult_tensor", n, towers, "pure-python", pure_s))
    rows.append(_row("evalmult_tensor", n, towers, "batched-rns", fast_s, pure_s))
    return rows


def _make_traffic(params, keys, n_mults, n_adds, seed=23):
    bfv = Bfv(params, seed=99)
    encoder = BatchEncoder(params)
    rng = random.Random(seed)
    jobs = []
    for kind, count in ((JobKind.MULTIPLY, n_mults), (JobKind.ADD, n_adds)):
        for _ in range(count):
            a = bfv.encrypt(
                encoder.encode([rng.randrange(16) for _ in range(params.n)]),
                keys.public,
            )
            b = bfv.encrypt(
                encoder.encode([rng.randrange(16) for _ in range(params.n)]),
                keys.public,
            )
            jobs.append(
                (kind, (serialize_ciphertext(a), serialize_ciphertext(b)))
            )
    return jobs


def _serve_once(params, keys, jobs, backend) -> float:
    """Wall seconds to drain a mixed workload through one backend."""
    server = FheServer(pool_size=2, max_batch=4, result_cache_size=0)
    sid = server.open_session(
        "bench", serialize_params(params),
        relin_key=serialize_relin_key(keys.relin, params),
    )
    for kind, operands in jobs:
        server.submit(sid, kind, operands, backend=backend)
    t0 = time.perf_counter()
    server.run()
    return time.perf_counter() - t0


def bench_serving() -> list[dict]:
    """End-to-end serving, engine-backed vs ``REPRO_ENGINE=off``.

    Two views: the ``software`` backend is pure host arithmetic (the
    engine *is* the serving path there); the ``chip_pool`` backend runs
    the same cycle-accounted chip simulation either way, so its delta
    isolates what the vectorized host tensor + mod-q cross-check save on
    top of an unchanged chip model.
    """
    rows = []
    for op, n, backend, mults, adds in (
        ("serve_job_software", SERVE_SW_N, "software", 2, 2),
        ("serve_job_chip_pool", SERVE_N, "chip_pool", SERVE_MULTS, SERVE_ADDS),
    ):
        params = BfvParameters.toy_rns(n=n, towers=SERVE_TOWERS,
                                       tower_bits=24)
        keys = Bfv(params, seed=99).keygen(relin_digit_bits=20)
        jobs = _make_traffic(params, keys, mults, adds)
        n_jobs = len(jobs)
        fast_s = min(
            _serve_once(params, keys, jobs, backend) for _ in range(2)
        ) / n_jobs
        os.environ["REPRO_ENGINE"] = "off"
        try:
            pure_s = _serve_once(params, keys, jobs, backend) / n_jobs
        finally:
            os.environ.pop("REPRO_ENGINE", None)
        rows.append(_row(op, n, SERVE_TOWERS, "pure-python", pure_s))
        rows.append(_row(op, n, SERVE_TOWERS, "batched-rns", fast_s, pure_s))
    return rows


def _foreign_rows(rows: list[dict], path: Path) -> list[dict]:
    """Rows in ``path`` that other benchmarks own, to carry forward.

    The fleet paper-scale rows from
    ``benchmarks/bench_service_throughput.py`` land in the same file.
    Identity is the full ``(op, n, towers, engine)`` tuple — an op alone
    is not unique (the fleet bench writes two rows per op, and a re-run
    at a different configuration must only replace its own row).
    """
    owned = {(r["op"], r["n"], r["towers"], r["engine"]) for r in rows}
    if not path.exists():
        return []
    try:
        return [
            r for r in json.loads(path.read_text())
            if (r.get("op"), r.get("n"), r.get("towers"), r.get("engine"))
            not in owned
        ]
    except (json.JSONDecodeError, OSError):
        return []


def main() -> int:
    rows = bench_kernels() + bench_serving()
    OUT_PATH.write_text(
        json.dumps(rows + _foreign_rows(rows, OUT_PATH), indent=2) + "\n"
    )
    width = max(len(r["op"]) for r in rows) + 2
    for r in rows:
        print(
            f"{r['op']:<{width}} n={r['n']:<6} towers={r['towers']} "
            f"{r['engine']:<13} {r['ns_per_op'] / 1e6:10.3f} ms/op  "
            f"x{r['speedup_vs_pure_python']}"
        )
    print(f"\nwrote {OUT_PATH}")
    gates = {
        "evalmult_tensor": GATE_EVALMULT_SPEEDUP,
        "serve_job_software": GATE_SERVE_SOFTWARE_SPEEDUP,
        "serve_job_chip_pool": GATE_SERVE_CHIP_POOL_SPEEDUP,
    }
    failed = False
    for r in rows:
        if r["engine"] != "batched-rns" or r["op"] not in gates:
            continue
        speedup, floor = r["speedup_vs_pure_python"], gates[r["op"]]
        if speedup < floor:
            print(
                f"PERF GATE FAILED: {r['op']} speedup {speedup}x < "
                f"{floor}x (engine vs pure-python)",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"perf gate ok: {r['op']} {speedup}x >= {floor}x")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
