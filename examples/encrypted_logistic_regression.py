"""Encrypted logistic-regression inference (the paper's second application).

Runs the miniature-but-real encrypted pipeline: features are SIMD-packed
across a batch of samples, the linear score w.x + b accumulates under
encryption, a sign-preserving cubic exercises the ct*ct + relinearization
path, and predictions are verified against the plaintext model. The
Table X cost model then prices the full-size workload on both platforms.

Run:  python examples/encrypted_logistic_regression.py
"""

import random

from repro.apps import LOGREG_WORKLOAD, CofheeAppCost, CpuAppCost
from repro.apps.logreg import MiniLogisticRegression
from repro.bfv.params import BfvParameters


def main() -> None:
    model = MiniLogisticRegression(num_features=8, seed=3)
    rng = random.Random(77)
    samples = [[rng.randint(-3, 3) for _ in range(8)] for _ in range(12)]

    print(f"weights: {model.weights}, bias: {model.bias}")
    print(f"batch of {len(samples)} samples, "
          f"{model.batch_size} SIMD slots available")

    encrypted = model.predict(samples)
    plaintext = model.predict_plain(samples)
    agreement = sum(e == p for e, p in zip(encrypted, plaintext))
    print(f"encrypted predictions : {encrypted}")
    print(f"plaintext predictions : {plaintext}")
    print(f"agreement             : {agreement}/{len(samples)} ✓")
    print(f"homomorphic ops used  : {model.op_log}")
    assert encrypted == plaintext

    print("\nTable X workload model — logistic regression at full scale:")
    params = BfvParameters.from_paper(n=2**12, log_q=109)
    cofhee = CofheeAppCost(params).workload_seconds(LOGREG_WORKLOAD)
    cpu = CpuAppCost().workload_seconds(LOGREG_WORKLOAD)
    print(f"  op mix: {LOGREG_WORKLOAD.ct_ct_adds:,} ct+ct, "
          f"{LOGREG_WORKLOAD.ct_pt_mults:,} ct*pt, "
          f"{LOGREG_WORKLOAD.ct_ct_mults:,} ct*ct+relin")
    print(f"  CPU   : {cpu['total_s']:7.1f} s  (paper: 550.25 s)")
    print(f"  CoFHEE: {cofhee['total_s']:7.1f} s  (paper: 377.6 s)")
    print(f"  speedup: {cpu['total_s'] / cofhee['total_s']:.2f}x "
          f"(paper: 1.46x)")


if __name__ == "__main__":
    main()
