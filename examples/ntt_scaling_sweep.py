"""NTT cost across polynomial degrees: II transitions and host IO walls.

Sweeps n from 2^10 to 2^16 and shows the three operating regimes of
Section III-C: fully on-chip at II = 1 (n <= 2^13), single-port II = 2
(n = 2^14), and host-assisted four-step decomposition where the 50 MHz SPI
dominates (n >= 2^15). Also prints the Section VIII-A scaling options.

Run:  python examples/ntt_scaling_sweep.py
"""

from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.core.scaling import MemoryScaling, RadixConfig, SplitParallelConfig
from repro.core.timing import TimingModel


def main() -> None:
    tm = TimingModel()
    driver = CofheeDriver(CoFHEE(ChipConfig(fidelity="timing")))

    print("NTT cost vs polynomial degree (fabricated chip):")
    print(f"{'n':>8} {'II':>3} {'cycles':>12} {'compute':>12} {'host IO':>12}")
    for log_n in range(10, 17):
        n = 1 << log_n
        ii = tm.butterfly_initiation_interval(n)
        if n <= 2 * tm.dual_port_words:
            cycles = tm.ntt_cycles(n)
            compute_us = tm.cycles_to_us(cycles)
            io_ms = 0.0
        else:
            report = driver.large_ntt_report(n)
            cycles = report.cycles
            compute_us = report.latency_us
            io_ms = report.io_seconds * 1e3
        io_str = f"{io_ms:9.2f} ms" if io_ms else "   on-chip"
        print(f"2^{log_n:>6} {ii:>3} {cycles:>12,} {compute_us:>9.1f} us "
              f"{io_str:>12}")

    print("\nScaling options (Section VIII-A / VI-B), NTT at n = 2^13:")
    base = tm.ntt_cycles(2**13)
    radix4 = RadixConfig(radix=4)
    split2 = SplitParallelConfig(pools=2)
    mem = MemoryScaling()
    print(f"  fabricated (radix-2, 1 PE) : {base:>8,} cycles")
    print(f"  radix-4 (4 PEs, +1.9 mm^2) : {radix4.ntt_cycles(2**13):>8,} "
          f"cycles ({base / radix4.ntt_cycles(2**13):.2f}x)")
    print(f"  2 multiplier pools (+2 DP banks): {split2.ntt_cycles(2**13):>8,} "
          f"cycles ({split2.throughput_gain(2**13):.2f}x)")
    print(f"  n = 2^14 natively: memory {mem.memory_area_mm2(2**14):.1f} mm^2, "
          f"clock {mem.clock_mhz(2**14):.0f} MHz")


if __name__ == "__main__":
    main()
