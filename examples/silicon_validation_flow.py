"""The chip's verification lifecycle, end to end (Sections III-J / V-F).

1. pre-silicon: generate test vectors (the paper's Python script) and
   replay them against the bit-exact datapath like the Verilog testbench;
2. FPGA prototyping: the scaled-down Nexys 4 build (n = 2^12, 10 MHz);
3. post-silicon: the bring-up ladder over UART — supplies, chip ID,
   register walk, DMA loopback, compute smoke tests.

Run:  python examples/silicon_validation_flow.py
"""

from repro.verification import (
    FpgaBuild,
    GoldenHarness,
    PostSiliconValidator,
    TestVectorGenerator,
)
from repro.verification.fpga import NEXYS4


def main() -> None:
    print("== 1. pre-silicon simulation (Section III-J) ==")
    gen = TestVectorGenerator(n=64, coeff_bits=60)
    print(f"derived q = 2kn + 1 = {gen.q} ({gen.q.bit_length()} bits)")
    suite = gen.regression_suite() + gen.directed_corner_vectors()
    results = GoldenHarness().run_suite(suite)
    for r in results:
        print(f"  {r}")
    summary = GoldenHarness.summarize(results)
    print(f"regression: {summary['passed']}/{summary['total']} passed")
    hex_lines = gen.to_testbench_hex(suite[0])
    print(f"(testbench export: {len(hex_lines)} hex lines per vector, "
          f"e.g. {hex_lines[3][:16]}...)")

    print("\n== 2. FPGA prototyping (Digilent Nexys 4) ==")
    build = FpgaBuild(NEXYS4, clock_mhz=10.0)
    print(f"device: {NEXYS4.name}, {NEXYS4.bram_kbits} Kb BRAM")
    for n in (2**12, 2**13):
        print(f"  n = 2^{n.bit_length() - 1}: needs "
              f"{build.total_kbits(n):,.0f} Kb -> "
              f"{'fits' if build.fits(n) else 'does NOT fit'}")
    print(f"max degree {build.max_degree()} at {build.clock_mhz} MHz "
          f"({build.slowdown_vs_silicon():.0f}x slower than silicon)")

    print("\n== 3. post-silicon bring-up (Section V-F) ==")
    report = PostSiliconValidator().run(smoke_degree=256)
    print(report)
    print(f"UART time: {report.uart_seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
