"""ADPLL lock-acquisition demo (Section V-E).

Simulates the dual-loop all-digital PLL acquiring the chip's 250 MHz
operating point: the SAR frequency-locking loop bisects the DCO control
word (one trial per bit), then the bang-bang phase detector dithers the
fine word until the lock detector fires. Prints the frequency trajectory.

Run:  python examples/adpll_lock_demo.py
"""

from repro.core.adpll import Adpll
from repro.eval.adpll_eval import adpll_summary


def main() -> None:
    pll = Adpll()
    summary = adpll_summary()
    lo, hi = summary["tuning_range_mhz"]
    print(f"ADPLL: {summary['architecture']}")
    print(f"implementation: {summary['area_mm2']} mm^2, "
          f"{summary['power_uw']} uW @ {summary['supply_v']} V (GF 55nm)")
    print(f"tuning range: {lo} - {hi} MHz\n")

    target = 250e6
    result = pll.lock(target)
    print(f"locking to {target / 1e6:.0f} MHz:")
    for i, f in enumerate(result.history):
        stage = "FLL/SAR" if i < result.fll_steps else "PLL/BB "
        marker = " <- lock" if i == len(result.history) - 1 and result.locked else ""
        print(f"  step {i:>2} [{stage}] {f / 1e6:8.3f} MHz{marker}")
    print(f"\nlocked: {result.locked}")
    print(f"final frequency : {result.final_frequency_hz / 1e6:.4f} MHz "
          f"({result.frequency_error_ppm:+.0f} ppm)")
    print(f"lock time       : {pll.lock_time_seconds(result) * 1e6:.2f} us "
          f"({result.fll_steps} SAR + {result.pll_steps} bang-bang steps)")


if __name__ == "__main__":
    main()
