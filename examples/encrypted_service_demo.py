"""Multi-tenant FHE serving demo (see :mod:`repro.service.demo`).

Three tenants (raw EvalMult traffic, encrypted logistic regression, and
CryptoNets inference) share one server; the same 21-job workload is served
by the chip-pool, software-baseline, and fast-numpy backends; results are
decrypted client-side and checked against Bfv ground truth; and a chip
pool of 4 is compared against a pool of 1 on identical traffic.

Run:  python examples/encrypted_service_demo.py
      (or ``repro-serve`` after ``pip install -e .``)
"""

from repro.service.demo import main

if __name__ == "__main__":
    raise SystemExit(main())
