"""Multi-tenant FHE serving demo — everything over the wire transport.

Three tenants drive one chip-pool server through a real localhost TCP
socket using the :class:`~repro.service.client.FheClient` transport path
(PR 4) — no in-process polling anywhere:

* **initech** sends raw encrypted traffic (EvalMult, additions, slot
  rotations) as wire bytes with pushed completion callbacks;
* **acme** submits compiled :class:`MiniLogisticRegression` circuits via
  ``submit_circuit`` — the whole multiply-accumulate + cubic-sigmoid
  program travels as one SUBMIT_CIRCUIT frame;
* **globex** submits compiled :class:`MiniCryptoNets` inference circuits
  (conv → square → dense → square → dense, 138 steps).

Every raw result is decrypted client-side and checked against locally
computed :class:`~repro.bfv.Bfv` ground truth; every served circuit is
checked bit-identical against the shared in-process evaluator and its
decrypted predictions against the app's plaintext reference. The pool
report shows the tower-sharded chip execution and the dedupe counters
(acme submits one batch twice), and the closing observability section
prints a live metrics snapshot (per-tenant submits, submit p95, frame
counters — the same numbers the wire ``STATS`` message carries) plus
the chip pool's span-tracing phase-attribution table with its >= 90%
coverage gate (see docs/observability.md).

Run:  python examples/encrypted_service_demo.py
      (the in-process three-backend comparison demo remains available as
      ``repro-serve``; ``repro-serve --listen PORT`` starts this same
      transport stack as a standalone server — see docs/serving-guide.md)
"""

import random

from repro.apps.cryptonets import MiniCryptoNets
from repro.apps.logreg import MiniLogisticRegression
from repro.bfv import BatchEncoder, Bfv, BfvParameters, RotationEngine
from repro.polymath.primes import ntt_friendly_prime
from repro.service.circuits import evaluate_circuit
from repro.service.client import FheClient
from repro.service.jobs import JobKind
from repro.service.serialization import (
    deserialize_ciphertext,
    deserialize_circuit_outputs,
    serialize_ciphertext,
    serialize_galois_key,
    serialize_params,
    serialize_relin_key,
)
from repro.service.transport import ThreadedTransportServer


def raw_tenant(client: FheClient) -> None:
    """initech: raw ops over the socket, verified against local Bfv."""
    params = BfvParameters.toy_rns(n=16, towers=3, tower_bits=20)
    bfv = Bfv(params, seed=2026)
    keys = bfv.keygen(relin_digit_bits=12)
    encoder = BatchEncoder(params)
    rotor = RotationEngine(bfv, keys.secret, digit_bits=12)
    rng = random.Random(7)
    slots = lambda: [rng.randrange(32) for _ in range(params.n)]  # noqa: E731

    sid = client.open_session(
        "initech", serialize_params(params),
        relin_key=serialize_relin_key(keys.relin, params),
        galois_keys=(
            serialize_galois_key(
                rotor.galois_key(pow(3, 1, 2 * params.n)), params
            ),
        ),
    )
    checks = []  # (job_id, expected ciphertext)
    events = []
    for _ in range(3):
        a, b = (bfv.encrypt(encoder.encode(slots()), keys.public)
                for _ in range(2))
        jid = client.submit(
            sid, JobKind.MULTIPLY,
            (serialize_ciphertext(a), serialize_ciphertext(b)),
            on_done=lambda e: events.append(e.status),
        )
        checks.append((jid, bfv.multiply_relin(a, b, keys.relin)))
    for _ in range(2):
        a, b = (bfv.encrypt(encoder.encode(slots()), keys.public)
                for _ in range(2))
        jid = client.submit(
            sid, JobKind.ADD,
            (serialize_ciphertext(a), serialize_ciphertext(b)),
            on_done=lambda e: events.append(e.status),
        )
        checks.append((jid, bfv.add(a, b)))
    a = bfv.encrypt(encoder.encode(slots()), keys.public)
    jid = client.submit(
        sid, JobKind.ROTATE, (serialize_ciphertext(a),), steps=1,
        on_done=lambda e: events.append(e.status),
    )
    checks.append((jid, rotor.rotate_rows(a, 1)))

    for jid, expected in checks:
        got = deserialize_ciphertext(client.result(jid), params)
        want = bfv.decrypt(expected, keys.secret)
        assert bfv.decrypt(got, keys.secret) == want, f"job {jid} diverged"
    assert events == ["done"] * len(checks), events
    print(f"  initech: {len(checks)} raw ops over TCP verified against "
          "local Bfv ground truth, one pushed event each ✓")


def logreg_tenant(client: FheClient) -> None:
    """acme: compiled logistic-regression circuits (submitted twice —
    the repeat shares the first execution via the content-addressed
    result cache, or in-queue dedupe if it lands inside the window)."""
    params = BfvParameters.toy_rns(
        n=16, towers=5, tower_bits=28, t=ntt_friendly_prime(16, 21)
    )
    model = MiniLogisticRegression(params=params, num_features=6, seed=11)
    rng = random.Random(11)
    samples = [[rng.randint(-3, 3) for _ in range(6)] for _ in range(4)]
    circuit = model.to_circuit(batch=len(samples))
    inputs = tuple(
        serialize_ciphertext(ct) for ct in model.encrypt_features(samples)
    )
    reference = evaluate_circuit(
        model.bfv, model.keys.relin, circuit,
        [deserialize_ciphertext(ct, params) for ct in inputs],
    )

    sid = client.open_session(
        "acme", serialize_params(params),
        relin_key=serialize_relin_key(model.keys.relin, params),
    )
    first = client.submit_circuit(sid, circuit, inputs)
    second = client.submit_circuit(sid, circuit, inputs)  # dedupe window
    payloads = [client.result(first), client.result(second)]
    assert payloads[0] == payloads[1], "dedupe follower diverged"
    outs = deserialize_circuit_outputs(payloads[0], params)
    assert serialize_ciphertext(outs["score"]) == serialize_ciphertext(
        reference["score"]
    ), "served circuit diverged from in-process evaluation"
    predictions = model.predictions_from_score(outs["score"], len(samples))
    assert predictions == model.predict_plain(samples)
    print(f"  acme: logreg circuit ({len(circuit.steps)} steps, "
          f"{len(circuit.tensor_steps)} tensors) served twice over TCP, "
          "bit-identical, one shared execution; predictions "
          f"{predictions} match plaintext ✓")


def cryptonets_tenant(client: FheClient) -> None:
    """globex: compiled CryptoNets inference."""
    params = BfvParameters.toy_rns(
        n=16, towers=4, tower_bits=30, t=ntt_friendly_prime(16, 20)
    )
    model = MiniCryptoNets(params=params, seed=7)
    rng = random.Random(13)
    images = [[rng.randint(-2, 2) for _ in range(36)] for _ in range(3)]
    circuit = model.to_circuit()
    inputs = tuple(
        serialize_ciphertext(ct) for ct in model.encrypt_images(images)
    )

    sid = client.open_session(
        "globex", serialize_params(params),
        relin_key=serialize_relin_key(model.keys.relin, params),
    )
    payload = client.result(client.submit_circuit(sid, circuit, inputs))
    outs = deserialize_circuit_outputs(payload, params)
    scores = model.scores_from_outputs(outs, len(images))
    assert scores == model.infer_plain(images)
    classes = model.classify(scores)
    print(f"  globex: cryptonets circuit ({len(circuit.steps)} steps, "
          f"{len(circuit.tensor_steps)} tensors across "
          f"{1 + max(circuit.tensor_levels().values())} dependency levels) "
          f"served over TCP; classes {classes} match plaintext ✓")


def print_observability(ts, client: FheClient) -> None:
    """Live stats snapshot + phase attribution, from the same socket."""
    snap = ts.fhe.stats_snapshot()
    submitted = {
        label: int(count)
        for label, count in snap["repro_jobs_submitted_total"].items()
    }
    submit_lat = snap["repro_submit_seconds"][""]
    frames_in = snap["repro_frames_received_total"][""]
    bytes_in = snap["repro_frame_bytes_received_total"][""]
    print(f"\nlive stats (wire STATS also carries "
          f"{len(client.stats().splitlines())} Prometheus lines):")
    print(f"  submits {submitted}, submit p95 "
          f"{submit_lat['p95'] * 1e3:.2f} ms, "
          f"{int(frames_in)} frames / {int(bytes_in)} bytes received")

    rows = ts.fhe.phase_report(backend="chip_pool")
    print("phase attribution (chip pool, % of end-to-end job latency):")
    for row in rows:
        bar = "=" * max(1, round(row["percent"] / 2.5))
        if row["phase"] == "(total)":
            bar = "<- coverage"
        print(f"  {row['phase']:<16} {row['seconds'] * 1e3:>9.2f} ms "
              f"{row['percent']:>5.1f}%  {bar}")
    assert rows[-1]["percent"] >= 90.0, "phase coverage regressed"


def main() -> int:
    print("CoFHEE serving demo: 3 tenants over one TCP chip-pool server")
    with ThreadedTransportServer(pool_size=4, max_batch=6) as ts:
        print(f"listener on {ts.host}:{ts.port} (chip pool x4)\n")
        with FheClient(ts.host, ts.port) as client:
            raw_tenant(client)
            logreg_tenant(client)
            cryptonets_tenant(client)
            print_observability(ts, client)
        report = ts.fhe.pool_report()
    chip_jobs = report["fidelity"].get("chip", 0)
    cache = report["result_cache"]
    shared = cache["hits"] + cache["dedupe_hits"]
    print(f"\npool report: {chip_jobs} chip-fidelity jobs, "
          f"{cache['hits']} cache hit(s) + {cache['dedupe_hits']} dedupe "
          f"hit(s), makespan {report['wall_cycles']} of "
          f"{report['total_cycles']} total cycles across "
          f"{report['pool']} workers {report['per_worker_cycles']}")
    assert chip_jobs >= 5  # 3 EvalMult + logreg + cryptonets
    assert shared == 1  # acme's repeat never executed twice
    print("all over-the-wire results verified ✓")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
