"""CryptoNets-style encrypted CNN inference (the paper's first application).

Runs a miniature CryptoNets on the reproduction's BFV: the SIMD batching
trick packs one pixel position of every image into each ciphertext, so a
whole batch classifies for the price of one inference. Square activations
exercise the ct*ct + relinearization path CoFHEE accelerates. The Table X
model then prices the full-size network.

Run:  python examples/cryptonets_inference.py
"""

import random

from repro.apps import CRYPTONETS_WORKLOAD, CofheeAppCost, CpuAppCost
from repro.apps.cryptonets import MiniCryptoNets
from repro.bfv.params import BfvParameters


def main() -> None:
    net = MiniCryptoNets(seed=9)
    spec = net.spec
    rng = random.Random(55)
    batch = [
        [rng.randint(0, 2) for _ in range(spec.image_size**2)]
        for _ in range(8)
    ]
    print(f"network: {spec.image_size}x{spec.image_size} input -> "
          f"conv {spec.conv_maps}x{spec.conv_kernel}x{spec.conv_kernel}/s{spec.conv_stride} "
          f"-> square -> dense {spec.hidden} -> square -> dense {spec.classes}")
    print(f"batch: {len(batch)} images in one encrypted pass "
          f"({net.batch_size} SIMD slots)")

    scores = net.infer(batch)
    expected = net.infer_plain(batch)
    assert scores == expected, "encrypted network diverged from plaintext"
    labels = net.classify(scores)
    print(f"predicted classes     : {labels}")
    print(f"scores (image 0)      : {scores[0]} (plaintext-exact ✓)")
    print(f"homomorphic ops used  : {net.op_log}")

    print("\nTable X workload model — CryptoNets at full scale:")
    params = BfvParameters.from_paper(n=2**12, log_q=109)
    cofhee = CofheeAppCost(params).workload_seconds(CRYPTONETS_WORKLOAD)
    cpu = CpuAppCost().workload_seconds(CRYPTONETS_WORKLOAD)
    print(f"  op mix: {CRYPTONETS_WORKLOAD.ct_ct_adds:,} ct+ct, "
          f"{CRYPTONETS_WORKLOAD.ct_pt_mults:,} ct*pt, "
          f"{CRYPTONETS_WORKLOAD.ct_ct_mults:,} ct*ct+relin")
    print(f"  CPU   : {cpu['total_s']:6.1f} s  (paper: 197 s)")
    print(f"  CoFHEE: {cofhee['total_s']:6.1f} s  (paper: 88.35 s)")
    print(f"  speedup: {cpu['total_s'] / cofhee['total_s']:.2f}x (paper: 2.23x)")


if __name__ == "__main__":
    main()
