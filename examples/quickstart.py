"""Quickstart: multiply two polynomials on the CoFHEE co-processor model.

Programs the chip with an NTT-friendly modulus, downloads two random
polynomials over the (modeled) SPI link, runs Algorithm 2 (2 NTT +
Hadamard + iNTT) through the command FIFO, and reads back the product —
reporting the cycle count, latency at 250 MHz, and modeled power, checked
against the pure-math reference.

Run:  python examples/quickstart.py
"""

import random

from repro.core import CoFHEE, CofheeDriver
from repro.polymath import ntt_friendly_prime
from repro.polymath.ntt import reference_negacyclic_multiply


def main() -> None:
    n = 1024
    q = ntt_friendly_prime(n, 109)  # one native 128-bit tower
    print(f"polynomial degree n = {n}, modulus q = {q} ({q.bit_length()} bits)")

    chip = CoFHEE()
    driver = CofheeDriver(chip)  # command-FIFO execution mode
    setup_seconds = driver.program(q, n)
    print(f"programmed Q/N/BARRETT registers, twiddles downloaded "
          f"({setup_seconds * 1e3:.2f} ms over SPI)")

    rng = random.Random(2023)
    a = [rng.randrange(q) for _ in range(n)]
    b = [rng.randrange(q) for _ in range(n)]
    io = driver.load_polynomial("P0", a) + driver.load_polynomial("P1", b)

    report = driver.polynomial_multiply("P0", "P1", "P2")
    product, readback = driver.read_polynomial("P2")
    io += readback

    assert product == reference_negacyclic_multiply(a, b, q), "mismatch!"
    print("\nPolynomial multiplication (Algorithm 2) on chip:")
    print(f"  commands issued : {report.commands} "
          f"(NTT, NTT, PMODMUL, iNTT)")
    print(f"  compute cycles  : {report.cycles:,}")
    print(f"  latency @250MHz : {report.latency_us:.1f} us")
    print(f"  avg / peak power: {report.power.avg_mw:.1f} / "
          f"{report.power.peak_mw:.1f} mW")
    print(f"  host-link time  : {io * 1e3:.2f} ms (SPI @50 MHz)")
    print("\nresult verified against the schoolbook negacyclic product ✓")


if __name__ == "__main__":
    main()
