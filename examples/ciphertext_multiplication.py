"""Full BFV ciphertext multiplication with the chip as the polynomial engine.

Recreates the paper's headline experiment (Fig. 6) end to end at reduced
degree: encrypt two messages under BFV, run the Eq. 4 tensor's polynomial
arithmetic per RNS tower on the CoFHEE model (Algorithm 3), and compare
latency/power against the SEAL-calibrated CPU cost model — then scale the
comparison to the paper's actual parameter sets.

Run:  python examples/ciphertext_multiplication.py
"""

from repro.baselines.software import CpuCostModel
from repro.bfv import Bfv, BfvParameters
from repro.core import CoFHEE, CofheeDriver
from repro.core.chip import ChipConfig
from repro.core.driver import OperationReport
from repro.eval.fig6 import cofhee_ciphertext_mult
from repro.polymath.poly import PolynomialRing


def functional_demo() -> None:
    """Small-degree functional check: BFV EvalMult decrypts correctly."""
    params = BfvParameters.toy(n=16, log_q=60)
    bfv = Bfv(params, seed=42)
    keys = bfv.keygen(relin_digit_bits=12)
    pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
    m1, m2 = pt_ring([6, 1]), pt_ring([7])
    ct = bfv.multiply_relin(
        bfv.encrypt(m1, keys.public), bfv.encrypt(m2, keys.public), keys.relin
    )
    result = bfv.decrypt(ct, keys.secret)
    print(f"BFV: Enc({list(m1.coeffs[:2])}) * Enc([7]) -> "
          f"{list(result.coeffs[:2])} (expected [42, 7]) ✓")
    assert result == m1.scalar_mul(7)


def paper_scale_comparison() -> None:
    """The Fig. 6 numbers from the calibrated models."""
    cpu = CpuCostModel()
    print("\nFig. 6 reproduction — ciphertext multiplication:")
    print(f"{'params':>16} {'platform':>12} {'threads':>7} "
          f"{'time':>10} {'power':>10}")
    for n, log_q in ((2**12, 109), (2**13, 218)):
        params = BfvParameters.from_paper(n=n, log_q=log_q)
        report = cofhee_ciphertext_mult(params)
        label = f"(2^{n.bit_length()-1}, {log_q})"
        print(f"{label:>16} {'CoFHEE':>12} {1:>7} "
              f"{report.latency_ms:>8.2f} ms {report.power.avg_mw:>7.1f} mW")
        for threads in (1, 4, 16):
            m = cpu.measurement(params, threads)
            print(f"{label:>16} {'CPU (SEAL)':>12} {threads:>7} "
                  f"{m.time_ms:>8.2f} ms {m.power_w:>8.2f} W")
        pdp_ratio = cpu.pdp_w_ms(params) / report.power.pdp_w_ms()
        print(f"{'':>16} power-delay product advantage: {pdp_ratio:,.0f}x")


def main() -> None:
    functional_demo()
    paper_scale_comparison()


if __name__ == "__main__":
    main()
