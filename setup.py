"""Package metadata for the CoFHEE reproduction.

Metadata lives here (rather than a ``[project]`` table) so that
``pip install -e . --no-use-pep517`` still works in offline environments
whose setuptools cannot build PEP 660 editable wheels; pyproject.toml
carries only the build-system pin and tool configuration.
"""

from pathlib import Path

from setuptools import find_packages, setup

_readme = Path(__file__).with_name("README.md")

setup(
    name="repro-cofhee",
    version="0.2.0",
    description=(
        "Reproduction of CoFHEE (an FHE co-processor, DATE'23): BFV scheme, "
        "cycle-calibrated chip model, physical-design flow, and a "
        "multi-tenant FHE serving layer over a simulated chip pool"
    ),
    long_description=_readme.read_text(encoding="utf-8") if _readme.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        "dev": ["pytest>=7", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-serve = repro.service.demo:main",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Security :: Cryptography",
    ],
)
