"""Setup shim enabling legacy editable installs where `wheel` is absent.

All project metadata lives in pyproject.toml; this file only exists so that
``pip install -e . --no-use-pep517`` works in offline environments whose
setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
