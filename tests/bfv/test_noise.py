"""Unit tests for the noise model and the HE-standard security table."""

import pytest

from repro.bfv import Bfv, BfvParameters
from repro.bfv.noise import (
    NoiseModel,
    max_log_q_for_security,
    security_level_bits,
)
from repro.polymath.poly import PolynomialRing


class TestSecurityTable:
    def test_paper_parameter_sets_are_128_bit(self):
        """Section VI-B: both sets 'provide a security level of 128 bits'."""
        assert security_level_bits(4096, 109) == 128
        assert security_level_bits(8192, 218) == 128

    def test_exact_standard_budgets(self):
        assert max_log_q_for_security(4096, 128) == 109
        assert max_log_q_for_security(8192, 128) == 218

    def test_smaller_q_gives_higher_level(self):
        assert security_level_bits(4096, 58) == 256
        assert security_level_bits(4096, 75) == 192

    def test_oversized_q_degrades(self):
        assert security_level_bits(4096, 150) < 128

    def test_unknown_degree(self):
        with pytest.raises(ValueError):
            security_level_bits(3000, 100)

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            max_log_q_for_security(4096, 100)


class TestNoiseBounds:
    @pytest.fixture(scope="class")
    def model(self):
        return NoiseModel(BfvParameters.from_paper(n=4096, log_q=109))

    def test_fresh_budget_positive(self, model):
        assert model.fresh().budget_bits(model.params) > 40

    def test_add_grows_slowly(self, model):
        fresh = model.fresh()
        assert model.add(fresh, fresh).bits == fresh.bits + 1

    def test_multiply_grows_fast(self, model):
        fresh = model.fresh()
        grown = model.multiply(fresh, fresh)
        assert grown.bits > fresh.bits + 20  # ~ t * n factor

    def test_scalar_cheaper_than_plain(self, model):
        fresh = model.fresh()
        assert model.multiply_scalar(fresh).bits < model.multiply_plain(fresh).bits

    def test_relin_fine_digits_less_noise(self, model):
        after_mult = model.multiply(model.fresh(), model.fresh())
        fine = model.relinearize(after_mult, digit_bits=5)
        coarse = model.relinearize(after_mult, digit_bits=30)
        assert fine.bits <= coarse.bits

    def test_relin_validation(self, model):
        with pytest.raises(ValueError):
            model.relinearize(model.fresh(), digit_bits=0)


class TestDepthQueries:
    def test_paper_small_supports_depth_2(self):
        model = NoiseModel(BfvParameters.from_paper(n=4096, log_q=109))
        assert model.multiplicative_depth(digit_bits=22) >= 2

    def test_larger_q_deeper(self):
        small = NoiseModel(BfvParameters.from_paper(n=4096, log_q=109))
        large = NoiseModel(BfvParameters.from_paper(n=8192, log_q=218))
        assert large.multiplicative_depth() > small.multiplicative_depth()

    def test_digit_bits_for_depth_monotone(self):
        model = NoiseModel(BfvParameters.from_paper(n=8192, log_q=218))
        d1 = model.digit_bits_for_depth(1)
        d3 = model.digit_bits_for_depth(3)
        assert d1 is not None and d3 is not None
        assert d1 >= d3  # deeper circuits need finer digits


class TestBoundsAreSound:
    def test_bounds_upper_bound_measured_noise(self):
        """The analytic model must never claim more budget than the
        functional scheme measures."""
        params = BfvParameters.toy(n=16, log_q=80)
        model = NoiseModel(params)
        bfv = Bfv(params, seed=8)
        keys = bfv.keygen(relin_digit_bits=10)
        pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        ct = bfv.encrypt(pt_ring([3]), keys.public)
        measured_fresh = bfv.noise_budget(ct, keys.secret)
        analytic_fresh = model.fresh().budget_bits(params)
        assert analytic_fresh <= measured_fresh + 1
        ct2 = bfv.relinearize(bfv.square(ct), keys.relin)
        measured_sq = bfv.noise_budget(ct2, keys.secret)
        analytic_sq = model.relinearize(
            model.multiply(model.fresh(), model.fresh()), 10
        ).budget_bits(params)
        assert analytic_sq <= measured_sq + 1
