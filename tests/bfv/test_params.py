"""Unit tests for BFV parameter sets and the paper presets."""

import pytest

from repro.bfv.params import SEAL_PRESETS, BfvParameters


class TestToyParams:
    def test_basic_properties(self, toy_params):
        assert toy_params.n == 16
        assert toy_params.q > toy_params.t
        assert toy_params.delta == toy_params.q // toy_params.t

    def test_single_tower(self, toy_params):
        assert toy_params.cpu_tower_count == 1
        assert toy_params.cofhee_tower_count == 1


class TestValidation:
    def test_bad_degree(self):
        with pytest.raises(ValueError, match="power of two"):
            BfvParameters(n=10, q=97, t=7)

    def test_bad_t(self):
        with pytest.raises(ValueError):
            BfvParameters(n=16, q=97, t=1)

    def test_q_must_exceed_t(self):
        with pytest.raises(ValueError, match="exceed"):
            BfvParameters(n=16, q=7, t=97)


class TestPaperPresets:
    @pytest.mark.parametrize(
        "name,n,log_q,cpu_towers,cofhee_towers",
        [("paper_small", 2**12, 109, 2, 1), ("paper_large", 2**13, 218, 4, 2)],
    )
    def test_preset_towers(self, name, n, log_q, cpu_towers, cofhee_towers):
        """The Section VI-B tower arithmetic: SEAL 54/55-bit towers vs
        CoFHEE 109-bit towers."""
        params = SEAL_PRESETS[name]
        assert params.n == n
        assert abs(params.log_q - log_q) <= 1  # product of planned towers
        assert params.cpu_tower_count == cpu_towers
        assert params.cofhee_tower_count == cofhee_towers

    def test_preset_batching_friendly_t(self):
        params = SEAL_PRESETS["paper_small"]
        assert (params.t - 1) % (2 * params.n) == 0

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            SEAL_PRESETS["nonexistent"]

    def test_describe_mentions_towers(self):
        text = SEAL_PRESETS["paper_small"].describe()
        assert "CPU towers=2" in text and "CoFHEE towers=1" in text
