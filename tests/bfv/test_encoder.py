"""Unit tests for the plaintext encoders."""

import pytest

from repro.bfv import BatchEncoder, BfvParameters, IntegerEncoder
from repro.bfv.encoder import ScalarEncoder
from repro.polymath.poly import PolynomialRing


@pytest.fixture(scope="module")
def params():
    return BfvParameters.toy(n=16, log_q=60)


class TestBatchEncoder:
    def test_roundtrip(self, params):
        enc = BatchEncoder(params)
        values = list(range(16))
        assert enc.decode(enc.encode(values)) == values

    def test_partial_fill_pads_zero(self, params):
        enc = BatchEncoder(params)
        assert enc.decode(enc.encode([7, 8])) == [7, 8] + [0] * 14

    def test_too_many_values(self, params):
        enc = BatchEncoder(params)
        with pytest.raises(ValueError, match="too many"):
            enc.encode(list(range(17)))

    def test_slotwise_add(self, params):
        """Ring addition == slot-wise addition (the SIMD property)."""
        enc = BatchEncoder(params)
        a, b = [3] * 16, list(range(16))
        summed = enc.encode(a) + enc.encode(b)
        assert enc.decode(summed) == [(x + y) % params.t for x, y in zip(a, b)]

    def test_slotwise_multiply(self, params):
        """Ring multiplication == slot-wise multiplication."""
        enc = BatchEncoder(params)
        a, b = [2] * 16, list(range(16))
        prod = enc.encode(a) * enc.encode(b)
        assert enc.decode(prod) == [(x * y) % params.t for x, y in zip(a, b)]

    def test_signed_decode(self, params):
        enc = BatchEncoder(params)
        values = [params.t - 5, 5] + [0] * 14
        assert enc.decode_signed(enc.encode(values))[:2] == [-5, 5]

    def test_requires_batching_modulus(self):
        bad = BfvParameters(n=16, q=2**40 + 15, t=97)  # 96 % 32 == 0? 96/32=3 -> ok
        really_bad = BfvParameters(n=16, q=2**40 + 15, t=101)
        with pytest.raises(ValueError, match="batching"):
            BatchEncoder(really_bad)

    def test_wrong_ring_rejected(self, params):
        enc = BatchEncoder(params)
        other = PolynomialRing(params.n, params.t + 2, allow_non_ntt=True)
        with pytest.raises(ValueError):
            enc.decode(other([1]))


class TestIntegerEncoder:
    @pytest.mark.parametrize("value", [0, 1, -1, 42, -42, 1000, -999])
    def test_roundtrip(self, params, value):
        enc = IntegerEncoder(params, base=3)
        assert enc.decode(enc.encode(value)) == value

    def test_additive_homomorphism(self, params):
        enc = IntegerEncoder(params, base=3)
        summed = enc.encode(25) + enc.encode(17)
        assert enc.decode(summed) == 42

    def test_bad_base(self, params):
        with pytest.raises(ValueError):
            IntegerEncoder(params, base=1)


class TestScalarEncoder:
    def test_roundtrip(self, params):
        enc = ScalarEncoder(params)
        assert enc.decode(enc.encode(31)) == 31

    def test_rejects_non_constant(self, params):
        enc = ScalarEncoder(params)
        ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        with pytest.raises(ValueError, match="constant"):
            enc.decode(ring([1, 2]))
