"""Unit tests for the BFV scheme: correctness of every homomorphic op."""

import pytest

from repro.bfv import Bfv, BfvParameters
from repro.polymath.poly import Polynomial, PolynomialRing


@pytest.fixture(scope="module")
def setup():
    params = BfvParameters.toy(n=16, log_q=60)
    bfv = Bfv(params, seed=123)
    keys = bfv.keygen(relin_digit_bits=12)
    pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
    return params, bfv, keys, pt_ring


def _pt(pt_ring, coeffs):
    return pt_ring(coeffs)


class TestEncryptDecrypt:
    def test_roundtrip(self, setup):
        _, bfv, keys, pt_ring = setup
        m = _pt(pt_ring, [5, 4, 3, 2, 1])
        assert bfv.decrypt(bfv.encrypt(m, keys.public), keys.secret) == m

    def test_zero(self, setup):
        _, bfv, keys, pt_ring = setup
        ct = bfv.encrypt_zero(keys.public)
        assert bfv.decrypt(ct, keys.secret).is_zero()

    def test_ciphertexts_randomized(self, setup):
        _, bfv, keys, pt_ring = setup
        m = _pt(pt_ring, [7])
        c1 = bfv.encrypt(m, keys.public)
        c2 = bfv.encrypt(m, keys.public)
        assert c1.polys[0] != c2.polys[0]  # fresh randomness u, e1, e2

    def test_wrong_plaintext_modulus_rejected(self, setup):
        params, bfv, keys, _ = setup
        bad_ring = PolynomialRing(params.n, params.t + 2, allow_non_ntt=True)
        with pytest.raises(ValueError, match="plaintext modulus"):
            bfv.encrypt(bad_ring([1]), keys.public)

    def test_wrong_degree_rejected(self, setup):
        params, bfv, keys, _ = setup
        bad_ring = PolynomialRing(2 * params.n, params.t, allow_non_ntt=True)
        with pytest.raises(ValueError, match="degree"):
            bfv.encrypt(bad_ring([1]), keys.public)

    def test_fresh_noise_budget_positive(self, setup):
        _, bfv, keys, pt_ring = setup
        ct = bfv.encrypt(_pt(pt_ring, [1, 2, 3]), keys.public)
        assert bfv.noise_budget(ct, keys.secret) > 20


class TestHomomorphicAddSub:
    def test_add(self, setup):
        _, bfv, keys, pt_ring = setup
        m1, m2 = _pt(pt_ring, [1, 2, 3]), _pt(pt_ring, [10, 20, 30])
        ct = bfv.add(bfv.encrypt(m1, keys.public), bfv.encrypt(m2, keys.public))
        assert bfv.decrypt(ct, keys.secret) == m1 + m2

    def test_sub(self, setup):
        _, bfv, keys, pt_ring = setup
        m1, m2 = _pt(pt_ring, [10, 20]), _pt(pt_ring, [1, 2])
        ct = bfv.sub(bfv.encrypt(m1, keys.public), bfv.encrypt(m2, keys.public))
        assert bfv.decrypt(ct, keys.secret) == m1 - m2

    def test_negate(self, setup):
        _, bfv, keys, pt_ring = setup
        m = _pt(pt_ring, [3, 1, 4])
        ct = bfv.negate(bfv.encrypt(m, keys.public))
        assert bfv.decrypt(ct, keys.secret) == -m

    def test_add_different_sizes(self, setup):
        """3-component + 2-component pads correctly."""
        _, bfv, keys, pt_ring = setup
        m1, m2, m3 = (_pt(pt_ring, [v]) for v in (2, 3, 5))
        prod = bfv.multiply(bfv.encrypt(m1, keys.public),
                            bfv.encrypt(m2, keys.public))
        mixed = bfv.add(prod, bfv.encrypt(m3, keys.public))
        expected = _pt(pt_ring, [2 * 3 + 5])
        assert bfv.decrypt(mixed, keys.secret) == expected


class TestHomomorphicMultiply:
    def test_multiply_constants(self, setup):
        _, bfv, keys, pt_ring = setup
        m1, m2 = _pt(pt_ring, [6]), _pt(pt_ring, [7])
        ct = bfv.multiply(bfv.encrypt(m1, keys.public),
                          bfv.encrypt(m2, keys.public))
        assert ct.size == 3
        assert bfv.decrypt(ct, keys.secret) == _pt(pt_ring, [42])

    def test_multiply_polynomials(self, setup):
        _, bfv, keys, pt_ring = setup
        m1, m2 = _pt(pt_ring, [1, 1]), _pt(pt_ring, [1, 2])  # (1+x)(1+2x)
        ct = bfv.multiply(bfv.encrypt(m1, keys.public),
                          bfv.encrypt(m2, keys.public))
        assert bfv.decrypt(ct, keys.secret) == _pt(pt_ring, [1, 3, 2])

    def test_multiply_requires_size_two(self, setup):
        _, bfv, keys, pt_ring = setup
        m = _pt(pt_ring, [2])
        c = bfv.encrypt(m, keys.public)
        prod = bfv.multiply(c, c)
        with pytest.raises(ValueError, match="relinearize"):
            bfv.multiply(prod, c)

    def test_square_matches_multiply(self, setup):
        _, bfv, keys, pt_ring = setup
        m = _pt(pt_ring, [3, 1])
        ct = bfv.encrypt(m, keys.public)
        assert (
            bfv.decrypt(bfv.square(ct), keys.secret)
            == bfv.decrypt(bfv.multiply(ct, ct), keys.secret)
        )

    def test_noise_budget_shrinks(self, setup):
        _, bfv, keys, pt_ring = setup
        ct = bfv.encrypt(_pt(pt_ring, [2]), keys.public)
        fresh = bfv.noise_budget(ct, keys.secret)
        after = bfv.noise_budget(bfv.multiply(ct, ct), keys.secret)
        assert after < fresh


class TestRelinearization:
    def test_reduces_size_and_preserves_value(self, setup):
        _, bfv, keys, pt_ring = setup
        m1, m2 = _pt(pt_ring, [4, 1]), _pt(pt_ring, [2, 0, 1])
        prod = bfv.multiply(bfv.encrypt(m1, keys.public),
                            bfv.encrypt(m2, keys.public))
        rl = bfv.relinearize(prod, keys.relin)
        assert rl.size == 2
        assert bfv.decrypt(rl, keys.secret) == bfv.decrypt(prod, keys.secret)

    def test_relin_of_size_two_is_noop(self, setup):
        _, bfv, keys, pt_ring = setup
        ct = bfv.encrypt(_pt(pt_ring, [1]), keys.public)
        assert bfv.relinearize(ct, keys.relin).polys == ct.polys

    def test_multiply_relin_chains(self, setup):
        """Two chained multiplications via relinearization: 2*3*5 = 30."""
        _, bfv, keys, pt_ring = setup
        cts = [bfv.encrypt(_pt(pt_ring, [v]), keys.public) for v in (2, 3, 5)]
        acc = bfv.multiply_relin(cts[0], cts[1], keys.relin)
        acc = bfv.multiply_relin(acc, cts[2], keys.relin)
        assert bfv.decrypt(acc, keys.secret) == _pt(pt_ring, [30])

    def test_digit_count(self, setup):
        params, bfv, keys, _ = setup
        expected = -(-params.q.bit_length() // 12)
        assert keys.relin.num_digits == expected

    def test_decompose_digits_rejects_centered_coefficients(self, setup):
        """A centered (negative) coefficient would sign-extend under the
        digit mask and silently corrupt the relin fold — the guard must
        raise instead. Canonical construction normally makes this
        unreachable; ``from_canonical`` bypasses the ``% q`` re-mod, so
        it can smuggle a centered value in."""
        params, bfv, keys, _ = setup
        centered = Polynomial.from_canonical(
            bfv.ring, [-1] + [0] * (params.n - 1)
        )
        with pytest.raises(ValueError, match="canonical"):
            bfv._decompose_digits(centered, keys.relin)

    def test_decompose_digits_reconstructs_canonical_value(self, setup):
        """The base-T digits weighted back together recover each
        canonical coefficient exactly."""
        params, bfv, keys, _ = setup
        value = params.q - 12345
        poly = Polynomial.from_canonical(
            bfv.ring, [value] + [0] * (params.n - 1)
        )
        digits = bfv._decompose_digits(poly, keys.relin)
        assert len(digits) == keys.relin.num_digits
        base = 1 << keys.relin.digit_bits
        recon = sum(
            d.coeffs[0] * base**i for i, d in enumerate(digits)
        )
        assert recon == value
        mask = base - 1
        assert all(0 <= d.coeffs[0] <= mask for d in digits)


class TestPlainOps:
    def test_add_plain(self, setup):
        _, bfv, keys, pt_ring = setup
        m1, m2 = _pt(pt_ring, [1, 2]), _pt(pt_ring, [5, 5])
        ct = bfv.add_plain(bfv.encrypt(m1, keys.public), m2)
        assert bfv.decrypt(ct, keys.secret) == m1 + m2

    def test_multiply_plain(self, setup):
        _, bfv, keys, pt_ring = setup
        m1, m2 = _pt(pt_ring, [2, 1]), _pt(pt_ring, [0, 3])
        ct = bfv.multiply_plain(bfv.encrypt(m1, keys.public), m2)
        expected = m1.schoolbook_mul(m2)
        assert bfv.decrypt(ct, keys.secret) == expected

    def test_multiply_plain_zero(self, setup):
        _, bfv, keys, pt_ring = setup
        ct = bfv.multiply_plain(
            bfv.encrypt(_pt(pt_ring, [9]), keys.public), pt_ring.zero()
        )
        assert bfv.decrypt(ct, keys.secret).is_zero()

    def test_multiply_scalar(self, setup):
        _, bfv, keys, pt_ring = setup
        m = _pt(pt_ring, [3, 4])
        ct = bfv.multiply_scalar(bfv.encrypt(m, keys.public), 7)
        assert bfv.decrypt(ct, keys.secret) == m.scalar_mul(7)

    def test_multiply_scalar_negative_lift(self, setup):
        """Scalars near t encode small negatives (centered lift)."""
        params, bfv, keys, pt_ring = setup
        m = _pt(pt_ring, [5])
        ct = bfv.multiply_scalar(bfv.encrypt(m, keys.public), params.t - 1)
        assert bfv.decrypt(ct, keys.secret) == m.scalar_mul(-1)


class TestKeygen:
    def test_no_relin_key(self, setup):
        params = BfvParameters.toy(n=16, log_q=60)
        bfv = Bfv(params, seed=5)
        keys = bfv.keygen(relin_digit_bits=None)
        assert keys.relin is None

    def test_bad_digit_bits(self, setup):
        params = BfvParameters.toy(n=16, log_q=60)
        bfv = Bfv(params, seed=5)
        with pytest.raises(ValueError):
            bfv.keygen(relin_digit_bits=0)

    def test_public_key_hides_secret(self, setup):
        """kp1 + kp2*s must be small (the RLWE structure), not zero."""
        params, bfv, keys, _ = setup
        residual = bfv._exact_mul(keys.public.kp2, keys.secret.s) + keys.public.kp1
        assert 0 < residual.infinity_norm() < 64  # ~tail-cut * sigma
