"""Unit tests for the RLWE samplers."""

import math
import random

import pytest

from repro.bfv.sampling import (
    CenteredBinomialSampler,
    DiscreteGaussianSampler,
    TernarySampler,
    infinity_norm,
    sample_uniform,
)


class TestTernary:
    def test_support(self, rng):
        values = TernarySampler(rng).sample(1000)
        assert set(values) <= {-1, 0, 1}
        # all three values occur in a sample this large
        assert set(values) == {-1, 0, 1}

    def test_roughly_uniform(self, rng):
        values = TernarySampler(rng).sample(9000)
        for v in (-1, 0, 1):
            assert 2500 < values.count(v) < 3500


class TestGaussian:
    def test_sigma_validation(self, rng):
        with pytest.raises(ValueError):
            DiscreteGaussianSampler(rng, sigma=0)

    def test_tail_bound(self, rng):
        sampler = DiscreteGaussianSampler(rng, sigma=3.2)
        values = sampler.sample(2000)
        assert infinity_norm(values) <= math.ceil(3.2 * 10)

    def test_moments(self, rng):
        sampler = DiscreteGaussianSampler(rng, sigma=3.2)
        values = sampler.sample(8000)
        mean = sum(values) / len(values)
        var = sum(v * v for v in values) / len(values) - mean * mean
        assert abs(mean) < 0.25
        assert abs(var - 3.2**2) < 1.2

    def test_deterministic_given_seed(self):
        a = DiscreteGaussianSampler(random.Random(42)).sample(50)
        b = DiscreteGaussianSampler(random.Random(42)).sample(50)
        assert a == b


class TestCenteredBinomial:
    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            CenteredBinomialSampler(rng, k=0)

    def test_support_bound(self, rng):
        sampler = CenteredBinomialSampler(rng, k=21)
        values = sampler.sample(2000)
        assert infinity_norm(values) <= 21

    def test_sigma_matches_gaussian_target(self, rng):
        sampler = CenteredBinomialSampler(rng, k=21)
        assert abs(sampler.sigma - 3.24) < 0.01

    def test_variance(self, rng):
        sampler = CenteredBinomialSampler(rng, k=21)
        values = sampler.sample(8000)
        var = sum(v * v for v in values) / len(values)
        assert abs(var - 10.5) < 1.0


class TestUniform:
    def test_range(self, rng):
        values = sample_uniform(rng, 500, 97)
        assert all(0 <= v < 97 for v in values)

    def test_infinity_norm_empty(self):
        assert infinity_norm([]) == 0
