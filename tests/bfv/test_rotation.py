"""Unit tests for Galois automorphisms and SIMD slot rotation."""

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.bfv.rotation import RotationEngine, apply_automorphism
from repro.polymath.poly import PolynomialRing


@pytest.fixture(scope="module")
def stack():
    params = BfvParameters.toy(n=16, log_q=100)
    bfv = Bfv(params, seed=13)
    keys = bfv.keygen(relin_digit_bits=12)
    engine = RotationEngine(bfv, keys.secret, digit_bits=12)
    encoder = BatchEncoder(params)
    return params, bfv, keys, engine, encoder


class TestAutomorphism:
    def test_identity_exponent(self, stack):
        params, bfv, keys, engine, encoder = stack
        ring = PolynomialRing(params.n, params.q, allow_non_ntt=True)
        p = ring([1, 2, 3, 4])
        assert apply_automorphism(p, 1) == p

    def test_x_maps_to_x_g(self, stack):
        params, *_ = stack
        ring = PolynomialRing(params.n, params.q, allow_non_ntt=True)
        x = ring.monomial(1)
        assert apply_automorphism(x, 3) == ring.monomial(3)

    def test_sign_wrap(self, stack):
        """x^i with i*g >= n wraps with a sign flip (x^n = -1)."""
        params, *_ = stack
        ring = PolynomialRing(params.n, params.q, allow_non_ntt=True)
        p = ring.monomial(params.n - 1)  # x^15; *3 = x^45 = x^13 (2n=32: 45-32=13)
        result = apply_automorphism(p, 3)
        assert result == ring.monomial(45)  # monomial() applies same wrap rule

    def test_is_ring_homomorphism(self, stack, rng):
        params, *_ = stack
        ring = PolynomialRing(params.n, params.q)
        a, b = ring.random(rng), ring.random(rng)
        g = 5
        assert apply_automorphism(a * b, g) == (
            apply_automorphism(a, g) * apply_automorphism(b, g)
        )
        assert apply_automorphism(a + b, g) == (
            apply_automorphism(a, g) + apply_automorphism(b, g)
        )

    def test_invalid_exponent(self, stack):
        params, *_ = stack
        ring = PolynomialRing(params.n, params.q, allow_non_ntt=True)
        with pytest.raises(ValueError, match="odd"):
            apply_automorphism(ring.one(), 2)


class TestEncryptedRotation:
    def test_galois_matches_plaintext_automorphism(self, stack, rng):
        params, bfv, keys, engine, _ = stack
        pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        m = pt_ring([rng.randrange(params.t) for _ in range(params.n)])
        ct = bfv.encrypt(m, keys.public)
        rotated = engine.apply_galois(ct, 3)
        assert bfv.decrypt(rotated, keys.secret) == apply_automorphism(m, 3)

    def test_rotation_is_slot_permutation(self, stack):
        params, bfv, keys, engine, encoder = stack
        vals = list(range(params.n))
        ct = bfv.encrypt(encoder.encode(vals), keys.public)
        rotated = encoder.decode(bfv.decrypt(engine.rotate_rows(ct, 1),
                                             keys.secret))
        assert sorted(rotated) == vals
        assert rotated != vals

    def test_rotations_compose(self, stack):
        params, bfv, keys, engine, encoder = stack
        vals = list(range(params.n))
        ct = bfv.encrypt(encoder.encode(vals), keys.public)
        twice = engine.rotate_rows(engine.rotate_rows(ct, 1), 1)
        direct = engine.rotate_rows(ct, 2)
        assert (
            encoder.decode(bfv.decrypt(twice, keys.secret))
            == encoder.decode(bfv.decrypt(direct, keys.secret))
        )

    def test_zero_rotation_is_identity(self, stack):
        params, bfv, keys, engine, encoder = stack
        vals = [3] * params.n
        ct = bfv.encrypt(encoder.encode(vals), keys.public)
        same = engine.rotate_rows(ct, 0)
        assert encoder.decode(bfv.decrypt(same, keys.secret)) == vals

    def test_column_swap_involution(self, stack):
        params, bfv, keys, engine, encoder = stack
        vals = list(range(params.n))
        ct = bfv.encrypt(encoder.encode(vals), keys.public)
        swapped_twice = engine.rotate_columns(engine.rotate_columns(ct))
        assert encoder.decode(bfv.decrypt(swapped_twice, keys.secret)) == vals

    def test_sum_all_slots(self, stack):
        """The dense-layer reduction: every slot ends with the total."""
        params, bfv, keys, engine, encoder = stack
        vals = list(range(params.n))
        ct = bfv.encrypt(encoder.encode(vals), keys.public)
        summed = engine.sum_all_slots(ct)
        slots = encoder.decode(bfv.decrypt(summed, keys.secret))
        assert all(s == sum(vals) % params.t for s in slots)

    def test_requires_two_components(self, stack):
        params, bfv, keys, engine, encoder = stack
        ct = bfv.encrypt(encoder.encode([1]), keys.public)
        prod = bfv.multiply(ct, ct)
        with pytest.raises(ValueError, match="2-component"):
            engine.apply_galois(prod, 3)

    def test_keys_cached(self, stack):
        _, _, _, engine, _ = stack
        k1 = engine.galois_key(9)
        k2 = engine.galois_key(9)
        assert k1 is k2
