"""Unit tests for the behavioral ADPLL model."""

import pytest

from repro.core.adpll import (
    ADPLL_AREA_MM2,
    ADPLL_POWER_UW,
    Adpll,
    BangBangPhaseDetector,
    DcoConfig,
    sar_capture_range_check,
)


class TestDco:
    def test_monotonic_frequency(self):
        dco = DcoConfig()
        freqs = [dco.frequency(c) for c in range(0, dco.code_max, 997)]
        assert freqs == sorted(freqs)

    def test_code_range(self):
        dco = DcoConfig()
        with pytest.raises(ValueError):
            dco.frequency(-1)
        with pytest.raises(ValueError):
            dco.frequency(dco.code_max + 1)

    def test_segmented_decode(self):
        dco = DcoConfig(binary_bits=6, unary_bits=7)
        coarse, fine = dco.decode_segments(0b1010_1_110101)
        assert fine == 0b110101
        assert coarse == 0b10101

    def test_segment_monotonicity(self):
        """Thermometer coarse + binary fine: +1 code never drops current."""
        dco = DcoConfig()
        prev = (0, 0)
        for code in range(2**8):
            coarse, fine = dco.decode_segments(code)
            total = coarse * (1 << dco.binary_bits) + fine
            assert total == code
            prev = (coarse, fine)


class TestLocking:
    def test_locks_at_operating_point(self):
        pll = Adpll()
        result = pll.lock(250e6)
        assert result.locked
        assert abs(result.final_frequency_hz - 250e6) <= pll.quantization_error_bound_hz()

    @pytest.mark.parametrize("target_mhz", [60, 150, 250, 400, 480])
    def test_wide_tuning_range(self, target_mhz):
        pll = Adpll()
        result = pll.lock(target_mhz * 1e6)
        assert result.locked

    def test_out_of_range_rejected(self):
        pll = Adpll()
        with pytest.raises(ValueError, match="outside DCO range"):
            pll.lock(5e9)

    def test_sar_step_count(self):
        """SAR does exactly one trial per control-word bit."""
        pll = Adpll()
        result = pll.lock(300e6)
        assert result.fll_steps == pll.dco.code_bits

    def test_lock_time_microseconds(self):
        """Dual-loop lock completes in tens of reference cycles."""
        pll = Adpll()
        result = pll.lock(250e6)
        assert pll.lock_time_seconds(result) < 10e-6

    def test_history_recorded(self):
        result = Adpll().lock(250e6)
        assert len(result.history) == result.fll_steps + result.pll_steps

    def test_reported_implementation_figures(self):
        pll = Adpll()
        assert pll.area_mm2 == ADPLL_AREA_MM2 == 0.05
        assert pll.power_uw == ADPLL_POWER_UW == 350.0


class TestBangBangPd:
    def test_truth_table(self):
        pd = BangBangPhaseDetector()
        assert pd.decide(0, 0, 0) == pd.NO_TRANSITION
        assert pd.decide(1, 1, 1) == pd.NO_TRANSITION
        assert pd.decide(0, 1, 1) == pd.EARLY
        assert pd.decide(0, 0, 1) == pd.LATE
        assert pd.decide(1, 0, 0) == pd.EARLY
        assert pd.decide(1, 1, 0) == pd.LATE

    def test_binary_inputs_only(self):
        with pytest.raises(ValueError):
            BangBangPhaseDetector().decide(0, 2, 1)


class TestCaptureRange:
    def test_sar_residual_within_one_lsb(self):
        dco = DcoConfig()
        residual = sar_capture_range_check(dco, 250e6)
        assert residual <= dco.gain_hz

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            sar_capture_range_check(DcoConfig(), 1e3)
