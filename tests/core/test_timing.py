"""Unit tests for the calibrated timing model — the Table V cycle counts."""

import pytest

from repro.core.timing import (
    BUTTERFLY_PIPELINE,
    CMD_DISPATCH,
    STAGE_OVERHEAD,
    ClockConfig,
    TimingModel,
)


@pytest.fixture(scope="module")
def tm():
    return TimingModel()


class TestClock:
    def test_250mhz_period(self):
        clock = ClockConfig()
        assert clock.period_ns == 4.0  # the Section III-D memory-read path

    def test_cycle_conversions(self):
        clock = ClockConfig()
        assert clock.cycles_to_us(250) == 1.0
        assert clock.cycles_to_seconds(250_000_000) == 1.0


class TestTable5Calibration:
    """The model must reproduce the silicon measurements exactly."""

    @pytest.mark.parametrize("n,expected", [(2**12, 24_841), (2**13, 53_535)])
    def test_ntt_cycles(self, tm, n, expected):
        assert tm.ntt_cycles(n) == expected

    @pytest.mark.parametrize("n,expected", [(2**12, 29_468), (2**13, 62_770)])
    def test_intt_cycles(self, tm, n, expected):
        assert tm.intt_cycles(n) == expected

    def test_polymul_2_12_exact(self, tm):
        assert tm.polymul_cycles(2**12) == 83_777

    def test_polymul_2_13_within_tolerance(self, tm):
        """Paper: 179,045 (their DMA prefetch hides ~30 cycles)."""
        assert abs(tm.polymul_cycles(2**13) - 179_045) / 179_045 < 0.0005

    @pytest.mark.parametrize("n,expected_us", [(2**12, 99.4), (2**13, 214.1)])
    def test_ntt_microseconds(self, tm, n, expected_us):
        _, us = tm.table5_row("NTT", n)
        assert abs(us - expected_us) < 0.1

    def test_ciphertext_mult_ms(self, tm):
        """Fig. 6 anchors: 0.84 ms (n=2^12, 1 tower), 3.58 ms (2^13, 2)."""
        ms_small = tm.cycles_to_us(tm.ciphertext_mult_cycles(2**12, 1)) / 1e3
        ms_large = tm.cycles_to_us(tm.ciphertext_mult_cycles(2**13, 2)) / 1e3
        assert abs(ms_small - 0.84) < 0.01
        assert abs(ms_large - 3.58) < 0.02


class TestStructure:
    def test_stage_overhead_composition(self):
        """22 = 2 x 9-deep butterfly pipeline + 4-cycle handoff."""
        assert BUTTERFLY_PIPELINE == 9
        assert STAGE_OVERHEAD == 22
        assert CMD_DISPATCH == 1

    def test_ntt_closed_form(self, tm):
        for log_n in range(4, 15):
            n = 1 << log_n
            ii = tm.butterfly_initiation_interval(n)
            expected = (n // 2) * log_n * ii + STAGE_OVERHEAD * log_n + 1
            assert tm.ntt_cycles(n) == expected

    def test_pointwise_burst_structure(self, tm):
        """PW(n) = n + n/8 + 19 (8-beat bursts + setup)."""
        assert tm.pointwise_cycles(2**12) == 4096 + 512 + 19

    def test_ii_switches_at_dual_port_capacity(self, tm):
        assert tm.butterfly_initiation_interval(2**13) == 1
        assert tm.butterfly_initiation_interval(2**14) == 2

    def test_ciphertext_mult_composition(self, tm):
        """Algorithm 3: 4 NTT + 4 Hadamard + 1 add + 3 iNTT per tower."""
        n = 2**12
        expected = (
            4 * tm.ntt_cycles(n)
            + 5 * tm.pointwise_cycles(n)
            + 3 * tm.intt_cycles(n)
        )
        assert tm.ciphertext_mult_cycles(n, 1) == expected
        assert tm.ciphertext_mult_cycles(n, 3) == 3 * expected

    def test_relinearization_scales_with_digits(self, tm):
        n = 2**12
        r5 = tm.relinearization_cycles(n, 5)
        r10 = tm.relinearization_cycles(n, 10)
        per_digit = tm.ntt_cycles(n) + 4 * tm.pointwise_cycles(n) + tm.memcpy_cycles(n)
        assert r10 - r5 == 5 * per_digit

    def test_invalid_degree(self, tm):
        with pytest.raises(ValueError):
            tm.ntt_cycles(100)
        with pytest.raises(ValueError):
            tm.table5_row("FFT", 64)
