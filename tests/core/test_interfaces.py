"""Unit tests for the UART/SPI host-link models."""

import pytest

from repro.core.interfaces import SpiLink, UartLink


class TestSpi:
    def test_50mhz_default(self):
        """Section III-K: SPI IO timing constrained to 50 MHz."""
        assert SpiLink().clock_hz == 50e6

    def test_polynomial_transfer_time(self):
        """n = 2^13 x 128 bits at 50 Mbps ~ 21 ms — why on-chip residency
        matters."""
        spi = SpiLink(framing_overhead=0.0)
        seconds = spi.send_polynomial(8192, 128)
        assert seconds == pytest.approx(8192 * 128 / 50e6)

    def test_framing_overhead_increases_time(self):
        base = SpiLink(framing_overhead=0.0).transfer_seconds(1000)
        framed = SpiLink(framing_overhead=0.05).transfer_seconds(1000)
        assert framed == pytest.approx(base * 1.05)

    def test_stats_accumulate(self):
        spi = SpiLink()
        spi.send_polynomial(64)
        spi.receive_polynomial(64)
        spi.register_write()
        assert spi.stats.bits_sent == 64 * 128 + 72
        assert spi.stats.bits_received == 64 * 128
        assert spi.stats.transactions == 3

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            SpiLink().transfer_seconds(-1)

    def test_bad_clock(self):
        with pytest.raises(ValueError):
            SpiLink(clock_hz=0)


class TestUart:
    def test_8n1_framing(self):
        """10 line bits per byte."""
        uart = UartLink(baud_rate=1_000_000)
        assert uart.transfer_seconds(8) == pytest.approx(10 / 1e6)

    def test_uart_slower_than_spi(self):
        """The validation setup's UART is the slow path."""
        uart = UartLink(baud_rate=921_600)
        spi = SpiLink()
        assert uart.send_polynomial(4096) > spi.send_polynomial(4096)

    def test_bad_baud(self):
        with pytest.raises(ValueError):
            UartLink(baud_rate=0)

    def test_register_write_cost(self):
        uart = UartLink(baud_rate=921_600)
        assert uart.register_write() == pytest.approx(9 * 10 / 921_600)
