"""Unit tests for the DMA engine and its background-overlap accounting."""

import pytest

from repro.core.chip import CoFHEE
from repro.core.isa import Opcode


@pytest.fixture
def chip():
    return CoFHEE()


class TestForegroundCopy:
    def test_copy_moves_data(self, chip, rng):
        mm = chip.memory_map
        src = mm.base_address("SP0")
        dst = mm.base_address("SP1")
        data = [rng.randrange(1 << 64) for _ in range(32)]
        chip.bus.burst_write(src, data)
        cycles = chip.dma.copy(src, dst, 32)
        got, _ = chip.bus.burst_read(dst, 32)
        assert got == data
        assert cycles == chip.timing.memcpy_cycles(32)

    def test_bit_reversed_copy(self, chip):
        from repro.polymath.bitrev import bit_reverse_permute

        mm = chip.memory_map
        src, dst = mm.base_address("SP0"), mm.base_address("SP1")
        data = list(range(16))
        chip.bus.burst_write(src, data)
        chip.dma.copy(src, dst, 16, bit_reversed=True)
        got, _ = chip.bus.burst_read(dst, 16)
        assert got == bit_reverse_permute(data)

    def test_stats(self, chip):
        mm = chip.memory_map
        chip.dma.copy(mm.base_address("SP0"), mm.base_address("SP1"), 64,
                      functional=False)
        assert chip.dma.stats.transfers == 1
        assert chip.dma.stats.words_moved == 64


class TestBackgroundOverlap:
    def test_fully_hidden_behind_long_compute(self, chip):
        """Section III-F: the next polynomial's load hides behind the
        running NTT — zero exposed cycles."""
        mm = chip.memory_map
        n = 4096
        ntt_cycles = chip.timing.ntt_cycles(n)
        exposed = chip.dma.schedule_background(
            mm.base_address("SP0"), mm.base_address("DP2"), n,
            compute_window_cycles=ntt_cycles, functional=False,
        )
        assert exposed == 0
        assert chip.dma.stats.background_cycles_hidden == chip.timing.memcpy_cycles(n)

    def test_partially_exposed_behind_short_compute(self, chip):
        mm = chip.memory_map
        transfer = chip.timing.memcpy_cycles(4096)
        exposed = chip.dma.schedule_background(
            mm.base_address("SP0"), mm.base_address("DP2"), 4096,
            compute_window_cycles=100, functional=False,
        )
        assert exposed == transfer - 100

    def test_transfer_fits_inside_ntt_window(self, chip):
        """The architectural invariant that makes double-buffering free:
        one polynomial load is much shorter than its NTT."""
        for log_n in range(8, 14):
            n = 1 << log_n
            assert chip.timing.memcpy_cycles(n) < chip.timing.ntt_cycles(n)


class TestCommandBuilder:
    def test_command_for(self, chip):
        cmd = chip.dma.command_for(0x2000_0000, 0x2010_0000, 64)
        assert cmd.opcode is Opcode.MEMCPY
        assert cmd.length == 64

    def test_command_for_reversed(self, chip):
        cmd = chip.dma.command_for(0x2000_0000, 0x2010_0000, 64,
                                   bit_reversed=True)
        assert cmd.opcode is Opcode.MEMCPYR
