"""Unit tests for the host-link wire protocol."""

import pytest

from repro.core.chip import CoFHEE
from repro.core.protocol import (
    Frame,
    FrameType,
    HostEndpoint,
    ProtocolError,
    decode,
    encode,
    polynomial_write_frames,
)
from repro.core.regs import CHIP_SIGNATURE, GPCFG_BASE


class TestFraming:
    def test_roundtrip_all_types(self):
        frames = [
            Frame(FrameType.REG_WRITE, 0x4002_0000, 0, (0xDEADBEEF,)),
            Frame(FrameType.REG_READ, 0x4002_0030),
            Frame(FrameType.MEM_WRITE, 0x2000_0000, 3, (1, 2, 1 << 120)),
            Frame(FrameType.MEM_READ, 0x2000_0000, 64),
            Frame(FrameType.TRIGGER),
            Frame(FrameType.STATUS),
        ]
        for frame in frames:
            assert decode(encode(frame)) == frame

    def test_checksum_detects_corruption(self):
        data = bytearray(encode(Frame(FrameType.STATUS)))
        data[2] ^= 0xFF
        with pytest.raises(ProtocolError, match="checksum"):
            decode(bytes(data))

    def test_truncated_frame(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode(b"\x01\x02")

    def test_unknown_opcode(self):
        body = bytes([0x7F]) + bytes(7)
        data = body + bytes([sum(body) & 0xFF])
        with pytest.raises(ProtocolError, match="opcode"):
            decode(data)

    def test_payload_length_mismatch(self):
        good = encode(Frame(FrameType.MEM_WRITE, 0, 2, (1, 2)))
        # chop one payload word and re-checksum
        bad = good[:-17]
        bad = bad + bytes([sum(bad) & 0xFF])
        with pytest.raises(ProtocolError, match="length"):
            decode(bad)

    def test_frame_validation(self):
        with pytest.raises(ValueError, match="32-bit"):
            Frame(FrameType.REG_WRITE, 0, 0, (1, 2))
        with pytest.raises(ValueError, match="match length"):
            Frame(FrameType.MEM_WRITE, 0, 5, (1,))


class TestEndpoint:
    @pytest.fixture
    def endpoint(self):
        return HostEndpoint(CoFHEE())

    def test_register_write_read(self, endpoint):
        dbg_offset = endpoint.chip.regs.spec("DBG_REG").offset
        addr = GPCFG_BASE + dbg_offset
        endpoint.handle(encode(Frame(FrameType.REG_WRITE, addr, 0, (0x1234,))))
        response = decode(endpoint.handle(encode(Frame(FrameType.REG_READ, addr))))
        assert response.payload == (0x1234,)

    def test_signature_over_the_wire(self, endpoint):
        """The post-silicon first-sign-of-life transaction."""
        sig_addr = GPCFG_BASE + endpoint.chip.regs.spec("SIGNATURE").offset
        response = decode(endpoint.handle(encode(Frame(FrameType.REG_READ, sig_addr))))
        assert response.payload == (CHIP_SIGNATURE,)

    def test_memory_burst_roundtrip(self, endpoint):
        base = endpoint.chip.memory_map.base_address("SP0")
        data = tuple((i * 37 + 5) % (1 << 128) for i in range(16))
        endpoint.handle(encode(Frame(FrameType.MEM_WRITE, base, 16, data)))
        response = decode(
            endpoint.handle(encode(Frame(FrameType.MEM_READ, base, 16)))
        )
        assert response.payload == data

    def test_status_reports_fifo_state(self, endpoint):
        from repro.core.isa import Command, Opcode

        response = decode(endpoint.handle(encode(Frame(FrameType.STATUS))))
        assert response.address & 1 == 0  # FIFO empty
        endpoint.chip.fifo.push(Command(Opcode.MEMCPY, x_addr=0, out_addr=0,
                                        length=4))
        response = decode(endpoint.handle(encode(Frame(FrameType.STATUS))))
        assert response.address & 1 == 1  # not empty

    def test_mem_read_needs_length(self, endpoint):
        with pytest.raises(ProtocolError, match="length"):
            endpoint.handle(encode(Frame(FrameType.MEM_READ, 0x2000_0000, 0)))

    def test_frames_counted(self, endpoint):
        endpoint.handle(encode(Frame(FrameType.STATUS)))
        endpoint.handle(encode(Frame(FrameType.TRIGGER)))
        assert endpoint.frames_handled == 2


class TestPolynomialFraming:
    def test_split_into_bursts(self):
        frames = polynomial_write_frames(0x2000_0000, list(range(1000)),
                                         burst_words=256)
        assert len(frames) == 4
        assert frames[0].length == 256 and frames[-1].length == 1000 - 768
        # addresses advance by 256 words * 16 bytes
        assert frames[1].address - frames[0].address == 256 * 16

    def test_wire_bits_accounting(self):
        frame = Frame(FrameType.MEM_WRITE, 0, 2, (1, 2))
        assert HostEndpoint.wire_bits(frame) == len(encode(frame)) * 8

    def test_full_polynomial_through_endpoint(self):
        endpoint = HostEndpoint(CoFHEE())
        base = endpoint.chip.memory_map.base_address("SP1")
        coeffs = [(i * 7919) % (1 << 64) for i in range(512)]
        for frame in polynomial_write_frames(base, coeffs):
            endpoint.handle(encode(frame))
        got, _ = endpoint.chip.bus.burst_read(base, 512)
        assert got == coeffs
