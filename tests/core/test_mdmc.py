"""Unit tests for the MDMC: functional fidelity and cycle accounting."""

import pytest

from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.core.errors import ConfigError
from repro.core.isa import Command, Opcode
from repro.polymath.ntt import NttContext
from repro.polymath.primes import ntt_friendly_prime

N = 64
Q = ntt_friendly_prime(N, 40)


@pytest.fixture(params=["pe", "vector"])
def drv(request):
    chip = CoFHEE(ChipConfig(fidelity=request.param))
    driver = CofheeDriver(chip)
    driver.program(Q, N)
    return driver


@pytest.fixture
def ctx():
    return NttContext(N, Q)


def _load(driver, name, coeffs):
    driver.load_polynomial(name, coeffs)


class TestNttFidelity:
    def test_forward_matches_reference(self, drv, ctx, rng):
        a = [rng.randrange(Q) for _ in range(N)]
        _load(drv, "P0", a)
        drv.ntt("P0", "P1")
        got, _ = drv.read_polynomial("P1")
        assert got == ctx.forward(a)

    def test_roundtrip(self, drv, rng):
        a = [rng.randrange(Q) for _ in range(N)]
        _load(drv, "P0", a)
        drv.ntt("P0", "P1")
        drv.intt("P1", "P2")
        got, _ = drv.read_polynomial("P2")
        assert got == a

    def test_shared_twiddle_table(self, drv, ctx, rng):
        """iNTT derives its twiddles from the forward table
        (Section VIII-B) — only psi powers are ever stored in TWD."""
        twd_addr = drv.chip.memory_map.base_address("TWD")
        stored, _ = drv.chip.bus.burst_read(twd_addr, N)
        assert stored == list(ctx._psi_brv)  # forward table only
        a = [rng.randrange(Q) for _ in range(N)]
        _load(drv, "P0", a)
        drv.intt("P0", "P1")
        got, _ = drv.read_polynomial("P1")
        assert got == ctx.inverse(a)

    def test_cycles_match_closed_form(self, drv, rng):
        a = [rng.randrange(Q) for _ in range(N)]
        _load(drv, "P0", a)
        report = drv.ntt("P0", "P1")
        assert report.cycles == drv.chip.timing.ntt_cycles(N)


class TestPointwiseOps:
    @pytest.mark.parametrize(
        "opcode,expected",
        [
            (Opcode.PMODADD, lambda a, b: [(x + y) % Q for x, y in zip(a, b)]),
            (Opcode.PMODSUB, lambda a, b: [(x - y) % Q for x, y in zip(a, b)]),
            (Opcode.PMODMUL, lambda a, b: [x * y % Q for x, y in zip(a, b)]),
            (Opcode.PMUL, lambda a, b: [(x * y) & ((1 << 128) - 1)
                                        for x, y in zip(a, b)]),
        ],
    )
    def test_binary_ops(self, drv, rng, opcode, expected):
        a = [rng.randrange(Q) for _ in range(N)]
        b = [rng.randrange(Q) for _ in range(N)]
        _load(drv, "P0", a)
        _load(drv, "P1", b)
        drv.pointwise(opcode, "P0", "P2", y="P1")
        got, _ = drv.read_polynomial("P2")
        assert got == expected(a, b)

    def test_pmodsqr(self, drv, rng):
        a = [rng.randrange(Q) for _ in range(N)]
        _load(drv, "P0", a)
        drv.pointwise(Opcode.PMODSQR, "P0", "P1")
        got, _ = drv.read_polynomial("P1")
        assert got == [x * x % Q for x in a]

    def test_cmodmul(self, drv, rng):
        a = [rng.randrange(Q) for _ in range(N)]
        c = rng.randrange(Q)
        _load(drv, "P0", a)
        drv.pointwise(Opcode.CMODMUL, "P0", "P1", constant=c)
        got, _ = drv.read_polynomial("P1")
        assert got == [x * c % Q for x in a]

    def test_in_place_pointwise(self, drv, rng):
        """dst == x buffer works (the 6-buffer Algorithm 3 schedule)."""
        a = [rng.randrange(Q) for _ in range(N)]
        b = [rng.randrange(Q) for _ in range(N)]
        _load(drv, "P0", a)
        _load(drv, "P1", b)
        drv.pointwise(Opcode.PMODMUL, "P0", "P0", y="P1")
        got, _ = drv.read_polynomial("P0")
        assert got == [x * y % Q for x, y in zip(a, b)]

    def test_pointwise_cycles(self, drv, rng):
        _load(drv, "P0", [0] * N)
        report = drv.pointwise(Opcode.PMODSQR, "P0", "P1")
        assert report.cycles == drv.chip.timing.pointwise_cycles(N)


class TestMemoryOps:
    def test_memcpy(self, drv, rng):
        a = [rng.randrange(Q) for _ in range(N)]
        _load(drv, "P0", a)
        cmd = Command(Opcode.MEMCPY, x_addr=drv.buffer_address("P0"),
                      out_addr=drv.buffer_address("P3"), length=N)
        drv.execute([cmd])
        got, _ = drv.read_polynomial("P3")
        assert got == a

    def test_memcpyr_bit_reverse(self, drv, rng):
        from repro.polymath.bitrev import bit_reverse_permute

        a = [rng.randrange(Q) for _ in range(N)]
        _load(drv, "P0", a)
        cmd = Command(Opcode.MEMCPYR, x_addr=drv.buffer_address("P0"),
                      out_addr=drv.buffer_address("P3"), length=N)
        drv.execute([cmd])
        got, _ = drv.read_polynomial("P3")
        assert got == bit_reverse_permute(a)


class TestPhaseTraces:
    def test_ntt_phases(self, drv, rng):
        _load(drv, "P0", [1] * N)
        report = drv.ntt("P0", "P1")
        kinds = [p.kind for p in report.trace.phases]
        assert kinds == ["dit_butterfly"]

    def test_intt_phases_include_const_pass(self, drv):
        _load(drv, "P0", [1] * N)
        report = drv.intt("P0", "P1")
        kinds = [p.kind for p in report.trace.phases]
        assert kinds == ["dif_butterfly", "const_mult"]

    def test_interrupt_per_command(self, drv):
        _load(drv, "P0", [1] * N)
        report = drv.polynomial_multiply("P0", "P0", "P1")
        assert report.trace.interrupts == 4  # 2 NTT + Hadamard + iNTT


class TestErrors:
    def test_intt_requires_n_inverse(self, drv):
        cmd = Command(Opcode.INTT, n=N, x_addr=drv.buffer_address("P0"),
                      twiddle_addr=drv.chip.memory_map.base_address("TWD"),
                      out_addr=drv.buffer_address("P1"), constant=0)
        with pytest.raises(ConfigError, match="n\\^-1"):
            drv.chip.mdmc.execute(cmd)

    def test_unprogrammed_modulus(self):
        chip = CoFHEE()
        cmd = Command(Opcode.PMODSQR, n=16,
                      x_addr=chip.memory_map.base_address("SP0"),
                      out_addr=chip.memory_map.base_address("SP1"))
        with pytest.raises(ConfigError, match="not programmed|not configured"):
            chip.mdmc.execute(cmd)

    def test_bad_fidelity(self):
        chip = CoFHEE()
        with pytest.raises(ValueError, match="fidelity"):
            chip.mdmc.execute(
                Command(Opcode.MEMCPY, x_addr=chip.memory_map.base_address("SP0"),
                        out_addr=chip.memory_map.base_address("SP1"), length=4),
                fidelity="quantum",
            )
