"""Unit tests for the Table II configuration register block."""

import pytest

from repro.core.errors import ConfigError
from repro.core.regs import (
    CHIP_SIGNATURE,
    GPCFG_BASE,
    REGISTER_SPECS,
    TOTAL_REGISTER_COUNT,
    ConfigRegisters,
)


class TestRegisterMap:
    def test_table2_registers_present(self):
        names = {s.name for s in REGISTER_SPECS}
        for expected in ("Q", "N", "INV_POLYDEG", "BARRETT_CTL1",
                         "BARRETT_CTL2", "COMMAND_FIFO", "SIGNATURE",
                         "PLL_CTL", "UARTM_CTL", "SPI_CLK_PAD_CTL"):
            assert expected in names

    def test_widths_match_table2(self):
        specs = {s.name: s.bits for s in REGISTER_SPECS}
        assert specs["Q"] == 128
        assert specs["N"] == 128
        assert specs["INV_POLYDEG"] == 128
        assert specs["BARRETT_CTL2"] == 160
        assert specs["BARRETT_CTL1"] == 32

    def test_chip_has_35_registers(self):
        """Table II is 'a representative subset of the 35 registers'."""
        assert TOTAL_REGISTER_COUNT == 35
        assert len(REGISTER_SPECS) <= 35

    def test_signature_reset_value(self):
        regs = ConfigRegisters()
        assert regs.read("SIGNATURE") == CHIP_SIGNATURE


class TestNamedAccess:
    def test_write_read(self):
        regs = ConfigRegisters()
        regs.write("Q", (1 << 109) - 1)
        assert regs.read("Q") == (1 << 109) - 1

    def test_width_enforced(self):
        regs = ConfigRegisters()
        with pytest.raises(ConfigError, match="bits"):
            regs.write("BARRETT_CTL1", 1 << 32)

    def test_unknown_register(self):
        regs = ConfigRegisters()
        with pytest.raises(ConfigError, match="no configuration register"):
            regs.read("BOGUS")


class TestBusAccess:
    def test_bus_read_32bit_words(self):
        regs = ConfigRegisters()
        regs.write("Q", 0x1234_5678_9ABC_DEF0)
        q_offset = regs.spec("Q").offset
        assert regs.bus_read(GPCFG_BASE + q_offset) == 0x9ABC_DEF0
        assert regs.bus_read(GPCFG_BASE + q_offset + 4) == 0x1234_5678

    def test_bus_write_merges_words(self):
        regs = ConfigRegisters()
        q_offset = regs.spec("Q").offset
        regs.bus_write(GPCFG_BASE + q_offset, 0xAAAA_AAAA)
        regs.bus_write(GPCFG_BASE + q_offset + 4, 0xBBBB_BBBB)
        assert regs.read("Q") == 0xBBBB_BBBB_AAAA_AAAA

    def test_bus_out_of_range(self):
        regs = ConfigRegisters()
        with pytest.raises(ConfigError, match="outside GPCFG"):
            regs.bus_read(0x4003_0000)

    def test_bus_unmapped_offset(self):
        regs = ConfigRegisters()
        with pytest.raises(ConfigError, match="no register"):
            regs.bus_read(GPCFG_BASE + 0xF000)

    def test_bus_write_32bit_only(self):
        regs = ConfigRegisters()
        with pytest.raises(ConfigError, match="32-bit"):
            regs.bus_write(GPCFG_BASE, 1 << 33)


class TestModulusProgramming:
    def test_program_modulus_derives_constants(self):
        from repro.polymath.modmath import modinv

        regs = ConfigRegisters()
        q, n = (1 << 54) - 33 * 2**13 + 0, 2**13
        from repro.polymath.primes import ntt_friendly_prime
        q = ntt_friendly_prime(n, 54)
        regs.program_modulus(q, n)
        assert regs.read("Q") == q
        assert regs.read("N") == n
        assert regs.read("INV_POLYDEG") == modinv(n, q)
        assert regs.read("BARRETT_CTL1") == 2 * q.bit_length()
        assert regs.read("BARRETT_CTL2") == (1 << (2 * q.bit_length())) // q

    def test_dump_snapshot(self):
        regs = ConfigRegisters()
        snap = regs.dump()
        assert snap["SIGNATURE"] == CHIP_SIGNATURE
        assert "Q" in snap
