"""Unit tests for the Section VI-B / VIII-A scalability models."""

import pytest

from repro.core.scaling import (
    MemoryScaling,
    RadixConfig,
    SplitParallelConfig,
    dual_port_tradeoff,
    radix4_speedup,
)
from repro.core.timing import TimingModel


class TestRadix:
    def test_radix2_matches_base(self):
        """Radix-2 config == fabricated chip."""
        assert RadixConfig(radix=2).ntt_cycles(2**13) == TimingModel().ntt_cycles(2**13)

    def test_radix4_formula(self):
        """(N/radix) * log_radix(N): 2048 * 6.5 -> paper's ~4x claim."""
        cfg = RadixConfig(radix=4)
        n = 2**12  # log_4(2^12) = 6 exactly
        assert cfg.ntt_cycles(n) == (n // 4) * 6 + 22 * 6 + 1

    def test_radix4_speedup_about_4x(self):
        assert 3.5 < radix4_speedup(2**13) < 4.5

    def test_extra_area_paper_figure(self):
        assert RadixConfig(radix=4).extra_area_mm2() == 1.9
        assert RadixConfig(radix=2).extra_area_mm2() == 0.0

    def test_bad_n(self):
        with pytest.raises(ValueError):
            RadixConfig(radix=4).ntt_cycles(100)


class TestSplitParallel:
    def test_two_pools_close_to_2x(self):
        gain = SplitParallelConfig(pools=2).throughput_gain(2**13)
        assert 1.7 < gain < 2.0  # "close to 2x", last stage still II = 1

    def test_single_pool_is_identity(self):
        cfg = SplitParallelConfig(pools=1)
        assert cfg.ntt_cycles(2**13) == TimingModel().ntt_cycles(2**13)

    def test_extra_banks(self):
        assert SplitParallelConfig(pools=2).extra_dual_port_banks() == 2
        assert SplitParallelConfig(pools=4).extra_dual_port_banks() == 6

    def test_pools_power_of_two(self):
        with pytest.raises(ValueError):
            SplitParallelConfig(pools=3).ntt_cycles(2**13)


class TestMemoryScaling:
    def test_linear_area(self):
        m = MemoryScaling()
        assert m.memory_area_mm2(2**14) == pytest.approx(2 * m.memory_area_mm2(2**13))

    def test_latency_grows(self):
        m = MemoryScaling()
        assert m.read_latency_ns(2**16) > m.read_latency_ns(2**13)

    def test_base_clock_250mhz(self):
        assert MemoryScaling().clock_mhz(2**13) == pytest.approx(250.0)

    def test_minor_clock_reduction(self):
        """'a minor reduction in clock frequency' — one octave costs <10%."""
        m = MemoryScaling()
        assert m.clock_mhz(2**14) > 0.9 * m.clock_mhz(2**13)


class TestDualPortTradeoff:
    def test_fabricated_mix(self):
        result = dual_port_tradeoff(3, 4)
        assert result["butterfly_ii"] == 1
        assert result["area_mm2"] > result["all_single_port_area_mm2"]

    def test_no_dual_port_means_ii2(self):
        assert dual_port_tradeoff(0, 8)["butterfly_ii"] == 2

    def test_negative_counts(self):
        with pytest.raises(ValueError):
            dual_port_tradeoff(-1, 4)
