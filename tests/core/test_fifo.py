"""Unit tests for the 32-deep command FIFO."""

import pytest

from repro.core.errors import FifoOverflow
from repro.core.fifo import FIFO_DEPTH, CommandFifo
from repro.core.isa import Command, Opcode


def _cmd(i: int) -> Command:
    return Command(Opcode.MEMCPY, x_addr=i, out_addr=i + 1, length=8)


class TestFifo:
    def test_depth_is_32(self):
        """Section III-I: 'We define the length of the queue to be 32'."""
        assert FIFO_DEPTH == 32
        assert CommandFifo().depth == 32

    def test_strict_order(self):
        fifo = CommandFifo()
        fifo.push_all([_cmd(i) for i in range(5)])
        assert [fifo.pop().x_addr for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_overflow(self):
        fifo = CommandFifo(depth=2)
        fifo.push(_cmd(0))
        fifo.push(_cmd(1))
        assert fifo.full
        with pytest.raises(FifoOverflow, match="full"):
            fifo.push(_cmd(2))

    def test_pop_empty(self):
        with pytest.raises(FifoOverflow, match="empty"):
            CommandFifo().pop()

    def test_empty_interrupt_on_drain(self):
        """Interrupt fires when the queue drains (Fig. 2 flow)."""
        fifo = CommandFifo()
        fifo.push(_cmd(0))
        assert not fifo.take_interrupt()
        fifo.pop()
        assert fifo.take_interrupt()
        assert not fifo.take_interrupt()  # read-and-clear

    def test_high_watermark(self):
        fifo = CommandFifo()
        fifo.push_all([_cmd(i) for i in range(7)])
        fifo.pop()
        fifo.push(_cmd(9))
        assert fifo.stats.high_watermark == 7

    def test_refill_while_draining(self):
        """Host can keep loading while the queue is not full."""
        fifo = CommandFifo(depth=4)
        fifo.push_all([_cmd(i) for i in range(4)])
        fifo.pop()
        fifo.push(_cmd(99))  # room again
        assert len(fifo) == 4

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            CommandFifo(depth=0)
