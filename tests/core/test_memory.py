"""Unit tests for the SRAM bank model and memory map."""

import pytest

from repro.core.errors import MemoryFault
from repro.core.memory import MemoryMap, SramBank, WORD_BITS


class TestSramBank:
    def test_read_write(self):
        bank = SramBank("T", 16, ports=1)
        bank.write(3, 0xDEAD)
        assert bank.read(3) == 0xDEAD

    def test_out_of_range(self):
        bank = SramBank("T", 16, ports=1)
        with pytest.raises(MemoryFault, match="out of range"):
            bank.read(16)
        with pytest.raises(MemoryFault):
            bank.write(-1, 0)

    def test_word_width_enforced(self):
        bank = SramBank("T", 16, ports=2)
        bank.write(0, (1 << WORD_BITS) - 1)  # max 128-bit word fits
        with pytest.raises(MemoryFault, match="128-bit"):
            bank.write(0, 1 << WORD_BITS)

    def test_block_ops(self):
        bank = SramBank("T", 16, ports=1)
        bank.write_block(4, [1, 2, 3])
        assert bank.read_block(4, 3) == [1, 2, 3]

    def test_block_bounds(self):
        bank = SramBank("T", 16, ports=1)
        with pytest.raises(MemoryFault):
            bank.write_block(14, [1, 2, 3])

    def test_stats_counting(self):
        bank = SramBank("T", 16, ports=1)
        bank.write_block(0, [5] * 8)
        bank.read_block(0, 8)
        bank.read(0)
        assert bank.stats.writes == 8
        assert bank.stats.reads == 9

    def test_ports_validation(self):
        with pytest.raises(ValueError):
            SramBank("T", 16, ports=3)

    def test_capacity_properties(self):
        bank = SramBank("T", 8192, ports=2)
        assert bank.bytes == 8192 * 16
        assert bank.accesses_per_cycle() == 2


class TestMemoryMap:
    def test_fabricated_inventory(self):
        """3 DP + 4 SP data banks (one = twiddles) + CM0 (Section III-A)."""
        mm = MemoryMap.default()
        assert len(mm.dual_port) == 3
        assert len(mm.single_port) == 4
        assert mm.cm0_sram is not None
        assert mm.bank("TWD").ports == 1

    def test_total_memory_about_1mb(self):
        """'It is possible to increase the total memory size from 1 MB
        (currently used)' — 7 data banks x 128 KiB = 896 KiB + CM0."""
        mm = MemoryMap.default()
        total = mm.total_data_bytes() + mm.cm0_sram.bytes
        assert 900 * 1024 <= total <= 1024 * 1024

    def test_dual_port_two_address_windows(self):
        mm = MemoryMap.default()
        p0 = mm.base_address("DP0", port=0)
        p1 = mm.base_address("DP0", port=1)
        assert p0 != p1
        bank0, port0, _ = mm.decode(p0)
        bank1, port1, _ = mm.decode(p1)
        assert bank0 is bank1 and (port0, port1) == (0, 1)

    def test_single_port_has_one_window(self):
        mm = MemoryMap.default()
        with pytest.raises(MemoryFault, match="no port"):
            mm.base_address("SP0", port=1)

    def test_decode_word_offset(self):
        mm = MemoryMap.default()
        addr = mm.base_address("SP1") + 5 * 16  # word 5 (16 bytes/word)
        bank, _, word = mm.decode(addr)
        assert bank.name == "SP1" and word == 5

    def test_decode_below_sram_region(self):
        mm = MemoryMap.default()
        with pytest.raises(MemoryFault):
            mm.decode(0x1000_0000)

    def test_unknown_bank(self):
        mm = MemoryMap.default()
        with pytest.raises(MemoryFault, match="no bank"):
            mm.bank("DP9")

    def test_reset_stats(self):
        mm = MemoryMap.default()
        mm.bank("DP0").write(0, 1)
        mm.reset_stats()
        assert mm.bank("DP0").stats.writes == 0

    def test_gpcfg_range_convention(self):
        """Config registers at 0x4002_0000 (ARM Cortex-M convention)."""
        assert MemoryMap.GPCFG_BASE == 0x4002_0000
        assert MemoryMap.SRAM_BASE == 0x2000_0000
