"""Unit tests for the activity-based power model (Table V calibration)."""

import pytest

from repro.core.mdmc import PhaseRecord
from repro.core.power import CORE_VOLTAGE, PowerModel, PowerReport


@pytest.fixture
def model():
    return PowerModel()


class TestPhaseTable:
    def test_ntt_is_highest_average(self, model):
        """'The NTT operation results in the highest peak power'."""
        n = 2**12
        dit = model.phase_avg_mw("dit_butterfly", n)
        for phase in ("dif_butterfly", "const_mult", "hadamard",
                      "pointwise_add", "memcpy", "idle"):
            assert model.phase_avg_mw(phase, n) <= dit

    def test_const_mult_is_low_power(self, model):
        """'...due to the lower power consumption of the constant
        multiplication' (Section VI-A)."""
        n = 2**12
        assert model.phase_avg_mw("const_mult", n) < model.phase_avg_mw(
            "dif_butterfly", n
        )

    def test_peak_exceeds_average(self, model):
        for phase in ("dit_butterfly", "dif_butterfly", "hadamard"):
            assert model.phase_peak_mw(phase, 2**12) > model.phase_avg_mw(
                phase, 2**12
            )

    def test_unknown_phase(self, model):
        with pytest.raises(KeyError):
            model.phase_avg_mw("warp_drive", 2**12)


class TestReportIntegration:
    def test_empty_trace(self, model):
        report = model.report([])
        assert report.avg_mw == 0 and report.cycles == 0

    def test_single_phase(self, model):
        report = model.report([PhaseRecord("dit_butterfly", 1000, 2**12)])
        assert report.avg_mw == pytest.approx(24.5)
        assert report.peak_mw == pytest.approx(30.4)
        assert report.cycles == 1000

    def test_weighted_average(self, model):
        phases = [
            PhaseRecord("dit_butterfly", 1000, 2**12),  # 24.5 mW
            PhaseRecord("const_mult", 1000, 2**12),  # 11.3 mW
        ]
        report = model.report(phases)
        assert report.avg_mw == pytest.approx((24.5 + 11.3) / 2)
        assert report.peak_mw == pytest.approx(30.4)  # max of phase peaks

    def test_seconds_at_250mhz(self, model):
        report = model.report([PhaseRecord("idle", 250_000_000, 2**12)])
        assert report.seconds == pytest.approx(1.0)


class TestPowerReportDerived:
    def test_current_at_core_voltage(self):
        report = PowerReport(avg_mw=24.0, peak_mw=30.0, cycles=1,
                             seconds=1e-6)
        assert report.avg_current_ma == pytest.approx(24.0 / CORE_VOLTAGE)
        assert report.peak_current_ma == pytest.approx(30.0 / CORE_VOLTAGE)

    def test_paper_current_claim(self, model):
        """'a power supply with a peak power rating of around 30mA and an
        average power of around 25mA' for polynomial multiplication."""
        phases = [PhaseRecord("dit_butterfly", 2 * 24841, 2**12),
                  PhaseRecord("hadamard", 4627, 2**12),
                  PhaseRecord("dif_butterfly", 24841, 2**12),
                  PhaseRecord("const_mult", 4627, 2**12)]
        report = model.report(phases)
        assert 17 <= report.avg_current_ma <= 25
        assert 23 <= report.peak_current_ma <= 30

    def test_pdp(self):
        report = PowerReport(avg_mw=22.0, peak_mw=30.0, cycles=1,
                             seconds=0.84e-3)
        assert report.pdp_w_ms() == pytest.approx(22e-3 * 0.84)
        assert report.energy_mj == pytest.approx(22.0 * 0.84e-3)
