"""Unit tests for the Table I instruction set and command encoding."""

import pytest

from repro.core.errors import IsaError
from repro.core.isa import Command, Opcode


class TestOpcodeProperties:
    def test_all_table1_ops_present(self):
        names = {op.value for op in Opcode}
        assert names == {
            "NTT", "iNTT", "PMODADD", "PMODMUL", "PMODSQR", "PMODSUB",
            "CMODMUL", "PMUL", "MEMCPY", "MEMCPYR",
        }

    def test_compute_vs_memory_split(self):
        """Memory ops can overlap compute (Section III-B)."""
        assert not Opcode.MEMCPY.is_compute
        assert not Opcode.MEMCPYR.is_compute
        assert Opcode.NTT.is_compute and Opcode.CMODMUL.is_compute

    def test_operand_requirements(self):
        assert Opcode.PMODADD.needs_y_operand
        assert not Opcode.PMODSQR.needs_y_operand
        assert Opcode.NTT.needs_twiddles
        assert not Opcode.PMODMUL.needs_twiddles


class TestCommandValidation:
    def test_bad_n(self):
        with pytest.raises(IsaError, match="power of two"):
            Command(Opcode.NTT, n=100)

    def test_bad_length(self):
        with pytest.raises(IsaError, match="length"):
            Command(Opcode.MEMCPY, length=0)

    def test_negative_constant(self):
        with pytest.raises(IsaError):
            Command(Opcode.CMODMUL, n=16, constant=-1)

    def test_valid_command(self):
        cmd = Command(Opcode.PMODMUL, n=64, x_addr=0x2000_0000,
                      y_addr=0x2010_0000, out_addr=0x2020_0000)
        assert str(cmd) == "PMODMUL(n=64)"


class TestEncoding:
    def test_roundtrip(self):
        cmd = Command(Opcode.NTT, n=4096, x_addr=0x2000_0000,
                      twiddle_addr=0x2060_0000, out_addr=0x2010_0000)
        assert Command.decode(cmd.encode()) == cmd

    def test_frame_is_eight_words(self):
        cmd = Command(Opcode.MEMCPY, x_addr=1, out_addr=2, length=64)
        words = cmd.encode()
        assert len(words) == 8
        assert all(0 <= w < (1 << 32) for w in words)

    def test_decode_bad_frame_length(self):
        with pytest.raises(IsaError, match="8 words"):
            Command.decode((0,) * 7)

    def test_decode_bad_opcode(self):
        with pytest.raises(IsaError, match="opcode"):
            Command.decode((0xFF, 0, 0, 0, 0, 0, 0, 0))

    def test_constant_up_to_64_bits(self):
        cmd = Command(Opcode.CMODMUL, n=16, constant=(1 << 60) + 7)
        assert Command.decode(cmd.encode()).constant == (1 << 60) + 7
