"""Unit tests for the operation scheduler (buffer allocation + DMA overlap)."""

import pytest

from repro.core.errors import CapacityError
from repro.core.scheduler import (
    Op,
    OpKind,
    Scheduler,
    ciphertext_multiply_program,
)
from repro.core.timing import TimingModel

N = 8192


class TestAlgorithm3Program:
    def test_compute_cycles_match_driver_schedule(self):
        sched = Scheduler(n=N, num_buffers=6).compile(ciphertext_multiply_program())
        assert sched.compute_cycles == TimingModel().ciphertext_mult_cycles(N, 1)

    def test_fits_chip_buffers(self):
        """The allocator needs <= 6 buffers — the fabricated bank count."""
        sched = Scheduler(n=N, num_buffers=6).compile(ciphertext_multiply_program())
        assert sched.peak_buffers <= 6

    def test_allocator_beats_hand_schedule(self):
        """Liveness allocation finds a 5-buffer schedule (the 6th bank is
        the DMA staging buffer, Section III-F)."""
        sched = Scheduler(n=N, num_buffers=5).compile(ciphertext_multiply_program())
        assert sched.peak_buffers == 5

    def test_four_buffers_insufficient(self):
        with pytest.raises(CapacityError, match="buffer pressure|no free"):
            Scheduler(n=N, num_buffers=4).compile(ciphertext_multiply_program())

    def test_prefetch_hides_data_movement(self):
        with_pf = Scheduler(n=N, num_buffers=6, prefetch=True).compile(
            ciphertext_multiply_program()
        )
        without = Scheduler(n=N, num_buffers=6, prefetch=False).compile(
            ciphertext_multiply_program()
        )
        assert with_pf.total_cycles < without.total_cycles
        assert with_pf.dma_hidden_cycles > 0
        assert with_pf.savings_fraction() > 0.3

    def test_compute_cycles_unaffected_by_prefetch(self):
        a = Scheduler(n=N, num_buffers=6, prefetch=True).compile(
            ciphertext_multiply_program()
        )
        b = Scheduler(n=N, num_buffers=6, prefetch=False).compile(
            ciphertext_multiply_program()
        )
        assert a.compute_cycles == b.compute_cycles


class TestAllocator:
    def test_in_place_reuse(self):
        """x -> NTT -> iNTT chains run in one buffer."""
        ops = [
            Op(OpKind.LOAD, "x"),
            Op(OpKind.NTT, "X", ("x",)),
            Op(OpKind.INTT, "y", ("X",)),
            Op(OpKind.STORE, "out", ("y",)),
        ]
        sched = Scheduler(n=64, num_buffers=2).compile(ops)
        assert sched.peak_buffers == 1

    def test_live_values_need_distinct_buffers(self):
        ops = [
            Op(OpKind.LOAD, "a"),
            Op(OpKind.LOAD, "b"),
            Op(OpKind.HADAMARD, "c", ("a", "b")),  # a, b still live here
            Op(OpKind.HADAMARD, "d", ("a", "b")),  # a dies -> d in-place
            Op(OpKind.ADD, "e", ("c", "d")),
            Op(OpKind.STORE, "out", ("e",)),
        ]
        sched = Scheduler(n=64, num_buffers=3).compile(ops)
        assert sched.peak_buffers == 3
        with pytest.raises(CapacityError):
            Scheduler(n=64, num_buffers=2).compile(ops)

    def test_undefined_input_rejected(self):
        with pytest.raises(ValueError, match="undefined"):
            Scheduler(n=64).compile([Op(OpKind.NTT, "X", ("ghost",))])

    def test_arity_validation(self):
        with pytest.raises(ValueError, match="inputs"):
            Op(OpKind.HADAMARD, "c", ("a",))

    def test_min_buffers(self):
        with pytest.raises(ValueError):
            Scheduler(n=64, num_buffers=1)


class TestDmaAccounting:
    def test_first_load_is_exposed(self):
        """Nothing computes before the first load — it cannot hide."""
        ops = [Op(OpKind.LOAD, "x"), Op(OpKind.NTT, "X", ("x",)),
               Op(OpKind.STORE, "o", ("X",))]
        sched = Scheduler(n=64, num_buffers=3).compile(ops)
        assert sched.ops[0].dma_exposed_cycles == TimingModel().memcpy_cycles(64)

    def test_later_loads_hide_behind_compute(self):
        ops = [
            Op(OpKind.LOAD, "a"),
            Op(OpKind.NTT, "A", ("a",)),
            Op(OpKind.LOAD, "b"),  # hides behind the NTT window
            Op(OpKind.NTT, "B", ("b",)),
            Op(OpKind.HADAMARD, "c", ("A", "B")),
            Op(OpKind.STORE, "o", ("c",)),
        ]
        sched = Scheduler(n=4096, num_buffers=4).compile(ops)
        load_b = sched.ops[2]
        assert load_b.dma_exposed_cycles == 0

    def test_no_prefetch_exposes_everything(self):
        ops = [Op(OpKind.LOAD, "x"), Op(OpKind.NTT, "X", ("x",)),
               Op(OpKind.STORE, "o", ("X",))]
        sched = Scheduler(n=64, num_buffers=3, prefetch=False).compile(ops)
        assert sched.dma_hidden_cycles == 0
        assert sched.dma_exposed_cycles == 2 * TimingModel().memcpy_cycles(64)
