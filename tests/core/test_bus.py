"""Unit tests for the AHB-Lite crossbar model."""

import pytest

from repro.core.bus import AhbLiteBus
from repro.core.errors import BusError
from repro.core.memory import MemoryMap


@pytest.fixture
def bus():
    return AhbLiteBus(MemoryMap.default(poly_words=64))


class TestGeometry:
    def test_fabricated_crossbar_is_10x11(self, bus):
        """Section III-G1: a 10x11 crossbar."""
        assert bus.manager_count == 10
        assert bus.subordinate_count == 11

    def test_description(self, bus):
        assert "10x11" in bus.crossbar_description()


class TestTransfers:
    def test_single_write_read(self, bus):
        addr = bus.memory_map.base_address("SP0") + 2 * 16
        bus.single_write(addr, 777)
        value, cycles = bus.single_read(addr)
        assert value == 777
        assert cycles >= 1 + 2  # address + read latency

    def test_burst_roundtrip(self, bus):
        addr = bus.memory_map.base_address("DP1")
        data = list(range(40))
        bus.burst_write(addr, data)
        values, _ = bus.burst_read(addr, 40)
        assert values == data

    def test_burst_cycle_cost_has_segment_overhead(self, bus):
        """INCR8 segmentation: one re-arbitration cycle per 8 beats."""
        addr = bus.memory_map.base_address("SP1")
        bus.burst_write(addr, [0] * 64)
        _, cycles = bus.burst_read(addr, 64)
        assert cycles == 64 + 8 + 2  # beats + 8 segments + read latency

    def test_stats(self, bus):
        addr = bus.memory_map.base_address("SP0")
        bus.burst_write(addr, [0] * 16)
        bus.single_read(addr)
        assert bus.stats.beats == 17
        assert bus.stats.burst_transfers == 2
        assert bus.stats.single_transfers == 1


class TestArbitration:
    def test_same_port_conflict(self, bus):
        bus.begin_cycle()
        assert bus.claim("MDMC_A", "DP0", 0)
        assert not bus.claim("DMA_RD", "DP0", 0)
        assert bus.stats.conflicts == 1

    def test_different_ports_no_conflict(self, bus):
        """Dual-port banks serve two managers at once."""
        bus.begin_cycle()
        assert bus.claim("MDMC_A", "DP0", 0)
        assert bus.claim("MDMC_B", "DP0", 1)

    def test_parallel_managers_different_banks(self, bus):
        """Section III-F: MDMC, DMA, CM0 reach different banks in parallel."""
        bus.begin_cycle()
        assert bus.claim("MDMC_A", "DP0", 0)
        assert bus.claim("DMA_RD", "SP0", 0)
        assert bus.claim("CM0_D", "SP1", 0)

    def test_cycle_boundary_clears_claims(self, bus):
        bus.begin_cycle()
        bus.claim("MDMC_A", "DP0", 0)
        bus.begin_cycle()
        assert bus.claim("DMA_RD", "DP0", 0)

    def test_unknown_manager(self, bus):
        bus.begin_cycle()
        with pytest.raises(BusError, match="unknown manager"):
            bus.claim("GPU", "DP0", 0)

    def test_same_manager_reclaim_ok(self, bus):
        bus.begin_cycle()
        assert bus.claim("MDMC_A", "DP0", 0)
        assert bus.claim("MDMC_A", "DP0", 0)
