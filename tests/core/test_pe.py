"""Unit tests for the processing element's Barrett datapath."""

import pytest

from repro.core.errors import ConfigError
from repro.core.pe import MAX_COEFF_BITS, PeMode, ProcessingElement
from repro.polymath.primes import ntt_friendly_prime


@pytest.fixture
def pe():
    element = ProcessingElement()
    element.configure(ntt_friendly_prime(64, 40))
    return element


class TestConfiguration:
    def test_unconfigured_rejects_ops(self):
        pe = ProcessingElement()
        with pytest.raises(ConfigError, match="not configured"):
            pe.mul(1, 2)

    def test_max_width_is_128_bits(self):
        pe = ProcessingElement()
        pe.configure(ntt_friendly_prime(4096, 128))
        with pytest.raises(ConfigError, match="RNS"):
            pe.configure((1 << 129) + 1)

    def test_barrett_register_contents(self, pe):
        """BARRETT_CTL1/2 contents derive from q."""
        assert pe.barrett_k == 2 * pe.q.bit_length()
        assert pe.barrett_mu == (1 << pe.barrett_k) // pe.q


class TestDatapath:
    def test_mul(self, pe):
        q = pe.q
        assert pe.mul(q - 2, q - 3) == (q - 2) * (q - 3) % q

    def test_add_sub(self, pe):
        q = pe.q
        assert pe.add(q - 1, 5) == 4
        assert pe.sub(3, 5) == q - 2

    def test_mul_plain_full_width(self, pe):
        """PMUL keeps the full product (no reduction)."""
        assert pe.mul_plain(1 << 100, 3) == 3 << 100

    def test_ct_butterfly(self, pe):
        q = pe.q
        u, v, t = 123, 456, 789
        hi, lo = pe.butterfly(u, v, t)
        assert hi == (u + v * t) % q
        assert lo == (u - v * t) % q

    def test_gs_butterfly(self, pe):
        q = pe.q
        u, v, t = 123, 456, 789
        s, d = pe.gs_butterfly(u, v, t)
        assert s == (u + v) % q
        assert d == (u - v) * t % q

    def test_butterflies_invert(self, pe):
        """CT butterfly followed by GS butterfly with inverse twiddle and
        /2 recovers the inputs — the NTT/iNTT duality at radix-2 scale."""
        from repro.polymath.modmath import modinv

        q = pe.q
        u, v, t = 1111, 2222, 3333
        a, b = pe.butterfly(u, v, t)
        s, d = pe.gs_butterfly(a, b, modinv(t, q))
        inv2 = modinv(2, q)
        assert s * inv2 % q == u
        assert d * inv2 % q == v


class TestStatsAndLatency:
    def test_stats_count_units(self, pe):
        pe.stats.reset()
        pe.butterfly(1, 2, 3)
        pe.mul(4, 5)
        pe.add(1, 1)
        assert pe.stats.multiplies == 2
        assert pe.stats.adds == 2
        assert pe.stats.subs == 1
        assert pe.stats.butterflies == 1

    def test_latencies_match_paper(self):
        """Section III-E: mult 5 cycles, add/sub 1 cycle, all II = 1."""
        assert ProcessingElement.latency(PeMode.MUL) == 5
        assert ProcessingElement.latency(PeMode.ADD) == 1
        assert ProcessingElement.latency(PeMode.SUB) == 1
        assert ProcessingElement.latency(PeMode.BUTTERFLY) == 6

    def test_native_width_constant(self):
        assert MAX_COEFF_BITS == 128
