"""Unit tests for the assembled chip top level."""

import pytest

from repro.core.chip import ChipConfig, CoFHEE
from repro.core.errors import ConfigError
from repro.polymath.primes import ntt_friendly_prime


class TestAssembly:
    def test_inventory_matches_paper(self):
        inv = CoFHEE().inventory()
        assert inv["technology"] == "GF 55nm LPE"
        assert inv["design_area_mm2"] == 12.0
        assert inv["frequency_mhz"] == 250.0
        assert inv["max_native_n"] == 2**14
        assert inv["optimized_n"] == 2**13
        assert inv["max_coeff_bits"] == 128
        assert inv["dual_port_banks"] == 3
        assert inv["single_port_banks"] == 4
        assert inv["command_fifo_depth"] == 32

    def test_default_fidelity(self):
        assert CoFHEE().mdmc.fidelity == "vector"
        assert CoFHEE(ChipConfig(fidelity="timing")).mdmc.fidelity == "timing"

    def test_custom_frequency(self):
        chip = CoFHEE(ChipConfig(frequency_hz=500e6))
        assert chip.clock.period_ns == 2.0


class TestModulusProgramming:
    def test_configure_programs_registers_and_pe(self):
        chip = CoFHEE()
        q = ntt_friendly_prime(4096, 109)
        chip.configure_modulus(q, 4096)
        assert chip.programmed_q == q
        assert chip.programmed_n == 4096
        assert chip.n_inverse * 4096 % q == 1
        assert chip.pe.q == q

    def test_rejects_bad_degree(self):
        chip = CoFHEE()
        with pytest.raises(ConfigError, match="power of two"):
            chip.configure_modulus(97, 100)

    def test_rejects_over_native_max(self):
        chip = CoFHEE()
        q = ntt_friendly_prime(2**15, 60)
        with pytest.raises(ConfigError, match="native maximum"):
            chip.configure_modulus(q, 2**15)

    def test_accepts_max_native_n(self):
        chip = CoFHEE()
        q = ntt_friendly_prime(2**14, 109)
        chip.configure_modulus(q, 2**14)
        assert chip.programmed_n == 2**14


class TestStatsReset:
    def test_reset_clears_counters(self):
        chip = CoFHEE()
        chip.pe.configure(ntt_friendly_prime(64, 30))
        chip.pe.mul(1, 2)
        chip.memory_map.bank("SP0").write(0, 1)
        chip.mdmc.total_cycles = 99
        chip.reset_stats()
        assert chip.pe.stats.multiplies == 0
        assert chip.memory_map.bank("SP0").stats.writes == 0
        assert chip.mdmc.total_cycles == 0
