"""Unit tests for the ARM Cortex-M0 sequencer (execution mode 3)."""

import pytest

from repro.core.cm0 import CM0_DISPATCH_CYCLES, Cm0Program, CortexM0, LoopMarker
from repro.core.errors import CapacityError, IsaError
from repro.core.isa import Command, Opcode
from repro.core.memory import SramBank


def _cmd(i: int = 0) -> Command:
    return Command(Opcode.MEMCPY, x_addr=i, out_addr=i + 16, length=8)


@pytest.fixture
def cm0():
    return CortexM0(SramBank("CM0", 4096, ports=1))


class TestProgram:
    def test_flatten_linear(self):
        prog = Cm0Program().add(_cmd(0)).add(_cmd(1))
        assert [c.x_addr for c in prog.flatten()] == [0, 1]

    def test_flatten_loop_unrolls(self):
        prog = Cm0Program().loop(3, [_cmd(7)])
        assert [c.x_addr for c in prog.flatten()] == [7, 7, 7]

    def test_loops_stored_rolled(self):
        """The point of a CPU over a FIFO: loops cost one descriptor."""
        looped = Cm0Program().loop(100, [_cmd()])
        unrolled = Cm0Program()
        for _ in range(100):
            unrolled.add(_cmd())
        assert looped.stored_words < unrolled.stored_words / 10

    def test_bad_loop(self):
        with pytest.raises(IsaError):
            Cm0Program().loop(0, [_cmd()])
        with pytest.raises(IsaError):
            Cm0Program().loop(2, [])


class TestExecution:
    def test_run_issues_in_order(self, cm0):
        prog = Cm0Program().add(_cmd(0)).loop(2, [_cmd(1)])
        cm0.load_program(prog)
        issued = []

        def issue(cmd):
            issued.append(cmd.x_addr)
            return 10

        cycles, count = cm0.run(issue)
        assert issued == [0, 1, 1]
        assert count == 3
        assert cycles == 3 * (CM0_DISPATCH_CYCLES + 10)

    def test_run_without_program(self, cm0):
        with pytest.raises(IsaError, match="no program"):
            cm0.run(lambda c: 0)

    def test_capacity_enforced(self):
        small = CortexM0(SramBank("CM0", 16, ports=1))
        prog = Cm0Program()
        for i in range(10):
            prog.add(_cmd(i))
        with pytest.raises(CapacityError, match="words"):
            small.load_program(prog)

    def test_program_committed_to_imem(self, cm0):
        prog = Cm0Program().add(_cmd(3))
        cm0.load_program(prog)
        # first stored word is the encoded opcode word of the command
        assert cm0.imem.read(0) == _cmd(3).encode()[0]
