"""Unit tests for the host driver: modes, composed ops, RNS, large n."""

import pytest

from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver, OperationReport
from repro.core.errors import CapacityError, ConfigError
from repro.polymath.ntt import reference_negacyclic_multiply
from repro.polymath.primes import ntt_friendly_prime
from repro.polymath.rns import RnsBasis, plan_towers

N = 64
Q = ntt_friendly_prime(N, 40)


@pytest.fixture
def drv():
    driver = CofheeDriver(CoFHEE())
    driver.program(Q, N)
    return driver


class TestBringUp:
    def test_program_loads_twiddles_and_allocates(self, drv):
        assert len(drv.buffer_names) >= 6
        assert drv.chip.programmed_q == Q

    def test_unknown_buffer(self, drv):
        with pytest.raises(ConfigError, match="unknown buffer"):
            drv.buffer_address("P9999")

    def test_load_length_check(self, drv):
        with pytest.raises(ConfigError, match="expected 64"):
            drv.load_polynomial("P0", [1, 2, 3])

    def test_buffers_partition_banks(self, drv):
        """Buffers at degree 64 pack many slots per 8192-word bank:
        6 data banks (3 DP + 3 SP; the 4th SP holds twiddles)."""
        assert len(drv.buffer_names) == 6 * (8192 // N)

    def test_oversize_degree_needs_large_path(self):
        driver = CofheeDriver(CoFHEE(ChipConfig(poly_words=64)))
        with pytest.raises(CapacityError, match="large"):
            driver.program(ntt_friendly_prime(128, 40), 128)


class TestExecutionModes:
    @pytest.mark.parametrize("mode", ["direct", "fifo", "cm0"])
    def test_all_modes_compute_identically(self, mode, rng):
        driver = CofheeDriver(CoFHEE(), mode=mode)
        driver.program(Q, N)
        a = [rng.randrange(Q) for _ in range(N)]
        b = [rng.randrange(Q) for _ in range(N)]
        driver.load_polynomial("P0", a)
        driver.load_polynomial("P1", b)
        driver.polynomial_multiply("P0", "P1", "P2")
        got, _ = driver.read_polynomial("P2")
        assert got == reference_negacyclic_multiply(a, b, Q)

    def test_mode_io_ordering(self, rng):
        """direct > fifo > cm0 in host-link time (Section III-I)."""
        ios = {}
        for mode in ("direct", "fifo", "cm0"):
            driver = CofheeDriver(CoFHEE(ChipConfig(fidelity="timing")),
                                  mode=mode)
            driver.program(Q, N)
            cmds = [driver.ntt_command("P0", "P1") for _ in range(8)]
            ios[mode] = driver.execute(cmds).io_seconds
        assert ios["direct"] > ios["fifo"] > ios["cm0"]

    def test_fifo_chunks_beyond_depth(self):
        """More than 32 commands stream through the FIFO in chunks."""
        driver = CofheeDriver(CoFHEE(ChipConfig(fidelity="timing")))
        driver.program(Q, N)
        cmds = [driver.ntt_command("P0", "P1") for _ in range(40)]
        report = driver.execute(cmds)
        assert report.commands == 40
        assert driver.chip.fifo.stats.pushes == 40

    def test_bad_mode(self, drv):
        with pytest.raises(ValueError, match="mode"):
            drv.execute([], mode="telepathy")


class TestComposedOps:
    def test_polynomial_multiply(self, drv, rng):
        a = [rng.randrange(Q) for _ in range(N)]
        b = [rng.randrange(Q) for _ in range(N)]
        drv.load_polynomial("P0", a)
        drv.load_polynomial("P1", b)
        report = drv.polynomial_multiply("P0", "P1", "P2")
        got, _ = drv.read_polynomial("P2")
        assert got == reference_negacyclic_multiply(a, b, Q)
        assert report.cycles == drv.chip.timing.polymul_cycles(N)

    def test_ciphertext_multiply_tensor(self, drv, rng):
        ca = tuple([rng.randrange(Q) for _ in range(N)] for _ in range(2))
        cb = tuple([rng.randrange(Q) for _ in range(N)] for _ in range(2))
        for name, coeffs in zip(("P0", "P1", "P2", "P3"), (*ca, *cb)):
            drv.load_polynomial(name, coeffs)
        report, (y0n, y1n, y2n) = drv.ciphertext_multiply(
            "P0", "P1", "P2", "P3", "P4", "P5"
        )
        y0, _ = drv.read_polynomial(y0n)
        y1, _ = drv.read_polynomial(y1n)
        y2, _ = drv.read_polynomial(y2n)
        m00 = reference_negacyclic_multiply(ca[0], cb[0], Q)
        m01 = reference_negacyclic_multiply(ca[0], cb[1], Q)
        m10 = reference_negacyclic_multiply(ca[1], cb[0], Q)
        m11 = reference_negacyclic_multiply(ca[1], cb[1], Q)
        assert y0 == m00
        assert y1 == [(a + b) % Q for a, b in zip(m01, m10)]
        assert y2 == m11
        assert report.cycles == drv.chip.timing.ciphertext_mult_cycles(N, 1)

    def test_ciphertext_multiply_command_mix(self, drv, rng):
        """Algorithm 3's op mix: 4 NTT + 4 Hadamard + 1 add + 3 iNTT."""
        drv.load_polynomial("P0", [1] * N)
        report, _ = drv.ciphertext_multiply("P0", "P0", "P0", "P0", "P1", "P2")
        kinds = [p.kind for p in report.trace.phases]
        assert kinds.count("dit_butterfly") == 4
        assert kinds.count("hadamard") == 4
        assert kinds.count("pointwise_add") == 1
        assert kinds.count("dif_butterfly") == 3
        assert kinds.count("const_mult") == 3


class TestRnsPath:
    def test_big_modulus_tensor(self, rng):
        driver = CofheeDriver(CoFHEE())
        basis = RnsBasis(plan_towers(78, 40, N))
        big_q = basis.modulus
        ca = tuple([rng.randrange(big_q) for _ in range(N)] for _ in range(2))
        cb = tuple([rng.randrange(big_q) for _ in range(N)] for _ in range(2))
        results, report = driver.ciphertext_multiply_rns(ca, cb, basis)
        assert results[0] == reference_negacyclic_multiply(ca[0], cb[0], big_q)
        assert results[2] == reference_negacyclic_multiply(ca[1], cb[1], big_q)
        assert report.cycles == 2 * driver.chip.timing.ciphertext_mult_cycles(N, 1)
        assert report.io_seconds > 0  # loads/readbacks accounted


class TestLargeN:
    def test_on_chip_n_rejected(self, drv):
        with pytest.raises(ConfigError, match="fits on chip"):
            drv.large_ntt_report(N)

    def test_n_2_14_is_ii2_no_io(self):
        driver = CofheeDriver(CoFHEE(ChipConfig(fidelity="timing")))
        report = driver.large_ntt_report(2**14)
        assert report.io_seconds == 0
        assert report.cycles == driver.chip.timing.ntt_cycles(2**14)

    def test_n_2_15_pays_host_io(self):
        driver = CofheeDriver(CoFHEE(ChipConfig(fidelity="timing")))
        report = driver.large_ntt_report(2**15)
        assert report.io_seconds > report.compute_seconds


class TestReportMerge:
    def test_merge_concatenates(self, drv):
        drv.load_polynomial("P0", [1] * N)
        r1 = drv.ntt("P0", "P1")
        r2 = drv.intt("P1", "P2")
        merged = OperationReport.merge("seq", [r1, r2], drv.chip.power_model)
        assert merged.cycles == r1.cycles + r2.cycles
        assert merged.commands == 2
