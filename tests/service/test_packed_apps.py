"""Packed (rotate-and-sum) app lowerings served end to end.

The rotation op set exists so the apps can pack a whole sample into one
ciphertext and compile dense layers as rotate-and-sum dot products.
These tests pin that path: ``MiniLogisticRegression.to_circuit(packed=
True)`` and ``MiniCryptoNets.to_circuit(packed_dense=True)`` served
through ``FheServer`` with session Galois keys must decode to the
plaintext model's answers and stay bit-identical to in-process
``evaluate_circuit`` execution.
"""

import random

from repro.bfv import BfvParameters
from repro.bfv.rotation import RotationEngine
from repro.polymath.primes import ntt_friendly_prime
from repro.service.circuits import (
    OP_ROTATE_COLUMNS,
    OP_ROTATE_ROWS,
    evaluate_circuit,
)
from repro.service.jobs import JobKind
from repro.service.serialization import (
    deserialize_ciphertext,
    deserialize_circuit_outputs,
    serialize_ciphertext,
    serialize_circuit,
    serialize_circuit_outputs,
    serialize_galois_key,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer


def _rotation_count(circuit) -> int:
    return sum(
        1 for s in circuit.steps
        if s.op in (OP_ROTATE_ROWS, OP_ROTATE_COLUMNS)
    )


def _serve_packed(model, rotor, circuit, inputs) -> bytes:
    """One packed-circuit round trip through the serving stack."""
    server = FheServer(pool_size=2, max_batch=4)
    sid = server.open_session(
        "packed", serialize_params(model.params),
        relin_key=serialize_relin_key(model.keys.relin, model.params),
        galois_keys=tuple(
            serialize_galois_key(rotor.galois_key(e), model.params)
            for e in model.packed_galois_exponents()
        ),
    )
    return server.result(server.submit(
        sid, JobKind.CIRCUIT, inputs, payload=serialize_circuit(circuit)
    ))


def _reference_payload(model, rotor, circuit, inputs) -> bytes:
    """In-process ``evaluate_circuit`` ground truth for the same job.

    The same ``rotor`` that supplied the session's keys: Galois keys are
    randomized, so a fresh engine would key-switch with different noise
    and break the byte comparison.
    """
    outs = evaluate_circuit(
        model.bfv, model.keys.relin, circuit,
        [deserialize_ciphertext(op, model.params) for op in inputs],
        galois=rotor.galois_key,
    )
    return serialize_circuit_outputs(outs)


class TestPackedLogreg:
    def test_served_predictions_match_plaintext_model(self):
        from repro.apps.logreg import MiniLogisticRegression

        params = BfvParameters.toy_rns(
            n=16, towers=7, tower_bits=28, t=ntt_friendly_prime(16, 21)
        )
        model = MiniLogisticRegression(
            params=params, num_features=6, seed=5
        )
        rng = random.Random(99)
        samples = [[rng.randint(-3, 3) for _ in range(6)] for _ in range(3)]
        circuit = model.to_circuit(batch=len(samples), packed=True)
        # One ciphertext per *sample* (not per feature), reduced with
        # log2(n/2) row rotations plus the column swap per sample.
        assert len(circuit.inputs) == len(samples)
        assert _rotation_count(circuit) == 4 * len(samples)
        inputs = tuple(
            serialize_ciphertext(ct)
            for ct in model.encrypt_packed(samples)
        )

        rotor = RotationEngine(model.bfv, model.keys.secret)
        payload = _serve_packed(model, rotor, circuit, inputs)
        assert payload == _reference_payload(model, rotor, circuit, inputs), (
            "served packed logreg diverged from in-process execution"
        )
        got = model.predictions_from_packed(
            deserialize_circuit_outputs(payload, params), len(samples)
        )
        assert got == model.predict_plain(samples)


class TestPackedCryptoNets:
    def test_served_scores_match_plaintext_model(self):
        from repro.apps.cryptonets import MiniCryptoNets

        params = BfvParameters.toy_rns(
            n=16, towers=7, tower_bits=28, t=ntt_friendly_prime(16, 20)
        )
        cnn = MiniCryptoNets(params=params, seed=7)
        rng = random.Random(41)
        image = [rng.randint(-2, 2) for _ in range(36)]
        circuit = cnn.to_circuit(packed_dense=True)
        # The masked transpose + per-row reductions rotate heavily; the
        # eager lowering never rotates at all.
        assert _rotation_count(circuit) > 0
        assert _rotation_count(cnn.to_circuit()) == 0
        inputs = tuple(
            serialize_ciphertext(ct)
            for ct in cnn.encrypt_images([image])
        )

        rotor = RotationEngine(cnn.bfv, cnn.keys.secret)
        payload = _serve_packed(cnn, rotor, circuit, inputs)
        assert payload == _reference_payload(cnn, rotor, circuit, inputs), (
            "served packed CryptoNets diverged from in-process execution"
        )
        scores = cnn.scores_from_outputs(
            deserialize_circuit_outputs(payload, params), 1
        )
        assert scores == cnn.infer_plain([image])
