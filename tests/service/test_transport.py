"""Concurrency battery for the asyncio wire transport.

N async clients x mixed ops over a real localhost listener; every result
must be bit-identical to locally computed :class:`~repro.bfv.Bfv` ground
truth, every completion callback must arrive exactly once per job (no
polling anywhere), shutdown must drain in-flight jobs, and a hostile or
broken peer must never take the server down.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters, RotationEngine
from repro.service.client import (
    AsyncFheClient,
    FheClient,
    JobFailedError,
    TransportError,
)
from repro.service.jobs import JobKind
from repro.service.serialization import (
    TAG_ERROR,
    decode_error,
    peek_tag,
    serialize_ciphertext,
    serialize_galois_key,
    serialize_params,
    serialize_relin_key,
)
from repro.service.transport import (
    FheTransportServer,
    FrameAssembler,
    ThreadedTransportServer,
    encode_frame,
)

PARAMS = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)
N_CLIENTS = 5  # acceptance floor is 4


@pytest.fixture(scope="module")
def stack():
    """Client-side crypto: keys never leave this fixture."""
    bfv = Bfv(PARAMS, seed=0xC0F4EE)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(PARAMS)
    rotor = RotationEngine(bfv, keys.secret, digit_bits=14)
    return bfv, keys, encoder, rotor


def _session_kwargs(rotor, keys):
    return dict(
        relin_key=serialize_relin_key(keys.relin, PARAMS),
        galois_keys=(
            serialize_galois_key(
                rotor.galois_key(pow(3, 1, 2 * PARAMS.n)), PARAMS
            ),
        ),
    )


def _mixed_ops(stack, seed: int):
    """(kind, operand wire bytes, steps, expected ground-truth wire)."""
    bfv, keys, encoder, rotor = stack
    rng = random.Random(seed)

    def fresh():
        return bfv.encrypt(
            encoder.encode([rng.randrange(16) for _ in range(PARAMS.n)]),
            keys.public,
        )

    a, b = fresh(), fresh()
    c, d = fresh(), fresh()
    e, f = fresh(), fresh()
    return [
        (JobKind.MULTIPLY, (a, b), 0, bfv.multiply_relin(a, b, keys.relin)),
        (JobKind.ADD, (c, d), 0, bfv.add(c, d)),
        (JobKind.SUB, (d, c), 0, bfv.sub(d, c)),
        (JobKind.SQUARE, (e,), 0,
         bfv.relinearize(bfv.square(e), keys.relin)),
        (JobKind.ROTATE, (f,), 1, rotor.rotate_rows(f, 1)),
    ]


class TestConcurrentClients:
    def test_battery_callbacks_bit_identical(self, stack):
        """The acceptance run: N concurrent clients x mixed ops over a
        real socket, chip-pool backend, completion callbacks throughout,
        plus a duplicate-submit phase proving in-queue dedupe."""

        async def one_client(host, port, index):
            ops = _mixed_ops(stack, seed=100 + index)
            fired: dict[str, list[str]] = {}
            async with await AsyncFheClient.connect(host, port) as client:
                sid = await client.open_session(
                    f"tenant{index}", serialize_params(PARAMS),
                    **_session_kwargs(stack[3], stack[1]),
                )
                submitted = []
                for kind, operands, steps, expected in ops:
                    wire_ops = tuple(serialize_ciphertext(o) for o in operands)
                    jid = await client.submit(
                        sid, kind, wire_ops, steps=steps,
                        on_done=lambda ev: fired.setdefault(
                            ev.job_id, []
                        ).append(ev.status),
                    )
                    submitted.append((jid, expected))
                # result() parks on the pushed completion event — the
                # client never polls the server.
                for jid, expected in submitted:
                    wire = await client.result(jid)
                    assert wire == serialize_ciphertext(expected), (
                        f"client {index}, job {jid}: result diverged from "
                        "Bfv ground truth"
                    )
                # Callbacks arrived exactly once per job.
                assert sorted(fired) == sorted(j for j, _ in submitted)
                assert all(v == ["done"] for v in fired.values())
                assert all(
                    client.events_received(j) == 1 for j, _ in submitted
                )

        async def scenario():
            async with FheTransportServer(pool_size=4, max_batch=4) as server:
                host, port = server.address
                await asyncio.gather(*(
                    one_client(host, port, i) for i in range(N_CLIENTS)
                ))

                # Duplicate-submit phase: hold the scheduler so identical
                # jobs from two clients land in the dedupe window.
                bfv, keys, encoder, rotor = stack
                wa = serialize_ciphertext(bfv.encrypt(
                    encoder.encode(list(range(PARAMS.n))), keys.public
                ))
                server.pause_execution()
                c1 = await AsyncFheClient.connect(host, port)
                c2 = await AsyncFheClient.connect(host, port)
                s1 = await c1.open_session(
                    "dup1", serialize_params(PARAMS),
                    **_session_kwargs(rotor, keys),
                )
                s2 = await c2.open_session(
                    "dup2", serialize_params(PARAMS),
                    **_session_kwargs(rotor, keys),
                )
                j1 = await c1.submit(s1, JobKind.MULTIPLY, (wa, wa))
                j2 = await c2.submit(s2, JobKind.MULTIPLY, (wa, wa))
                server.resume_execution()
                w1, w2 = await asyncio.gather(c1.result(j1), c2.result(j2))
                assert w1 == w2  # one execution, two fanned-out results
                await c1.aclose()
                await c2.aclose()

                report = server.fhe.pool_report()
                assert report["result_cache"]["dedupe_hits"] >= 1
                # Chip-native EvalMult really ran on worker drivers.
                assert report["fidelity"].get("chip", 0) >= N_CLIENTS
                stats = server.fhe.scheduler.stats
                assert stats.jobs_failed == 0
                assert stats.jobs_completed == stats.jobs_submitted

        asyncio.run(scenario())

    def test_interleaved_submissions_share_batches(self, stack):
        """Many clients submitting concurrently while the pump runs:
        every job still completes with the right answer."""

        async def hammer(host, port, index, results):
            bfv, keys, encoder, rotor = stack
            rng = random.Random(900 + index)
            async with await AsyncFheClient.connect(host, port) as client:
                sid = await client.open_session(
                    f"hammer{index}", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                for _ in range(3):
                    a = bfv.encrypt(
                        encoder.encode(
                            [rng.randrange(16) for _ in range(PARAMS.n)]
                        ),
                        keys.public,
                    )
                    b = bfv.encrypt(
                        encoder.encode(
                            [rng.randrange(16) for _ in range(PARAMS.n)]
                        ),
                        keys.public,
                    )
                    expected = bfv.add(a, b)
                    jid = await client.submit(
                        sid, JobKind.ADD,
                        (serialize_ciphertext(a), serialize_ciphertext(b)),
                    )
                    wire = await client.result(jid)
                    results.append(wire == serialize_ciphertext(expected))
                    await asyncio.sleep(0)  # yield between submissions

        async def scenario():
            results: list[bool] = []
            async with FheTransportServer(pool_size=2, max_batch=3) as server:
                host, port = server.address
                await asyncio.gather(*(
                    hammer(host, port, i, results) for i in range(4)
                ))
            assert len(results) == 12 and all(results)

        asyncio.run(scenario())


class TestShutdown:
    def test_close_drains_in_flight_jobs(self, stack):
        """aclose() must deliver every queued job's completion event
        before the connections come down."""
        bfv, keys, encoder, rotor = stack

        async def scenario():
            server = FheTransportServer(pool_size=2, max_batch=2)
            host, port = await server.start()
            client = await AsyncFheClient.connect(host, port)
            sid = await client.open_session(
                "drain", serialize_params(PARAMS),
                relin_key=serialize_relin_key(keys.relin, PARAMS),
            )
            rng = random.Random(17)
            server.pause_execution()  # hold everything in the queue
            submitted = []
            for _ in range(4):
                a = bfv.encrypt(
                    encoder.encode([rng.randrange(16) for _ in range(PARAMS.n)]),
                    keys.public,
                )
                b = bfv.encrypt(
                    encoder.encode([rng.randrange(16) for _ in range(PARAMS.n)]),
                    keys.public,
                )
                jid = await client.submit(
                    sid, JobKind.MULTIPLY,
                    (serialize_ciphertext(a), serialize_ciphertext(b)),
                )
                submitted.append(
                    (jid, serialize_ciphertext(
                        bfv.multiply_relin(a, b, keys.relin)
                    ))
                )
            collector = asyncio.gather(*(
                client.result(jid) for jid, _ in submitted
            ))
            await server.aclose()  # drains: executes + pushes every event
            wires = await collector
            assert wires == [expected for _, expected in submitted]
            await client.aclose()

        asyncio.run(scenario())

    def test_submit_after_close_is_rejected(self, stack):
        bfv, keys, encoder, rotor = stack

        async def scenario():
            server = FheTransportServer(pool_size=1)
            host, port = await server.start()
            client = await AsyncFheClient.connect(host, port)
            sid = await client.open_session(
                "late", serialize_params(PARAMS),
                relin_key=serialize_relin_key(keys.relin, PARAMS),
            )
            server._closing = True  # listener stays up; submissions must bounce
            ct = serialize_ciphertext(bfv.encrypt(
                encoder.encode([1] * PARAMS.n), keys.public
            ))
            with pytest.raises(TransportError, match="shutting down"):
                await client.submit(sid, JobKind.ADD, (ct, ct))
            await client.aclose()
            await server.aclose()

        asyncio.run(scenario())


class TestProtocolRobustness:
    def test_bad_frame_gets_error_and_server_survives(self, stack):
        """A garbage frame earns an ERROR frame and a closed connection;
        the next client is served normally (the reader loop never dies)."""
        bfv, keys, encoder, rotor = stack

        async def scenario():
            async with FheTransportServer(pool_size=1) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(b"\x00garbage, not a CFHE message"))
                await writer.drain()
                frame_len = int.from_bytes(await reader.readexactly(4), "big")
                reply = await reader.readexactly(frame_len)
                assert peek_tag(reply) == TAG_ERROR
                assert "protocol error" in decode_error(reply).message
                assert await reader.read() == b""  # server closed the link
                writer.close()
                await writer.wait_closed()

                # Server is still alive and serving.
                client = await AsyncFheClient.connect(host, port)
                sid = await client.open_session(
                    "after", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                a = bfv.encrypt(
                    encoder.encode(list(range(PARAMS.n))), keys.public
                )
                jid = await client.submit(
                    sid, JobKind.ADD,
                    (serialize_ciphertext(a), serialize_ciphertext(a)),
                )
                assert await client.result(jid) == serialize_ciphertext(
                    bfv.add(a, a)
                )
                await client.aclose()

        asyncio.run(scenario())

    def test_oversized_frame_is_rejected(self):
        async def scenario():
            async with FheTransportServer(pool_size=1, max_frame=1024) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write((1 << 30).to_bytes(4, "big"))  # announce 1 GiB
                await writer.drain()
                frame_len = int.from_bytes(await reader.readexactly(4), "big")
                reply = await reader.readexactly(frame_len)
                assert peek_tag(reply) == TAG_ERROR
                assert await reader.read() == b""
                writer.close()
                await writer.wait_closed()

        asyncio.run(scenario())

    def test_failed_job_event_carries_error(self, stack):
        """A rotation with no Galois key fails server-side; the client
        gets a failure event, not a hang."""
        bfv, keys, encoder, rotor = stack

        async def scenario():
            async with FheTransportServer(pool_size=1) as server:
                host, port = server.address
                client = await AsyncFheClient.connect(host, port)
                sid = await client.open_session(
                    "nokeys", serialize_params(PARAMS),  # no Galois keys
                )
                ct = serialize_ciphertext(bfv.encrypt(
                    encoder.encode([1] * PARAMS.n), keys.public
                ))
                jid = await client.submit(sid, JobKind.ROTATE, (ct,), steps=1)
                with pytest.raises(JobFailedError, match="[Gg]alois"):
                    await client.result(jid)
                assert await client.status(jid) == "failed"
                await client.aclose()

        asyncio.run(scenario())

    def test_unknown_session_and_app_kind_are_rejected(self, stack):
        bfv, keys, encoder, rotor = stack

        async def scenario():
            async with FheTransportServer(pool_size=1) as server:
                host, port = server.address
                client = await AsyncFheClient.connect(host, port)
                ct = serialize_ciphertext(bfv.encrypt(
                    encoder.encode([1] * PARAMS.n), keys.public
                ))
                with pytest.raises(TransportError, match="unknown session"):
                    await client.submit("s9999", JobKind.ADD, (ct, ct))
                sid = await client.open_session(
                    "apps", serialize_params(PARAMS)
                )
                with pytest.raises(TransportError, match="in-process only"):
                    await client.submit(sid, JobKind.LOGREG)
                with pytest.raises(TransportError, match="not a valid"):
                    await client.submit(sid, "frobnicate", (ct, ct))
                await client.aclose()

        asyncio.run(scenario())


class TestEventOrdering:
    def test_cache_hit_submit_gets_its_event(self, stack):
        """A duplicate submit completes at submit time server-side; the
        STATUS reply and the completion EVENT go out back-to-back and
        the client must still resolve result() and count one event."""
        bfv, keys, encoder, rotor = stack

        async def scenario():
            async with FheTransportServer(pool_size=2) as server:
                host, port = server.address
                client = await AsyncFheClient.connect(host, port)
                sid = await client.open_session(
                    "cachehit", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                a = bfv.encrypt(
                    encoder.encode(list(range(PARAMS.n))), keys.public
                )
                ops = (serialize_ciphertext(a), serialize_ciphertext(a))
                first = await client.submit(sid, JobKind.MULTIPLY, ops)
                wire = await client.result(first)
                second = await client.submit(sid, JobKind.MULTIPLY, ops)
                assert await client.result(second) == wire
                assert client.events_received(second) == 1
                report = server.fhe.pool_report()["result_cache"]
                assert report["hits"] == 1
                await client.aclose()

        asyncio.run(scenario())

    def test_event_coalesced_with_submit_reply(self):
        """Regression: a server whose STATUS reply and EVENT push land in
        ONE TCP segment must not lose the event — the client sees both
        frames in a single read chunk, before submit() has returned."""
        from repro.service.serialization import (
            EventMsg,
            StatusMsg,
            TAG_SUBMIT,
            decode_submit,
            encode_event,
            encode_status,
        )

        async def fake_server(reader, writer):
            # Swallow frames until the SUBMIT, then answer STATUS+EVENT
            # in one write so both frames coalesce.
            while True:
                length = int.from_bytes(await reader.readexactly(4), "big")
                frame = await reader.readexactly(length)
                if peek_tag(frame) == TAG_SUBMIT:
                    msg = decode_submit(frame)
                    status = encode_status(StatusMsg(
                        request_id=msg.request_id, job_id="j1", status="done"
                    ))
                    event = encode_event(EventMsg(
                        job_id="j1", status="done", payload=b"payload"
                    ))
                    writer.write(encode_frame(status) + encode_frame(event))
                    await writer.drain()
                    return

        async def scenario():
            server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = await AsyncFheClient.connect(host, port)
            jid = await client.submit("s1", JobKind.ADD, (b"a", b"b"))
            assert jid == "j1"
            assert await asyncio.wait_for(client.result(jid), 5) == b"payload"
            assert client.events_received(jid) == 1
            await client.aclose()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestSyncFacade:
    def test_sync_client_round_trip(self, stack):
        """FheClient drives a thread-hosted listener without asyncio in
        sight — the path apps and benchmarks use."""
        bfv, keys, encoder, rotor = stack
        a = bfv.encrypt(encoder.encode(list(range(PARAMS.n))), keys.public)
        b = bfv.encrypt(
            encoder.encode(list(range(PARAMS.n, 2 * PARAMS.n))), keys.public
        )
        expected = serialize_ciphertext(bfv.multiply_relin(a, b, keys.relin))
        fired = []
        with ThreadedTransportServer(pool_size=2) as ts:
            with FheClient(ts.host, ts.port) as client:
                sid = client.open_session(
                    "sync", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                jid = client.submit(
                    sid, "multiply",
                    (serialize_ciphertext(a), serialize_ciphertext(b)),
                    on_done=lambda ev: fired.append(ev.status),
                )
                assert client.result(jid) == expected
                assert client.fetch_result(jid) == expected
                assert client.events_received(jid) == 1
            report = ts.fhe.pool_report()
        assert fired == ["done"]
        assert report["fidelity"].get("chip") == 1
