"""Rotation circuit steps served over the wire, checked against the
keyless plaintext ground truth.

:func:`~repro.bfv.rotation.slot_permutation` predicts — from the
encoder's evaluation points alone, no keys and no ciphertexts — exactly
how the automorphism ``x -> x^g`` permutes the batching slots. Every
test here submits rotation *circuit steps* through the serving stack
(wire-encoded payloads, session-registered Galois keys, key-switched
ciphertext math) and asserts the decrypted slots land where the
plaintext reference says they must: row rotations by ±{1, 2, n/4,
n/2−1} across both slot half-rings, the column swap, and their
composition. The chaos scenario kills a fleet worker mid-rotation and
requires the requeued job to finish bit-identical on a survivor after
the Galois keys re-replicate.
"""

import random

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.bfv.rotation import RotationEngine, slot_permutation
from repro.polymath.primes import ntt_friendly_prime
from repro.service.circuits import (
    CircuitBuilder,
    OP_ROTATE_COLUMNS,
    OP_ROTATE_ROWS,
    evaluate_circuit,
    rotation_exponent,
)
from repro.service.fleet import route_index
from repro.service.jobs import JobKind
from repro.service.serialization import (
    deserialize_circuit_outputs,
    params_digest,
    serialize_ciphertext,
    serialize_circuit,
    serialize_galois_key,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

BACKENDS = ("chip_pool", "software", "fastntt")

#: Roomy enough that a chain of key switches still decodes exactly.
PARAMS = BfvParameters.toy_rns(
    n=16, towers=4, tower_bits=28, t=ntt_friendly_prime(16, 20)
)
HALF = PARAMS.n // 2

#: The ISSUE's battery: ±{1, 2, n/4, n/2−1} row amounts.
ROW_AMOUNTS = (1, 2, HALF // 2, HALF - 1, -1, -2, -(HALF // 2), -(HALF - 1))


@pytest.fixture(scope="module")
def stack():
    bfv = Bfv(PARAMS, seed=0x407)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(PARAMS)
    rotor = RotationEngine(bfv, keys.secret)
    return bfv, keys, encoder, rotor


def _galois_wires(rotor, exponents):
    return tuple(
        serialize_galois_key(rotor.galois_key(e), PARAMS)
        for e in sorted(set(exponents))
    )


def _open(server, stack, exponents, tenant="rotor"):
    _bfv, keys, _encoder, rotor = stack
    return server.open_session(
        tenant, serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
        galois_keys=_galois_wires(rotor, exponents),
    )


def _serve_slots(server, sid, stack, circuit, slots, backend=""):
    """Serve one single-input wire circuit; returns decoded output slots."""
    bfv, keys, encoder, _rotor = stack
    ct = bfv.encrypt(encoder.encode(slots), keys.public)
    jid = server.submit(
        sid, JobKind.CIRCUIT, (serialize_ciphertext(ct),),
        payload=serialize_circuit(circuit), backend=backend,
    )
    outs = deserialize_circuit_outputs(server.result(jid), PARAMS)
    return encoder.decode(bfv.decrypt(outs["y"], keys.secret))


def _rotation_circuit(recipe):
    """One input, the given ``(op, steps)`` chain, one output ``y``."""
    builder = CircuitBuilder("rot")
    reg = builder.input("x")
    for op, steps in recipe:
        if op == "rows":
            reg = builder.rotate_rows(reg, steps)
        else:
            reg = builder.rotate_columns(reg)
    builder.output("y", reg)
    return builder.build()


class TestSlotPermutationGroundTruth:
    #: Distinct slot values: the permutation is pinned point-for-point.
    SLOTS = [7 * i + 3 for i in range(PARAMS.n)]

    @pytest.mark.parametrize("amount", ROW_AMOUNTS)
    def test_rotate_rows_matches_reference(self, stack, amount):
        """A served row rotation permutes the slots of *both* half-rings
        exactly as the keyless reference predicts."""
        exponent = rotation_exponent(PARAMS, OP_ROTATE_ROWS, amount)
        perm = slot_permutation(stack[2], exponent)
        server = FheServer(pool_size=2, result_cache_size=0)
        sid = _open(server, stack, [exponent])
        got = _serve_slots(
            server, sid, stack,
            _rotation_circuit([("rows", amount)]), self.SLOTS,
        )
        assert got == [self.SLOTS[perm[i]] for i in range(PARAMS.n)]
        # Both halves really moved: no slot index maps to itself.
        assert all(perm[i] != i for i in range(PARAMS.n))

    def test_rotate_columns_matches_reference_and_is_an_involution(
        self, stack
    ):
        exponent = rotation_exponent(PARAMS, OP_ROTATE_COLUMNS, 0)
        perm = slot_permutation(stack[2], exponent)
        assert all(perm[perm[i]] == i for i in range(PARAMS.n))
        server = FheServer(pool_size=2, result_cache_size=0)
        sid = _open(server, stack, [exponent])
        once = _serve_slots(
            server, sid, stack, _rotation_circuit([("cols", 0)]), self.SLOTS,
        )
        assert once == [self.SLOTS[perm[i]] for i in range(PARAMS.n)]
        twice = _serve_slots(
            server, sid, stack,
            _rotation_circuit([("cols", 0), ("cols", 0)]), self.SLOTS,
        )
        assert twice == self.SLOTS

    def test_composed_rotations_compose_the_permutations(self, stack):
        """rows(3) then columns served in one circuit equals the
        composition of the two reference permutations."""
        encoder = stack[2]
        e_rows = rotation_exponent(PARAMS, OP_ROTATE_ROWS, 3)
        e_cols = rotation_exponent(PARAMS, OP_ROTATE_COLUMNS, 0)
        p_rows = slot_permutation(encoder, e_rows)
        p_cols = slot_permutation(encoder, e_cols)
        server = FheServer(pool_size=2, result_cache_size=0)
        sid = _open(server, stack, [e_rows, e_cols])
        got = _serve_slots(
            server, sid, stack,
            _rotation_circuit([("rows", 3), ("cols", 0)]), self.SLOTS,
        )
        # Step 2 permutes step 1's output: out[i] = mid[p_cols[i]].
        expected = [self.SLOTS[p_rows[p_cols[i]]] for i in range(PARAMS.n)]
        assert got == expected

    def test_rotation_circuit_is_bit_identical_on_every_backend(self, stack):
        exponent = rotation_exponent(PARAMS, OP_ROTATE_ROWS, 2)
        bfv, keys, encoder, _rotor = stack
        circuit = _rotation_circuit([("rows", 2)])
        ct = bfv.encrypt(encoder.encode(self.SLOTS), keys.public)
        server = FheServer(pool_size=2, result_cache_size=0)
        sid = _open(server, stack, [exponent])
        wires = {
            backend: server.result(server.submit(
                sid, JobKind.CIRCUIT, (serialize_ciphertext(ct),),
                payload=serialize_circuit(circuit), backend=backend,
            ))
            for backend in BACKENDS
        }
        assert len(set(wires.values())) == 1


class TestFleetChaosMidRotation:
    def test_worker_killed_mid_rotation_requeues_bit_identical(self, stack):
        """Kill the home worker on its first job — a rotate-and-sum
        circuit — and require: the requeued job completes on the
        survivor bit-identical to local ground truth, and the session's
        Galois keys re-replicate to the successor."""
        bfv, keys, encoder, rotor = stack
        # The packed all-slots reduction: rows 1, 2, 4 then the swap.
        builder = CircuitBuilder("sum-slots")
        acc = builder.input("x")
        step = 1
        while step < HALF:
            acc = builder.add(acc, builder.rotate_rows(acc, step))
            step <<= 1
        acc = builder.add(acc, builder.rotate_columns(acc))
        builder.output("y", acc)
        circuit = builder.build()
        exponents = [
            pow(3, s, 2 * PARAMS.n) for s in (1, 2, 4)
        ] + [2 * PARAMS.n - 1]

        rng = random.Random(53)
        slots = [rng.randrange(50) for _ in range(PARAMS.n)]
        ct = bfv.encrypt(encoder.encode(slots), keys.public)
        reference = evaluate_circuit(
            bfv, keys.relin, circuit, [ct], galois=rotor.galois_key
        )["y"]

        target = route_index(params_digest(PARAMS), 2)
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fault_spec=f"kill:worker={target}:job=1",
            fleet_options={"heartbeat_interval": 0.05,
                           "heartbeat_timeout": 10.0},
        )
        with server:
            sid = _open(server, stack, exponents, tenant="chaos")
            jid = server.submit(
                sid, JobKind.CIRCUIT, (serialize_ciphertext(ct),),
                payload=serialize_circuit(circuit),
            )
            outs = deserialize_circuit_outputs(server.result(jid), PARAMS)
            assert serialize_ciphertext(outs["y"]) == serialize_ciphertext(
                reference
            )
            got = encoder.decode(bfv.decrypt(outs["y"], keys.secret))
            assert got == [sum(slots) % PARAMS.t] * PARAMS.n
            rep = server.fleet_report()
            replications = server.metrics.counter(
                "repro_fleet_key_replications_total",
                "Evaluation-key replications to fleet workers",
            ).value
        assert rep["deaths"] == 1, rep
        assert rep["requeues"] >= 1, rep
        # Keys shipped to the doomed worker AND again to the survivor.
        assert replications >= 2, replications
        stats = server.scheduler.stats
        assert stats.jobs_failed == 0
        assert stats.jobs_completed == stats.jobs_submitted
