"""Front-door API: submit/poll/result over wire bytes, all three backends."""

import random

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters, RotationEngine
from repro.service.jobs import JobKind, JobStatus
from repro.service.serialization import (
    deserialize_ciphertext,
    serialize_ciphertext,
    serialize_galois_key,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

PARAMS = BfvParameters.toy(n=16, log_q=80)


@pytest.fixture(scope="module")
def client():
    bfv = Bfv(PARAMS, seed=77)
    keys = bfv.keygen(relin_digit_bits=12)
    encoder = BatchEncoder(PARAMS)
    rotor = RotationEngine(bfv, keys.secret, digit_bits=12)
    return bfv, keys, encoder, rotor


@pytest.fixture
def server():
    return FheServer(pool_size=2, max_batch=4)


def _open(server, client):
    bfv, keys, encoder, rotor = client
    return server.open_session(
        "acme",
        serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
        galois_keys=(
            serialize_galois_key(rotor.galois_key(pow(3, 1, 2 * PARAMS.n)), PARAMS),
        ),
    )


def _encrypt(client, values):
    bfv, keys, encoder, _ = client
    return bfv.encrypt(encoder.encode(values), keys.public)


class TestSubmitPollResult:
    def test_multiply_over_wire(self, server, client):
        bfv, keys, encoder, _ = client
        sid = _open(server, client)
        a, b = [3, 1, 4, 1, 5], [2, 7, 1, 8, 2]
        ja = _encrypt(client, a)
        jb = _encrypt(client, b)
        jid = server.submit(
            sid, JobKind.MULTIPLY,
            (serialize_ciphertext(ja), serialize_ciphertext(jb)),
        )
        assert server.poll(jid) in (JobStatus.QUEUED, JobStatus.DONE)
        wire = server.result(jid)
        assert isinstance(wire, bytes)
        result = deserialize_ciphertext(wire, PARAMS)
        slots = encoder.decode(bfv.decrypt(result, keys.secret))
        assert slots[:5] == [(x * y) % PARAMS.t for x, y in zip(a, b)]
        assert server.poll(jid) is JobStatus.DONE

    def test_rotate_matches_client_side(self, server, client):
        bfv, keys, encoder, rotor = client
        sid = _open(server, client)
        ct = _encrypt(client, list(range(PARAMS.n)))
        jid = server.submit(sid, JobKind.ROTATE,
                            (serialize_ciphertext(ct),), steps=1)
        result = server.result(jid, wire=False)
        local = rotor.rotate_rows(ct, 1)
        assert bfv.decrypt(result, keys.secret) == bfv.decrypt(local, keys.secret)

    def test_string_kind_accepted(self, server, client):
        sid = _open(server, client)
        ct = _encrypt(client, [1, 2])
        jid = server.submit(sid, "add", (ct, ct))
        assert server.result(jid, wire=False).size == 2

    def test_failed_job_raises_with_cause(self, server, client):
        sid = server.open_session("nokeys", serialize_params(PARAMS))
        ct = _encrypt(client, [1])
        jid = server.submit(sid, JobKind.SQUARE, (ct,))
        with pytest.raises(RuntimeError, match="relinearization key"):
            server.result(jid)

    def test_unknown_job(self, server):
        with pytest.raises(KeyError):
            server.poll("j99999")


class TestBackendAgreement:
    def test_all_backends_bit_identical(self, server, client):
        """chip_pool, software, and fastntt return the same wire bytes."""
        bfv, keys, encoder, _ = client
        sid = _open(server, client)
        rng = random.Random(4)
        a = _encrypt(client, [rng.randrange(32) for _ in range(PARAMS.n)])
        b = _encrypt(client, [rng.randrange(32) for _ in range(PARAMS.n)])
        operands = (serialize_ciphertext(a), serialize_ciphertext(b))
        results = {}
        for backend in ("chip_pool", "software", "fastntt"):
            jid = server.submit(sid, JobKind.MULTIPLY, operands, backend=backend)
            results[backend] = server.result(jid)
        assert results["chip_pool"] == results["software"] == results["fastntt"]
        # And the shared result matches local Bfv ground truth.
        expected = bfv.multiply_relin(a, b, keys.relin)
        got = deserialize_ciphertext(results["chip_pool"], PARAMS)
        assert bfv.decrypt(got, keys.secret) == bfv.decrypt(expected, keys.secret)


class TestAppJobs:
    def test_logreg_job(self, server):
        sid = server.open_app_session("acme", JobKind.LOGREG)
        samples = [[1, -2, 3, 0, 1, 2], [0, 1, -1, 2, -2, 1]]
        jid = server.submit(sid, JobKind.LOGREG,
                            payload={"samples": samples, "seed": 11})
        result = server.result(jid)
        assert result["verified"]
        assert len(result["predictions"]) == len(samples)

    def test_cryptonets_job(self, server):
        sid = server.open_app_session("globex", JobKind.CRYPTONETS)
        rng = random.Random(2)
        images = [[rng.randint(-2, 2) for _ in range(36)] for _ in range(2)]
        jid = server.submit(sid, JobKind.CRYPTONETS,
                            payload={"images": images, "seed": 7})
        result = server.result(jid)
        assert result["verified"]
        assert len(result["classes"]) == len(images)

    def test_app_job_metrics_priced(self, server):
        """App jobs report modeled chip cycles from their op mix."""
        sid = server.open_app_session("acme", JobKind.LOGREG)
        jid = server.submit(sid, JobKind.LOGREG,
                            payload={"samples": [[1, 0, -1]], "seed": 11})
        server.result(jid)
        metrics = server.job_metrics(jid)
        assert metrics.cycles > 0
        assert metrics.backend.startswith("chip_pool")


class TestThroughputReporting:
    def test_rows_cover_used_backends(self, server, client):
        sid = _open(server, client)
        ct = _encrypt(client, [5])
        for backend in ("chip_pool", "software"):
            server.submit(sid, JobKind.ADD, (ct, ct), backend=backend)
        server.run()
        rows = server.throughput_rows()
        names = {r["backend"] for r in rows}
        assert any(n.startswith("chip_pool") for n in names)
        assert "software" in names
        for row in rows:
            assert row["jobs"] >= 1 and row["jobs_per_s"] > 0
