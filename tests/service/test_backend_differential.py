"""Differential test harness: every backend, pinned to ``Bfv`` ground truth.

For a grid of (parameter set x op x batch shape), the ChipPool backend at
pool sizes 1/2/4, the Software backend, and the FastNtt backend must all
return **bit-identical wire bytes**, and those bytes must decode to the
exact ciphertext the ground-truth :class:`~repro.bfv.scheme.Bfv` engine
produces locally (homomorphic evaluation is deterministic, so equality is
bit-for-bit, not just equal plaintexts — though plaintexts are checked
too). The multi-tower set additionally proves the tower-sharded chip path
agrees with everything else, and the fidelity flags say which path ran.
"""

import random

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.polymath.rns import RnsBasis
from repro.service.backends import ChipPoolBackend
from repro.service.jobs import JobKind, JobStatus
from repro.service.serialization import (
    deserialize_ciphertext,
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

PARAM_SETS = {
    "single_tower": BfvParameters.toy(n=16, log_q=80),
    "rns3": BfvParameters.toy_rns(n=16, towers=3, tower_bits=20),
    "rns2": BfvParameters.toy_rns(n=32, towers=2, tower_bits=21),
}
POOL_SIZES = (1, 2, 4)
#: (max_batch, jobs per case): one-at-a-time and packed batches.
BATCH_SHAPES = ((1, 2), (4, 3))


@pytest.fixture(scope="module", params=sorted(PARAM_SETS))
def world(request):
    """Ground-truth engine, keys, and fresh-ciphertext factory per params."""
    params = PARAM_SETS[request.param]
    bfv = Bfv(params, seed=1234)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(params)
    rng = random.Random(99)

    def fresh():
        return bfv.encrypt(
            encoder.encode([rng.randrange(32) for _ in range(params.n)]),
            keys.public,
        )

    return params, bfv, keys, encoder, fresh


def _ground_truth(bfv, keys, kind, operands):
    if kind is JobKind.ADD:
        return bfv.add(*operands)
    if kind is JobKind.MULTIPLY:
        return bfv.multiply_relin(operands[0], operands[1], keys.relin)
    if kind is JobKind.SQUARE:
        return bfv.relinearize(bfv.square(operands[0]), keys.relin)
    raise AssertionError(kind)


def _serve(params, keys, backend, pool_size, max_batch, cases):
    server = FheServer(pool_size=pool_size, max_batch=max_batch)
    sid = server.open_session(
        "diff", serialize_params(params),
        relin_key=serialize_relin_key(keys.relin, params),
    )
    jids = [
        server.submit(
            sid, kind,
            tuple(serialize_ciphertext(op) for op in operands),
            backend=backend,
        )
        for kind, operands in cases
    ]
    wires = [server.result(jid) for jid in jids]
    return server, jids, wires


class TestDifferentialGrid:
    @pytest.mark.parametrize("kind", [JobKind.ADD, JobKind.MULTIPLY, JobKind.SQUARE])
    @pytest.mark.parametrize("max_batch,n_jobs", BATCH_SHAPES)
    def test_all_backends_match_ground_truth(self, world, kind, max_batch, n_jobs):
        params, bfv, keys, encoder, fresh = world
        arity = 2 if kind is not JobKind.SQUARE else 1
        cases = [
            (kind, tuple(fresh() for _ in range(arity))) for _ in range(n_jobs)
        ]
        runs = {}
        for pool in POOL_SIZES:
            _, _, wires = _serve(params, keys, "chip_pool", pool, max_batch, cases)
            runs[f"chip_pool_x{pool}"] = wires
        for backend in ("software", "fastntt"):
            _, _, wires = _serve(params, keys, backend, 1, max_batch, cases)
            runs[backend] = wires
        # Bit-identical wire bytes across every backend and pool size.
        reference = runs["chip_pool_x1"]
        for name, wires in runs.items():
            assert wires == reference, f"{name} diverged from chip_pool_x1"
        # And the shared bytes equal local Bfv ground truth, bit-for-bit.
        for (case_kind, operands), wire in zip(cases, reference):
            expected = _ground_truth(bfv, keys, case_kind, operands)
            got = deserialize_ciphertext(wire, params)
            assert [p.coeffs for p in got.polys] == [
                p.coeffs for p in expected.polys
            ]
            assert bfv.decrypt(got, keys.secret) == bfv.decrypt(
                expected, keys.secret
            )


class TestGroundTruthEngineParity:
    """The ground-truth ``Bfv`` engine itself auto-selects the batched RNS
    multiplier; a forced pure-Python scheme must produce the same bits."""

    @pytest.mark.parametrize("kind", [JobKind.MULTIPLY, JobKind.SQUARE])
    def test_auto_and_pure_scheme_agree(self, world, kind, monkeypatch):
        params, bfv, keys, encoder, fresh = world
        assert bfv.multiplier_kind == "RnsExactMultiplier"
        operands = tuple(
            fresh() for _ in range(2 if kind is JobKind.MULTIPLY else 1)
        )
        expected = _ground_truth(bfv, keys, kind, operands)
        monkeypatch.setenv("REPRO_ENGINE", "off")
        pure = Bfv(params, seed=1234)
        assert pure.multiplier_kind == "_ExactMultiplier"
        got = _ground_truth(pure, keys, kind, operands)
        assert [p.coeffs for p in got.polys] == [
            p.coeffs for p in expected.polys
        ]


class TestFidelityFlags:
    def test_multiply_runs_chip_path_on_every_tower(self, world):
        """EvalMult executes tower-by-tower on worker drivers, flagged."""
        params, bfv, keys, encoder, fresh = world
        server, jids, _ = _serve(
            params, keys, "chip_pool", 4, 4,
            [(JobKind.MULTIPLY, (fresh(), fresh()))],
        )
        metrics = server.job_metrics(jids[0])
        towers = params.cofhee_tower_count
        assert metrics.fidelity == "chip"
        assert len(metrics.tower_cycles) == towers
        assert all(c > 0 for c in metrics.tower_cycles)
        assert metrics.relin_fidelity == "engine"
        assert metrics.cycles == sum(metrics.tower_cycles) + metrics.relin_cycles
        # Towers of one multiply really spread across *different* workers.
        assert len(set(metrics.tower_workers)) == towers
        fidelity = server.pool_report()["fidelity"]
        assert fidelity.get("chip") == 1
        assert fidelity.get("relin_engine") == 1

    def test_square_runs_chip_path_too(self, world):
        """SQUARE shards like MULTIPLY: same tensor with a == b."""
        params, bfv, keys, encoder, fresh = world
        server, jids, _ = _serve(
            params, keys, "chip_pool", 4, 4,
            [(JobKind.SQUARE, (fresh(),))],
        )
        metrics = server.job_metrics(jids[0])
        assert metrics.fidelity == "chip"
        assert len(metrics.tower_cycles) == params.cofhee_tower_count
        assert metrics.relin_fidelity == "engine"

    def test_add_is_model_priced(self, world):
        params, bfv, keys, encoder, fresh = world
        server, jids, _ = _serve(
            params, keys, "chip_pool", 2, 4,
            [(JobKind.ADD, (fresh(), fresh()))],
        )
        assert server.job_metrics(jids[0]).fidelity == "model"
        assert server.pool_report()["fidelity"].get("model") == 1


def _non_native_params():
    """A parameter set whose modulus cannot run the chip's negacyclic NTT."""
    q = 999983  # prime, but q-1 is not divisible by 2n = 32
    assert (q - 1) % 32 != 0
    t = 97  # 97 == 1 mod 32, so batching still works
    basis = RnsBasis([q])
    return BfvParameters(n=16, q=q, t=t, cpu_basis=basis, cofhee_basis=basis)


class TestStrictFidelity:
    def test_strict_requires_data_fidelity(self):
        """Strict with the chip path disabled is a contradiction, not a no-op."""
        with pytest.raises(ValueError, match="strict_fidelity requires"):
            ChipPoolBackend(pool_size=1, data_fidelity=False,
                            strict_fidelity=True)

    def test_non_native_multiply_fails_under_strict(self):
        params = _non_native_params()
        bfv = Bfv(params, seed=3)
        keys = bfv.keygen(relin_digit_bits=10)
        encoder = BatchEncoder(params)
        ct = bfv.encrypt(encoder.encode([1, 2, 3]), keys.public)
        server = FheServer(pool_size=2, strict_fidelity=True)
        sid = server.open_session(
            "strict", serialize_params(params),
            relin_key=serialize_relin_key(keys.relin, params),
        )
        jid = server.submit(
            sid, JobKind.MULTIPLY,
            (serialize_ciphertext(ct), serialize_ciphertext(ct)),
        )
        with pytest.raises(RuntimeError, match="strict fidelity"):
            server.result(jid)

    def test_non_native_multiply_flagged_without_strict(self):
        """The old silent fallback is now a recorded model-path flag."""
        params = _non_native_params()
        bfv = Bfv(params, seed=3)
        keys = bfv.keygen(relin_digit_bits=10)
        encoder = BatchEncoder(params)
        ct = bfv.encrypt(encoder.encode([1, 2, 3]), keys.public)
        server = FheServer(pool_size=2)
        sid = server.open_session(
            "lenient", serialize_params(params),
            relin_key=serialize_relin_key(keys.relin, params),
        )
        jid = server.submit(
            sid, JobKind.MULTIPLY,
            (serialize_ciphertext(ct), serialize_ciphertext(ct)),
        )
        server.result(jid)
        metrics = server.job_metrics(jid)
        assert metrics.fidelity == "model"
        # The functional relin still ran through the batched engine fold
        # (the aux-basis multiplier is engine-capable even for a
        # non-chip-native q); only the tensor pricing is modeled.
        assert metrics.relin_fidelity == "engine"
        assert server.pool_report()["fidelity"] == {
            "model": 1, "relin_engine": 1,
        }

    def test_strict_passes_on_native_towers(self):
        params = PARAM_SETS["rns3"]
        bfv = Bfv(params, seed=5)
        keys = bfv.keygen(relin_digit_bits=14)
        encoder = BatchEncoder(params)
        ct = bfv.encrypt(encoder.encode([4, 5]), keys.public)
        server = FheServer(pool_size=4, strict_fidelity=True)
        sid = server.open_session(
            "strict-ok", serialize_params(params),
            relin_key=serialize_relin_key(keys.relin, params),
        )
        jid = server.submit(
            sid, JobKind.MULTIPLY,
            (serialize_ciphertext(ct), serialize_ciphertext(ct)),
        )
        server.result(jid)
        assert server.job_metrics(jid).fidelity == "chip"
