"""Span-tracing telemetry: lifecycle, attribution, and the overhead gate.

The trace a job carries must tell a coherent story — spans nest where
the code nested, phases land in pipeline order, completion stamps win
exactly once — and the whole subsystem must cost nearly nothing when
``REPRO_TRACE=off`` swaps every trace for the shared null singleton:
the acceptance gate holds the tracing machinery under 2% of measured
submit latency.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.jobs import JobKind, JobStatus
from repro.service.serialization import (
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer
from repro.service.telemetry import (
    NULL_TRACE,
    PHASES,
    JobTrace,
    adopt_batch_spans,
    aggregate_phases,
    new_trace,
    tracing_enabled,
)

PARAMS = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)


def _server_with_jobs(backend="", n_jobs=3, pool_size=2, cache=0):
    bfv = Bfv(PARAMS, seed=0xC0F4EE)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(PARAMS)
    rng = random.Random(5)

    def fresh():
        return serialize_ciphertext(bfv.encrypt(
            encoder.encode([rng.randrange(16) for _ in range(PARAMS.n)]),
            keys.public,
        ))

    server = FheServer(pool_size=pool_size, max_batch=4,
                       result_cache_size=cache)
    sid = server.open_session(
        "t", serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
    )
    job_ids = [
        server.submit(sid, JobKind.MULTIPLY, (fresh(), fresh()),
                      backend=backend)
        for _ in range(n_jobs)
    ]
    return server, sid, job_ids


class TestSpanLifecycle:
    def test_nesting_records_parent_indices(self):
        trace = JobTrace()
        with trace.span("submit"):
            with trace.span("decode"):
                pass
            with trace.span("cache_check"):
                pass
        assert [s.phase for s in trace.spans] == [
            "submit", "decode", "cache_check"
        ]
        assert [s.parent for s in trace.spans] == [-1, 0, 0]
        # Exits closed every span with end >= start.
        assert all(s.end >= s.start for s in trace.spans)

    def test_mark_returns_index_for_children(self):
        trace = JobTrace()
        top = trace.mark("worker_execute", 1.0, 2.0)
        child = trace.mark("execute", 1.2, 1.5, parent=top)
        assert trace.spans[child].parent == top
        assert trace.spans[top].parent == -1

    def test_stamp_done_first_wins(self):
        trace = JobTrace()
        trace.mark("submit", 0.0, 0.1)
        trace.stamp_done()
        first = trace.done_at
        time.sleep(0.001)
        trace.stamp_done()  # dedupe fan-out settles followers again
        assert trace.done_at == first

    def test_wall_seconds_is_submit_start_to_done(self):
        trace = JobTrace()
        assert trace.wall_seconds == 0.0
        with trace.span("submit"):
            pass
        assert trace.wall_seconds == 0.0  # not done yet
        trace.stamp_done()
        assert trace.wall_seconds == pytest.approx(
            trace.done_at - trace.spans[0].start
        )

    def test_phase_seconds_counts_top_level_only(self):
        trace = JobTrace()
        with trace.span("submit"):
            with trace.span("decode"):
                pass
        trace.mark("execute", 10.0, 11.0)
        totals = trace.phase_seconds()
        assert "decode" not in totals  # child of submit: no double count
        assert totals["execute"] == pytest.approx(1.0)

    def test_until_done_excludes_post_completion_spans(self):
        trace = JobTrace()
        trace.mark("submit", 0.0, 0.1)
        trace.stamp_done()
        after = trace.done_at + 1.0
        trace.mark("serialize", after, after + 5.0)
        assert "serialize" in trace.phase_seconds(until_done=False)
        assert "serialize" not in trace.phase_seconds(until_done=True)


class TestNullTrace:
    def test_null_trace_is_inert(self):
        assert not NULL_TRACE.enabled
        ctx = NULL_TRACE.span("submit")
        assert NULL_TRACE.span("execute") is ctx  # one shared no-op ctx
        with ctx:
            pass
        assert NULL_TRACE.mark("execute", 0.0, 1.0) == -1
        NULL_TRACE.stamp_queued()
        NULL_TRACE.stamp_done()
        assert NULL_TRACE.done_at is None
        assert NULL_TRACE.wall_seconds == 0.0
        assert NULL_TRACE.phase_seconds() == {}

    def test_new_trace_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "off")
        assert not tracing_enabled()
        assert new_trace() is NULL_TRACE
        monkeypatch.setenv("REPRO_TRACE", "on")
        assert tracing_enabled()
        assert isinstance(new_trace(), JobTrace)


class TestServingTraces:
    @pytest.mark.parametrize("backend", ("software", "chip_pool"))
    def test_phases_arrive_in_pipeline_order(self, backend):
        server, _, job_ids = _server_with_jobs(backend=backend)
        server.run()
        order = {name: i for i, name in enumerate(PHASES)}
        for job_id in job_ids:
            assert server.poll(job_id) is JobStatus.DONE
            trace = server.job_trace(job_id)
            assert trace.spans[0].phase == "submit"
            assert trace.done_at is not None
            top = [s.phase for s in trace.spans if s.parent == -1]
            assert top == sorted(top, key=lambda p: order[p])
            assert {"queue_wait", "execute"} <= set(top)
            # submit's decode/cache_check work is recorded as children.
            children = {s.phase for s in trace.spans if s.parent == 0}
            assert "decode" in children

    def test_serialize_span_lands_after_done(self):
        server, _, job_ids = _server_with_jobs(n_jobs=1)
        server.run()
        server.result(job_ids[0])
        trace = server.job_trace(job_ids[0])
        serialize = [s for s in trace.spans if s.phase == "serialize"]
        assert serialize and serialize[0].start >= trace.done_at

    def test_phase_report_coverage(self):
        """The spans must explain >= 90% of end-to-end job latency."""
        server, _, _ = _server_with_jobs(backend="chip_pool", n_jobs=4)
        server.run()
        rows = server.phase_report(backend="chip_pool")
        assert rows[-1]["phase"] == "(total)"
        assert rows[-1]["percent"] >= 90.0
        assert rows[-1]["percent"] <= 100.0 + 1e-6
        phases = [r["phase"] for r in rows[:-1]]
        assert phases == sorted(phases, key=PHASES.index)

    def test_aggregate_phases_empty(self):
        rows = aggregate_phases([])
        assert rows == [
            {"phase": "(total)", "seconds": 0.0, "percent": 0.0, "spans": 0}
        ]

    def test_tracing_off_serving_still_works(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "off")
        server, _, job_ids = _server_with_jobs(n_jobs=2)
        server.run()
        for job_id in job_ids:
            assert server.poll(job_id) is JobStatus.DONE
            assert server.job_trace(job_id) is NULL_TRACE
        assert server.phase_report() == aggregate_phases([])


class TestDedupeFanoutTraces:
    """Regression: dedupe followers used to get an empty batch window.

    A follower attached to a primary's execution spent its whole wall
    clock inside the primary's batch, but its own trace recorded none of
    it — the profiler attributed everything to untraced time. Fan-out
    now adopts the primary's batch-window spans, clipped at the moment
    the follower actually queued.
    """

    def test_adopt_clips_at_follower_queue_time(self):
        primary = JobTrace()
        primary.queued_at = 0.0
        primary.mark("queue_wait", 0.0, 1.0)
        primary.mark("batch_plan", 1.0, 2.0)
        primary.mark("execute", 2.0, 10.0)
        follower = JobTrace()
        follower.queued_at = 4.0  # joined mid-execute
        copied = adopt_batch_spans(follower, primary)
        # queue_wait and batch_plan ended before the follower existed.
        assert copied == 1
        (execute,) = follower.spans
        assert execute.phase == "execute"
        assert (execute.start, execute.end) == (4.0, 10.0)

    def test_adopt_fills_the_gap_with_queue_wait(self):
        primary = JobTrace()
        primary.mark("execute", 5.0, 9.0)
        follower = JobTrace()
        follower.queued_at = 3.0  # queued before the batch executed
        assert adopt_batch_spans(follower, primary) == 1
        phases = [(s.phase, s.start, s.end) for s in follower.spans]
        assert ("execute", 5.0, 9.0) in phases
        assert ("queue_wait", 3.0, 5.0) in phases

    def test_adopt_is_inert_on_null_traces(self):
        assert adopt_batch_spans(NULL_TRACE, JobTrace()) == 0
        assert adopt_batch_spans(JobTrace(), NULL_TRACE) == 0

    def test_follower_trace_explains_its_latency_end_to_end(self):
        """Two identical submits: the dedupe follower's trace now shows
        the execute window it actually waited through."""
        bfv = Bfv(PARAMS, seed=0xC0F4EE)
        keys = bfv.keygen(relin_digit_bits=14)
        encoder = BatchEncoder(PARAMS)
        wire = serialize_ciphertext(bfv.encrypt(
            encoder.encode(list(range(PARAMS.n))), keys.public
        ))
        server = FheServer(pool_size=2, max_batch=4)
        sid = server.open_session(
            "t", serialize_params(PARAMS),
            relin_key=serialize_relin_key(keys.relin, PARAMS),
        )
        j1 = server.submit(sid, JobKind.MULTIPLY, (wire, wire))
        j2 = server.submit(sid, JobKind.MULTIPLY, (wire, wire))
        server.run()
        assert server.scheduler.stats.dedupe_hits == 1
        assert server.result(j1) == server.result(j2)
        follower = server.job_trace(j2)
        top = {s.phase for s in follower.spans if s.parent == -1}
        assert "execute" in top, top  # the regression: this was missing
        # The adopted window is the follower's own timeline: nothing
        # adopted starts before it queued.
        for span in follower.spans:
            if span.phase in ("execute", "batch_wait", "gather_barrier"):
                assert span.start >= follower.queued_at
        # And the trace now explains most of the follower's latency.
        rows = aggregate_phases([follower])
        assert rows[-1]["phase"] == "(total)"
        assert rows[-1]["percent"] >= 90.0


class TestOverheadGate:
    def test_null_machinery_under_two_percent_of_submit(self, monkeypatch):
        """Acceptance gate: ``REPRO_TRACE=off`` tracing costs < 2%.

        The tracing-off submit path pays one ``new_trace()`` env check,
        a handful of null-span enter/exits, and the lifecycle stamps.
        Micro-time that machinery per job (best of several batches, so
        a scheduler hiccup cannot inflate it) and compare it against
        the measured tracing-off submit latency at a representative
        operand size — the ratio must stay under the 2% budget with a
        wide margin (the null path is ~1us, submit is hundreds).
        """
        monkeypatch.setenv("REPRO_TRACE", "off")

        def machinery_batch(reps=500):
            t0 = time.perf_counter()
            for _ in range(reps):
                trace = new_trace()
                with trace.span("submit"):
                    with trace.span("decode"):
                        pass
                    with trace.span("cache_check"):
                        pass
                trace.stamp_queued()
                trace.stamp_done()
                with trace.span("serialize"):
                    pass
            return (time.perf_counter() - t0) / reps

        machinery_batch(50)  # warm the env-var lookup path
        per_job_machinery = min(machinery_batch() for _ in range(5))

        # Median tracing-off submit latency over a real server, at a
        # chip-native scale rather than the n=16 degenerate toy (the
        # budget is a fraction of what submit really costs to do).
        params = BfvParameters.toy_rns(n=64, towers=3, tower_bits=24)
        bfv = Bfv(params, seed=7)
        keys = bfv.keygen(relin_digit_bits=20)
        encoder = BatchEncoder(params)
        server = FheServer(pool_size=2, max_batch=4, result_cache_size=0)
        sid = server.open_session(
            "t", serialize_params(params),
            relin_key=serialize_relin_key(keys.relin, params),
        )
        ct = serialize_ciphertext(bfv.encrypt(
            encoder.encode([1] * params.n), keys.public
        ))
        samples = []
        for _ in range(15):
            t0 = time.perf_counter()
            server.submit(sid, JobKind.ADD, (ct, ct))
            samples.append(time.perf_counter() - t0)
        submit_median = sorted(samples)[len(samples) // 2]

        assert per_job_machinery < 0.02 * submit_median, (
            f"null-trace machinery {per_job_machinery * 1e9:.0f}ns/job "
            f"exceeds 2% of submit latency "
            f"({submit_median * 1e9:.0f}ns)"
        )
