"""Session registry: dedupe, context caching, compatibility enforcement."""

import pytest

from repro.bfv import Bfv, BfvParameters
from repro.bfv.scheme import Ciphertext
from repro.polymath.poly import PolynomialRing
from repro.service.registry import SessionError, SessionRegistry
from repro.service.serialization import params_digest, serialize_ciphertext

PARAMS_A = BfvParameters.toy(n=16, log_q=60)
PARAMS_B = BfvParameters.toy(n=32, log_q=80)


@pytest.fixture
def registry():
    return SessionRegistry()


def _fresh_ct(params, seed=1):
    bfv = Bfv(params, seed=seed)
    keys = bfv.keygen(relin_digit_bits=None)
    ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
    return bfv.encrypt(ring.one(), keys.public), keys


class TestSessions:
    def test_open_session_assigns_ids(self, registry):
        s1 = registry.open_session("acme", PARAMS_A)
        s2 = registry.open_session("globex", PARAMS_A)
        assert s1.session_id != s2.session_id
        assert registry.get(s1.session_id) is s1

    def test_same_tenant_same_params_deduped(self, registry):
        """Evaluation keys are stored once per (tenant, digest)."""
        s1 = registry.open_session("acme", PARAMS_A)
        s2 = registry.open_session("acme", PARAMS_A)
        assert s1 is s2

    def test_same_tenant_different_params_separate(self, registry):
        s1 = registry.open_session("acme", PARAMS_A)
        s2 = registry.open_session("acme", PARAMS_B)
        assert s1 is not s2
        assert s1.digest != s2.digest

    def test_reopen_adds_keys(self, registry):
        _, keys = _fresh_ct(PARAMS_A)
        s1 = registry.open_session("acme", PARAMS_A)
        assert s1.relin is None
        bfv = Bfv(PARAMS_A, seed=3)
        relin = bfv.keygen(relin_digit_bits=12).relin
        s2 = registry.open_session("acme", PARAMS_A, relin=relin)
        assert s2 is s1 and s1.relin is relin

    def test_missing_keys_raise(self, registry):
        session = registry.open_session("acme", PARAMS_A)
        with pytest.raises(SessionError):
            session.require_relin()
        with pytest.raises(SessionError):
            session.require_galois(3)

    def test_unknown_session(self, registry):
        with pytest.raises(SessionError):
            registry.get("s9999")


class TestContextCache:
    def test_engine_shared_across_tenants(self, registry):
        """One Bfv context per digest, shared by every tenant using it."""
        s1 = registry.open_session("acme", PARAMS_A)
        s2 = registry.open_session("globex", PARAMS_A)
        assert registry.engine(s1) is registry.engine(s2)
        assert len(registry.cached_digests) == 1

    def test_equal_params_instances_share_context(self, registry):
        """Digest keying: a structurally equal params object reuses the cache."""
        clone = BfvParameters.toy(n=16, log_q=60)
        s1 = registry.open_session("acme", PARAMS_A)
        s2 = registry.open_session("globex", clone)
        assert s1.digest == s2.digest == params_digest(clone)
        assert registry.engine(s1) is registry.engine(s2)

    def test_fast_engine_cached_and_exact(self, registry):
        session = registry.open_session("acme", PARAMS_A)
        fast = registry.fast_engine(session)
        assert registry.fast_engine(session) is fast
        # The numpy multiplier produces the same exact integer products.
        ring = PolynomialRing(PARAMS_A.n, PARAMS_A.q, allow_non_ntt=True)
        import random

        rng = random.Random(0)
        a, b = ring.random(rng), ring.random(rng)
        slow = registry.engine(session)._exact_mul(a, b)
        assert fast._exact_mul(a, b) == slow


class TestCompatibility:
    def test_cross_params_ciphertext_rejected(self, registry):
        session = registry.open_session("acme", PARAMS_A)
        foreign, _ = _fresh_ct(PARAMS_B)
        with pytest.raises(SessionError):
            registry.check_compatible(session, foreign)

    def test_wire_ingest_checks_digest(self, registry):
        from repro.service.serialization import ParamsMismatchError

        session = registry.open_session("acme", PARAMS_A)
        foreign, _ = _fresh_ct(PARAMS_B)
        with pytest.raises(ParamsMismatchError):
            registry.ingest_ciphertext(session, serialize_ciphertext(foreign))

    def test_matching_ciphertext_accepted(self, registry):
        session = registry.open_session("acme", PARAMS_A)
        ct, _ = _fresh_ct(PARAMS_A)
        registry.check_compatible(session, ct)  # no raise
        recovered = registry.ingest_ciphertext(session, serialize_ciphertext(ct))
        assert isinstance(recovered, Ciphertext) and recovered == ct
