"""Content-addressed result caching in :class:`FheServer`.

Repeated identical requests (common in inference traffic) must complete
at submit time from the cache, and the cache must never confuse tenants
whose parameters match but whose evaluation keys differ.
"""

import random

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.jobs import JobKind, JobStatus
from repro.service.serialization import (
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

PARAMS = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)


@pytest.fixture(scope="module")
def client():
    bfv = Bfv(PARAMS, seed=77)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(PARAMS)
    rng = random.Random(5)

    def fresh():
        return bfv.encrypt(
            encoder.encode([rng.randrange(16) for _ in range(PARAMS.n)]),
            keys.public,
        )

    return bfv, keys, fresh


def _open(server, keys, tenant="acme"):
    return server.open_session(
        tenant, serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
    )


class TestCacheHits:
    def test_identical_multiply_hits(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=2)
        sid = _open(server, keys)
        ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        first = server.submit(sid, JobKind.MULTIPLY, ops)
        wire_first = server.result(first)
        second = server.submit(sid, JobKind.MULTIPLY, ops)
        # A hit completes at submit time: no poll needed, no batch formed.
        assert server.poll(second) is JobStatus.DONE
        assert server.result(second) == wire_first
        assert server.job_metrics(second).backend == "cache"
        report = server.pool_report()["result_cache"]
        assert report["hits"] == 1
        assert report["misses"] == 1
        assert report["entries"] == 1

    def test_hit_adds_no_pool_work(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=2)
        sid = _open(server, keys)
        ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        server.result(server.submit(sid, JobKind.MULTIPLY, ops))
        cycles_before = server.pool_report()["total_cycles"]
        server.result(server.submit(sid, JobKind.MULTIPLY, ops))
        assert server.pool_report()["total_cycles"] == cycles_before

    def test_object_and_wire_operands_share_an_address(self, client):
        """The content address is the wire bytes, however operands arrive."""
        bfv, keys, fresh = client
        server = FheServer(pool_size=1)
        sid = _open(server, keys)
        a, b = fresh(), fresh()
        server.result(server.submit(
            sid, JobKind.ADD,
            (serialize_ciphertext(a), serialize_ciphertext(b)),
        ))
        jid = server.submit(sid, JobKind.ADD, (a, b))
        assert server.poll(jid) is JobStatus.DONE
        assert server.pool_report()["result_cache"]["hits"] == 1


class TestCacheMisses:
    def test_different_operands_miss(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=1)
        sid = _open(server, keys)
        for _ in range(2):
            ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
            server.result(server.submit(sid, JobKind.MULTIPLY, ops))
        report = server.pool_report()["result_cache"]
        assert report["hits"] == 0
        assert report["misses"] == 2

    def test_kind_is_part_of_the_address(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=1)
        sid = _open(server, keys)
        ct = serialize_ciphertext(fresh())
        server.result(server.submit(sid, JobKind.ADD, (ct, ct)))
        server.result(server.submit(sid, JobKind.SUB, (ct, ct)))
        assert server.pool_report()["result_cache"]["hits"] == 0

    def test_backend_is_part_of_the_address(self, client):
        """A tenant asking for a specific execution path gets it."""
        bfv, keys, fresh = client
        server = FheServer(pool_size=1)
        sid = _open(server, keys)
        ct = serialize_ciphertext(fresh())
        server.result(server.submit(sid, JobKind.ADD, (ct, ct),
                                    backend="chip_pool"))
        server.result(server.submit(sid, JobKind.ADD, (ct, ct),
                                    backend="software"))
        assert server.pool_report()["result_cache"]["hits"] == 0
        assert server.backends["software"].jobs_done == 1

    def test_different_relin_keys_never_share(self, client):
        """Same params digest + same operand bytes, different relin key:
        the results differ, so the cache must not cross tenants."""
        bfv, keys, fresh = client
        other_keys = Bfv(PARAMS, seed=4242).keygen(relin_digit_bits=14)
        server = FheServer(pool_size=1)
        sid_a = _open(server, keys, tenant="alpha")
        sid_b = server.open_session(
            "beta", serialize_params(PARAMS),
            relin_key=serialize_relin_key(other_keys.relin, PARAMS),
        )
        ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        wire_a = server.result(server.submit(sid_a, JobKind.MULTIPLY, ops))
        wire_b = server.result(server.submit(sid_b, JobKind.MULTIPLY, ops))
        assert server.pool_report()["result_cache"]["hits"] == 0
        assert wire_a != wire_b  # different relin keys -> different tails

    def test_app_jobs_bypass_the_cache(self):
        server = FheServer(pool_size=1)
        sid = server.open_app_session("acme", JobKind.LOGREG)
        payload = {"samples": [[1, 0, -1]], "seed": 11}
        for _ in range(2):
            server.result(server.submit(sid, JobKind.LOGREG, payload=payload))
        report = server.pool_report()["result_cache"]
        assert report["hits"] == 0
        assert report["misses"] == 0


class TestInQueueDedupe:
    """Cache-aware scheduling: identical jobs in-queue share one execution.

    The result cache only helps once the first instance has *completed*;
    these tests cover the submit-before-complete window, where the
    scheduler must attach duplicates to the in-flight execution instead
    of running them again.
    """

    def test_duplicate_submit_executes_once(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=2)
        sid = _open(server, keys)
        ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        first = server.submit(sid, JobKind.MULTIPLY, ops)
        second = server.submit(sid, JobKind.MULTIPLY, ops)
        stats = server.run()
        # One execution, two results, bit-identical wire bytes.
        assert sum(b.jobs for b in stats.batches) == 1
        assert server.result(second) == server.result(first)
        assert stats.dedupe_hits == 1
        assert server.pool_report()["result_cache"]["dedupe_hits"] == 1
        metrics = server.job_metrics(second)
        assert metrics.backend == "dedupe"
        assert metrics.dedupe_of == first

    def test_three_way_fan_out(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=2)
        sid = _open(server, keys)
        ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        jids = [server.submit(sid, JobKind.MULTIPLY, ops) for _ in range(3)]
        stats = server.run()
        wires = {server.result(j) for j in jids}
        assert len(wires) == 1
        assert stats.dedupe_hits == 2
        assert sum(b.jobs for b in stats.batches) == 1
        assert stats.jobs_completed == 3

    def test_cache_hit_wins_at_submit_time(self, client):
        """Dedupe and the result cache compose: once the first instance
        has completed, a re-submit is a cache hit (done at submit, no
        waiting), not a dedupe follower."""
        bfv, keys, fresh = client
        server = FheServer(pool_size=2)
        sid = _open(server, keys)
        ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        first = server.submit(sid, JobKind.MULTIPLY, ops)
        follower = server.submit(sid, JobKind.MULTIPLY, ops)  # in-queue
        server.run()
        late = server.submit(sid, JobKind.MULTIPLY, ops)  # after completion
        assert server.poll(late) is JobStatus.DONE  # completed at submit
        report = server.pool_report()["result_cache"]
        assert report["dedupe_hits"] == 1
        assert report["hits"] == 1
        assert server.job_metrics(follower).backend == "dedupe"
        assert server.job_metrics(late).backend == "cache"
        assert server.result(late) == server.result(first)

    def test_different_operands_do_not_dedupe(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=2)
        sid = _open(server, keys)
        for _ in range(2):
            ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
            server.submit(sid, JobKind.MULTIPLY, ops)
        stats = server.run()
        assert stats.dedupe_hits == 0
        assert sum(b.jobs for b in stats.batches) == 2

    def test_different_backends_do_not_dedupe(self, client):
        """A tenant asking for a specific execution path gets it."""
        bfv, keys, fresh = client
        server = FheServer(pool_size=2)
        sid = _open(server, keys)
        ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        a = server.submit(sid, JobKind.ADD, ops, backend="chip_pool")
        b = server.submit(sid, JobKind.ADD, ops, backend="software")
        server.run()
        assert server.scheduler.stats.dedupe_hits == 0
        assert server.backends["software"].jobs_done == 1
        assert server.result(a) == server.result(b)  # still bit-identical

    def test_failed_primary_fails_followers(self, client):
        """Followers inherit the primary's failure, then the address is
        retired so a later identical submit re-executes."""
        bfv, keys, fresh = client
        server = FheServer(pool_size=1)
        # No relin key: MULTIPLY still works (unrelinearized tensor), so
        # use ROTATE with no Galois key to force a failure.
        sid = server.open_session("acme", serialize_params(PARAMS))
        ct = serialize_ciphertext(fresh())
        first = server.submit(sid, JobKind.ROTATE, (ct,), steps=1)
        second = server.submit(sid, JobKind.ROTATE, (ct,), steps=1)
        stats = server.run()
        assert server.poll(first) is JobStatus.FAILED
        assert server.poll(second) is JobStatus.FAILED
        assert stats.dedupe_hits == 1
        assert stats.jobs_failed == 2
        with pytest.raises(RuntimeError, match="failed"):
            server.result(second)
        # The address was retired with the failure: a new submit is not
        # attached to the dead primary and fails on its own execution.
        third = server.submit(sid, JobKind.ROTATE, (ct,), steps=1)
        server.run()
        assert server.poll(third) is JobStatus.FAILED
        assert server.scheduler.stats.dedupe_hits == 1


class TestRejectedSubmissions:
    def test_unknown_backend_leaves_no_server_state(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=1)
        sid = _open(server, keys)
        ct = serialize_ciphertext(fresh())
        with pytest.raises(ValueError, match="unknown backend"):
            server.submit(sid, JobKind.ADD, (ct, ct), backend="nope")
        assert server._jobs == {}
        assert server._pending_cache == {}
        report = server.pool_report()["result_cache"]
        assert report["misses"] == 0 and report["hits"] == 0


class TestCapacityAndDisable:
    def test_lru_eviction(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=1, result_cache_size=1)
        sid = _open(server, keys)
        op1 = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        op2 = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        server.result(server.submit(sid, JobKind.ADD, op1))
        server.result(server.submit(sid, JobKind.ADD, op2))  # evicts op1
        server.result(server.submit(sid, JobKind.ADD, op1))  # recompute
        report = server.pool_report()["result_cache"]
        assert report["hits"] == 0
        assert report["entries"] == 1

    def test_zero_capacity_disables(self, client):
        bfv, keys, fresh = client
        server = FheServer(pool_size=1, result_cache_size=0)
        sid = _open(server, keys)
        ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        for _ in range(2):
            server.result(server.submit(sid, JobKind.ADD, ops))
        report = server.pool_report()["result_cache"]
        assert report == {
            "hits": 0, "misses": 0, "dedupe_hits": 0, "entries": 0,
            "capacity": 0,
        }

    def test_dedupe_works_with_cache_disabled(self, client):
        """In-queue dedupe keys on content, not on the cache's LRU."""
        bfv, keys, fresh = client
        server = FheServer(pool_size=1, result_cache_size=0)
        sid = _open(server, keys)
        ops = (serialize_ciphertext(fresh()), serialize_ciphertext(fresh()))
        first = server.submit(sid, JobKind.MULTIPLY, ops)
        second = server.submit(sid, JobKind.MULTIPLY, ops)
        server.run()
        assert server.result(second) == server.result(first)
        report = server.pool_report()["result_cache"]
        assert report["dedupe_hits"] == 1
        assert report["hits"] == 0 and report["misses"] == 0

    def test_cached_result_decrypts_correctly(self, client):
        """The cached ciphertext is the real answer, not a stale object."""
        from repro.service.serialization import deserialize_ciphertext

        bfv, keys, fresh = client
        server = FheServer(pool_size=2)
        sid = _open(server, keys)
        a, b = fresh(), fresh()
        ops = (serialize_ciphertext(a), serialize_ciphertext(b))
        server.result(server.submit(sid, JobKind.MULTIPLY, ops))
        wire = server.result(server.submit(sid, JobKind.MULTIPLY, ops))
        expected = bfv.multiply_relin(a, b, keys.relin)
        got = deserialize_ciphertext(wire, PARAMS)
        assert bfv.decrypt(got, keys.secret) == bfv.decrypt(
            expected, keys.secret
        )
