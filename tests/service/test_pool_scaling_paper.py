"""Paper-scale pool scaling: n = 2^12, 3 towers, pool of 1 vs pool of 4.

The acceptance claim of the tower-sharding PR, at the paper's small
evaluation degree: on a 3-tower parameter set, a pool of 4 chips must
yield at least a 1.5x shorter EvalMult makespan than a pool of 1, with
every tower executed through ``CofheeDriver.ciphertext_multiply_rns``'s
per-tower path and the results bit-identical across pool sizes.

Skipped unless ``--slow`` is passed (see ``tools/run_checks.sh --slow``):
each pool run pushes real Algorithm 3 command streams through the chip
model at n = 2^12, which takes tens of seconds.
"""

import random

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.polymath.fastntt import RnsExactMultiplier
from repro.service.backends import ChipPoolBackend
from repro.service.jobs import Job, JobKind, JobStatus
from repro.service.registry import SessionRegistry
from repro.service.scheduler import BatchingScheduler

pytestmark = [pytest.mark.slow, pytest.mark.paper_scale]

N = 2**12
TOWERS = 3
N_JOBS = 2


@pytest.fixture(scope="module")
def paper_world():
    params = BfvParameters.toy_rns(n=N, towers=TOWERS, tower_bits=30)
    # The client uses the vectorized exact multiplier: bit-identical to the
    # pure-Python path, fast enough for n = 2^12 key generation.
    bfv = Bfv(params, seed=2023,
              multiplier=RnsExactMultiplier(params.n, params.q))
    keys = bfv.keygen(relin_digit_bits=30)
    encoder = BatchEncoder(params)
    rng = random.Random(46)
    operands = [
        (
            bfv.encrypt(encoder.encode(
                [rng.randrange(64) for _ in range(256)]), keys.public),
            bfv.encrypt(encoder.encode(
                [rng.randrange(64) for _ in range(256)]), keys.public),
        )
        for _ in range(N_JOBS)
    ]
    return params, bfv, keys, operands


def _run_pool(pool_size, params, keys, operands):
    registry = SessionRegistry()
    # engine="fast" keeps host-side functional arithmetic vectorized; the
    # chip traffic and cycle accounting are unaffected.
    backend = ChipPoolBackend(pool_size=pool_size, engine="fast",
                              strict_fidelity=True)
    scheduler = BatchingScheduler(
        registry, {"chip_pool": backend}, default="chip_pool", max_batch=4,
    )
    session = registry.open_session("paper", params, relin=keys.relin)
    jobs = [
        scheduler.submit(Job(
            session_id=session.session_id, tenant="paper",
            kind=JobKind.MULTIPLY, operands=list(ops),
        ))
        for ops in operands
    ]
    stats = scheduler.run_all()
    assert all(j.status is JobStatus.DONE for j in jobs)
    return backend, stats, jobs


def test_pool_of_four_halves_paper_scale_makespan(paper_world):
    params, bfv, keys, operands = paper_world
    makespan = {}
    results = {}
    for size in (1, 4):
        backend, stats, jobs = _run_pool(size, params, keys, operands)
        for job in jobs:
            m = job.metrics
            # Every tower went through the worker's driver (Algorithm 3).
            assert m.fidelity == "chip"
            assert len(m.tower_cycles) == TOWERS
            assert all(c > 0 for c in m.tower_cycles)
            assert m.cycles == sum(m.tower_cycles) + m.relin_cycles
        # Conservative wall time: per-batch makespans add (gather barrier).
        makespan[size] = stats.makespan_cycles
        assert backend.wall_cycles <= stats.makespan_cycles
        results[size] = [
            [p.coeffs for p in job.result.polys] for job in jobs
        ]
        # Work is conserved regardless of pool size.
        assert backend.total_cycles == sum(j.metrics.cycles for j in jobs)
    assert results[4] == results[1]
    # The acceptance bar: >= 1.5x shorter makespan on 4 chips.
    assert makespan[4] * 3 <= makespan[1] * 2, (
        f"pool-of-4 makespan {makespan[4]} is not >= 1.5x shorter than "
        f"pool-of-1 {makespan[1]}"
    )
