"""Acceptance: the paper's applications served over localhost TCP.

``MiniLogisticRegression`` and ``MiniCryptoNets`` inference submitted
through :meth:`AsyncFheClient.submit_circuit` / the sync facade must
return results bit-identical to in-process execution on **every**
backend, with the completion event pushed exactly once, and the circuit
path must compose with in-queue dedupe across connections.
"""

import asyncio
import random

import pytest

from repro.apps.cryptonets import MiniCryptoNets
from repro.apps.logreg import MiniLogisticRegression
from repro.bfv.params import BfvParameters
from repro.polymath.primes import ntt_friendly_prime
from repro.service.client import AsyncFheClient, FheClient, JobFailedError
from repro.service.jobs import JobKind
from repro.service.serialization import (
    deserialize_circuit_outputs,
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer
from repro.service.transport import FheTransportServer, ThreadedTransportServer

BACKENDS = ("chip_pool", "software", "fastntt")

LOGREG_PARAMS = BfvParameters.toy_rns(
    n=16, towers=5, tower_bits=28, t=ntt_friendly_prime(16, 21)
)
CRYPTONETS_PARAMS = BfvParameters.toy_rns(
    n=16, towers=4, tower_bits=30, t=ntt_friendly_prime(16, 20)
)


@pytest.fixture(scope="module")
def logreg():
    rng = random.Random(41)
    model = MiniLogisticRegression(params=LOGREG_PARAMS, num_features=4, seed=11)
    samples = [[rng.randint(-3, 3) for _ in range(4)] for _ in range(3)]
    circuit = model.to_circuit(batch=len(samples))
    inputs = tuple(
        serialize_ciphertext(ct) for ct in model.encrypt_features(samples)
    )
    return model, samples, circuit, inputs


@pytest.fixture(scope="module")
def cryptonets():
    rng = random.Random(42)
    model = MiniCryptoNets(params=CRYPTONETS_PARAMS, seed=7)
    images = [[rng.randint(-2, 2) for _ in range(36)] for _ in range(2)]
    circuit = model.to_circuit()
    inputs = tuple(
        serialize_ciphertext(ct) for ct in model.encrypt_images(images)
    )
    return model, images, circuit, inputs


def _in_process_wire(model, circuit, inputs, backend: str) -> bytes:
    """Ground truth: the same submission through the in-process server."""
    server = FheServer(pool_size=3, result_cache_size=0)
    sid = server.open_session(
        "truth",
        serialize_params(model.params),
        relin_key=serialize_relin_key(model.keys.relin, model.params),
    )
    return server.result(server.submit(
        sid, JobKind.CIRCUIT, inputs, payload=circuit, backend=backend
    ))


class TestSyncFacade:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_logreg_bit_identical_per_backend(self, logreg, backend):
        model, samples, circuit, inputs = logreg
        expected = _in_process_wire(model, circuit, inputs, backend)
        events = []
        with ThreadedTransportServer(pool_size=3) as ts:
            with FheClient(ts.host, ts.port) as client:
                sid = client.open_session(
                    "acme", serialize_params(model.params),
                    relin_key=serialize_relin_key(
                        model.keys.relin, model.params
                    ),
                )
                jid = client.submit_circuit(
                    sid, circuit, inputs, backend=backend,
                    on_done=lambda event: events.append(event.status),
                )
                payload = client.result(jid)
                assert client.events_received(jid) == 1
        assert payload == expected
        assert events == ["done"]
        outs = deserialize_circuit_outputs(payload, model.params)
        assert model.predictions_from_score(
            outs["score"], len(samples)
        ) == model.predict_plain(samples)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cryptonets_bit_identical_per_backend(self, cryptonets, backend):
        model, images, circuit, inputs = cryptonets
        expected = _in_process_wire(model, circuit, inputs, backend)
        with ThreadedTransportServer(pool_size=4) as ts:
            with FheClient(ts.host, ts.port) as client:
                sid = client.open_session(
                    "globex", serialize_params(model.params),
                    relin_key=serialize_relin_key(
                        model.keys.relin, model.params
                    ),
                )
                payload = client.result(client.submit_circuit(
                    sid, circuit, inputs, backend=backend
                ))
        assert payload == expected
        outs = deserialize_circuit_outputs(payload, model.params)
        scores = model.scores_from_outputs(outs, len(images))
        assert scores == model.infer_plain(images)

    def test_chip_fidelity_over_the_wire(self, cryptonets):
        model, _images, circuit, inputs = cryptonets
        with ThreadedTransportServer(pool_size=4) as ts:
            with FheClient(ts.host, ts.port) as client:
                sid = client.open_session(
                    "globex", serialize_params(model.params),
                    relin_key=serialize_relin_key(
                        model.keys.relin, model.params
                    ),
                )
                client.result(client.submit_circuit(sid, circuit, inputs))
            report = ts.fhe.pool_report()
        assert report["fidelity"].get("chip") == 1
        assert len(report["tower_cycles"]) == model.params.cofhee_tower_count
        assert all(c > 0 for c in report["tower_cycles"])


class TestAsyncClient:
    def test_two_clients_dedupe_one_execution(self, logreg):
        """Identical circuits from different connections share one run."""
        model, _samples, circuit, inputs = logreg

        async def scenario():
            server = FheTransportServer(pool_size=2)
            await server.start()
            try:
                server.pause_execution()  # land both in the dedupe window
                async with await AsyncFheClient.connect(*server.address) as c1:
                    async with await AsyncFheClient.connect(
                        *server.address
                    ) as c2:
                        kwargs = dict(
                            relin_key=serialize_relin_key(
                                model.keys.relin, model.params
                            ),
                        )
                        s1 = await c1.open_session(
                            "acme", serialize_params(model.params), **kwargs
                        )
                        s2 = await c2.open_session(
                            "acme", serialize_params(model.params), **kwargs
                        )
                        j1 = await c1.submit_circuit(s1, circuit, inputs)
                        j2 = await c2.submit_circuit(s2, circuit, inputs)
                        server.resume_execution()
                        r1, r2 = await asyncio.gather(
                            c1.result(j1), c2.result(j2)
                        )
                report = server.fhe.pool_report()["result_cache"]
                return r1, r2, report
            finally:
                await server.aclose()

        r1, r2, report = asyncio.run(scenario())
        assert r1 == r2
        assert report["dedupe_hits"] == 1

    def test_failed_circuit_raises_job_failed(self, logreg):
        """A circuit that needs a relin key fails cleanly over the wire."""
        model, _samples, circuit, inputs = logreg

        async def scenario():
            async with FheTransportServer(pool_size=2) as server:
                async with await AsyncFheClient.connect(
                    *server.address
                ) as client:
                    sid = await client.open_session(
                        "acme", serialize_params(model.params)  # no keys
                    )
                    jid = await client.submit_circuit(sid, circuit, inputs)
                    with pytest.raises(JobFailedError, match="relinearization"):
                        await client.result(jid)
            return True

        assert asyncio.run(scenario())

    def test_malformed_circuit_earns_an_error_reply(self, logreg):
        """Garbage circuit bytes fail the request, not the connection."""
        model, _samples, circuit, inputs = logreg
        from repro.service.client import TransportError
        from repro.service.serialization import serialize_circuit

        async def scenario():
            async with FheTransportServer(pool_size=1) as server:
                async with await AsyncFheClient.connect(
                    *server.address
                ) as client:
                    sid = await client.open_session(
                        "acme", serialize_params(model.params),
                        relin_key=serialize_relin_key(
                            model.keys.relin, model.params
                        ),
                    )
                    bad = bytearray(serialize_circuit(circuit))
                    bad[10] ^= 0xFF
                    with pytest.raises(TransportError):
                        await client.submit_circuit(sid, bytes(bad), inputs)
                    # The connection survives: a good submit still works.
                    jid = await client.submit_circuit(sid, circuit, inputs)
                    return await client.result(jid)

        assert asyncio.run(scenario())
