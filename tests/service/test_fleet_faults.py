"""Chaos battery for the multi-process worker fleet.

Every scenario injects a deterministic fault through the
``REPRO_FAULT``-style spec (:class:`~repro.service.fleet.FaultPlan`) and
asserts the serving invariants the fleet guarantees:

* no accepted job is ever lost — a killed worker's in-flight jobs
  requeue onto survivors and complete **bit-identical** to local
  :class:`~repro.bfv.Bfv` ground truth;
* no result is ever delivered twice — late duplicates from a worker the
  orchestrator gave up on are discarded as stale;
* a silent worker is evicted on heartbeat timeout and re-admitted the
  moment it speaks again;
* a submit flood against a windowed transport stalls the flooding
  connection (backpressure) without dropping anything accepted;
* when recovery is impossible (every worker dead, restarts off) the job
  fails *cleanly* with a diagnosable message — never a hang.

Process-mode scenarios spawn real separate interpreters; thread-mode
scenarios run the identical worker loop in-process for speed.
"""

import asyncio
import random

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.client import AsyncFheClient
from repro.service.fleet import FaultPlan, FaultSpecError, route_index
from repro.service.jobs import JobKind
from repro.service.serialization import (
    deserialize_ciphertext,
    params_digest,
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer
from repro.service.transport import FheTransportServer

PARAMS = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)

#: Tight liveness settings so chaos scenarios settle in test time.
FAST_BEATS = {"heartbeat_interval": 0.05, "heartbeat_timeout": 0.5}


@pytest.fixture(scope="module")
def stack():
    bfv = Bfv(PARAMS, seed=0xC0F4EE)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(PARAMS)
    return bfv, keys, encoder


def _open(server, stack, tenant="chaos"):
    bfv, keys, _ = stack
    return server.open_session(
        tenant, serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
    )


def _mult_jobs(server, sid, stack, count, seed=3):
    """Submit ``count`` multiplies; returns [(job_id, expected ct)]."""
    bfv, keys, encoder = stack
    rng = random.Random(seed)
    checks = []
    for _ in range(count):
        a = bfv.encrypt(encoder.encode(
            [rng.randrange(16) for _ in range(PARAMS.n)]), keys.public)
        b = bfv.encrypt(encoder.encode(
            [rng.randrange(16) for _ in range(PARAMS.n)]), keys.public)
        jid = server.submit(
            sid, JobKind.MULTIPLY,
            (serialize_ciphertext(a), serialize_ciphertext(b)),
        )
        checks.append((jid, bfv.multiply_relin(a, b, keys.relin)))
    return checks


def _assert_bit_identical(server, stack, checks):
    bfv, keys, _ = stack
    for jid, expected in checks:
        got = deserialize_ciphertext(server.result(jid), PARAMS)
        assert bfv.decrypt(got, keys.secret) == bfv.decrypt(
            expected, keys.secret
        ), f"job {jid} diverged from Bfv ground truth"


class TestFaultSpec:
    def test_grammar_round_trips(self):
        plan = FaultPlan.parse(
            "kill:worker=1:job=2;delay_heartbeat:worker=0:beats=5"
        )
        assert FaultPlan.parse(plan.render()).render() == plan.render()

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("explode:worker=0")

    def test_worker_is_mandatory(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("kill:job=1")

    def test_per_worker_projection(self):
        plan = FaultPlan.parse("corrupt:worker=1:job=2")
        assert plan.for_worker(0).on_result() == ""
        faults = plan.for_worker(1)
        assert faults.on_result() == ""  # job 1 passes untouched
        assert faults.on_result() == "corrupt"  # job 2 corrupted
        assert faults.on_result() == ""  # one-shot


class TestWorkerKilledMidBatch:
    def test_requeue_completes_bit_identical(self, stack):
        """A worker killed mid-batch loses nothing: its jobs requeue to
        the survivor and the respawned slot, and every result matches
        ground truth bit for bit (real separate interpreters)."""
        target = route_index(params_digest(PARAMS), 2)
        server = FheServer(
            fleet_size=2, fleet_mode="process", default_backend="fleet",
            fault_spec=f"kill:worker={target}:job=1",
            fleet_options=dict(FAST_BEATS, heartbeat_timeout=10.0),
        )
        with server:
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 3)
            _assert_bit_identical(server, stack, checks)
            rep = server.fleet_report()
        assert rep["requeues"] >= 1, rep
        assert rep["deaths"] == 1, rep
        assert rep["respawns"] == 1, rep
        # Exactly-once: every submitted job settled exactly one way.
        stats = server.scheduler.stats
        assert stats.jobs_completed == stats.jobs_submitted
        assert stats.jobs_failed == 0

    def test_every_worker_killed_still_completes(self, stack):
        """Kill faults armed on *both* workers: each dies once, both
        slots respawn with clean fault plans, and the traffic still
        lands bit-identical (thread mode for speed)."""
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fault_spec="kill:worker=0:job=1;kill:worker=1:job=1",
            fleet_options=dict(FAST_BEATS),
        )
        with server:
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 4, seed=5)
            _assert_bit_identical(server, stack, checks)
            rep = server.fleet_report()
        assert rep["deaths"] == 2, rep
        assert rep["respawns"] == 2, rep
        assert rep["requeues"] >= 2, rep
        assert server.scheduler.stats.jobs_failed == 0


class TestHeartbeatLoss:
    def test_evict_then_readmit(self, stack):
        """A worker that stops heartbeating is evicted; the moment it
        speaks again it is re-admitted and serves traffic."""
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            # ~12 skipped beats at 0.05s ≈ 0.6s of silence, past the
            # 0.2s timeout — then beats resume and the worker returns.
            fault_spec="delay_heartbeat:worker=0:beats=12",
            fleet_options={"heartbeat_interval": 0.05,
                           "heartbeat_timeout": 0.2},
        )
        with server:
            fleet = server.fleet
            deadline = 100
            while fleet.evictions == 0 and deadline:
                fleet.poll(0.05)
                deadline -= 1
            assert fleet.evictions >= 1, "silent worker never evicted"
            deadline = 100
            while fleet.readmissions == 0 and deadline:
                fleet.poll(0.05)
                deadline -= 1
            assert fleet.readmissions >= 1, "worker never re-admitted"
            # The recovered fleet still serves correct traffic.
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 2, seed=9)
            _assert_bit_identical(server, stack, checks)
        assert server.scheduler.stats.jobs_failed == 0


class TestCorruptReply:
    def test_crc_catches_and_retries(self, stack):
        """A bit-flipped reply fails the CRC check; the job re-executes
        on a different worker and the delivered result is clean."""
        target = route_index(params_digest(PARAMS), 2)
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fault_spec=f"corrupt:worker={target}:job=1",
            fleet_options=dict(FAST_BEATS),
        )
        with server:
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 2, seed=13)
            _assert_bit_identical(server, stack, checks)
            rep = server.fleet_report()
        assert rep["corrupt_replies"] == 1, rep
        assert rep["deaths"] == 0, rep
        assert server.scheduler.stats.jobs_failed == 0


class TestUnrecoverableFailureIsClean:
    def test_no_live_workers_fails_the_job(self, stack):
        """Every worker dead and restarts disabled: the job fails with
        a diagnosable message instead of hanging or vanishing."""
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fault_spec="kill:worker=0:job=1;kill:worker=1:job=1",
            fleet_options=dict(FAST_BEATS, restart=False),
        )
        with server:
            sid = _open(server, stack)
            (jid, _), = _mult_jobs(server, sid, stack, 1)
            with pytest.raises(RuntimeError, match="no live fleet workers"):
                server.result(jid)
        stats = server.scheduler.stats
        assert stats.jobs_failed == 1
        assert stats.jobs_completed + stats.jobs_failed == stats.jobs_submitted


class TestSubmitFloodBackpressure:
    WINDOW = 3
    TOTAL = 9

    def test_window_stalls_without_dropping(self, stack):
        """A paused server + a submit flood: the per-connection window
        fills, further submits stall (stall counter fires), and on
        resume every accepted job completes bit-identical — zero
        drops, zero duplicates."""
        bfv, keys, encoder = stack
        rng = random.Random(21)

        async def scenario():
            fhe = FheServer(
                fleet_size=2, fleet_mode="thread", default_backend="fleet",
                fleet_options=dict(FAST_BEATS),
            )
            async with FheTransportServer(
                fhe, max_inflight=self.WINDOW,
            ) as server:
                host, port = server.address
                server.pause_execution()
                client = await AsyncFheClient.connect(host, port)
                sid = await client.open_session(
                    "flood", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                pairs = []
                for _ in range(self.TOTAL):
                    a = bfv.encrypt(encoder.encode(
                        [rng.randrange(16) for _ in range(PARAMS.n)]),
                        keys.public)
                    b = bfv.encrypt(encoder.encode(
                        [rng.randrange(16) for _ in range(PARAMS.n)]),
                        keys.public)
                    pairs.append((a, b))

                async def flood():
                    return [
                        await client.submit(sid, JobKind.MULTIPLY, (
                            serialize_ciphertext(a), serialize_ciphertext(b),
                        ))
                        for a, b in pairs
                    ]

                task = asyncio.create_task(flood())
                await asyncio.sleep(0.4)
                stalls = server.fhe.metrics.counter(
                    "repro_backpressure_stalls_total",
                    "submits stalled on a full per-connection window",
                ).value
                assert not task.done(), "flood should stall on the window"
                assert stalls >= 1, f"window never engaged: {stalls}"
                server.resume_execution()
                job_ids = await task
                assert len(job_ids) == self.TOTAL
                assert len(set(job_ids)) == self.TOTAL  # no duplicates
                for jid, (a, b) in zip(job_ids, pairs):
                    wire = await client.result(jid)
                    got = deserialize_ciphertext(wire, PARAMS)
                    exp = bfv.multiply_relin(a, b, keys.relin)
                    assert bfv.decrypt(got, keys.secret) == bfv.decrypt(
                        exp, keys.secret)
                await client.aclose()
                stats = server.fhe.scheduler.stats
                assert stats.jobs_failed == 0
                assert stats.jobs_completed == stats.jobs_submitted

        asyncio.run(scenario())
