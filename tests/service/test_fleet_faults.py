"""Chaos battery for the multi-process worker fleet.

Every scenario injects a deterministic fault through the
``REPRO_FAULT``-style spec (:class:`~repro.service.fleet.FaultPlan`) and
asserts the serving invariants the fleet guarantees:

* no accepted job is ever lost — a killed worker's in-flight jobs
  requeue onto survivors and complete **bit-identical** to local
  :class:`~repro.bfv.Bfv` ground truth;
* no result is ever delivered twice — late duplicates from a worker the
  orchestrator gave up on are discarded as stale;
* a silent worker is evicted on heartbeat timeout and re-admitted the
  moment it speaks again;
* a submit flood against a windowed transport stalls the flooding
  connection (backpressure) without dropping anything accepted;
* when recovery is impossible (every worker dead, restarts off) the job
  fails *cleanly* with a diagnosable message — never a hang.

Process-mode scenarios spawn real separate interpreters; thread-mode
scenarios run the identical worker loop in-process for speed.
"""

import asyncio
import random
import time

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.client import (
    AsyncFheClient,
    JobFailedError,
    RetryPolicy,
    TransportError,
)
from repro.service.errors import QuotaExceededError
from repro.service.fleet import FaultPlan, FaultSpecError, route_index
from repro.service.jobs import JobKind, JobStatus
from repro.service.serialization import (
    deserialize_ciphertext,
    params_digest,
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer, TenantQuota
from repro.service.transport import FheTransportServer

PARAMS = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)

#: Tight liveness settings so chaos scenarios settle in test time.
FAST_BEATS = {"heartbeat_interval": 0.05, "heartbeat_timeout": 0.5}


@pytest.fixture(scope="module")
def stack():
    bfv = Bfv(PARAMS, seed=0xC0F4EE)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(PARAMS)
    return bfv, keys, encoder


def _open(server, stack, tenant="chaos"):
    bfv, keys, _ = stack
    return server.open_session(
        tenant, serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
    )


def _mult_jobs(server, sid, stack, count, seed=3):
    """Submit ``count`` multiplies; returns [(job_id, expected ct)]."""
    bfv, keys, encoder = stack
    rng = random.Random(seed)
    checks = []
    for _ in range(count):
        a = bfv.encrypt(encoder.encode(
            [rng.randrange(16) for _ in range(PARAMS.n)]), keys.public)
        b = bfv.encrypt(encoder.encode(
            [rng.randrange(16) for _ in range(PARAMS.n)]), keys.public)
        jid = server.submit(
            sid, JobKind.MULTIPLY,
            (serialize_ciphertext(a), serialize_ciphertext(b)),
        )
        checks.append((jid, bfv.multiply_relin(a, b, keys.relin)))
    return checks


def _assert_bit_identical(server, stack, checks):
    bfv, keys, _ = stack
    for jid, expected in checks:
        got = deserialize_ciphertext(server.result(jid), PARAMS)
        assert bfv.decrypt(got, keys.secret) == bfv.decrypt(
            expected, keys.secret
        ), f"job {jid} diverged from Bfv ground truth"


class TestFaultSpec:
    def test_grammar_round_trips(self):
        plan = FaultPlan.parse(
            "kill:worker=1:job=2;delay_heartbeat:worker=0:beats=5"
        )
        assert FaultPlan.parse(plan.render()).render() == plan.render()

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("explode:worker=0")

    def test_worker_is_mandatory(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("kill:job=1")

    def test_per_worker_projection(self):
        plan = FaultPlan.parse("corrupt:worker=1:job=2")
        assert plan.for_worker(0).on_result() == ""
        faults = plan.for_worker(1)
        assert faults.on_result() == ""  # job 1 passes untouched
        assert faults.on_result() == "corrupt"  # job 2 corrupted
        assert faults.on_result() == ""  # one-shot


class TestWorkerKilledMidBatch:
    def test_requeue_completes_bit_identical(self, stack):
        """A worker killed mid-batch loses nothing: its jobs requeue to
        the survivor and the respawned slot, and every result matches
        ground truth bit for bit (real separate interpreters)."""
        target = route_index(params_digest(PARAMS), 2)
        server = FheServer(
            fleet_size=2, fleet_mode="process", default_backend="fleet",
            fault_spec=f"kill:worker={target}:job=1",
            fleet_options=dict(FAST_BEATS, heartbeat_timeout=10.0),
        )
        with server:
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 3)
            _assert_bit_identical(server, stack, checks)
            rep = server.fleet_report()
        assert rep["requeues"] >= 1, rep
        assert rep["deaths"] == 1, rep
        assert rep["respawns"] == 1, rep
        # Exactly-once: every submitted job settled exactly one way.
        stats = server.scheduler.stats
        assert stats.jobs_completed == stats.jobs_submitted
        assert stats.jobs_failed == 0

    def test_every_worker_killed_still_completes(self, stack):
        """Kill faults armed on *both* workers: each dies once, both
        slots respawn with clean fault plans, and the traffic still
        lands bit-identical (thread mode for speed)."""
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fault_spec="kill:worker=0:job=1;kill:worker=1:job=1",
            fleet_options=dict(FAST_BEATS),
        )
        with server:
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 4, seed=5)
            _assert_bit_identical(server, stack, checks)
            rep = server.fleet_report()
        assert rep["deaths"] == 2, rep
        assert rep["respawns"] == 2, rep
        assert rep["requeues"] >= 2, rep
        assert server.scheduler.stats.jobs_failed == 0


class TestHeartbeatLoss:
    def test_evict_then_readmit(self, stack):
        """A worker that stops heartbeating is evicted; the moment it
        speaks again it is re-admitted and serves traffic."""
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            # ~12 skipped beats at 0.05s ≈ 0.6s of silence, past the
            # 0.2s timeout — then beats resume and the worker returns.
            fault_spec="delay_heartbeat:worker=0:beats=12",
            fleet_options={"heartbeat_interval": 0.05,
                           "heartbeat_timeout": 0.2},
        )
        with server:
            fleet = server.fleet
            deadline = 100
            while fleet.evictions == 0 and deadline:
                fleet.poll(0.05)
                deadline -= 1
            assert fleet.evictions >= 1, "silent worker never evicted"
            deadline = 100
            while fleet.readmissions == 0 and deadline:
                fleet.poll(0.05)
                deadline -= 1
            assert fleet.readmissions >= 1, "worker never re-admitted"
            # The recovered fleet still serves correct traffic.
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 2, seed=9)
            _assert_bit_identical(server, stack, checks)
        assert server.scheduler.stats.jobs_failed == 0


class TestCorruptReply:
    def test_crc_catches_and_retries(self, stack):
        """A bit-flipped reply fails the CRC check; the job re-executes
        on a different worker and the delivered result is clean."""
        target = route_index(params_digest(PARAMS), 2)
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fault_spec=f"corrupt:worker={target}:job=1",
            fleet_options=dict(FAST_BEATS),
        )
        with server:
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 2, seed=13)
            _assert_bit_identical(server, stack, checks)
            rep = server.fleet_report()
        assert rep["corrupt_replies"] == 1, rep
        assert rep["deaths"] == 0, rep
        assert server.scheduler.stats.jobs_failed == 0


class TestUnrecoverableFailureIsClean:
    def test_no_live_workers_fails_the_job(self, stack):
        """Every worker dead and restarts disabled: the job fails with
        a diagnosable message instead of hanging or vanishing."""
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fault_spec="kill:worker=0:job=1;kill:worker=1:job=1",
            fleet_options=dict(FAST_BEATS, restart=False),
        )
        with server:
            sid = _open(server, stack)
            (jid, _), = _mult_jobs(server, sid, stack, 1)
            with pytest.raises(RuntimeError, match="no live fleet workers"):
                server.result(jid)
        stats = server.scheduler.stats
        assert stats.jobs_failed == 1
        assert stats.jobs_completed + stats.jobs_failed == stats.jobs_submitted


class TestSubmitFloodBackpressure:
    WINDOW = 3
    TOTAL = 9

    def test_window_stalls_without_dropping(self, stack):
        """A paused server + a submit flood: the per-connection window
        fills, further submits stall (stall counter fires), and on
        resume every accepted job completes bit-identical — zero
        drops, zero duplicates."""
        bfv, keys, encoder = stack
        rng = random.Random(21)

        async def scenario():
            fhe = FheServer(
                fleet_size=2, fleet_mode="thread", default_backend="fleet",
                fleet_options=dict(FAST_BEATS),
            )
            async with FheTransportServer(
                fhe, max_inflight=self.WINDOW,
            ) as server:
                host, port = server.address
                server.pause_execution()
                client = await AsyncFheClient.connect(host, port)
                sid = await client.open_session(
                    "flood", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                pairs = []
                for _ in range(self.TOTAL):
                    a = bfv.encrypt(encoder.encode(
                        [rng.randrange(16) for _ in range(PARAMS.n)]),
                        keys.public)
                    b = bfv.encrypt(encoder.encode(
                        [rng.randrange(16) for _ in range(PARAMS.n)]),
                        keys.public)
                    pairs.append((a, b))

                async def flood():
                    return [
                        await client.submit(sid, JobKind.MULTIPLY, (
                            serialize_ciphertext(a), serialize_ciphertext(b),
                        ))
                        for a, b in pairs
                    ]

                task = asyncio.create_task(flood())
                await asyncio.sleep(0.4)
                stalls = server.fhe.metrics.counter(
                    "repro_backpressure_stalls_total",
                    "submits stalled on a full per-connection window",
                ).value
                assert not task.done(), "flood should stall on the window"
                assert stalls >= 1, f"window never engaged: {stalls}"
                server.resume_execution()
                job_ids = await task
                assert len(job_ids) == self.TOTAL
                assert len(set(job_ids)) == self.TOTAL  # no duplicates
                for jid, (a, b) in zip(job_ids, pairs):
                    wire = await client.result(jid)
                    got = deserialize_ciphertext(wire, PARAMS)
                    exp = bfv.multiply_relin(a, b, keys.relin)
                    assert bfv.decrypt(got, keys.secret) == bfv.decrypt(
                        exp, keys.secret)
                await client.aclose()
                stats = server.fhe.scheduler.stats
                assert stats.jobs_failed == 0
                assert stats.jobs_completed == stats.jobs_submitted

        asyncio.run(scenario())


class TestStallFault:
    def test_stalled_reply_is_swallowed_worker_stays_live(self, stack):
        """The stall action executes the job but drops its reply: the
        worker keeps heartbeating and serves later jobs, while the
        stalled one hangs until something (here: a deadline) reaps it."""
        plan = FaultPlan.parse("stall:worker=0:job=1")
        faults = plan.for_worker(0)
        assert faults.on_result() == "stall"
        assert faults.on_result() == ""  # one-shot

    def test_stall_round_trips_through_grammar(self):
        plan = FaultPlan.parse("stall:worker=1:job=3")
        assert plan.render() == "stall:worker=1:job=3"
        assert FaultPlan.parse(plan.render()).rules == plan.rules


class TestQuotaAdmission:
    def test_over_quota_rejected_before_math_others_unaffected(self, stack):
        """A hot tenant burning through its submit budget is rejected
        with the typed retryable ``quota`` error *before any math*; a
        quiet tenant on the same server is untouched."""
        server = FheServer(
            pool_size=2,
            quotas={"hot": TenantQuota(burst=2)},  # rate=0: never refills
        )
        hot = _open(server, stack, tenant="hot")
        quiet = _open(server, stack, tenant="quiet")
        hot_checks = _mult_jobs(server, hot, stack, 2)
        executed_before = server.scheduler.stats.jobs_submitted
        with pytest.raises(QuotaExceededError) as exc_info:
            _mult_jobs(server, hot, stack, 1, seed=7)
        assert exc_info.value.code == "quota"
        assert exc_info.value.retryable
        # Rejected at admission: nothing entered the scheduler.
        assert server.scheduler.stats.jobs_submitted == executed_before
        # The quiet tenant submits and completes as if nothing happened.
        quiet_checks = _mult_jobs(server, quiet, stack, 3, seed=11)
        server.run()
        _assert_bit_identical(server, stack, hot_checks + quiet_checks)
        rejections = server.metrics.counter(
            "repro_quota_rejections_total",
            "submits refused by per-tenant quota admission",
            tenant="hot", reason="rate",
        ).value
        assert rejections == 1

    def test_inflight_cap_releases_on_completion(self, stack):
        """max_inflight rejects the (N+1)th outstanding job and admits
        again once one settles — admission tracks live jobs, not
        lifetime submissions."""
        server = FheServer(
            pool_size=2, quotas={"hot": TenantQuota(max_inflight=1)},
        )
        sid = _open(server, stack, tenant="hot")
        checks = _mult_jobs(server, sid, stack, 1)
        with pytest.raises(QuotaExceededError):
            _mult_jobs(server, sid, stack, 1, seed=5)
        server.run()
        checks += _mult_jobs(server, sid, stack, 1, seed=5)
        server.run()
        _assert_bit_identical(server, stack, checks)


class TestDeadlines:
    def test_queued_expiry_sheds_cleanly(self, stack):
        """A job whose deadline lapses while queued is shed at batch-plan
        time with the typed ``deadline expired`` failure — it never
        reaches a backend and never requeues."""
        server = FheServer(pool_size=2)
        sid = _open(server, stack)
        bfv, keys, encoder = stack
        a = bfv.encrypt(encoder.encode([1] * PARAMS.n), keys.public)
        doomed = server.submit(
            sid, JobKind.MULTIPLY,
            (serialize_ciphertext(a), serialize_ciphertext(a)),
            deadline=0.001,
        )
        live_checks = _mult_jobs(server, sid, stack, 2)
        time.sleep(0.01)
        server.run()
        assert server.status(doomed) is JobStatus.FAILED
        assert server.job_error(doomed).startswith("deadline expired")
        _assert_bit_identical(server, stack, live_checks)
        stats = server.scheduler.stats
        assert stats.jobs_failed == 1
        assert stats.jobs_completed + stats.jobs_failed == stats.jobs_submitted

    def test_follower_expiry_sheds_while_primary_in_flight(self, stack):
        """A dedupe follower sits in no scheduler queue, so the batch-plan
        shed never visits it: when its deadline lapses while the primary
        is still working, the harvest sweep must fail it with the typed
        ``deadline expired`` error — mapping to client kind ``deadline``
        — instead of settling it late with the primary's result."""
        server = FheServer(pool_size=2, max_batch=2)
        sid = _open(server, stack)
        bfv, keys, encoder = stack
        # Fillers occupy the first batch so the primary is still queued
        # (in flight, not done) at the first harvest sweep.
        live_checks = _mult_jobs(server, sid, stack, 2, seed=11)
        a = bfv.encrypt(encoder.encode([3] * PARAMS.n), keys.public)
        operands = (serialize_ciphertext(a), serialize_ciphertext(a))
        primary = server.submit(sid, JobKind.MULTIPLY, operands)
        doomed = server.submit(
            sid, JobKind.MULTIPLY, operands, deadline=0.001,
        )
        assert server.job_metrics(doomed).dedupe_of == primary
        time.sleep(0.01)
        server.tick()  # executes the filler batch, then sweeps followers
        assert server.status(doomed) is JobStatus.FAILED
        message = server.job_error(doomed)
        assert message == "deadline expired awaiting deduped execution"
        # The wire contract: this message classifies as a deadline kind,
        # so retrying clients treat the failure as terminal-typed.
        assert JobFailedError(doomed, message).kind == "deadline"
        server.run()
        assert server.status(primary) is JobStatus.DONE
        _assert_bit_identical(server, stack, live_checks)
        shed = server.metrics.counter(
            "repro_deadline_shed_total",
            "jobs failed past their deadline",
            stage="follower", tenant="chaos",
        ).value
        assert shed == 1
        stats = server.scheduler.stats
        assert stats.dedupe_hits == 1
        assert stats.jobs_failed == 1
        assert stats.jobs_completed + stats.jobs_failed == stats.jobs_submitted

    def test_inflight_expiry_reaped_no_requeue_loop(self, stack):
        """A stalled worker hangs a job past its deadline: the fleet
        reaps it into a clean typed failure (no requeue loop), discards
        the reply if it ever surfaces, and the worker — still live —
        keeps serving."""
        server = FheServer(
            fleet_size=1, fleet_mode="thread", default_backend="fleet",
            fault_spec="stall:worker=0:job=1",
            fleet_options=dict(FAST_BEATS, heartbeat_timeout=30.0),
        )
        with server:
            sid = _open(server, stack)
            bfv, keys, encoder = stack
            a = bfv.encrypt(encoder.encode([2] * PARAMS.n), keys.public)
            doomed = server.submit(
                sid, JobKind.MULTIPLY,
                (serialize_ciphertext(a), serialize_ciphertext(a)),
                deadline=0.3,
            )
            deadline = time.monotonic() + 20
            while (server.status(doomed) is not JobStatus.FAILED
                   and time.monotonic() < deadline):
                server.tick()
                time.sleep(0.02)
            assert server.status(doomed) is JobStatus.FAILED
            assert server.job_error(doomed).startswith("deadline expired")
            rep = server.fleet_report()
            assert rep["deadline_reaps"] == 1, rep
            assert rep["requeues"] == 0, rep
            assert rep["deaths"] == 0, rep
            # The stalled (but live) worker serves the next job fine.
            checks = _mult_jobs(server, sid, stack, 1, seed=17)
            _assert_bit_identical(server, stack, checks)


class TestSpillover:
    def test_hot_session_spills_past_depth_threshold(self, stack):
        """With spill routing on, a burst against one home worker spills
        to the other worker once the depth threshold is crossed — and
        every result still matches ground truth bit for bit."""
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fleet_options=dict(FAST_BEATS, spill_threshold=1),
        )
        with server:
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 6, seed=23)
            _assert_bit_identical(server, stack, checks)
            rep = server.fleet_report()
        assert rep["routing"]["spill_threshold"] == 1
        assert rep["routing"]["spill"] >= 1, rep["routing"]
        assert rep["deaths"] == 0 and rep["requeues"] == 0, rep
        assert server.scheduler.stats.jobs_failed == 0

    def test_spill_off_preserves_pinned_routing(self, stack):
        """The default (spill_threshold=0) keeps the original pinned
        digest routing: one session's traffic lands on one worker."""
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fleet_options=dict(FAST_BEATS),
        )
        with server:
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 4, seed=29)
            _assert_bit_identical(server, stack, checks)
            rep = server.fleet_report()
        assert rep["routing"]["spill"] == 0
        used = {w["index"] for w in rep["workers"] if w["jobs_done"]}
        assert used == {route_index(params_digest(PARAMS), 2)}


class TestElasticResize:
    def test_grow_and_shrink_under_load_loses_nothing(self, stack):
        """grow() mid-traffic adds a serving slot; shrink() retires the
        newest workers and re-homes their backlog — across both, zero
        jobs lost or double-delivered and all results bit-identical."""
        server = FheServer(
            fleet_size=2, fleet_mode="thread", default_backend="fleet",
            fleet_options=dict(FAST_BEATS, spill_threshold=1),
        )
        with server:
            sid = _open(server, stack)
            checks = _mult_jobs(server, sid, stack, 3, seed=31)
            assert server.fleet.grow(2) == 4
            checks += _mult_jobs(server, sid, stack, 3, seed=37)
            assert server.fleet.shrink(2) == 2
            checks += _mult_jobs(server, sid, stack, 2, seed=41)
            _assert_bit_identical(server, stack, checks)
            rep = server.fleet_report()
        assert rep["resizes"] == {"grow": 2, "shrink": 2}, rep
        assert len(rep["workers"]) == 2
        stats = server.scheduler.stats
        assert stats.jobs_failed == 0
        assert stats.jobs_completed == stats.jobs_submitted

    def test_resize_over_the_wire(self, stack):
        """The ADMIN frame drives grow/shrink remotely and echoes the
        new fleet size; traffic submitted around the resize completes."""
        bfv, keys, encoder = stack

        async def scenario():
            fhe = FheServer(
                fleet_size=2, fleet_mode="thread", default_backend="fleet",
                fleet_options=dict(FAST_BEATS),
            )
            async with FheTransportServer(fhe) as server:
                host, port = server.address
                client = await AsyncFheClient.connect(host, port)
                sid = await client.open_session(
                    "chaos", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                assert await client.admin("grow", 1) == 3
                a = bfv.encrypt(encoder.encode([3] * PARAMS.n), keys.public)
                jid = await client.submit(sid, JobKind.MULTIPLY, (
                    serialize_ciphertext(a), serialize_ciphertext(a),
                ))
                wire = await client.result(jid)
                exp = bfv.multiply_relin(a, a, keys.relin)
                got = deserialize_ciphertext(wire, PARAMS)
                assert bfv.decrypt(got, keys.secret) == bfv.decrypt(
                    exp, keys.secret)
                assert await client.admin("resize", 2) == 2
                with pytest.raises(TransportError, match="unknown admin"):
                    await client.admin("explode")
                await client.aclose()

        asyncio.run(scenario())


class TestTenantAuth:
    def test_token_gate_on_open_session(self, stack):
        """With a tenant table, OPEN_SESSION needs the right token:
        wrong tokens and unknown tenants get the terminal ``auth`` code
        (never retried), the right token serves normally."""
        bfv, keys, encoder = stack

        async def scenario():
            fhe = FheServer(pool_size=2)
            async with FheTransportServer(
                fhe, tenants={"chaos": "sesame"},
            ) as server:
                host, port = server.address
                client = await AsyncFheClient.connect(host, port)
                with pytest.raises(TransportError) as exc_info:
                    await client.open_session(
                        "chaos", serialize_params(PARAMS), token="wrong"
                    )
                assert exc_info.value.code == "auth"
                assert not exc_info.value.retryable
                with pytest.raises(TransportError) as exc_info:
                    await client.open_session(
                        "intruder", serialize_params(PARAMS), token="sesame"
                    )
                assert exc_info.value.code == "auth"
                sid = await client.open_session(
                    "chaos", serialize_params(PARAMS), token="sesame",
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                a = bfv.encrypt(encoder.encode([4] * PARAMS.n), keys.public)
                jid = await client.submit(sid, JobKind.MULTIPLY, (
                    serialize_ciphertext(a), serialize_ciphertext(a),
                ))
                assert await client.result(jid)
                rejections = fhe.metrics.counter(
                    "repro_auth_rejections_total",
                    "OPEN_SESSION frames refused by the tenant auth table",
                    tenant="chaos",
                ).value
                assert rejections == 1
                await client.aclose()

        asyncio.run(scenario())


class TestRetryingClient:
    def test_quota_flood_converges_bit_identical(self, stack):
        """A client flooding a quota-capped tenant rides the retryable
        ``quota`` rejections with jittered backoff until every job is
        admitted — and the full set converges bit-identical to ground
        truth, exactly once each."""
        bfv, keys, encoder = stack
        rng = random.Random(43)
        TOTAL = 8

        async def scenario():
            fhe = FheServer(
                fleet_size=2, fleet_mode="thread", default_backend="fleet",
                fleet_options=dict(FAST_BEATS, spill_threshold=2),
                quotas={"chaos": TenantQuota(max_inflight=2)},
            )
            async with FheTransportServer(fhe) as server:
                host, port = server.address
                client = await AsyncFheClient.connect(
                    host, port,
                    retry=RetryPolicy(attempts=30, base_delay=0.05,
                                      max_delay=0.2, seed=0),
                )
                sid = await client.open_session(
                    "chaos", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                pairs = []
                for _ in range(TOTAL):
                    a = bfv.encrypt(encoder.encode(
                        [rng.randrange(16) for _ in range(PARAMS.n)]),
                        keys.public)
                    b = bfv.encrypt(encoder.encode(
                        [rng.randrange(16) for _ in range(PARAMS.n)]),
                        keys.public)
                    pairs.append((a, b))
                job_ids = [
                    await client.submit(sid, JobKind.MULTIPLY, (
                        serialize_ciphertext(a), serialize_ciphertext(b),
                    ))
                    for a, b in pairs
                ]
                assert len(set(job_ids)) == TOTAL
                for jid, (a, b) in zip(job_ids, pairs):
                    wire = await client.result(jid)
                    got = deserialize_ciphertext(wire, PARAMS)
                    exp = bfv.multiply_relin(a, b, keys.relin)
                    assert bfv.decrypt(got, keys.secret) == bfv.decrypt(
                        exp, keys.secret)
                    assert client.events_received(jid) == 1
                await client.aclose()
                rejections = fhe.metrics.counter(
                    "repro_quota_rejections_total",
                    "submits refused by per-tenant quota admission",
                    tenant="chaos", reason="inflight",
                ).value
                assert rejections >= 1, "quota never engaged"
                stats = fhe.scheduler.stats
                assert stats.jobs_failed == 0
                assert stats.jobs_completed == stats.jobs_submitted

        asyncio.run(scenario())

    def test_terminal_failures_never_retried(self, stack):
        """Job-level failures (a lapsed deadline) surface once as
        :class:`JobFailedError` with kind ``deadline`` — the retry
        machinery must not resubmit a terminally failed job."""
        bfv, keys, encoder = stack

        async def scenario():
            fhe = FheServer(pool_size=2)
            async with FheTransportServer(fhe) as server:
                server.pause_execution()
                host, port = server.address
                client = await AsyncFheClient.connect(
                    host, port, retry=RetryPolicy(attempts=4, seed=0),
                )
                sid = await client.open_session(
                    "chaos", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                a = bfv.encrypt(encoder.encode([5] * PARAMS.n), keys.public)
                jid = await client.submit(
                    sid, JobKind.MULTIPLY,
                    (serialize_ciphertext(a), serialize_ciphertext(a)),
                    deadline=0.01,
                )
                await asyncio.sleep(0.05)  # let the deadline lapse queued
                server.resume_execution()
                with pytest.raises(JobFailedError) as exc_info:
                    await client.result(jid)
                assert exc_info.value.kind == "deadline"
                submitted = fhe.scheduler.stats.jobs_submitted
                await client.aclose()
                # Terminal: the failure was not resubmitted.
                assert fhe.scheduler.stats.jobs_submitted == submitted

        asyncio.run(scenario())

    def test_reconnect_resubmit_across_kill_and_resize(self, stack):
        """The full gauntlet: a worker kill, an elastic grow, spill-over
        routing, and a client whose link is severed mid-wait. The
        retrying client redials, resends its recorded submissions, and
        every payload converges bit-identical — content addressing and
        dedupe make the replay exactly-once-safe."""
        bfv, keys, encoder = stack
        rng = random.Random(47)
        TOTAL = 4

        async def scenario():
            # Kill the *home* worker (the session digest routes to index
            # 1 at fleet size 2): the first job deterministically lands
            # there, so the armed kill always fires. Worker 0 only sees
            # spill-over traffic, which is timing-dependent.
            fhe = FheServer(
                fleet_size=2, fleet_mode="thread", default_backend="fleet",
                fault_spec="kill:worker=1:job=1",
                fleet_options=dict(FAST_BEATS, spill_threshold=2),
            )
            async with FheTransportServer(fhe) as server:
                host, port = server.address
                client = await AsyncFheClient.connect(
                    host, port,
                    retry=RetryPolicy(attempts=6, base_delay=0.05, seed=1),
                )
                sid = await client.open_session(
                    "chaos", serialize_params(PARAMS),
                    relin_key=serialize_relin_key(keys.relin, PARAMS),
                )
                pairs = []
                for _ in range(TOTAL):
                    a = bfv.encrypt(encoder.encode(
                        [rng.randrange(16) for _ in range(PARAMS.n)]),
                        keys.public)
                    b = bfv.encrypt(encoder.encode(
                        [rng.randrange(16) for _ in range(PARAMS.n)]),
                        keys.public)
                    pairs.append((a, b))
                job_ids = [
                    await client.submit(sid, JobKind.MULTIPLY, (
                        serialize_ciphertext(a), serialize_ciphertext(b),
                    ))
                    for a, b in pairs
                ]
                assert await client.admin("grow", 1) == 3
                # Sever the link out from under the waiting client: the
                # transport forgets the subscriber, so only a redial and
                # resubmission can recover the results.
                client._writer.close()
                for jid, (a, b) in zip(job_ids, pairs):
                    wire = await client.result(jid)
                    got = deserialize_ciphertext(wire, PARAMS)
                    exp = bfv.multiply_relin(a, b, keys.relin)
                    assert bfv.decrypt(got, keys.secret) == bfv.decrypt(
                        exp, keys.secret)
                assert client.reconnects >= 1
                await client.aclose()
                rep = fhe.fleet_report()
                assert rep["deaths"] == 1, rep
                assert rep["resizes"]["grow"] == 1, rep
                stats = fhe.scheduler.stats
                assert stats.jobs_failed == 0

        asyncio.run(scenario())
