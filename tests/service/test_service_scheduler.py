"""Batching scheduler: tenant fairness and chip-pool scaling."""

import random

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.backends import ChipPoolBackend
from repro.service.jobs import Job, JobKind, JobStatus
from repro.service.registry import SessionRegistry
from repro.service.scheduler import BatchingScheduler

PARAMS = BfvParameters.toy(n=16, log_q=80)


@pytest.fixture(scope="module")
def client():
    bfv = Bfv(PARAMS, seed=404)
    keys = bfv.keygen(relin_digit_bits=12)
    encoder = BatchEncoder(PARAMS)
    rng = random.Random(8)

    def fresh_ct():
        return bfv.encrypt(
            encoder.encode([rng.randrange(32) for _ in range(PARAMS.n)]),
            keys.public,
        )

    return bfv, keys, fresh_ct


def _service(pool_size=1, max_batch=4):
    registry = SessionRegistry()
    backend = ChipPoolBackend(pool_size=pool_size)
    scheduler = BatchingScheduler(
        registry, {"chip_pool": backend}, default="chip_pool",
        max_batch=max_batch,
    )
    return registry, backend, scheduler


def _submit_jobs(registry, scheduler, client, tenant, count, kind=JobKind.ADD):
    bfv, keys, fresh_ct = client
    session = registry.open_session(tenant, PARAMS, relin=keys.relin)
    jobs = []
    for _ in range(count):
        operands = [fresh_ct(), fresh_ct()][: 2 if kind is not JobKind.SQUARE else 1]
        jobs.append(scheduler.submit(Job(
            session_id=session.session_id, tenant=tenant,
            kind=kind, operands=operands,
        )))
    return jobs


class TestFairness:
    def test_no_tenant_starvation(self, client):
        """A flooding tenant cannot push a light tenant to the back.

        heavy submits 20 jobs before light's 4; with fair round-robin
        batching, light's last job must dispatch well before heavy's last.
        """
        registry, _, scheduler = _service(max_batch=4)
        heavy = _submit_jobs(registry, scheduler, client, "heavy", 20)
        light = _submit_jobs(registry, scheduler, client, "light", 4)
        scheduler.run_all()
        assert all(j.status is JobStatus.DONE for j in heavy + light)
        light_last = max(j.metrics.dispatched_seq for j in light)
        heavy_last = max(j.metrics.dispatched_seq for j in heavy)
        # light's 4 jobs ride along in the first rotations: all of them
        # must dispatch within the first half of the schedule.
        assert light_last < heavy_last
        assert light_last <= len(heavy + light) // 2

    def test_batches_interleave_tenants(self, client):
        """Every early batch carries jobs from both tenants."""
        registry, _, scheduler = _service(max_batch=4)
        _submit_jobs(registry, scheduler, client, "a", 8)
        _submit_jobs(registry, scheduler, client, "b", 8)
        batches = []
        while True:
            formed = scheduler.next_batch()
            if formed is None:
                break
            batches.append(formed[1])
        for batch in batches:
            assert {j.tenant for j in batch} == {"a", "b"}

    def test_rotation_lets_each_tenant_lead(self, client):
        """Consecutive batches are led by different tenants."""
        registry, _, scheduler = _service(max_batch=2)
        _submit_jobs(registry, scheduler, client, "a", 4)
        _submit_jobs(registry, scheduler, client, "b", 4)
        leads = []
        while True:
            formed = scheduler.next_batch()
            if formed is None:
                break
            leads.append(formed[1][0].tenant)
        assert set(leads[:2]) == {"a", "b"}


class TestPoolScaling:
    def test_pool_of_four_beats_pool_of_one(self, client):
        """Identical MULTIPLY traffic: N=4 wall cycles < N=1 wall cycles."""
        bfv, keys, fresh_ct = client
        wall = {}
        total = {}
        for size in (1, 4):
            registry, backend, scheduler = _service(pool_size=size, max_batch=2)
            session = registry.open_session("acme", PARAMS, relin=keys.relin)
            for _ in range(8):
                scheduler.submit(Job(
                    session_id=session.session_id, tenant="acme",
                    kind=JobKind.MULTIPLY, operands=[fresh_ct(), fresh_ct()],
                ))
            scheduler.run_all()
            wall[size] = backend.wall_cycles
            total[size] = backend.total_cycles
        # Same work overall, shorter makespan with more chips.
        assert total[1] == total[4]
        assert wall[4] < wall[1]
        assert wall[4] <= total[4] // 2  # at least 2x parallelism realized

    def test_batches_spread_across_workers(self, client):
        registry, backend, scheduler = _service(pool_size=4, max_batch=1)
        _submit_jobs(registry, scheduler, client, "acme", 8)
        scheduler.run_all()
        used = {w.index for w in backend.workers if w.busy_cycles > 0}
        assert len(used) == 4

    def test_twiddle_programming_amortized(self, client):
        """Batched jobs on one digest program the modulus once per worker."""
        registry, backend, scheduler = _service(pool_size=1, max_batch=8)
        _submit_jobs(registry, scheduler, client, "acme", 6, kind=JobKind.MULTIPLY)
        scheduler.run_all()
        worker = backend.workers[0]
        assert worker.programmed == (PARAMS.q, PARAMS.n)
        # IO includes one program + per-job polynomial loads; reprogramming
        # every job would add ~6x the program cost. Check the driver was
        # left programmed and jobs completed with real chip cycles.
        assert worker.busy_cycles > 0


class TestFairnessUnderTowerSharding:
    """A 1-tower tenant must not starve while a 3-tower tenant's work
    units fan out across the pool."""

    RNS3 = BfvParameters.toy_rns(n=16, towers=3, tower_bits=20)

    def _heavy_client(self):
        bfv = Bfv(self.RNS3, seed=808)
        keys = bfv.keygen(relin_digit_bits=16)
        encoder = BatchEncoder(self.RNS3)
        rng = random.Random(21)

        def fresh_ct():
            return bfv.encrypt(
                encoder.encode([rng.randrange(16) for _ in range(16)]),
                keys.public,
            )

        return bfv, keys, fresh_ct

    def test_light_tenant_not_starved(self, client):
        registry, backend, scheduler = _service(pool_size=4, max_batch=4)
        hbfv, hkeys, hfresh = self._heavy_client()
        heavy_session = registry.open_session(
            "heavy", self.RNS3, relin=hkeys.relin
        )
        # heavy floods 12 tower-sharded EvalMults before light submits.
        heavy = [
            scheduler.submit(Job(
                session_id=heavy_session.session_id, tenant="heavy",
                kind=JobKind.MULTIPLY, operands=[hfresh(), hfresh()],
            ))
            for _ in range(12)
        ]
        light = _submit_jobs(
            registry, scheduler, client, "light", 3, kind=JobKind.MULTIPLY
        )
        scheduler.run_all()
        assert all(j.status is JobStatus.DONE for j in heavy + light)
        # heavy's jobs really occupied the pool tower-by-tower...
        assert all(j.metrics.fidelity == "chip" for j in heavy)
        assert all(len(j.metrics.tower_cycles) == 3 for j in heavy)
        assert any(len(set(j.metrics.tower_workers)) > 1 for j in heavy)
        # ...yet every light job dispatched before heavy's queue drained.
        light_last = max(j.metrics.dispatched_seq for j in light)
        heavy_last = max(j.metrics.dispatched_seq for j in heavy)
        assert light_last < heavy_last
        assert light_last <= len(heavy + light) // 2
        # And light's single-tower jobs still ran the chip path.
        assert all(j.metrics.fidelity == "chip" for j in light)


class TestFaultIsolation:
    def test_bad_job_fails_alone(self, client):
        bfv, keys, fresh_ct = client
        registry, _, scheduler = _service(max_batch=4)
        session = registry.open_session("acme", PARAMS)  # no relin key!
        good = scheduler.submit(Job(
            session_id=session.session_id, tenant="acme",
            kind=JobKind.ADD, operands=[fresh_ct(), fresh_ct()],
        ))
        bad = scheduler.submit(Job(
            session_id=session.session_id, tenant="acme",
            kind=JobKind.SQUARE, operands=[fresh_ct()],
        ))
        scheduler.run_all()
        assert good.status is JobStatus.DONE
        assert bad.status is JobStatus.FAILED
        assert "relinearization key" in bad.error

    def test_malformed_app_payload_fails_alone(self, client):
        """Arbitrary exceptions inside a job (here: IndexError from an
        empty sample list) must not crash the drain or strand neighbors."""
        from repro.service.backends import default_app_params

        bfv, keys, fresh_ct = client
        registry, _, scheduler = _service(max_batch=4)
        app = registry.open_session("acme", default_app_params(JobKind.LOGREG))
        bad = scheduler.submit(Job(
            session_id=app.session_id, tenant="acme",
            kind=JobKind.LOGREG, payload={"samples": []},
        ))
        good = scheduler.submit(Job(
            session_id=app.session_id, tenant="acme",
            kind=JobKind.LOGREG, payload={"samples": [[1, -1, 2]], "seed": 11},
        ))
        scheduler.run_all()
        assert bad.status is JobStatus.FAILED
        assert good.status is JobStatus.DONE and good.result["verified"]
