"""App-circuit jobs through the in-process serving stack.

The compiled Section VI-C applications must return bit-identical
ciphertexts on every backend (and match both the shared evaluator and
the apps' plaintext references), the chip pool must execute every tensor
step tower-sharded across different workers with dependency levels
respected, and the content-addressed machinery (result cache + in-queue
dedupe, including failure fan-out) must treat circuits like any other
cacheable job.
"""

import random

import pytest

from repro.apps.cryptonets import MiniCryptoNets
from repro.apps.logreg import MiniLogisticRegression
from repro.bfv.params import BfvParameters
from repro.polymath.primes import ntt_friendly_prime
from repro.service.circuits import CircuitBuilder, evaluate_circuit
from repro.service.jobs import JobKind, JobStatus
from repro.service.serialization import (
    deserialize_circuit_outputs,
    serialize_ciphertext,
    serialize_circuit,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

BACKENDS = ("chip_pool", "software", "fastntt")

#: Chip-native multi-tower parameter sets with enough noise headroom for
#: the apps' two-multiplication depth.
LOGREG_PARAMS = BfvParameters.toy_rns(
    n=16, towers=5, tower_bits=28, t=ntt_friendly_prime(16, 21)
)
CRYPTONETS_PARAMS = BfvParameters.toy_rns(
    n=16, towers=4, tower_bits=30, t=ntt_friendly_prime(16, 20)
)


@pytest.fixture(scope="module")
def logreg():
    rng = random.Random(31)
    model = MiniLogisticRegression(params=LOGREG_PARAMS, num_features=5, seed=11)
    samples = [[rng.randint(-3, 3) for _ in range(5)] for _ in range(4)]
    circuit = model.to_circuit(batch=len(samples))
    inputs = model.encrypt_features(samples)
    return model, samples, circuit, inputs


@pytest.fixture(scope="module")
def cryptonets():
    rng = random.Random(32)
    model = MiniCryptoNets(params=CRYPTONETS_PARAMS, seed=7)
    images = [[rng.randint(-2, 2) for _ in range(36)] for _ in range(3)]
    circuit = model.to_circuit()
    inputs = model.encrypt_images(images)
    return model, images, circuit, inputs


def _open(server, model):
    return server.open_session(
        "tenant",
        serialize_params(model.params),
        relin_key=serialize_relin_key(model.keys.relin, model.params),
    )


def _submit(server, sid, circuit, inputs, backend=""):
    return server.submit(
        sid, JobKind.CIRCUIT,
        tuple(serialize_ciphertext(ct) for ct in inputs),
        payload=circuit, backend=backend,
    )


class TestBackendsBitIdentical:
    def test_logreg_all_backends(self, logreg):
        model, samples, circuit, inputs = logreg
        reference = evaluate_circuit(
            model.bfv, model.keys.relin, circuit, inputs
        )
        server = FheServer(pool_size=3, result_cache_size=0)
        sid = _open(server, model)
        wires = {
            backend: server.result(_submit(server, sid, circuit, inputs, backend))
            for backend in BACKENDS
        }
        assert wires["chip_pool"] == wires["software"] == wires["fastntt"]
        outs = deserialize_circuit_outputs(wires["chip_pool"], model.params)
        assert serialize_ciphertext(outs["score"]) == serialize_ciphertext(
            reference["score"]
        )
        predictions = model.predictions_from_score(outs["score"], len(samples))
        assert predictions == model.predict_plain(samples)

    def test_cryptonets_all_backends(self, cryptonets):
        model, images, circuit, inputs = cryptonets
        reference = evaluate_circuit(
            model.bfv, model.keys.relin, circuit, inputs
        )
        server = FheServer(pool_size=4, result_cache_size=0)
        sid = _open(server, model)
        wires = {
            backend: server.result(_submit(server, sid, circuit, inputs, backend))
            for backend in BACKENDS
        }
        assert len(set(wires.values())) == 1
        outs = deserialize_circuit_outputs(wires["chip_pool"], model.params)
        for name, ct in reference.items():
            assert serialize_ciphertext(outs[name]) == serialize_ciphertext(ct)
        scores = model.scores_from_outputs(outs, len(images))
        assert scores == model.infer_plain(images)
        assert model.classify(scores) == model.classify(
            model.infer_plain(images)
        )


class TestChipExpansion:
    def test_tower_sharded_chip_fidelity(self, cryptonets):
        """Every tensor step runs on-chip, fanned across the pool."""
        model, _images, circuit, inputs = cryptonets
        server = FheServer(pool_size=4)
        sid = _open(server, model)
        jid = _submit(server, sid, circuit, inputs)
        server.result(jid)
        metrics = server.job_metrics(jid)
        assert metrics.fidelity == "chip"
        assert metrics.relin_fidelity == "engine"
        towers = model.params.cofhee_tower_count
        assert len(metrics.tower_cycles) == towers
        assert all(c > 0 for c in metrics.tower_cycles)
        # 12 tensors x 4 towers spread across all 4 workers.
        assert len(metrics.tower_workers) == 4
        assert metrics.relin_cycles > 0
        report = server.pool_report()
        assert report["fidelity"].get("chip") == 1
        assert len(report["tower_cycles"]) == towers

    def test_dependency_levels(self, logreg):
        _model, _samples, circuit, _inputs = logreg
        levels = circuit.tensor_levels()
        # square(score) is level 0; multiply(squared, score) consumes it.
        square_step, mul_step = circuit.tensor_steps
        assert levels[square_step] == 0
        assert levels[mul_step] == 1

    def test_strict_fidelity_rejects_non_native_circuit(self, logreg):
        """A circuit whose modulus exceeds the chip's Q register fails
        under strict fidelity instead of silently taking the model path."""
        model_wide = MiniLogisticRegression(num_features=3, seed=5)  # 140-bit q
        samples = [[1, -1, 2]]
        circuit = model_wide.to_circuit(batch=1)
        inputs = model_wide.encrypt_features(samples)
        server = FheServer(pool_size=2, strict_fidelity=True)
        sid = _open(server, model_wide)
        jid = _submit(server, sid, circuit, inputs)
        with pytest.raises(RuntimeError, match="strict fidelity"):
            server.result(jid)

    def test_non_native_circuit_takes_model_path(self):
        model_wide = MiniLogisticRegression(num_features=3, seed=5)
        samples = [[1, -1, 2]]
        circuit = model_wide.to_circuit(batch=1)
        inputs = model_wide.encrypt_features(samples)
        server = FheServer(pool_size=2)
        sid = _open(server, model_wide)
        jid = _submit(server, sid, circuit, inputs)
        outs = deserialize_circuit_outputs(
            server.result(jid), model_wide.params
        )
        assert server.job_metrics(jid).fidelity == "model"
        reference = evaluate_circuit(
            model_wide.bfv, model_wide.keys.relin, circuit, inputs
        )
        assert serialize_ciphertext(outs["score"]) == serialize_ciphertext(
            reference["score"]
        )


class TestTensorLevelsDiamond:
    """Regression: level assignment lives in ONE place.

    ``tensor_levels`` used to be recomputed independently by the
    evaluator ordering and the chip-pool expansion; a diamond-shaped
    DAG (two level-0 tensors joined by one consumer) is exactly the
    shape where divergent walks disagree. It is now memoized on
    :class:`Circuit` and both paths consume the same dict.
    """

    @staticmethod
    def _diamond():
        builder = CircuitBuilder("diamond")
        x = builder.input("x")
        left = builder.square_relin(x)  # step 0: level 0
        right = builder.mul_relin(x, x)  # step 1: level 0
        l_lin = builder.add(left, x)  # linear: passes depth through
        r_lin = builder.mul_const(right, builder.scalar(2))
        join = builder.mul_relin(l_lin, r_lin)  # step 4: level 1
        bare = builder.mul(join, left)  # step 5: level 2 (degree 3)
        relin = builder.relinearize(bare)  # key switch: depth unchanged
        top = builder.square_relin(relin)  # step 7: level 3
        builder.output("y", top)
        return builder.build()

    def test_diamond_levels_are_pinned(self):
        """Both level-0 arms, the join, the bare tensor behind the
        deferred relin, and the post-key-switch square — all exact."""
        circuit = self._diamond()
        assert circuit.tensor_levels() == {0: 0, 1: 0, 4: 1, 5: 2, 7: 3}

    def test_memo_is_shared_and_defensive(self):
        """Repeated calls hit one memo; callers get copies, so a
        consumer mutating its view cannot skew another path's levels."""
        circuit = self._diamond()
        first = circuit.tensor_levels()
        first[0] = 99  # a hostile consumer
        assert circuit.tensor_levels() == {0: 0, 1: 0, 4: 1, 5: 2, 7: 3}

    def test_diamond_serves_bit_identical_on_chip_and_software(self):
        """The end-to-end symptom of divergent level walks: the chip
        expansion would schedule the join before its operands and
        diverge from the evaluator. Both paths must agree byte-wise."""
        params = BfvParameters.toy_rns(
            n=16, towers=5, tower_bits=28, t=ntt_friendly_prime(16, 21)
        )
        from repro.bfv import BatchEncoder, Bfv

        bfv = Bfv(params, seed=8)
        keys = bfv.keygen(relin_digit_bits=14)
        encoder = BatchEncoder(params)
        circuit = self._diamond()
        ct = bfv.encrypt(encoder.encode([1, -1] * 8), keys.public)
        server = FheServer(pool_size=3, result_cache_size=0)
        sid = server.open_session(
            "diamond", serialize_params(params),
            relin_key=serialize_relin_key(keys.relin, params),
        )
        wires = {
            backend: server.result(server.submit(
                sid, JobKind.CIRCUIT, (serialize_ciphertext(ct),),
                payload=circuit, backend=backend,
            ))
            for backend in ("chip_pool", "software")
        }
        assert wires["chip_pool"] == wires["software"]
        reference = evaluate_circuit(bfv, keys.relin, circuit, [ct])
        outs = deserialize_circuit_outputs(wires["chip_pool"], params)
        assert serialize_ciphertext(outs["y"]) == serialize_ciphertext(
            reference["y"]
        )


class TestCacheAndDedupe:
    def test_identical_circuit_hits_cache(self, logreg):
        model, _samples, circuit, inputs = logreg
        server = FheServer(pool_size=2)
        sid = _open(server, model)
        first = _submit(server, sid, circuit, inputs)
        wire_first = server.result(first)
        second = _submit(server, sid, circuit, inputs)
        assert server.status(second) is JobStatus.DONE
        assert server.result(second) == wire_first
        assert server.job_metrics(second).backend == "cache"
        report = server.pool_report()["result_cache"]
        assert report["hits"] == 1 and report["misses"] == 1

    def test_different_circuits_never_share_an_address(self, logreg):
        model, samples, circuit, inputs = logreg
        other = model.to_circuit(batch=len(samples), use_sigmoid=False)
        server = FheServer(pool_size=2)
        sid = _open(server, model)
        server.result(_submit(server, sid, circuit, inputs))
        jid = _submit(server, sid, other, inputs)
        assert server.status(jid) is JobStatus.QUEUED  # miss, not a hit
        assert server.result(jid) != server.result(
            _submit(server, sid, circuit, inputs)
        )

    def test_dedupe_shares_one_execution(self, logreg):
        model, _samples, circuit, inputs = logreg
        server = FheServer(pool_size=2)
        sid = _open(server, model)
        primary = _submit(server, sid, circuit, inputs)
        follower = _submit(server, sid, circuit, inputs)
        assert server.job_metrics(follower).backend == "dedupe"
        assert server.job_metrics(follower).dedupe_of == primary
        stats = server.run()
        assert stats.dedupe_hits == 1
        assert server.result(primary) == server.result(follower)
        # Only the primary formed a batch.
        assert sum(b.jobs for b in stats.batches) == 1

    def test_failure_fans_out_to_dedupe_followers(self, logreg):
        """One failing step fails the primary AND every attached follower."""
        model, _samples, circuit, inputs = logreg
        server = FheServer(pool_size=2)
        # No relin key uploaded: the first tensor step must fail.
        sid = server.open_session("acme", serialize_params(model.params))
        primary = _submit(server, sid, circuit, inputs)
        followers = [_submit(server, sid, circuit, inputs) for _ in range(2)]
        for f in followers:
            assert server.job_metrics(f).backend == "dedupe"
        stats = server.run()
        assert server.status(primary) is JobStatus.FAILED
        assert "relinearization key" in server.job_error(primary)
        for f in followers:
            assert server.status(f) is JobStatus.FAILED
            assert server.job_error(f) == server.job_error(primary)
        assert stats.jobs_failed == 3
        # A retry after the failure re-executes (failures are never cached).
        retry = _submit(server, sid, circuit, inputs)
        assert server.status(retry) is JobStatus.QUEUED


class TestLinearCircuit:
    def test_relin_free_circuit_without_relin_key(self):
        """A purely linear circuit needs no evaluation keys at all."""
        params = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)
        from repro.bfv import BatchEncoder, Bfv

        bfv = Bfv(params, seed=3)
        keys = bfv.keygen(relin_digit_bits=12)
        encoder = BatchEncoder(params)
        a = bfv.encrypt(encoder.encode(list(range(16))), keys.public)
        b_ct = bfv.encrypt(encoder.encode([2] * 16), keys.public)

        builder = CircuitBuilder("affine")
        x = builder.input("x")
        y = builder.input("y")
        two_x = builder.mul_const(x, builder.scalar(2))
        s = builder.add(two_x, y)
        out = builder.add_const(s, builder.plain(encoder.encode([7] * 16).coeffs))
        builder.output("z", out)
        circuit = builder.build()
        assert not circuit.uses_relin

        server = FheServer(pool_size=2)
        sid = server.open_session("lin", serialize_params(params))
        jid = server.submit(
            sid, "circuit",
            (serialize_ciphertext(a), serialize_ciphertext(b_ct)),
            payload=serialize_circuit(circuit),  # wire payload path
        )
        outs = deserialize_circuit_outputs(server.result(jid), params)
        got = encoder.decode(bfv.decrypt(outs["z"], keys.secret))
        assert got == [(2 * i + 2 + 7) % params.t for i in range(16)]
        # No tensor steps -> the whole circuit is model-priced.
        assert server.job_metrics(jid).fidelity == "model"
