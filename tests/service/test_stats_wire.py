"""STATS/TRACE wire exposition over a real localhost socket.

A client must be able to pull the server's Prometheus text dump and any
job's span tree through the framed protocol — round-tripped bit-exact
through the codecs — and a request for a job the server never saw must
come back as a clean ERROR frame, not a dead connection.
"""

from __future__ import annotations

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.client import FheClient, TransportError
from repro.service.serialization import (
    StatsMsg,
    TraceMsg,
    WireFormatError,
    decode_stats,
    decode_trace,
    encode_stats,
    encode_trace,
    peek_tag,
    TAG_STATS,
    TAG_TRACE,
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.transport import ThreadedTransportServer

PARAMS = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)


@pytest.fixture(scope="module")
def stack():
    bfv = Bfv(PARAMS, seed=0xC0F4EE)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(PARAMS)
    return bfv, keys, encoder


def _session(client, keys):
    return client.open_session(
        "obs", serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
    )


class TestCodecs:
    def test_stats_round_trip(self):
        msg = StatsMsg(request_id=7, text="repro_jobs_total 3\n")
        frame = encode_stats(msg)
        assert peek_tag(frame) == TAG_STATS
        assert decode_stats(frame) == msg
        # An empty text body is the request form.
        assert decode_stats(encode_stats(StatsMsg(request_id=9))).text == ""

    def test_trace_round_trip(self):
        msg = TraceMsg(
            request_id=3, job_id="job-1", wall_seconds=0.125,
            spans=(
                ("submit", -1, 1.0, 1.5),
                ("decode", 0, 1.1, 1.2),
                ("execute", -1, 2.0, 2.25),
            ),
        )
        frame = encode_trace(msg)
        assert peek_tag(frame) == TAG_TRACE
        assert decode_trace(frame) == msg

    def test_stats_text_must_be_utf8(self):
        # Corrupting a valid frame's payload trips the CRC before UTF-8
        # ever runs, so build an honestly-framed truncated multibyte
        # sequence to reach the text decoder itself.
        import struct
        import zlib

        from repro.service.serialization import MAGIC, WIRE_VERSION

        body = struct.pack(">I", 1) + struct.pack(">I", 1) + b"\xff"
        inner = MAGIC + bytes([WIRE_VERSION, TAG_STATS]) + body
        bad = inner + struct.pack(">I", zlib.crc32(inner) & 0xFFFFFFFF)
        with pytest.raises(WireFormatError):
            decode_stats(bad)


class TestSocketRoundTrip:
    def test_stats_and_trace_over_the_wire(self, stack):
        bfv, keys, encoder = stack
        a = bfv.encrypt(encoder.encode(list(range(PARAMS.n))), keys.public)
        b = bfv.encrypt(encoder.encode([2] * PARAMS.n), keys.public)
        with ThreadedTransportServer(pool_size=2) as ts:
            with FheClient(ts.host, ts.port) as client:
                sid = _session(client, keys)
                jid = client.submit(
                    sid, "multiply",
                    (serialize_ciphertext(a), serialize_ciphertext(b)),
                )
                client.result(jid)

                text = client.stats()
                assert "# TYPE repro_submit_seconds histogram" in text
                assert 'repro_jobs_submitted_total{tenant="obs"} 1' in text
                assert "repro_frames_received_total" in text
                assert "repro_connections 1" in text

                trace = client.trace(jid)
                assert trace.job_id == jid
                assert trace.wall_seconds > 0.0
                phases = [span[0] for span in trace.spans]
                assert phases[0] == "submit"
                assert {"queue_wait", "execute"} <= set(phases)
                # Parent indices survive the round-trip: submit's decode
                # child still points at span 0.
                decode_span = trace.spans[phases.index("decode")]
                assert decode_span[1] == 0
                for _, _, start, end in trace.spans:
                    assert end >= start

    def test_unknown_job_trace_is_a_clean_error(self, stack):
        _, keys, _ = stack
        with ThreadedTransportServer(pool_size=2) as ts:
            with FheClient(ts.host, ts.port) as client:
                with pytest.raises(TransportError, match="no-such-job"):
                    client.trace("no-such-job")
                # The connection survived the refusal.
                sid = _session(client, keys)
                assert sid

    def test_tracing_off_server_answers_empty(self, stack, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "off")
        bfv, keys, encoder = stack
        a = bfv.encrypt(encoder.encode([1] * PARAMS.n), keys.public)
        b = bfv.encrypt(encoder.encode([2] * PARAMS.n), keys.public)
        with ThreadedTransportServer(pool_size=2) as ts:
            with FheClient(ts.host, ts.port) as client:
                sid = _session(client, keys)
                jid = client.submit(
                    sid, "add",
                    (serialize_ciphertext(a), serialize_ciphertext(b)),
                )
                client.result(jid)
                trace = client.trace(jid)
                assert trace.spans == ()
                assert trace.wall_seconds == 0.0
                # Metrics still flow with tracing off.
                assert "repro_jobs_submitted_total" in client.stats()
