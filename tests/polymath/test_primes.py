"""Unit tests for NTT-friendly prime generation and roots of unity."""

import pytest

from repro.polymath.modmath import modinv
from repro.polymath.primes import (
    find_primitive_root,
    is_prime,
    ntt_friendly_prime,
    root_of_unity,
)


class TestIsPrime:
    def test_small_primes(self):
        assert all(is_prime(p) for p in (2, 3, 5, 7, 11, 13, 97, 12_289))

    def test_small_composites(self):
        assert not any(is_prime(c) for c in (0, 1, 4, 9, 91, 12_288))

    def test_carmichael_number(self):
        assert not is_prime(561)  # classic Fermat pseudoprime
        assert not is_prime(41041)

    def test_large_known_prime(self):
        assert is_prime((1 << 61) - 1)  # Mersenne prime

    def test_large_composite(self):
        assert not is_prime(((1 << 61) - 1) * ((1 << 31) - 1))


class TestNttFriendlyPrime:
    @pytest.mark.parametrize("n,bits", [(64, 30), (256, 40), (4096, 54),
                                        (4096, 109), (8192, 109)])
    def test_form_and_width(self, n, bits):
        q = ntt_friendly_prime(n, bits)
        assert is_prime(q)
        assert q.bit_length() == bits
        assert (q - 1) % (2 * n) == 0  # q = 2kn + 1 (Section III-J)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            ntt_friendly_prime(100, 30)

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            ntt_friendly_prime(4096, 8)


class TestRoots:
    def test_primitive_root_generates_group(self):
        q = 12_289
        g = find_primitive_root(q)
        # order of g must be exactly q-1: check the maximal strict divisors
        for p in (2, 3):  # q-1 = 2^12 * 3
            assert pow(g, (q - 1) // p, q) != 1

    def test_root_of_unity_order(self):
        q = ntt_friendly_prime(64, 30)
        psi = root_of_unity(128, q)
        assert pow(psi, 128, q) == 1
        assert pow(psi, 64, q) == q - 1  # psi^n == -1: negacyclic property

    def test_root_of_unity_large_modulus(self):
        """Large moduli whose q-1 embeds hard-to-factor cofactors must not
        require factorization (regression for the Pollard-rho hang)."""
        q = ntt_friendly_prime(16, 120)
        psi = root_of_unity(32, q)
        assert pow(psi, 16, q) == q - 1

    def test_root_of_unity_invalid_order(self):
        q = ntt_friendly_prime(64, 30)
        with pytest.raises(ValueError, match="does not divide"):
            root_of_unity(3 * 128 + 1, q)

    def test_omega_is_psi_squared_consistent(self):
        q = ntt_friendly_prime(32, 30)
        psi = root_of_unity(64, q)
        omega = psi * psi % q
        assert pow(omega, 32, q) == 1
        assert pow(omega, 16, q) != 1

    def test_inverse_root(self):
        q = ntt_friendly_prime(32, 30)
        psi = root_of_unity(64, q)
        assert psi * modinv(psi, q) % q == 1
