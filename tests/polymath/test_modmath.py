"""Unit tests for modular arithmetic and the Barrett/Montgomery reducers."""

import pytest

from repro.polymath.modmath import (
    BarrettReducer,
    MontgomeryReducer,
    modadd,
    modexp,
    modinv,
    modmul,
    modsub,
)


class TestBasicOps:
    def test_modadd_no_wrap(self):
        assert modadd(3, 4, 11) == 7

    def test_modadd_wrap(self):
        assert modadd(7, 8, 11) == 4

    def test_modadd_boundary(self):
        assert modadd(5, 6, 11) == 0

    def test_modsub_positive(self):
        assert modsub(9, 4, 11) == 5

    def test_modsub_negative_wraps(self):
        assert modsub(4, 9, 11) == 6

    def test_modsub_zero(self):
        assert modsub(4, 4, 11) == 0

    def test_modmul(self):
        assert modmul(7, 9, 11) == 63 % 11

    def test_modexp_matches_pow(self):
        assert modexp(3, 20, 101) == pow(3, 20, 101)

    def test_modinv_roundtrip(self):
        inv = modinv(7, 101)
        assert 7 * inv % 101 == 1

    def test_modinv_of_one(self):
        assert modinv(1, 97) == 1

    def test_modinv_noninvertible_raises(self):
        with pytest.raises(ValueError, match="not invertible"):
            modinv(6, 12)


class TestBarrett:
    def test_reduce_matches_mod(self):
        barrett = BarrettReducer(1_000_003)
        for x in (0, 1, 999_999, 10**11, 1_000_003**2 - 1):
            assert barrett.reduce(x) == x % 1_000_003

    def test_mulmod_large_operands(self):
        q = (1 << 109) - 1746175  # arbitrary large odd modulus
        barrett = BarrettReducer(q)
        a = q - 12345
        b = q - 67890
        assert barrett.mulmod(a, b) == a * b % q

    def test_constants_match_register_spec(self):
        """k = 2*log q and mu = 2^k / q are the BARRETT_CTL contents."""
        q = 0xFFFF_FFFB
        barrett = BarrettReducer(q)
        assert barrett.k == 2 * q.bit_length()
        assert barrett.mu == (1 << barrett.k) // q

    def test_at_most_two_corrections(self):
        """The pipelined correction stage only has two subtractors."""
        q = 12_289
        barrett = BarrettReducer(q)
        for x in range(0, q * q, q * 97 + 13):
            before = barrett.correction_count
            barrett.reduce(x)
            assert barrett.correction_count - before <= 2

    def test_out_of_range_input_rejected(self):
        barrett = BarrettReducer(97)
        with pytest.raises(ValueError):
            barrett.reduce(97 * 97)
        with pytest.raises(ValueError):
            barrett.reduce(-1)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            BarrettReducer(1)


class TestMontgomery:
    def test_domain_roundtrip(self):
        mont = MontgomeryReducer(12_289)
        for a in (0, 1, 42, 12_288):
            assert mont.from_montgomery(mont.to_montgomery(a)) == a

    def test_mulmod_in_domain(self):
        q = 12_289
        mont = MontgomeryReducer(q)
        a, b = 777, 9_999
        am, bm = mont.to_montgomery(a), mont.to_montgomery(b)
        assert mont.from_montgomery(mont.mulmod(am, bm)) == a * b % q

    def test_mulmod_plain_matches(self):
        q = (1 << 61) - 1
        mont = MontgomeryReducer(q)
        assert mont.mulmod_plain(q - 2, q - 3) == (q - 2) * (q - 3) % q

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            MontgomeryReducer(100)

    def test_redc_range_check(self):
        mont = MontgomeryReducer(97)
        with pytest.raises(ValueError):
            mont.redc(97 * mont.r)

    def test_agrees_with_barrett(self):
        """Both reducers implement the same ring operation."""
        q = 786_433
        barrett = BarrettReducer(q)
        mont = MontgomeryReducer(q)
        for a, b in ((1, 1), (q - 1, q - 1), (12_345, 678_901 % q)):
            assert barrett.mulmod(a, b) == mont.mulmod_plain(a, b)
