"""Unit tests for the polynomial ring layer."""

import pytest

from repro.polymath.poly import Polynomial, PolynomialRing
from repro.polymath.primes import ntt_friendly_prime


@pytest.fixture(scope="module")
def ring():
    return PolynomialRing(16, ntt_friendly_prime(16, 30))


class TestRingConstruction:
    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError, match="power of two"):
            PolynomialRing(10, 97)

    def test_non_ntt_modulus_needs_flag(self):
        with pytest.raises(ValueError, match="NTT-friendly"):
            PolynomialRing(16, 101)
        ring = PolynomialRing(16, 101, allow_non_ntt=True)
        assert not ring.supports_ntt

    def test_ntt_property_raises_when_unsupported(self):
        ring = PolynomialRing(16, 101, allow_non_ntt=True)
        with pytest.raises(ValueError, match="does not support NTT"):
            _ = ring.ntt

    def test_equality_and_hash(self, ring):
        same = PolynomialRing(ring.n, ring.q)
        assert ring == same
        assert hash(ring) == hash(same)
        assert ring != PolynomialRing(32, ntt_friendly_prime(32, 30))


class TestElementConstruction:
    def test_pads_short_coefficients(self, ring):
        p = ring([1, 2, 3])
        assert len(p.coeffs) == 16
        assert p.coeffs[3:] == (0,) * 13

    def test_rejects_too_many(self, ring):
        with pytest.raises(ValueError, match="too many"):
            ring([0] * 17)

    def test_reduces_mod_q(self, ring):
        p = ring([ring.q + 5, -1])
        assert p.coeffs[0] == 5
        assert p.coeffs[1] == ring.q - 1

    def test_monomial_wraps_with_sign(self, ring):
        assert ring.monomial(ring.n, 1) == ring([-1])  # x^n = -1
        assert ring.monomial(2 * ring.n, 3) == ring([3])  # x^2n = +1


class TestArithmetic:
    def test_add_sub_inverse(self, ring, rng):
        a, b = ring.random(rng), ring.random(rng)
        assert (a + b) - b == a

    def test_neg(self, ring, rng):
        a = ring.random(rng)
        assert a + (-a) == ring.zero()

    def test_mul_matches_schoolbook(self, ring, rng):
        a, b = ring.random(rng), ring.random(rng)
        assert a * b == a.schoolbook_mul(b)

    def test_mul_identity(self, ring, rng):
        a = ring.random(rng)
        assert a * ring.one() == a

    def test_scalar_mul_distributes(self, ring, rng):
        a = ring.random(rng)
        assert a.scalar_mul(3) == a + a + a
        assert 3 * a == a.scalar_mul(3)

    def test_scalar_div_exact(self, ring, rng):
        a = ring.random(rng)
        assert a.scalar_mul(7).scalar_div_exact(7) == a

    def test_hadamard_pointwise(self, ring):
        a = ring([2] * 16)
        b = ring([3] * 16)
        assert a.hadamard(b) == ring([6] * 16)

    def test_ring_mismatch_rejected(self, ring, rng):
        other = PolynomialRing(32, ntt_friendly_prime(32, 30))
        with pytest.raises(ValueError, match="ring mismatch"):
            _ = ring.random(rng) + other.zero()


class TestDomainTransforms:
    def test_to_from_ntt_roundtrip(self, ring, rng):
        a = ring.random(rng)
        assert a.to_ntt().from_ntt() == a

    def test_ntt_domain_hadamard_is_ring_mul(self, ring, rng):
        a, b = ring.random(rng), ring.random(rng)
        via_ntt = a.to_ntt().hadamard(b.to_ntt()).from_ntt()
        assert via_ntt == a * b


class TestUtilities:
    def test_centered_range(self, ring):
        p = ring([0, 1, ring.q - 1, ring.q // 2])
        centered = p.centered()
        assert centered[0] == 0
        assert centered[1] == 1
        assert centered[2] == -1
        half = ring.q // 2
        assert abs(centered[3]) <= half

    def test_infinity_norm(self, ring):
        p = ring([1, ring.q - 5])
        assert p.infinity_norm() == 5

    def test_is_zero(self, ring):
        assert ring.zero().is_zero()
        assert not ring.one().is_zero()

    def test_evaluate_horner(self, ring):
        p = ring([1, 2, 3])  # 1 + 2x + 3x^2
        assert p.evaluate(2) == (1 + 4 + 12) % ring.q
