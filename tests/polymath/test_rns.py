"""Unit tests for the Residue Number System layer."""

import pytest

from repro.polymath.rns import RnsBasis, plan_towers


class TestBasisConstruction:
    def test_requires_moduli(self):
        with pytest.raises(ValueError):
            RnsBasis([])

    def test_rejects_non_coprime(self):
        with pytest.raises(ValueError, match="not coprime"):
            RnsBasis([6, 10])

    def test_composite_modulus(self):
        basis = RnsBasis([3, 5, 7])
        assert basis.modulus == 105
        assert len(basis) == 3


class TestDecomposeReconstruct:
    def test_roundtrip(self):
        basis = RnsBasis([97, 101, 103])
        for v in (0, 1, 96, 10_000, 97 * 101 * 103 - 1):
            assert basis.reconstruct(basis.decompose(v)) == v

    def test_residues_are_reduced(self):
        basis = RnsBasis([97, 101])
        residues = basis.decompose(1_000_000)
        assert residues[0] < 97 and residues[1] < 101

    def test_homomorphism_mul(self):
        """CRT is a ring isomorphism: per-tower ops == big-modulus ops."""
        basis = RnsBasis([97, 101, 103])
        a, b = 123_456, 789_012 % basis.modulus
        prod_residues = [
            (x * y) % m for x, y, m in zip(
                basis.decompose(a), basis.decompose(b), basis.moduli
            )
        ]
        assert basis.reconstruct(prod_residues) == a * b % basis.modulus

    def test_wrong_residue_count(self):
        basis = RnsBasis([97, 101])
        with pytest.raises(ValueError, match="expected 2"):
            basis.reconstruct([1, 2, 3])

    def test_centered_reconstruct(self):
        basis = RnsBasis([97, 101])
        v = basis.modulus - 3
        assert basis.centered_reconstruct(basis.decompose(v)) == -3


class TestPolyDecompose:
    def test_poly_roundtrip(self, rng):
        basis = RnsBasis([97, 101, 103])
        poly = [rng.randrange(basis.modulus) for _ in range(16)]
        towers = basis.decompose_poly(poly)
        assert len(towers) == 3
        assert basis.reconstruct_poly(towers) == poly

    def test_tower_length_mismatch(self):
        basis = RnsBasis([97, 101])
        with pytest.raises(ValueError, match="length mismatch"):
            basis.reconstruct_poly([[1, 2], [1]])


class TestPlanTowers:
    def test_paper_cpu_split_109(self):
        """SEAL splits 109 bits into 54 + 55 (Section VI-B)."""
        towers = plan_towers(109, 55, 4096)
        assert sorted(t.bit_length() for t in towers) == [54, 55]

    def test_paper_cpu_split_218(self):
        """SEAL splits 218 bits into 54+54+55+55."""
        towers = plan_towers(218, 55, 8192)
        assert sorted(t.bit_length() for t in towers) == [54, 54, 55, 55]

    def test_paper_cofhee_split(self):
        """CoFHEE: one 109-bit tower; two for 218 bits."""
        assert len(plan_towers(109, 109, 4096)) == 1
        assert [t.bit_length() for t in plan_towers(218, 109, 8192)] == [109, 109]

    def test_towers_distinct_and_ntt_friendly(self):
        n = 256
        towers = plan_towers(80, 41, n)
        assert len(set(towers)) == len(towers)
        assert all((t - 1) % (2 * n) == 0 for t in towers)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            plan_towers(1, 55, 4096)
