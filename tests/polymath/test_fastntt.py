"""Unit tests for the numpy-vectorized NTT (word-sized moduli)."""

import pytest

from repro.polymath.fastntt import MAX_MODULUS_BITS, FastNttContext
from repro.polymath.ntt import NttContext, reference_negacyclic_multiply
from repro.polymath.primes import ntt_friendly_prime


@pytest.fixture(scope="module")
def pair():
    n = 128
    q = ntt_friendly_prime(n, 28)
    return FastNttContext(n, q), NttContext(n, q)


class TestEquivalence:
    def test_forward_matches_reference(self, pair, rng):
        fast, ref = pair
        a = [rng.randrange(fast.q) for _ in range(fast.n)]
        assert list(fast.forward(a)) == ref.forward(a)

    def test_inverse_matches_reference(self, pair, rng):
        fast, ref = pair
        a = [rng.randrange(fast.q) for _ in range(fast.n)]
        assert list(fast.inverse(a)) == ref.inverse(a)

    def test_roundtrip(self, pair, rng):
        fast, _ = pair
        a = [rng.randrange(fast.q) for _ in range(fast.n)]
        assert list(fast.inverse(fast.forward(a))) == a

    def test_multiply_matches_schoolbook(self, pair, rng):
        fast, _ = pair
        a = [rng.randrange(fast.q) for _ in range(fast.n)]
        b = [rng.randrange(fast.q) for _ in range(fast.n)]
        assert fast.negacyclic_multiply(a, b) == reference_negacyclic_multiply(
            a, b, fast.q
        )

    @pytest.mark.parametrize("n", [4, 64, 1024])
    def test_multiple_sizes(self, n, rng):
        q = ntt_friendly_prime(n, 25)
        fast, ref = FastNttContext(n, q), NttContext(n, q)
        a = [rng.randrange(q) for _ in range(n)]
        assert list(fast.forward(a)) == ref.forward(a)


class TestValidation:
    def test_rejects_wide_modulus(self):
        q = ntt_friendly_prime(64, MAX_MODULUS_BITS + 5)
        with pytest.raises(ValueError, match="int64"):
            FastNttContext(64, q)

    def test_rejects_wrong_length(self, pair):
        fast, _ = pair
        with pytest.raises(ValueError, match="coefficients"):
            fast.forward([1, 2, 3])

    def test_accepts_max_width(self):
        q = ntt_friendly_prime(16, MAX_MODULUS_BITS)
        ctx = FastNttContext(16, q)
        a = [q - 1] * 16  # worst-case products still fit int64
        assert list(ctx.inverse(ctx.forward(a))) == a
