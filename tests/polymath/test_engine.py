"""Unit tests for the batched RNS tower engine and its auto-selection."""

import numpy as np
import pytest

from repro.baselines.software import SoftwareBfv
from repro.polymath.engine import (
    MAX_MODULUS_BITS,
    BatchedRnsEngine,
    engine_enabled,
    get_engine,
    supports,
)
from repro.polymath.ntt import NttContext
from repro.polymath.primes import ntt_friendly_prime
from repro.polymath.rns import RnsBasis, plan_towers


@pytest.fixture(scope="module")
def rns3():
    n = 32
    basis = RnsBasis(plan_towers(60, 20, n))
    return BatchedRnsEngine(basis, n), basis, n


class TestConstruction:
    def test_rejects_wide_tower(self):
        q = ntt_friendly_prime(16, MAX_MODULUS_BITS + 9)
        with pytest.raises(ValueError, match="int64-safe"):
            BatchedRnsEngine(RnsBasis([q]), 16)

    def test_rejects_wrong_stack_shape(self, rns3):
        engine, basis, n = rns3
        with pytest.raises(ValueError, match="tower stack"):
            engine.forward(np.zeros((len(basis) + 1, n), dtype=np.int64))
        with pytest.raises(ValueError, match="coefficients"):
            engine.decompose([1, 2, 3])

    def test_repr_names_kernel(self, rns3):
        engine, _, _ = rns3
        assert "shoup-lazy" in repr(engine)


class TestBatchDimensions:
    def test_batched_transforms_match_per_stack(self, rns3, rng):
        engine, basis, n = rns3
        stacks = [
            engine.stack([[rng.randrange(q) for _ in range(n)]
                          for q in basis.moduli])
            for _ in range(3)
        ]
        batched = engine.forward(np.stack(stacks))
        for got, stack in zip(batched, stacks):
            assert got.tolist() == engine.forward(stack).tolist()
        inv = engine.inverse(np.stack(stacks))
        for got, stack in zip(inv, stacks):
            assert got.tolist() == engine.inverse(stack).tolist()

    def test_tensor_matches_per_tower_reference(self, rns3, rng):
        engine, basis, n = rns3
        polys = [
            [rng.randrange(basis.modulus) for _ in range(n)] for _ in range(4)
        ]
        a0, a1, b0, b1 = (engine.decompose(p) for p in polys)
        y0, y1, y2 = engine.tensor(a0, a1, b0, b1)
        pure = SoftwareBfv(basis, n, engine="pure")
        for i, q in enumerate(basis.moduli):
            expect = pure.tower_multiply(
                q, (polys[0], polys[1]), (polys[2], polys[3])
            )
            assert [y0[i].tolist(), y1[i].tolist(), y2[i].tolist()] == expect


class TestAutoSelection:
    def test_get_engine_caches_per_basis(self):
        basis = RnsBasis(plan_towers(40, 20, 16))
        assert get_engine(basis, 16) is get_engine(RnsBasis(basis.moduli), 16)

    def test_wide_basis_returns_none(self):
        basis = RnsBasis([ntt_friendly_prime(16, 45)])
        assert get_engine(basis, 16) is None

    def test_env_toggle_disables_auto_selection(self, monkeypatch):
        basis = RnsBasis(plan_towers(40, 20, 16))
        monkeypatch.setenv("REPRO_ENGINE", "off")
        assert not engine_enabled()
        assert get_engine(basis, 16) is None
        monkeypatch.setenv("REPRO_ENGINE", "auto")
        assert get_engine(basis, 16) is not None

    def test_explicit_request_bypasses_kill_switch(self, monkeypatch):
        """REPRO_ENGINE=off governs auto-selection only; an explicit
        engine="batched" (or FastNttContext) still gets the engine."""
        basis = RnsBasis(plan_towers(40, 20, 16))
        monkeypatch.setenv("REPRO_ENGINE", "off")
        assert SoftwareBfv(basis, 16, engine="batched").engine_kind == "batched"
        assert SoftwareBfv(basis, 16).engine_kind == "pure"

    def test_explicit_consumers_share_the_engine_cache(self):
        """Two multipliers over the same (n, q) share one precomputation."""
        from repro.polymath.fastntt import FastNttContext, RnsExactMultiplier

        q = ntt_friendly_prime(16, 60)
        m1, m2 = RnsExactMultiplier(16, q), RnsExactMultiplier(16, q)
        assert m1._engine is m2._engine
        p = ntt_friendly_prime(16, 20)
        assert FastNttContext(16, p)._engine is FastNttContext(16, p)._engine


class TestSoftwareBfvFallback:
    """The automatic wide-modulus fallback the acceptance criteria name."""

    def test_wide_towers_fall_back_to_pure(self, rng):
        n = 32
        wide = RnsBasis(plan_towers(70, 36, n))  # 35/36-bit towers
        sw = SoftwareBfv(wide, n)
        assert sw.engine_kind == "pure"
        with pytest.raises(ValueError, match="does not qualify"):
            SoftwareBfv(wide, n, engine="batched")

    def test_word_sized_towers_select_batched(self):
        n = 32
        basis = RnsBasis(plan_towers(60, 20, n))
        assert SoftwareBfv(basis, n).engine_kind == "batched"

    def test_batched_and_pure_are_bit_identical(self, rng):
        n = 32
        basis = RnsBasis(plan_towers(60, 20, n))
        fast = SoftwareBfv(basis, n, engine="batched")
        pure = SoftwareBfv(basis, n, engine="pure")
        Q = basis.modulus
        ca = tuple([rng.randrange(Q) for _ in range(n)] for _ in range(2))
        cb = tuple([rng.randrange(Q) for _ in range(n)] for _ in range(2))
        assert fast.ciphertext_multiply(ca, cb) == pure.ciphertext_multiply(
            ca, cb
        )
        for q in basis.moduli:
            assert fast.tower_multiply(q, ca, cb) == pure.tower_multiply(
                q, ca, cb
            )
        # both paths tally the same logical tower work
        assert fast.tower_ops == pure.tower_ops

    def test_scheme_auto_multiplier_falls_back_when_disabled(self, monkeypatch):
        from repro.bfv.params import BfvParameters
        from repro.bfv.scheme import Bfv

        params = BfvParameters.toy(n=16, log_q=40)
        assert Bfv(params).multiplier_kind == "RnsExactMultiplier"
        monkeypatch.setenv("REPRO_ENGINE", "off")
        assert Bfv(params).multiplier_kind == "_ExactMultiplier"


def test_supports_checks_every_tower():
    good = ntt_friendly_prime(16, 20)
    wide = ntt_friendly_prime(16, 40)
    assert supports([good], 16)
    assert not supports([good, wide], 16)
    assert not supports([good], 24)  # degree not a power of two
