"""Unit tests for bit-reversal helpers (the MEMCPYR primitive)."""

import pytest

from repro.polymath.bitrev import bit_reverse, bit_reverse_indices, bit_reverse_permute


class TestBitReverse:
    def test_known_values(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(0, 4) == 0
        assert bit_reverse(0b1111, 4) == 0b1111

    def test_involution(self):
        for v in range(64):
            assert bit_reverse(bit_reverse(v, 6), 6) == v

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bit_reverse(8, 3)
        with pytest.raises(ValueError):
            bit_reverse(-1, 3)


class TestIndices:
    def test_length_8(self):
        assert bit_reverse_indices(8) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_is_permutation(self):
        table = bit_reverse_indices(64)
        assert sorted(table) == list(range(64))

    def test_non_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reverse_indices(12)

    def test_length_one(self):
        assert bit_reverse_indices(1) == [0]


class TestPermute:
    def test_permute_roundtrip(self):
        data = list(range(100, 116))
        assert bit_reverse_permute(bit_reverse_permute(data)) == data

    def test_permute_known(self):
        assert bit_reverse_permute([10, 11, 12, 13]) == [10, 12, 11, 13]
