"""Unit tests for the NTT kernels against the quadratic references."""

import random

import pytest

from repro.polymath.ntt import (
    NttContext,
    reference_dft,
    reference_negacyclic_multiply,
)
from repro.polymath.primes import ntt_friendly_prime, root_of_unity


@pytest.fixture(scope="module")
def ctx64():
    n = 64
    return NttContext(n, ntt_friendly_prime(n, 40))


class TestContextConstruction:
    def test_rejects_non_power_of_two(self):
        q = ntt_friendly_prime(64, 30)
        with pytest.raises(ValueError, match="power of two"):
            NttContext(48, q)

    def test_rejects_unfriendly_modulus(self):
        with pytest.raises(ValueError):
            NttContext(64, 97)  # 96 not divisible by 128

    def test_rejects_bad_psi(self):
        q = ntt_friendly_prime(64, 30)
        with pytest.raises(ValueError, match="primitive"):
            NttContext(64, q, psi=1)

    def test_derived_constants(self, ctx64):
        q, n = ctx64.q, ctx64.n
        assert pow(ctx64.psi, 2 * n, q) == 1
        assert pow(ctx64.psi, n, q) == q - 1
        assert ctx64.omega == ctx64.psi * ctx64.psi % q
        assert ctx64.n_inv * n % q == 1


class TestTransforms:
    def test_roundtrip(self, ctx64, rng):
        a = [rng.randrange(ctx64.q) for _ in range(64)]
        assert ctx64.inverse(ctx64.forward(a)) == a

    def test_cyclic_roundtrip(self, ctx64, rng):
        a = [rng.randrange(ctx64.q) for _ in range(64)]
        assert ctx64.inverse_cyclic(ctx64.forward_cyclic(a)) == a

    def test_cyclic_matches_reference_dft(self, ctx64, rng):
        a = [rng.randrange(ctx64.q) for _ in range(64)]
        assert ctx64.forward_cyclic(a) == reference_dft(a, ctx64.omega, ctx64.q)

    def test_forward_of_delta_is_all_ones(self, ctx64):
        delta = [1] + [0] * 63
        assert ctx64.forward(delta) == [1] * 64

    def test_linearity(self, ctx64, rng):
        q = ctx64.q
        a = [rng.randrange(q) for _ in range(64)]
        b = [rng.randrange(q) for _ in range(64)]
        fa, fb = ctx64.forward(a), ctx64.forward(b)
        fsum = ctx64.forward([(x + y) % q for x, y in zip(a, b)])
        assert fsum == [(x + y) % q for x, y in zip(fa, fb)]

    def test_wrong_length_rejected(self, ctx64):
        with pytest.raises(ValueError, match="expected 64"):
            ctx64.forward([1, 2, 3])


class TestNegacyclicMultiply:
    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_matches_schoolbook(self, n, rng):
        q = ntt_friendly_prime(n, 40)
        ctx = NttContext(n, q)
        a = [rng.randrange(q) for _ in range(n)]
        b = [rng.randrange(q) for _ in range(n)]
        assert ctx.negacyclic_multiply(a, b) == reference_negacyclic_multiply(a, b, q)

    def test_x_to_n_wraps_negatively(self):
        """x^(n-1) * x = x^n === -1 in Z_q[x]/(x^n+1)."""
        n = 16
        q = ntt_friendly_prime(n, 30)
        ctx = NttContext(n, q)
        x1 = [0, 1] + [0] * (n - 2)
        xn1 = [0] * (n - 1) + [1]
        result = ctx.negacyclic_multiply(x1, xn1)
        assert result == [q - 1] + [0] * (n - 1)

    def test_multiply_by_one(self, ctx64, rng):
        a = [rng.randrange(ctx64.q) for _ in range(64)]
        one = [1] + [0] * 63
        assert ctx64.negacyclic_multiply(a, one) == a

    def test_classic_psi_scaling_formulation_agrees(self, rng):
        """Algorithm 2's NTT((A . psi), omega) formulation == merged form."""
        n = 32
        q = ntt_friendly_prime(n, 30)
        ctx = NttContext(n, q)
        a = [rng.randrange(q) for _ in range(n)]
        b = [rng.randrange(q) for _ in range(n)]
        fa = ctx.forward_cyclic(ctx.scale_psi(a))
        fb = ctx.forward_cyclic(ctx.scale_psi(b))
        prod = [x * y % q for x, y in zip(fa, fb)]
        y = ctx.scale_psi(ctx.inverse_cyclic(prod), inverse=True)
        assert y == ctx.negacyclic_multiply(a, b)


class TestExplicitPsi:
    def test_explicit_psi_accepted(self):
        n = 32
        q = ntt_friendly_prime(n, 30)
        psi = root_of_unity(2 * n, q)
        ctx = NttContext(n, q, psi=psi)
        assert ctx.psi == psi
