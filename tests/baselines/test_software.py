"""Unit tests for the software baseline (SEAL-style execution + CPU model)."""

import pytest

from repro.baselines.software import CpuCostModel, SoftwareBfv
from repro.bfv.params import BfvParameters
from repro.polymath.ntt import reference_negacyclic_multiply
from repro.polymath.rns import RnsBasis, plan_towers


class TestSoftwareBfv:
    def test_tensor_matches_reference(self, rng):
        n = 32
        basis = RnsBasis(plan_towers(70, 36, n))
        sw = SoftwareBfv(basis, n)
        big_q = basis.modulus
        ca = tuple([rng.randrange(big_q) for _ in range(n)] for _ in range(2))
        cb = tuple([rng.randrange(big_q) for _ in range(n)] for _ in range(2))
        y0, y1, y2 = sw.ciphertext_multiply(ca, cb)
        assert y0 == reference_negacyclic_multiply(ca[0], cb[0], big_q)
        assert y2 == reference_negacyclic_multiply(ca[1], cb[1], big_q)
        cross = [
            (a + b) % big_q
            for a, b in zip(
                reference_negacyclic_multiply(ca[0], cb[1], big_q),
                reference_negacyclic_multiply(ca[1], cb[0], big_q),
            )
        ]
        assert y1 == cross

    def test_op_counts_per_tower(self, rng):
        """SEAL does the same Algorithm 3 work per tower: 4 NTT, 4
        Hadamard, 1 add, 3 iNTT."""
        n = 16
        basis = RnsBasis(plan_towers(60, 31, n))
        sw = SoftwareBfv(basis, n)
        ca = ([1] * n, [2] * n)
        sw.ciphertext_multiply(ca, ca)
        towers = len(basis)
        assert sw.tower_ops == {
            "ntt": 4 * towers, "hadamard": 4 * towers,
            "add": towers, "intt": 3 * towers,
        }


class TestCpuCostModel:
    @pytest.fixture(scope="class")
    def small(self):
        return BfvParameters.from_paper(n=2**12, log_q=109)

    @pytest.fixture(scope="class")
    def large(self):
        return BfvParameters.from_paper(n=2**13, log_q=218)

    def test_anchor_small(self, small):
        """1.5 ms / 1.48 W at (2^12, 109), single thread."""
        cm = CpuCostModel()
        assert cm.ciphertext_mult_ms(small) == pytest.approx(1.5, rel=0.01)
        assert cm.power_w(small) == pytest.approx(1.48, rel=0.01)

    def test_anchor_large(self, large):
        """6.91 ms / 2.3 W at (2^13, 218), single thread."""
        cm = CpuCostModel()
        assert cm.ciphertext_mult_ms(large) == pytest.approx(6.91, rel=0.01)
        assert cm.power_w(large) == pytest.approx(2.3, rel=0.01)

    def test_pdp_anchors(self, small, large):
        """Section VI-B: 2.22 W*ms and 15.9 W*ms single-thread."""
        cm = CpuCostModel()
        assert cm.pdp_w_ms(small) == pytest.approx(2.22, rel=0.01)
        assert cm.pdp_w_ms(large) == pytest.approx(15.9, rel=0.01)

    def test_diminishing_returns(self, large):
        """Fig. 6: speedup per added thread shrinks."""
        cm = CpuCostModel()
        t1, t4, t16 = (cm.ciphertext_mult_ms(large, T) for T in (1, 4, 16))
        assert t1 > t4 > t16
        assert (t1 / t4) > (t4 / t16)  # diminishing

    def test_power_near_linear_in_threads(self, small):
        cm = CpuCostModel()
        p1, p4 = cm.power_w(small, 1), cm.power_w(small, 4)
        assert 2.5 < p4 / p1 < 4.0  # near-linear growth

    def test_crossover_exists(self, large):
        """Multi-threaded SEAL eventually beats one CoFHEE (3.58 ms)."""
        cm = CpuCostModel()
        threads = cm.crossover_threads(large, cofhee_ms=3.58)
        assert threads is not None and 2 <= threads <= 8

    def test_no_crossover_when_cofhee_fast_enough(self, large):
        cm = CpuCostModel()
        assert cm.crossover_threads(large, cofhee_ms=0.1) is None

    def test_validation(self, small):
        cm = CpuCostModel()
        with pytest.raises(ValueError):
            cm.ciphertext_mult_ms(small, threads=0)
        with pytest.raises(ValueError):
            cm.tower_time_ms(100)
