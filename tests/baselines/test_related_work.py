"""Unit tests for the Table XI related-work comparison."""

import pytest

from repro.baselines.related_work import (
    DESIGNS,
    PAPER_SPEEDUPS,
    TABLE11_PAPER_EFFICIENCY,
    cofhee_record,
    efficiency,
    table11_rows,
)


class TestDesignRecords:
    def test_all_table11_designs_present(self):
        assert set(DESIGNS) == {"F1", "CraterLake", "BTS", "ARK", "HEAX", "Roy"}

    def test_tower_factors(self):
        """RNS passes for 128-bit coefficients: F1 32b -> 4, BTS/ARK 64b ->
        2, CraterLake 28b -> 5, CoFHEE 128b -> 1."""
        assert DESIGNS["F1"].tower_factor == 4
        assert DESIGNS["BTS"].tower_factor == 2
        assert DESIGNS["ARK"].tower_factor == 2
        assert DESIGNS["CraterLake"].tower_factor == 5
        assert cofhee_record().tower_factor == 1

    def test_cofhee_cycles_are_butterfly_count(self):
        """Table XI footnote: 53,248 cycles at n = 2^13."""
        assert cofhee_record().ntt_cycles == 53_248

    def test_cofhee_compute_area_from_synthesis_model(self):
        assert cofhee_record().compute_area_mm2 == pytest.approx(0.6394, abs=0.001)

    def test_fpga_records_have_resources(self):
        assert DESIGNS["HEAX"].fpga_resources is not None
        assert DESIGNS["Roy"].area_mm2 is None


class TestEfficiency:
    def test_cofhee_matches_paper(self):
        assert efficiency(cofhee_record()) == pytest.approx(4.54e-4, rel=0.01)

    @pytest.mark.parametrize("name", ["F1", "CraterLake", "BTS", "ARK"])
    def test_asics_match_paper(self, name):
        assert efficiency(DESIGNS[name]) == pytest.approx(
            TABLE11_PAPER_EFFICIENCY[name], rel=0.01
        )

    def test_fpgas_have_no_efficiency(self):
        """'The performance per mm2 efficiency metric cannot be accurately
        calculated' for FPGAs."""
        assert efficiency(DESIGNS["HEAX"]) is None
        assert efficiency(DESIGNS["Roy"]) is None

    @pytest.mark.parametrize("name,expected", list(PAPER_SPEEDUPS.items()))
    def test_speedups_match_paper(self, name, expected):
        cofhee_eff = efficiency(cofhee_record())
        speedup = cofhee_eff / efficiency(DESIGNS[name])
        assert speedup == pytest.approx(expected, rel=0.01)


class TestRows:
    def test_cofhee_first_and_only_silicon(self):
        rows = table11_rows()
        assert rows[0]["design"] == "CoFHEE"
        assert [r["design"] for r in rows if r["silicon_proven"]] == ["CoFHEE"]

    def test_rows_complete(self):
        rows = table11_rows()
        assert len(rows) == 7  # CoFHEE + 6 comparison designs
