"""Tests for the experiment harness: every table/figure within tolerance.

These are the reproduction's acceptance tests — each asserts the
model-vs-paper deltas that EXPERIMENTS.md reports.
"""

import pytest

from repro.eval import (
    adpll_rows,
    fig6_pdp_rows,
    fig6_rows,
    table10_rows,
    table11_rows,
    table3_rows,
    table4_row,
    table5_rows,
    table7_rows,
    table8_rows,
    table9_rows,
)


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        return table5_rows()

    def test_six_rows(self, rows):
        assert len(rows) == 6

    def test_cycles_within_0_1_pct(self, rows):
        for row in rows:
            delta = abs(row["cycles"] - row["paper_cycles"]) / row["paper_cycles"]
            assert delta < 0.001, (row["op"], row["n"])

    def test_power_within_5_pct(self, rows):
        for row in rows:
            assert abs(row["avg_mw"] - row["paper_avg_mw"]) / row["paper_avg_mw"] < 0.05
            assert abs(row["peak_mw"] - row["paper_peak_mw"]) / row["paper_peak_mw"] < 0.03


class TestFig6:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig6_rows()

    def test_cofhee_anchors(self, rows):
        cofhee = {r["n"]: r for r in rows if r["platform"] == "CoFHEE"}
        assert cofhee[2**12]["time_ms"] == pytest.approx(0.84, abs=0.01)
        assert cofhee[2**13]["time_ms"] == pytest.approx(3.58, abs=0.02)
        assert cofhee[2**12]["power_w"] == pytest.approx(0.022, abs=0.001)
        assert cofhee[2**13]["power_w"] == pytest.approx(0.0212, abs=0.001)

    def test_cpu_anchors(self, rows):
        cpu1 = {r["n"]: r for r in rows
                if r["platform"] == "CPU (SEAL)" and r["threads"] == 1}
        assert cpu1[2**12]["time_ms"] == pytest.approx(1.5, rel=0.01)
        assert cpu1[2**13]["time_ms"] == pytest.approx(6.91, rel=0.01)

    def test_shape_cofhee_between_1_and_16_threads(self, rows):
        by = {(r["platform"], r["n"], r["threads"]): r["time_ms"] for r in rows}
        for n in (2**12, 2**13):
            assert by[("CPU (SEAL)", n, 16)] < by[("CoFHEE", n, 1)] < by[
                ("CPU (SEAL)", n, 1)
            ]

    def test_pdp_two_orders_of_magnitude(self):
        for row in fig6_pdp_rows():
            assert 100 < row["efficiency_ratio"] < 1000


class TestTable10:
    def test_speedups(self):
        for row in table10_rows():
            assert row["speedup"] == pytest.approx(row["paper_speedup"], abs=0.05)


class TestTable11:
    def test_efficiencies(self):
        for row in table11_rows():
            if row["paper_efficiency"] is not None:
                assert row["efficiency"] == pytest.approx(
                    row["paper_efficiency"], rel=0.01
                )


class TestPhysicalTables:
    def test_table3(self):
        for row in table3_rows():
            assert abs(row["std_cells"] - row["paper_std_cells"]) < 100

    def test_table4(self):
        result = table4_row()
        assert result["model"]["DW_um"] == 3660.0
        assert result["macros_placed"] == 68

    def test_table7(self):
        for row in table7_rows():
            assert abs(row["multi_cut_pct"] - row["paper_pct"]) < 0.1

    def test_table8(self):
        total = next(r for r in table8_rows() if r["module"] == "Total")
        assert total["model_mm2"] == pytest.approx(9.8345, abs=0.01)

    def test_table9(self):
        result = table9_rows()
        assert result["model"]["Levels"] == result["paper"]["Levels"]


class TestAdpll:
    def test_sweep_locks_everywhere(self):
        for row in adpll_rows():
            assert row["locked"], row["target_mhz"]
