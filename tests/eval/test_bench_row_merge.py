"""Regression: benchmark rows merge by full identity, not by op alone.

BENCH_kernels.json is shared by two writers — ``tools/bench_kernels.py``
(kernel + serving rows) and ``benchmarks/bench_service_throughput.py``
(fleet paper-scale and spill-over rows). Both used to key rows by ``op``
only, so the fleet bench's x1 row clobbered its x4 row (same op,
different engine label), and a re-run at a different degree silently
deleted the other configuration's history. Row identity is the full
``(op, n, towers, engine)`` tuple; these tests pin that contract from
both writers' sides.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load(name: str, path: Path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def throughput_bench():
    return _load(
        "bench_service_throughput_under_test",
        REPO_ROOT / "benchmarks" / "bench_service_throughput.py",
    )


@pytest.fixture(scope="module")
def kernels_bench():
    return _load(
        "bench_kernels_under_test", REPO_ROOT / "tools" / "bench_kernels.py"
    )


def _row(op, n, towers, engine, speedup=1.0):
    return {
        "op": op, "n": n, "towers": towers, "engine": engine,
        "ns_per_op": 1000.0, "speedup_vs_pure_python": speedup,
    }


class TestMergeBenchRows:
    def test_two_runs_sharing_an_op_both_survive(
        self, throughput_bench, tmp_path, monkeypatch
    ):
        """The fleet bench's x1 and x4 rows share an op: merging the x4
        run must not clobber the x1 run's row."""
        out = tmp_path / "BENCH_kernels.json"
        monkeypatch.setattr(throughput_bench, "BENCH_JSON", out)
        x1 = _row("serve_fleet_paper", 4096, 3, "fleet-x1")
        x4 = _row("serve_fleet_paper", 4096, 3, "fleet-x4", speedup=3.1)
        throughput_bench._merge_bench_rows([x1])
        throughput_bench._merge_bench_rows([x4])
        merged = json.loads(out.read_text())
        assert x1 in merged and x4 in merged
        assert len(merged) == 2

    def test_rerun_with_same_identity_replaces_its_own_row(
        self, throughput_bench, tmp_path, monkeypatch
    ):
        out = tmp_path / "BENCH_kernels.json"
        monkeypatch.setattr(throughput_bench, "BENCH_JSON", out)
        stale = _row("serve_fleet_paper", 4096, 3, "fleet-x4", speedup=2.0)
        other = _row("serve_fleet_paper", 4096, 3, "fleet-x1")
        fresh = _row("serve_fleet_paper", 4096, 3, "fleet-x4", speedup=3.5)
        throughput_bench._merge_bench_rows([stale, other])
        throughput_bench._merge_bench_rows([fresh])
        merged = json.loads(out.read_text())
        assert fresh in merged and other in merged
        assert stale not in merged
        assert len(merged) == 2

    def test_rerun_at_different_degree_keeps_both_configurations(
        self, throughput_bench, tmp_path, monkeypatch
    ):
        out = tmp_path / "BENCH_kernels.json"
        monkeypatch.setattr(throughput_bench, "BENCH_JSON", out)
        small = _row("serve_fleet_paper", 4096, 3, "fleet-x4")
        large = _row("serve_fleet_paper", 8192, 3, "fleet-x4")
        throughput_bench._merge_bench_rows([small])
        throughput_bench._merge_bench_rows([large])
        merged = json.loads(out.read_text())
        assert small in merged and large in merged

    def test_key_is_the_full_identity_tuple(self, throughput_bench):
        row = _row("serve_fleet_paper", 4096, 3, "fleet-x1")
        assert throughput_bench._bench_row_key(row) == (
            "serve_fleet_paper", 4096, 3, "fleet-x1"
        )


class TestKernelBenchForeignRows:
    def test_foreign_rows_survive_and_owned_rows_are_replaced(
        self, kernels_bench, tmp_path
    ):
        """A bench_kernels re-run keeps the fleet bench's rows — even
        ones sharing an op with its own — and replaces only rows whose
        full identity it owns."""
        out = tmp_path / "BENCH_kernels.json"
        fleet_x1 = _row("serve_fleet_paper", 4096, 3, "fleet-x1")
        fleet_x4 = _row("serve_fleet_paper", 4096, 3, "fleet-x4")
        stale = _row("evalmult_tensor", 4096, 3, "batched-rns", speedup=9.9)
        other_engine = _row("evalmult_tensor", 4096, 3, "pure-python")
        out.write_text(
            json.dumps([fleet_x1, fleet_x4, stale, other_engine])
        )
        fresh = _row("evalmult_tensor", 4096, 3, "batched-rns", speedup=60.0)
        foreign = kernels_bench._foreign_rows([fresh], out)
        assert fleet_x1 in foreign and fleet_x4 in foreign
        assert other_engine in foreign
        assert stale not in foreign

    def test_missing_or_corrupt_file_yields_no_foreign_rows(
        self, kernels_bench, tmp_path
    ):
        missing = tmp_path / "nope.json"
        assert kernels_bench._foreign_rows([], missing) == []
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        assert kernels_bench._foreign_rows([], corrupt) == []
