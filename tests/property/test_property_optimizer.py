"""Differential battery for the server-side circuit optimizer.

Random circuits over the full op set (adds, constants, eager and bare
tensors, explicit relinearization, both rotations) are generated with
the same static discipline :func:`validate_circuit` enforces — tensor
and rotation operands degree 2, outputs degree 2, rotation immediates
nonzero — plus a multiplicative-depth cap so the lazy-level plaintext
comparison stays inside the noise budget.

Three guarantees are pinned differentially:

* ``exact`` (the server default) is **byte-exact**: the optimized
  circuit's served result is bit-identical to the unoptimized one on
  every backend, so caching/dedupe/bit-identity invariants survive
  optimization.
* ``lazy`` restructures key switches: served results are bit-identical
  *across* backends and decrypt to the same plaintexts as the
  unoptimized execution (but may differ from it byte-wise).
* The pass pipeline is a **fixed point**: optimizing an optimized
  circuit changes nothing and reports zero eliminations, and the
  rewrite report's eliminated counts reconcile with the step deltas.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.bfv.rotation import RotationEngine
from repro.polymath.primes import ntt_friendly_prime
from repro.service.circuits import CircuitBuilder
from repro.service.jobs import JobKind
from repro.service.optimizer import (
    LEVEL_EXACT,
    LEVEL_LAZY,
    LEVELS,
    optimize_circuit,
)
from repro.service.serialization import (
    deserialize_circuit_outputs,
    serialize_ciphertext,
    serialize_galois_key,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

BACKENDS = ("chip_pool", "software", "fastntt")

#: Roomy modulus (168 bits): the depth-capped random circuits decrypt
#: exactly even after lazy relinearization reorders the noise growth.
PARAMS = BfvParameters.toy_rns(
    n=16, towers=6, tower_bits=28, t=ntt_friendly_prime(16, 20)
)

_ENCODER = BatchEncoder(PARAMS)

#: Packed plaintext constants the strategy draws from (slot-encoded
#: small values, so coefficients are valid mod t).
PLAIN_POOL = tuple(
    tuple(_ENCODER.encode(slots).coeffs)
    for slots in (
        [0] * PARAMS.n,
        [1] * PARAMS.n,
        [2, -1] * (PARAMS.n // 2),
        list(range(PARAMS.n)),
    )
)

#: Scalars include 0 and 1 so constant folding has something to do.
SCALAR_POOL = (-3, -2, -1, 0, 1, 2, 3)

#: Valid nonzero row-rotation amounts for n = 16 (|steps| < n/2 keeps
#: ``steps % (n/2)`` nonzero for the negative amounts too).
ROT_STEPS = tuple(s for s in range(-7, 8) if s)

#: Combined multiplicative-depth budget (tensor + plaintext multiplies)
#: per register; keeps every generated circuit inside PARAMS's noise.
DEPTH_CAP = 4


@st.composite
def circuits(draw):
    """A random valid circuit exercising every op, degrees tracked."""
    num_inputs = draw(st.integers(min_value=1, max_value=3))
    builder = CircuitBuilder("prop-opt")
    degree = {}
    depth = {}
    for i in range(num_inputs):
        reg = builder.input(f"x{i}")
        degree[reg] = 2
        depth[reg] = 0

    def any_reg():
        return draw(st.sampled_from(sorted(degree)))

    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        deg2 = sorted(r for r in degree if degree[r] == 2)
        deg2_shallow = [r for r in deg2 if depth[r] < DEPTH_CAP]
        deg3 = sorted(r for r in degree if degree[r] == 3)
        ops = ["add", "sub", "add_const", "mul_const", "mac_const"]
        if deg2_shallow:
            ops += ["mul_relin", "square_relin", "mul", "square"]
        if deg2:
            ops += ["rotate_rows", "rotate_columns"]
        if deg3:
            ops.append("relinearize")
        op = draw(st.sampled_from(ops))
        if op == "add":
            a, b = any_reg(), any_reg()
            dst = builder.add(a, b)
            degree[dst] = max(degree[a], degree[b])
            depth[dst] = max(depth[a], depth[b])
        elif op == "sub":
            a, b = any_reg(), any_reg()
            dst = builder.sub(a, b)
            degree[dst] = max(degree[a], degree[b])
            depth[dst] = max(depth[a], depth[b])
        elif op == "add_const":
            a = any_reg()
            dst = builder.add_const(
                a, builder.plain(draw(st.sampled_from(PLAIN_POOL)))
            )
            degree[dst] = degree[a]
            depth[dst] = depth[a]
        elif op == "mul_const":
            a = any_reg()
            if draw(st.booleans()):
                const = builder.scalar(draw(st.sampled_from(SCALAR_POOL)))
            else:
                const = builder.plain(draw(st.sampled_from(PLAIN_POOL)))
            dst = builder.mul_const(a, const)
            degree[dst] = degree[a]
            depth[dst] = min(DEPTH_CAP, depth[a] + 1)
        elif op == "mac_const":
            acc, a = any_reg(), any_reg()
            const = builder.scalar(draw(st.sampled_from(SCALAR_POOL)))
            dst = builder.mac_const(acc, a, const)
            degree[dst] = max(degree[acc], degree[a])
            depth[dst] = min(DEPTH_CAP, max(depth[acc], depth[a] + 1))
        elif op in ("mul_relin", "mul"):
            a = draw(st.sampled_from(deg2_shallow))
            b = draw(st.sampled_from(deg2_shallow))
            dst = getattr(builder, op)(a, b)
            degree[dst] = 2 if op == "mul_relin" else 3
            depth[dst] = max(depth[a], depth[b]) + 1
        elif op in ("square_relin", "square"):
            a = draw(st.sampled_from(deg2_shallow))
            dst = getattr(builder, op)(a)
            degree[dst] = 2 if op == "square_relin" else 3
            depth[dst] = depth[a] + 1
        elif op == "relinearize":
            a = draw(st.sampled_from(deg3))
            dst = builder.relinearize(a)
            degree[dst] = 2
            depth[dst] = depth[a]
        elif op == "rotate_rows":
            a = draw(st.sampled_from(deg2))
            dst = builder.rotate_rows(a, draw(st.sampled_from(ROT_STEPS)))
            degree[dst] = 2
            depth[dst] = depth[a]
        else:  # rotate_columns
            a = draw(st.sampled_from(deg2))
            dst = builder.rotate_columns(a)
            degree[dst] = 2
            depth[dst] = depth[a]

    deg2 = sorted(r for r in degree if degree[r] == 2)
    num_outputs = draw(st.integers(min_value=1, max_value=2))
    for i in range(num_outputs):
        builder.output(f"o{i}", draw(st.sampled_from(deg2)))
    return builder.build()


@pytest.fixture(scope="module")
def ctx():
    """One server + session with every Galois key the strategy can use."""
    bfv = Bfv(PARAMS, seed=97)
    keys = bfv.keygen(relin_digit_bits=16)
    rotor = RotationEngine(bfv, keys.secret)
    exponents = sorted(
        {pow(3, k, 2 * PARAMS.n) for k in range(1, PARAMS.n // 2)}
        | {2 * PARAMS.n - 1}
    )
    server = FheServer(pool_size=2, result_cache_size=0)
    sid = server.open_session(
        "prop",
        serialize_params(PARAMS),
        relin_key=serialize_relin_key(keys.relin, PARAMS),
        galois_keys=tuple(
            serialize_galois_key(rotor.galois_key(e), PARAMS)
            for e in exponents
        ),
    )
    inputs = tuple(
        bfv.encrypt(_ENCODER.encode([v + s for s in range(PARAMS.n)]),
                    keys.public)
        for v in (1, 2, 3)
    )
    wires = tuple(serialize_ciphertext(ct) for ct in inputs)
    yield {
        "server": server, "sid": sid, "bfv": bfv, "keys": keys,
        "wires": wires,
    }
    server.close()


def _serve(ctx, circuit, backend, level):
    server = ctx["server"]
    jid = server.submit(
        ctx["sid"], JobKind.CIRCUIT, ctx["wires"][: len(circuit.inputs)],
        payload=circuit, backend=backend, optimizer=level,
    )
    return server.result(jid), server.job_metrics(jid)


def _decoded_outputs(ctx, wire):
    outs = deserialize_circuit_outputs(wire, PARAMS)
    return {
        name: _ENCODER.decode(ctx["bfv"].decrypt(ct, ctx["keys"].secret))
        for name, ct in outs.items()
    }


class TestDifferentialServing:
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit=circuits())
    def test_exact_level_is_byte_identical_on_every_backend(
        self, ctx, circuit
    ):
        """Unoptimized vs exact-optimized serve to the same bytes, and
        the three backends agree — one equivalence class of six wires."""
        wires = set()
        reports = {}
        for backend in BACKENDS:
            for level in ("none", LEVEL_EXACT):
                wire, metrics = _serve(ctx, circuit, backend, level)
                wires.add(wire)
                reports[(backend, level)] = metrics.rewrite
        assert len(wires) == 1
        for (backend, level), rewrite in reports.items():
            assert rewrite is not None and rewrite["level"] == level
            if level == "none":
                assert rewrite["steps_after"] == rewrite["steps_before"]

    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit=circuits())
    def test_lazy_level_is_plaintext_equal_and_cross_backend_identical(
        self, ctx, circuit
    ):
        """Lazy relinearization may legally change the bytes, but every
        backend produces the *same* bytes and the same plaintexts as the
        unoptimized program."""
        baseline, _ = _serve(ctx, circuit, "software", "none")
        lazy_wires = {
            backend: _serve(ctx, circuit, backend, LEVEL_LAZY)[0]
            for backend in BACKENDS
        }
        assert len(set(lazy_wires.values())) == 1
        assert _decoded_outputs(ctx, lazy_wires["software"]) == \
            _decoded_outputs(ctx, baseline)


class TestRewriteReport:
    @settings(max_examples=120, deadline=None)
    @given(circuit=circuits())
    def test_exact_eliminated_counts_reconcile_with_step_delta(
        self, circuit
    ):
        optimized, report = optimize_circuit(circuit, level=LEVEL_EXACT)
        assert report["steps_before"] == len(circuit.steps)
        assert report["steps_after"] == len(optimized.steps)
        assert report["relin_lazy"] == 0
        eliminated = (
            report["constant_fold"] + report["cse"] + report["dce"]
        )
        assert report["steps_before"] - report["steps_after"] == eliminated
        counts = optimized.op_counts()
        assert report["tensor_units"] == counts["ct_ct_mults"]
        assert report["relin_units"] == counts["relins"]
        assert report["rotation_units"] == counts["rotations"]

    @settings(max_examples=120, deadline=None)
    @given(circuit=circuits())
    def test_lazy_never_adds_work_and_reports_its_savings(self, circuit):
        optimized, report = optimize_circuit(circuit, level=LEVEL_LAZY)
        before = circuit.op_counts()
        after = optimized.op_counts()
        assert after["relins"] <= before["relins"]
        assert after["ct_ct_mults"] <= before["ct_ct_mults"]
        assert after["rotations"] <= before["rotations"]
        # The lazify pass only claims key switches that really vanished.
        assert before["relins"] - after["relins"] >= report["relin_lazy"]
        assert report["relin_units"] == after["relins"]

    @settings(max_examples=120, deadline=None)
    @given(
        circuit=circuits(),
        level=st.sampled_from(LEVELS),
    )
    def test_optimize_twice_is_a_fixed_point(self, circuit, level):
        once, _ = optimize_circuit(circuit, level=level)
        twice, report = optimize_circuit(once, level=level)
        assert twice == once
        for pass_name in ("constant_fold", "cse", "dce", "relin_lazy"):
            assert report[pass_name] == 0


class TestServerPlumbing:
    def test_known_redundancies_hit_each_pass_and_the_counter(self):
        """A hand-built wasteful circuit exercises fold + CSE + DCE, the
        rewrite report lands in JobMetrics, and the per-pass elimination
        counter shows up on the metrics wire."""
        bfv = Bfv(PARAMS, seed=5)
        keys = bfv.keygen(relin_digit_bits=16)
        builder = CircuitBuilder("wasteful")
        x = builder.input("x")
        one = builder.mul_const(x, builder.scalar(1))  # folds to x
        twice_a = builder.add(x, one)
        twice_b = builder.add(one, x)  # CSE (commutative canonicalization)
        builder.square_relin(twice_b)  # dead: never reaches an output
        builder.output("y", twice_a)
        circuit = builder.build()

        with FheServer(pool_size=2, result_cache_size=0) as server:
            sid = server.open_session(
                "t", serialize_params(PARAMS),
                relin_key=serialize_relin_key(keys.relin, PARAMS),
            )
            ct = bfv.encrypt(_ENCODER.encode([3] * PARAMS.n), keys.public)
            jid = server.submit(
                sid, JobKind.CIRCUIT, (serialize_ciphertext(ct),),
                payload=circuit,
            )
            wire = server.result(jid)
            rewrite = server.job_metrics(jid).rewrite
            assert rewrite["constant_fold"] >= 1
            assert rewrite["cse"] >= 1
            assert rewrite["dce"] >= 1
            assert rewrite["steps_after"] < rewrite["steps_before"]
            rendered = server.metrics.render()
            assert "repro_circuit_steps_eliminated_total" in rendered
            outs = deserialize_circuit_outputs(wire, PARAMS)
            decoded = _ENCODER.decode(bfv.decrypt(outs["y"], keys.secret))
            assert decoded == [6] * PARAMS.n
