"""Property-based tests for modular arithmetic (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polymath.modmath import (
    BarrettReducer,
    MontgomeryReducer,
    modadd,
    modinv,
    modsub,
)

# Odd moduli from 3 up to 128-bit (the chip's native width).
moduli = st.integers(min_value=3, max_value=(1 << 128) - 1).map(
    lambda x: x | 1
)


@given(q=moduli, data=st.data())
@settings(max_examples=200)
def test_barrett_reduce_equals_mod(q, data):
    x = data.draw(st.integers(min_value=0, max_value=q * q - 1))
    assert BarrettReducer(q).reduce(x) == x % q


@given(q=moduli, data=st.data())
@settings(max_examples=150)
def test_barrett_and_montgomery_agree(q, data):
    a = data.draw(st.integers(min_value=0, max_value=q - 1))
    b = data.draw(st.integers(min_value=0, max_value=q - 1))
    assert BarrettReducer(q).mulmod(a, b) == MontgomeryReducer(q).mulmod_plain(a, b)


@given(q=moduli, data=st.data())
@settings(max_examples=150)
def test_montgomery_domain_roundtrip(q, data):
    a = data.draw(st.integers(min_value=0, max_value=q - 1))
    mont = MontgomeryReducer(q)
    assert mont.from_montgomery(mont.to_montgomery(a)) == a


@given(q=st.integers(min_value=2, max_value=1 << 64), data=st.data())
@settings(max_examples=200)
def test_modadd_modsub_inverse(q, data):
    a = data.draw(st.integers(min_value=0, max_value=q - 1))
    b = data.draw(st.integers(min_value=0, max_value=q - 1))
    assert modsub(modadd(a, b, q), b, q) == a
    assert modadd(modsub(a, b, q), b, q) == a


@given(data=st.data())
@settings(max_examples=100)
def test_modinv_property(data):
    # Prime moduli guarantee invertibility of every nonzero element.
    from repro.polymath.primes import ntt_friendly_prime

    q = ntt_friendly_prime(16, data.draw(st.integers(min_value=10, max_value=60)))
    a = data.draw(st.integers(min_value=1, max_value=q - 1))
    assert a * modinv(a, q) % q == 1
