"""Property suite: the batched RNS tower engine is bit-identical to
:class:`NttContext` across random (n, basis, tower-count) grids.

The engine's lazy (Shoup) kernels keep values in ``[0, 4q)`` between
butterfly stages, so the strategies deliberately bias coefficients toward
the reduction boundaries (0, 1, q-2, q-1) where an off-by-one in the
conditional subtraction would surface. Single-tower degenerate stacks and
the 31-bit plain-kernel path are part of the grid.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polymath.engine import (
    MAX_MODULUS_BITS,
    SHOUP_LAZY_MAX_BITS,
    BatchedRnsEngine,
    supports,
)
from repro.polymath.ntt import NttContext
from repro.polymath.rns import RnsBasis, plan_towers

#: (n, tower_bits, tower_count) grid; bits = 31 exercises the plain
#: kernel, everything else the Shoup-lazy kernel; towers = 1 is the
#: degenerate single-tower stack.
_GRID = [
    (8, 14, 1),
    (8, 20, 3),
    (16, 30, 2),
    (16, 31, 2),
    (32, 24, 4),
    (64, 31, 1),
    (64, 30, 3),
]

_ENGINES: dict[tuple[int, int, int], BatchedRnsEngine] = {}
_REFS: dict[tuple[int, int, int], list[NttContext]] = {}
for case in _GRID:
    n, bits, towers = case
    basis = RnsBasis(plan_towers(bits * towers, bits, n))
    _ENGINES[case] = BatchedRnsEngine(basis, n)
    _REFS[case] = [NttContext(n, q) for q in basis.moduli]

cases = st.sampled_from(_GRID)


def _tower(draw, n, q):
    """Coefficients biased toward the lazy-reduction edges near 0 and q."""
    edge = st.sampled_from([0, 1, q - 2, q - 1])
    return draw(
        st.lists(
            st.one_of(st.integers(min_value=0, max_value=q - 1), edge),
            min_size=n, max_size=n,
        )
    )


def _stack(draw, engine):
    return [_tower(draw, engine.n, q) for q in engine.basis.moduli]


@given(case=cases, data=st.data())
@settings(max_examples=60, deadline=None)
def test_forward_bit_identical_to_nttcontext(case, data):
    engine, refs = _ENGINES[case], _REFS[case]
    towers = _stack(data.draw, engine)
    out = engine.forward(engine.stack(towers))
    for row, ref, tower in zip(out, refs, towers):
        assert row.tolist() == ref.forward(tower)


@given(case=cases, data=st.data())
@settings(max_examples=60, deadline=None)
def test_inverse_bit_identical_to_nttcontext(case, data):
    engine, refs = _ENGINES[case], _REFS[case]
    towers = _stack(data.draw, engine)
    out = engine.inverse(engine.stack(towers))
    for row, ref, tower in zip(out, refs, towers):
        assert row.tolist() == ref.inverse(tower)


@given(case=cases, data=st.data())
@settings(max_examples=40, deadline=None)
def test_roundtrip_and_negacyclic_multiply(case, data):
    engine, refs = _ENGINES[case], _REFS[case]
    a = engine.stack(_stack(data.draw, engine))
    b = engine.stack(_stack(data.draw, engine))
    assert engine.inverse(engine.forward(a)).tolist() == a.tolist()
    prod = engine.negacyclic_multiply(a, b)
    for row, ref, ta, tb in zip(prod, refs, a.tolist(), b.tolist()):
        assert row.tolist() == ref.negacyclic_multiply(ta, tb)


@given(case=cases, data=st.data())
@settings(max_examples=30, deadline=None)
def test_crt_reconstruct_matches_rnsbasis(case, data):
    engine = _ENGINES[case]
    towers = _stack(data.draw, engine)
    stack = engine.stack(towers)
    assert engine.reconstruct(stack) == engine.basis.reconstruct_poly(towers)
    # decompose is the inverse direction
    value = engine.basis.reconstruct_poly(towers)
    assert engine.decompose(value).tolist() == stack.tolist()


@given(case=cases, data=st.data())
@settings(max_examples=20, deadline=None)
def test_select_view_matches_full_engine(case, data):
    """A sub-view (shared precomputation) equals per-tower reference."""
    engine, refs = _ENGINES[case], _REFS[case]
    i = data.draw(st.integers(min_value=0, max_value=engine.num_towers - 1))
    view = engine.select([i])
    tower = _tower(data.draw, engine.n, engine.basis.moduli[i])
    out = view.forward(view.stack([tower]))
    assert out[0].tolist() == refs[i].forward(tower)


def test_all_max_coefficients_through_both_kernels():
    """The all-(q-1) stack is the worst case for lazy accumulation."""
    for case in _GRID:
        engine, refs = _ENGINES[case], _REFS[case]
        towers = [[q - 1] * engine.n for q in engine.basis.moduli]
        fwd = engine.forward(engine.stack(towers))
        for row, ref, tower in zip(fwd, refs, towers):
            assert row.tolist() == ref.forward(tower)
        inv = engine.inverse(fwd)
        for row, ref, f in zip(inv, refs, fwd.tolist()):
            assert row.tolist() == ref.inverse(f)


def test_kernel_selection_is_width_driven():
    lazy = [c for c in _GRID if c[1] <= SHOUP_LAZY_MAX_BITS]
    plain = [c for c in _GRID if c[1] > SHOUP_LAZY_MAX_BITS]
    assert lazy and plain, "grid must cover both kernels"
    for case in lazy:
        assert _ENGINES[case].lazy
    for case in plain:
        assert not _ENGINES[case].lazy
        assert case[1] <= MAX_MODULUS_BITS


def test_supports_rejects_wide_and_non_friendly():
    from repro.polymath.primes import ntt_friendly_prime

    assert supports(RnsBasis([ntt_friendly_prime(16, 20)]), 16)
    # 40-bit tower: exact but not engine-qualifying
    assert not supports(RnsBasis([ntt_friendly_prime(16, 40)]), 16)
    # prime but q != 1 mod 2n: no negacyclic NTT at this degree
    assert not supports(RnsBasis([999983]), 16)
