"""Property tests: fleet serving invariants under random fault schedules.

Hypothesis drives the worker fleet with random job mixes (multiplies,
adds, rotations-by-steps) under random fault plans — kills, corrupted
replies, and skipped heartbeats at arbitrary counts on arbitrary
workers — and asserts the contract the chaos battery spot-checks:

* every job the front door accepted either completes **bit-identical**
  to locally computed :class:`~repro.bfv.Bfv` ground truth, or fails
  *cleanly* (a diagnosable error message, never a hang or a crash);
* no job is lost: submitted == completed + failed, every time;
* no result is delivered twice: the orchestrator's stale-result guard
  means a settled job never changes its payload afterwards.

Thread-mode workers run the identical serve loop as spawned processes
(same wire codec, same fault hooks), so these examples explore the real
recovery machinery hundreds of times faster than process spawns would.
The fault-spec grammar round-trip is fuzzed separately below.
"""

from __future__ import annotations

import random
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.service.errors import QuotaExceededError
from repro.service.fleet import FaultPlan, FaultRule
from repro.service.jobs import JobKind, JobStatus
from repro.service.serialization import (
    deserialize_ciphertext,
    serialize_ciphertext,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer, TenantQuota

PARAMS = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)
_BFV = Bfv(PARAMS, seed=0xC0F4EE)
_KEYS = _BFV.keygen(relin_digit_bits=14)
_ENCODER = BatchEncoder(PARAMS)

FLEET_SIZE = 2

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

fault_rules = st.builds(
    FaultRule,
    action=st.sampled_from(("kill", "corrupt", "delay_heartbeat", "stall")),
    worker=st.integers(0, FLEET_SIZE - 1),
    job=st.integers(1, 3),
    beats=st.integers(1, 4),
)

#: At most one kill per worker keeps examples fast (each kill costs a
#: respawn); corrupt/delay faults stack freely. Stall is excluded here:
#: a stalled reply hangs by design until a deadline reaps it, so stall
#: plans live in the overload property below where every job carries a
#: deadline budget.
fault_plans = st.lists(
    fault_rules.filter(lambda r: r.action != "stall"), max_size=3
).filter(
    lambda rules: all(
        sum(1 for r in rules if r.action == "kill" and r.worker == w) <= 1
        for w in range(FLEET_SIZE)
    )
)

#: Fault plans for deadline-carrying traffic — stall included.
overload_fault_plans = st.lists(fault_rules, max_size=2).filter(
    lambda rules: all(
        sum(1 for r in rules if r.action == "kill" and r.worker == w) <= 1
        for w in range(FLEET_SIZE)
    )
)

job_kinds = st.sampled_from((JobKind.MULTIPLY, JobKind.ADD))
job_mixes = st.lists(
    st.tuples(job_kinds, st.integers(0, 2**32 - 1)), min_size=1, max_size=5
)


def _fresh(rng: random.Random):
    return _BFV.encrypt(
        _ENCODER.encode([rng.randrange(16) for _ in range(PARAMS.n)]),
        _KEYS.public,
    )


def _ground_truth(kind: JobKind, a, b):
    if kind is JobKind.MULTIPLY:
        return _BFV.multiply_relin(a, b, _KEYS.relin)
    return _BFV.add(a, b)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


class TestFleetUnderRandomFaults:
    @settings(max_examples=10, deadline=None)
    @given(plan=fault_plans, mix=job_mixes)
    def test_accepted_jobs_bit_identical_or_clean_failure(self, plan, mix):
        spec = ";".join(rule.render() for rule in plan)
        server = FheServer(
            fleet_size=FLEET_SIZE, fleet_mode="thread",
            default_backend="fleet", fault_spec=spec,
            fleet_options={"heartbeat_interval": 0.05,
                           "heartbeat_timeout": 2.0},
        )
        with server:
            sid = server.open_session(
                "prop", serialize_params(PARAMS),
                relin_key=serialize_relin_key(_KEYS.relin, PARAMS),
            )
            checks = []
            for kind, seed in mix:
                rng = random.Random(seed)
                a, b = _fresh(rng), _fresh(rng)
                jid = server.submit(sid, kind, (
                    serialize_ciphertext(a), serialize_ciphertext(b),
                ))
                checks.append((jid, _ground_truth(kind, a, b)))
            server.run()
            first_payloads = {}
            for jid, expected in checks:
                error = server.job_error(jid)
                if error is not None:
                    # Clean failure: a real diagnosis, not an exception
                    # repr or an empty string.
                    assert error.strip(), f"job {jid} failed without a cause"
                    continue
                wire = server.result(jid)
                first_payloads[jid] = wire
                got = deserialize_ciphertext(wire, PARAMS)
                assert _BFV.decrypt(got, _KEYS.secret) == _BFV.decrypt(
                    expected, _KEYS.secret
                ), f"job {jid} diverged from Bfv ground truth under {spec!r}"
            # No job lost: everything submitted settled exactly one way.
            stats = server.scheduler.stats
            assert stats.jobs_completed + stats.jobs_failed == len(checks)
            # No double delivery: a settled payload never changes, even
            # if a stale duplicate arrived after the requeue.
            server.run()
            for jid, payload in first_payloads.items():
                assert server.result(jid) == payload
            rep = server.fleet_report()
        assert rep["in_flight"] == 0, rep


class TestOverloadUnderRandomFaults:
    @settings(max_examples=6, deadline=None)
    @given(
        plan=overload_fault_plans,
        mix=job_mixes,
        max_inflight=st.sampled_from((0, 1, 2)),
        spill=st.sampled_from((0, 1)),
    )
    def test_quota_deadline_fault_mix_conserves_jobs(
        self, plan, mix, max_inflight, spill
    ):
        """Random fault schedules (stall included) crossed with random
        quota and spill-over configs, every job on a deadline budget:
        over-quota submits reject with the typed retryable error and
        admit after completions; every accepted job either lands
        bit-identical or fails cleanly (a lapsed deadline says so);
        nothing is lost or delivered twice."""
        spec = ";".join(rule.render() for rule in plan)
        quotas = (
            {"prop": TenantQuota(max_inflight=max_inflight)}
            if max_inflight else None
        )
        server = FheServer(
            fleet_size=FLEET_SIZE, fleet_mode="thread",
            default_backend="fleet", fault_spec=spec, quotas=quotas,
            fleet_options={"heartbeat_interval": 0.05,
                           "heartbeat_timeout": 5.0,
                           "spill_threshold": spill},
        )
        with server:
            sid = server.open_session(
                "prop", serialize_params(PARAMS),
                relin_key=serialize_relin_key(_KEYS.relin, PARAMS),
            )
            checks = []
            for kind, seed in mix:
                rng = random.Random(seed)
                a, b = _fresh(rng), _fresh(rng)
                wire = (serialize_ciphertext(a), serialize_ciphertext(b))
                for _ in range(200):  # admission retry, in-process
                    try:
                        jid = server.submit(sid, kind, wire, deadline=1.0)
                        break
                    except QuotaExceededError as exc:
                        assert exc.retryable and exc.code == "quota"
                        server.tick()
                        time.sleep(0.01)
                else:
                    raise AssertionError("quota never released a slot")
                checks.append((jid, _ground_truth(kind, a, b)))
            wall = time.monotonic() + 30
            while (any(not server.status(j).value in ("done", "failed")
                       for j, _ in checks)
                   and time.monotonic() < wall):
                server.tick()
                time.sleep(0.01)
            first_payloads = {}
            for jid, expected in checks:
                status = server.status(jid)
                assert status in (JobStatus.DONE, JobStatus.FAILED), (
                    f"job {jid} never settled under {spec!r}"
                )
                if status is JobStatus.FAILED:
                    error = server.job_error(jid)
                    assert error and error.strip(), (
                        f"job {jid} failed without a cause"
                    )
                    continue
                wire = server.result(jid)
                first_payloads[jid] = wire
                got = deserialize_ciphertext(wire, PARAMS)
                assert _BFV.decrypt(got, _KEYS.secret) == _BFV.decrypt(
                    expected, _KEYS.secret
                ), f"job {jid} diverged from Bfv ground truth under {spec!r}"
            stats = server.scheduler.stats
            assert stats.jobs_completed + stats.jobs_failed == len(checks)
            server.tick()
            for jid, payload in first_payloads.items():
                assert server.result(jid) == payload
            rep = server.fleet_report()
        assert rep["in_flight"] == 0, rep


class TestFaultSpecGrammar:
    @settings(max_examples=50, deadline=None)
    @given(plan=st.lists(fault_rules, max_size=4))
    def test_render_parse_round_trip(self, plan):
        spec = ";".join(rule.render() for rule in plan)
        parsed = FaultPlan.parse(spec)
        assert parsed.render() == FaultPlan.parse(parsed.render()).render()
        for worker in range(FLEET_SIZE):
            faults = parsed.for_worker(worker)
            mine = [r for r in plan if r.worker == worker]
            kills = sum(
                1 for r in mine if r.action in ("kill", "corrupt", "stall")
            )
            # Drawing results one past every armed count must exhaust
            # the plan: afterwards the worker behaves cleanly forever.
            for _ in range(sum(r.job for r in mine) + kills + 1):
                faults.on_result()
            assert faults.on_result() == ""
