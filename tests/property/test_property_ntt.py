"""Property-based tests for the NTT: the invariants the chip relies on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polymath.ntt import NttContext, reference_negacyclic_multiply
from repro.polymath.primes import ntt_friendly_prime

_CONTEXTS = {n: NttContext(n, ntt_friendly_prime(n, 40)) for n in (8, 16, 32, 64)}
degrees = st.sampled_from(sorted(_CONTEXTS))


def _poly(draw, n, q):
    return draw(
        st.lists(st.integers(min_value=0, max_value=q - 1),
                 min_size=n, max_size=n)
    )


@given(n=degrees, data=st.data())
@settings(max_examples=150)
def test_forward_inverse_identity(n, data):
    ctx = _CONTEXTS[n]
    a = _poly(data.draw, n, ctx.q)
    assert ctx.inverse(ctx.forward(a)) == a


@given(n=degrees, data=st.data())
@settings(max_examples=100)
def test_convolution_theorem(n, data):
    """forward(a (*) b) == forward(a) . forward(b) pointwise."""
    ctx = _CONTEXTS[n]
    q = ctx.q
    a = _poly(data.draw, n, q)
    b = _poly(data.draw, n, q)
    conv = reference_negacyclic_multiply(a, b, q)
    lhs = ctx.forward(conv)
    rhs = [x * y % q for x, y in zip(ctx.forward(a), ctx.forward(b))]
    assert lhs == rhs


@given(n=degrees, data=st.data())
@settings(max_examples=100)
def test_linearity_with_scalars(n, data):
    ctx = _CONTEXTS[n]
    q = ctx.q
    a = _poly(data.draw, n, q)
    c = data.draw(st.integers(min_value=0, max_value=q - 1))
    scaled = ctx.forward([x * c % q for x in a])
    assert scaled == [x * c % q for x in ctx.forward(a)]


@given(n=degrees, data=st.data())
@settings(max_examples=75)
def test_multiplication_commutative_and_associative(n, data):
    ctx = _CONTEXTS[n]
    q = ctx.q
    a = _poly(data.draw, n, q)
    b = _poly(data.draw, n, q)
    c = _poly(data.draw, n, q)
    ab = ctx.negacyclic_multiply(a, b)
    assert ab == ctx.negacyclic_multiply(b, a)
    abc1 = ctx.negacyclic_multiply(ab, c)
    abc2 = ctx.negacyclic_multiply(a, ctx.negacyclic_multiply(b, c))
    assert abc1 == abc2


@given(n=degrees, data=st.data())
@settings(max_examples=75)
def test_parseval_like_energy(n, data):
    """sum a_i * b_i' is preserved up to the n factor — checked via the
    inverse transform of the pointwise product of forward transforms."""
    ctx = _CONTEXTS[n]
    q = ctx.q
    a = _poly(data.draw, n, q)
    # multiplying by the constant polynomial 1 must be the identity
    one = [1] + [0] * (n - 1)
    assert ctx.negacyclic_multiply(a, one) == a
