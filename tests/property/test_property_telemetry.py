"""Property battery for the metrics registry's histogram math.

Fixed-bucket histograms answer p50/p95/p99 without storing samples, so
their correctness is all invariants: bucket counts must partition the
samples exactly as the ``le`` (inclusive upper bound) semantics say,
the Prometheus text rendering must carry cumulative counts, and the
interpolated quantile estimate must always land inside the bucket that
actually contains the true sample quantile — never outside it.
"""

from __future__ import annotations

import bisect
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.telemetry import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)

#: Strictly ascending finite bucket-bound sets.
bounds_sets = st.lists(
    st.floats(0.001, 100.0, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8, unique=True,
).map(lambda bs: tuple(sorted(bs)))

#: Sample batches spanning below, inside, and beyond typical bounds.
samples_lists = st.lists(
    st.floats(0.0, 200.0, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60,
)


def _true_bucket(bounds, value):
    """Index of the bucket holding ``value`` (len(bounds) = +inf tail)."""
    return bisect.bisect_left(bounds, value)


class TestBucketCounts:
    @given(bounds=bounds_sets, samples=samples_lists)
    @settings(max_examples=120, deadline=None)
    def test_counts_partition_samples(self, bounds, samples):
        hist = Histogram("h", buckets=bounds)
        for value in samples:
            hist.observe(value)
        # Reference: bucket i holds bounds[i-1] < v <= bounds[i].
        expected = [0] * (len(bounds) + 1)
        for value in samples:
            expected[_true_bucket(bounds, value)] += 1
        assert hist.counts == expected
        assert hist.count == len(samples)
        assert hist.total == pytest.approx(sum(samples))

    @given(bounds=bounds_sets, samples=samples_lists)
    @settings(max_examples=60, deadline=None)
    def test_render_is_cumulative(self, bounds, samples):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_seconds", buckets=bounds)
        for value in samples:
            hist.observe(value)
        text = registry.render()
        for bound in bounds:
            le = (str(int(bound)) if bound == int(bound) else repr(bound))
            line = next(
                l for l in text.splitlines()
                if l.startswith(f'repro_test_seconds_bucket{{le="{le}"}}')
            )
            cumulative = int(line.rsplit(" ", 1)[1])
            assert cumulative == sum(1 for v in samples if v <= bound)
        assert f'_bucket{{le="+Inf"}} {len(samples)}' in text
        assert f"repro_test_seconds_count {len(samples)}" in text


class TestQuantiles:
    @given(samples=samples_lists, q=st.floats(0.0, 1.0))
    @settings(max_examples=150, deadline=None)
    def test_estimate_stays_in_true_quantile_bucket(self, samples, q):
        bounds = tuple(float(b) for b in DEFAULT_BUCKETS)
        hist = Histogram("h", buckets=bounds)
        for value in samples:
            hist.observe(value)
        estimate = hist.quantile(q)
        # The sample the q-rank actually selects...
        rank = q * len(samples)
        index = max(math.ceil(rank) - 1, 0)
        true_value = sorted(samples)[index]
        bucket = _true_bucket(bounds, true_value)
        # ...pins the bucket the estimate must not leave.
        if bucket >= len(bounds):
            assert estimate == bounds[-1]  # +inf tail: finite edge
        else:
            lower = bounds[bucket - 1] if bucket else 0.0
            assert lower <= estimate <= bounds[bucket]

    @given(samples=samples_lists, qs=st.tuples(
        st.floats(0.0, 1.0), st.floats(0.0, 1.0)
    ))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_q(self, samples, qs):
        hist = Histogram("h")
        for value in samples:
            hist.observe(value)
        lo, hi = sorted(qs)
        assert hist.quantile(lo) <= hist.quantile(hi)

    def test_empty_histogram_is_nan(self):
        hist = Histogram("h")
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.mean)
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestRegistrySemantics:
    @given(increments=st.lists(st.integers(0, 50), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_same_labels_same_child(self, increments):
        registry = MetricsRegistry()
        for amount in increments:
            registry.counter("repro_jobs_total", tenant="acme").inc(amount)
        child = registry.counter("repro_jobs_total", tenant="acme")
        assert child.value == sum(increments)
        other = registry.counter("repro_jobs_total", tenant="zeta")
        assert other is not child and other.value == 0

    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ValueError):
            registry.gauge("repro_thing")
        with pytest.raises(ValueError):
            registry.histogram("repro_thing")
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_snapshot_summarizes_histograms(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            hist.observe(value)
        registry.gauge("repro_depth").set(3)
        snap = registry.snapshot()
        summary = snap["repro_lat_seconds"][""]
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(3.05)
        assert 0.1 <= summary["p50"] <= 1.0
        assert snap["repro_depth"][""] == 3.0
