"""Property-based tests: scheduler invariants over random valid programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CapacityError
from repro.core.scheduler import Op, OpKind, Scheduler
from repro.core.timing import TimingModel

_COMPUTE_KINDS = (OpKind.NTT, OpKind.INTT, OpKind.HADAMARD, OpKind.ADD,
                  OpKind.SUB, OpKind.SCALAR_MUL)


@st.composite
def programs(draw):
    """Random well-formed op lists: every input references a prior output."""
    length = draw(st.integers(min_value=2, max_value=20))
    ops: list[Op] = [Op(OpKind.LOAD, "v0")]
    names = ["v0"]
    for i in range(1, length):
        kind = draw(st.sampled_from(_COMPUTE_KINDS + (OpKind.LOAD,)))
        out = f"v{i}"
        if kind is OpKind.LOAD:
            ops.append(Op(OpKind.LOAD, out))
        else:
            arity = 2 if kind in (OpKind.HADAMARD, OpKind.ADD, OpKind.SUB) else 1
            inputs = tuple(
                draw(st.sampled_from(names)) for _ in range(arity)
            )
            ops.append(Op(kind, out, inputs))
        names.append(out)
    ops.append(Op(OpKind.STORE, "out", (names[-1],)))
    return ops


@given(ops=programs())
@settings(max_examples=100, deadline=None)
def test_compute_cycles_equal_sum_of_op_costs(ops):
    """Buffer allocation never changes compute cost."""
    tm = TimingModel()
    expected = 0
    for op in ops:
        if op.kind is OpKind.NTT:
            expected += tm.ntt_cycles(64)
        elif op.kind is OpKind.INTT:
            expected += tm.intt_cycles(64)
        elif op.kind in (OpKind.HADAMARD, OpKind.ADD, OpKind.SUB,
                         OpKind.SCALAR_MUL):
            expected += tm.pointwise_cycles(64)
    try:
        sched = Scheduler(n=64, num_buffers=8).compile(ops)
    except CapacityError:
        return  # some random programs legitimately exceed 8 buffers
    assert sched.compute_cycles == expected


@given(ops=programs())
@settings(max_examples=100, deadline=None)
def test_peak_buffers_monotone_in_capacity(ops):
    """If a program fits k buffers it fits k+1, with the same peak."""
    try:
        small = Scheduler(n=64, num_buffers=6).compile(ops)
    except CapacityError:
        return
    large = Scheduler(n=64, num_buffers=7).compile(ops)
    assert large.peak_buffers <= small.peak_buffers + 0
    assert small.peak_buffers <= 6


@given(ops=programs())
@settings(max_examples=100, deadline=None)
def test_prefetch_never_increases_total(ops):
    try:
        with_pf = Scheduler(n=64, num_buffers=8, prefetch=True).compile(ops)
        without = Scheduler(n=64, num_buffers=8, prefetch=False).compile(ops)
    except CapacityError:
        return
    assert with_pf.total_cycles <= without.total_cycles
    assert with_pf.compute_cycles == without.compute_cycles


@given(ops=programs())
@settings(max_examples=100, deadline=None)
def test_no_two_live_values_share_a_buffer(ops):
    """Soundness: at every step, bound values map to distinct buffers."""
    try:
        sched = Scheduler(n=64, num_buffers=8).compile(ops)
    except CapacityError:
        return
    for step in sched.ops:
        buffers = list(step.buffers.values())
        # the output may legally share with a dying input (in-place);
        # all *other* bindings must be distinct
        others = {name: b for name, b in step.buffers.items()
                  if name != step.op.output}
        assert len(set(others.values())) == len(others)
