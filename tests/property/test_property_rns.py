"""Property-based tests: RNS decomposition is a ring isomorphism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polymath.rns import RnsBasis

_PRIMES = (97, 101, 103, 107, 109, 113, 127, 131)


@st.composite
def bases(draw):
    count = draw(st.integers(min_value=1, max_value=5))
    moduli = draw(
        st.lists(st.sampled_from(_PRIMES), min_size=count, max_size=count,
                 unique=True)
    )
    return RnsBasis(moduli)


@given(basis=bases(), data=st.data())
@settings(max_examples=200)
def test_roundtrip(basis, data):
    v = data.draw(st.integers(min_value=0, max_value=basis.modulus - 1))
    assert basis.reconstruct(basis.decompose(v)) == v


@given(basis=bases(), data=st.data())
@settings(max_examples=150)
def test_addition_homomorphism(basis, data):
    a = data.draw(st.integers(min_value=0, max_value=basis.modulus - 1))
    b = data.draw(st.integers(min_value=0, max_value=basis.modulus - 1))
    summed = [
        (x + y) % m
        for x, y, m in zip(basis.decompose(a), basis.decompose(b), basis.moduli)
    ]
    assert basis.reconstruct(summed) == (a + b) % basis.modulus


@given(basis=bases(), data=st.data())
@settings(max_examples=150)
def test_multiplication_homomorphism(basis, data):
    a = data.draw(st.integers(min_value=0, max_value=basis.modulus - 1))
    b = data.draw(st.integers(min_value=0, max_value=basis.modulus - 1))
    prod = [
        (x * y) % m
        for x, y, m in zip(basis.decompose(a), basis.decompose(b), basis.moduli)
    ]
    assert basis.reconstruct(prod) == (a * b) % basis.modulus


@given(basis=bases(), data=st.data())
@settings(max_examples=100)
def test_centered_reconstruct_range(basis, data):
    v = data.draw(st.integers(min_value=0, max_value=basis.modulus - 1))
    centered = basis.centered_reconstruct(basis.decompose(v))
    assert -basis.modulus // 2 <= centered <= basis.modulus // 2
    assert centered % basis.modulus == v
