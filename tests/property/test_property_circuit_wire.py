"""Property tests: the circuit wire encoding round-trips and rejects junk.

Random well-formed circuits must ``deserialize(serialize(c)) == c`` with
deterministic bytes (the server content-addresses circuits by their
encoding), and every class of malformed input — bit flips, truncation,
unknown op codes or constant kinds, out-of-range register/constant
references, wrong circuit versions, trailing bytes — must be rejected
with :class:`WireFormatError` before any polynomial math happens.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.circuits import (
    CIRCUIT_VERSION,
    CONST_PLAIN,
    CONST_SCALAR,
    Circuit,
    CircuitBuilder,
    CircuitConst,
    CircuitError,
    CircuitStep,
    OP_ADD,
    OP_ADD_CONST,
    OP_MAC_CONST,
    OP_MUL_CONST,
    OP_MUL,
    OP_MUL_RELIN,
    OP_RELINEARIZE,
    OP_ROTATE_COLUMNS,
    OP_ROTATE_ROWS,
    OP_SPECS,
    OP_SQUARE,
    OP_SQUARE_RELIN,
    OP_SUB,
)
from repro.service.serialization import (
    MAGIC,
    TAG_CIRCUIT,
    WIRE_VERSION,
    WireFormatError,
    deserialize_circuit,
    serialize_circuit,
)

# ----------------------------------------------------------------------
# Random well-formed circuits
# ----------------------------------------------------------------------


@st.composite
def circuits(draw) -> Circuit:
    n_inputs = draw(st.integers(1, 4))
    inputs = tuple(f"in{i}" for i in range(n_inputs))
    consts = []
    for i in range(draw(st.integers(0, 3))):
        if draw(st.booleans()):
            consts.append(CircuitConst(
                kind=CONST_SCALAR,
                scalar=draw(st.integers(-(2**63), 2**63 - 1)),
            ))
        else:
            coeffs = tuple(draw(st.lists(
                st.integers(0, 2**64), min_size=1, max_size=8
            )))
            consts.append(CircuitConst(kind=CONST_PLAIN, coeffs=coeffs))
    plain_idx = [i for i, c in enumerate(consts) if c.kind == CONST_PLAIN]
    steps = []
    defined = n_inputs
    for _ in range(draw(st.integers(1, 10))):
        ops = [OP_ADD, OP_SUB, OP_MUL_RELIN, OP_SQUARE_RELIN]
        if consts:
            ops += [OP_MUL_CONST, OP_MAC_CONST]
        if plain_idx:
            ops.append(OP_ADD_CONST)
        op = draw(st.sampled_from(ops))
        reg = lambda: draw(st.integers(0, defined - 1))  # noqa: E731
        if op == OP_ADD_CONST:
            args = (reg(), draw(st.sampled_from(plain_idx)))
        elif op in (OP_MUL_CONST,):
            args = (reg(), draw(st.integers(0, len(consts) - 1)))
        elif op == OP_MAC_CONST:
            args = (reg(), reg(), draw(st.integers(0, len(consts) - 1)))
        elif op == OP_SQUARE_RELIN:
            args = (reg(),)
        else:
            args = (reg(), reg())
        steps.append(CircuitStep(op=op, args=args))
        defined += 1
    n_outputs = draw(st.integers(1, 3))
    outputs = tuple(
        (f"out{i}", draw(st.integers(0, defined - 1)))
        for i in range(n_outputs)
    )
    return Circuit(
        name=draw(st.sampled_from(["c", "logreg", "cryptonets-mini"])),
        inputs=inputs, consts=tuple(consts), steps=tuple(steps),
        outputs=outputs,
    )


class TestRoundTrip:
    @given(circuit=circuits())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_identity(self, circuit):
        wire = serialize_circuit(circuit)
        recovered = deserialize_circuit(wire)
        assert recovered == circuit
        # Determinism: the encoding doubles as the content address.
        assert serialize_circuit(recovered) == wire

    def test_app_circuits_round_trip(self):
        """The real compiled applications survive the wire."""
        from repro.apps.cryptonets import MiniCryptoNets
        from repro.apps.logreg import MiniLogisticRegression

        for circuit in (
            MiniLogisticRegression(num_features=3, seed=1).to_circuit(batch=2),
            MiniCryptoNets(seed=2).to_circuit(),
        ):
            assert deserialize_circuit(serialize_circuit(circuit)) == circuit


# ----------------------------------------------------------------------
# Malformed input rejection
# ----------------------------------------------------------------------


def _frame_circuit_body(body: bytes) -> bytes:
    """Wrap a hand-built circuit body in a valid envelope (CRC included),
    so the tests reach the *structural* validation behind the checksum."""
    head = MAGIC + bytes((WIRE_VERSION, TAG_CIRCUIT)) + body
    return head + zlib.crc32(head).to_bytes(4, "big")


def _u16(v):
    return v.to_bytes(2, "big")


def _body(version=CIRCUIT_VERSION, name=b"\x00\x01c",
          inputs=(b"\x00\x01a",), consts=b"\x00\x00",
          steps=((OP_SQUARE_RELIN, (0,)),), outputs=(("o", 0),)) -> bytes:
    parts = [bytes((version,)), name, _u16(len(inputs))]
    parts.extend(inputs)
    parts.append(consts)
    parts.append(_u16(len(steps)))
    for op, args in steps:
        parts.append(bytes((op,)))
        parts.extend(_u16(a) for a in args)
    parts.append(_u16(len(outputs)))
    for oname, reg in outputs:
        raw = oname.encode()
        parts.append(_u16(len(raw)) + raw + _u16(reg))
    return b"".join(parts)


@pytest.fixture(scope="module")
def valid_wire():
    builder = CircuitBuilder("fuzz")
    x = builder.input("x")
    y = builder.mul_relin(builder.square_relin(x), x)
    builder.output("y", y)
    return serialize_circuit(builder.build())


class TestRejection:
    @given(position=st.integers(0, 10_000), flip=st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_bit_flips_rejected(self, valid_wire, position, flip):
        corrupted = bytearray(valid_wire)
        corrupted[position % len(corrupted)] ^= flip
        with pytest.raises(WireFormatError):
            deserialize_circuit(bytes(corrupted))

    @given(cut=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_truncation_rejected(self, valid_wire, cut):
        truncated = valid_wire[: cut % len(valid_wire)]
        with pytest.raises(WireFormatError):
            deserialize_circuit(truncated)

    def test_trailing_bytes_rejected(self, valid_wire):
        with pytest.raises(WireFormatError):
            deserialize_circuit(valid_wire + b"\x00")

    def test_unknown_op_code_rejected(self):
        wire = _frame_circuit_body(_body(steps=((0x7F, (0,)),)))
        with pytest.raises(WireFormatError, match="unknown circuit op"):
            deserialize_circuit(wire)

    def test_unknown_circuit_version_rejected(self):
        wire = _frame_circuit_body(_body(version=CIRCUIT_VERSION + 1))
        with pytest.raises(WireFormatError, match="circuit encoding version"):
            deserialize_circuit(wire)

    def test_undefined_register_rejected(self):
        # square_relin(reg 5) with a single input: register 5 never exists.
        wire = _frame_circuit_body(_body(steps=((OP_SQUARE_RELIN, (5,)),)))
        with pytest.raises(WireFormatError, match="not defined"):
            deserialize_circuit(wire)

    def test_missing_constant_rejected(self):
        wire = _frame_circuit_body(_body(steps=((OP_MUL_CONST, (0, 0)),)))
        with pytest.raises(WireFormatError, match="outside the table"):
            deserialize_circuit(wire)

    def test_unknown_constant_kind_rejected(self):
        wire = _frame_circuit_body(_body(consts=_u16(1) + bytes((9,))))
        with pytest.raises(WireFormatError, match="constant kind"):
            deserialize_circuit(wire)

    def test_output_register_out_of_range_rejected(self):
        wire = _frame_circuit_body(_body(outputs=(("o", 9),)))
        with pytest.raises(WireFormatError, match="references register"):
            deserialize_circuit(wire)

    def test_empty_step_list_rejected(self):
        wire = _frame_circuit_body(_body(steps=()))
        with pytest.raises(WireFormatError, match="at least one step"):
            deserialize_circuit(wire)

    def test_scalar_add_const_rejected(self):
        """add_const must take a packed plaintext, never a bare scalar."""
        scalar_const = _u16(1) + bytes((CONST_SCALAR,)) + (3).to_bytes(
            8, "big", signed=True
        )
        wire = _frame_circuit_body(_body(
            consts=scalar_const, steps=((OP_ADD_CONST, (0, 0)),)
        ))
        with pytest.raises(WireFormatError, match="packed plaintext"):
            deserialize_circuit(wire)


class TestConstructorValidation:
    """The in-memory constructor enforces the same rules as the decoder."""

    def test_unknown_op(self):
        with pytest.raises(CircuitError, match="unknown op"):
            Circuit(name="c", inputs=("x",), consts=(),
                    steps=(CircuitStep(op=0x55, args=(0,)),),
                    outputs=(("y", 0),))

    def test_wrong_arity(self):
        with pytest.raises(CircuitError, match="takes 2 args"):
            Circuit(name="c", inputs=("x",), consts=(),
                    steps=(CircuitStep(op=OP_ADD, args=(0,)),),
                    outputs=(("y", 0),))

    def test_duplicate_outputs(self):
        with pytest.raises(CircuitError, match="duplicate output"):
            Circuit(name="c", inputs=("x",), consts=(),
                    steps=(CircuitStep(op=OP_SQUARE_RELIN, args=(0,)),),
                    outputs=(("y", 0), ("y", 1)))

    def test_forward_reference(self):
        with pytest.raises(CircuitError, match="not defined"):
            Circuit(name="c", inputs=("x",), consts=(),
                    steps=(CircuitStep(op=OP_ADD, args=(0, 1)),),
                    outputs=(("y", 1),))

    def test_every_op_has_a_spec_entry(self):
        assert set(OP_SPECS) == {
            OP_ADD, OP_SUB, OP_ADD_CONST, OP_MUL_CONST, OP_MAC_CONST,
            OP_MUL_RELIN, OP_SQUARE_RELIN,
            OP_ROTATE_ROWS, OP_ROTATE_COLUMNS, OP_MUL, OP_SQUARE,
            OP_RELINEARIZE,
        }
