"""Property tests: tower sharding is invisible to results and accounting.

Three layers, from pure math up to the serving stack:

* **CRT sharding** — splitting a basis into random shards, computing each
  shard's towers independently, and merging recombines to exactly the
  sequential full-basis result (the ring isomorphism survives sharding).
* **Driver** — per-tower ``ciphertext_multiply_tower`` calls compose to
  ``ciphertext_multiply_rns``: same outputs, and per-tower cycles sum to
  the merged report's total.
* **Chip pool** — any pool size produces the bit-identical ciphertext the
  sequential pool-of-1 produces, and every chip-path job's reported total
  equals the sum of its per-tower cycles plus the relinearization tail.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.software import SoftwareBfv
from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.core.driver import CofheeDriver
from repro.polymath.rns import (
    RnsBasis,
    merge_tower_outputs,
    shard_towers,
)
from repro.service.backends import ChipPoolBackend
from repro.service.jobs import Job, JobKind, JobStatus
from repro.service.registry import SessionRegistry
from repro.service.scheduler import BatchingScheduler

N = 16
#: Primes == 1 (mod 2N): every one supports the degree-16 negacyclic NTT.
_NTT_PRIMES = (97, 193, 257, 353, 449, 577, 641, 769, 929, 1153)


@st.composite
def bases(draw, max_towers=5):
    count = draw(st.integers(min_value=1, max_value=max_towers))
    moduli = draw(st.lists(
        st.sampled_from(_NTT_PRIMES), min_size=count, max_size=count,
        unique=True,
    ))
    return RnsBasis(moduli)


def _random_ct(data, basis):
    coeffs = st.lists(
        st.integers(min_value=0, max_value=basis.modulus - 1),
        min_size=N, max_size=N,
    )
    return (data.draw(coeffs), data.draw(coeffs))


class TestCrtSharding:
    @given(basis=bases(), num_shards=st.integers(1, 6), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_shards_recombine_to_sequential_result(self, basis, num_shards, data):
        """Random tower splits CRT-recombine to the full-basis tensor."""
        ct_a = _random_ct(data, basis)
        ct_b = _random_ct(data, basis)
        reference = SoftwareBfv(basis, N)
        sequential = reference.ciphertext_multiply(ct_a, ct_b)
        shards = shard_towers(len(basis), num_shards)
        # Every tower appears in exactly one shard.
        flat = sorted(i for s in shards for i in s)
        assert flat == list(range(len(basis)))
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1
        # Compute each shard independently, as a worker would.
        shard_outputs = []
        for indices in shards:
            sub = basis.sub_basis(indices)
            worker = SoftwareBfv(sub, N)
            shard_outputs.append([
                worker.tower_multiply(q, ct_a, ct_b) for q in sub.moduli
            ])
        towers = merge_tower_outputs(shards, shard_outputs)
        recombined = [
            basis.reconstruct_poly([tw[j] for tw in towers]) for j in range(3)
        ]
        assert recombined == sequential

    @given(basis=bases(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_sub_basis_residues_match_parent(self, basis, data):
        value = data.draw(st.integers(0, basis.modulus - 1))
        indices = data.draw(st.lists(
            st.integers(0, len(basis) - 1), min_size=1,
            max_size=len(basis), unique=True,
        ))
        sub = basis.sub_basis(indices)
        full = basis.decompose(value)
        assert sub.decompose(value % sub.modulus) == tuple(
            full[i] for i in indices
        )


class TestDriverTowerComposition:
    @given(basis=bases(max_towers=3), data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_per_tower_calls_compose_to_rns(self, basis, data):
        """Tower-by-tower execution equals the one-shot RNS loop, and the
        per-tower cycle counts sum to the merged report's total."""
        ct_a = _random_ct(data, basis)
        ct_b = _random_ct(data, basis)
        one_shot_drv = CofheeDriver()
        full, merged = one_shot_drv.ciphertext_multiply_rns(ct_a, ct_b, basis)
        per_tower_drv = CofheeDriver()
        towers, cycle_counts = [], []
        for q in basis.moduli:
            outs, report = per_tower_drv.ciphertext_multiply_tower(ct_a, ct_b, q)
            towers.append(outs)
            cycle_counts.append(report.cycles)
        assert sum(cycle_counts) == merged.cycles
        recombined = [
            basis.reconstruct_poly([tw[j] for tw in towers]) for j in range(3)
        ]
        assert recombined == full
        assert full == SoftwareBfv(basis, N).ciphertext_multiply(ct_a, ct_b)


#: Module-level cache: (towers,) -> (params, bfv, keys, encoder). Keygen is
#: the expensive part of each example; the scheme objects are stateless
#: across examples so sharing them is safe.
_WORLDS: dict[int, tuple] = {}


def _world(towers: int):
    if towers not in _WORLDS:
        params = BfvParameters.toy_rns(n=N, towers=towers, tower_bits=20)
        bfv = Bfv(params, seed=1000 + towers)
        keys = bfv.keygen(relin_digit_bits=16)
        _WORLDS[towers] = (params, bfv, keys, BatchEncoder(params))
    return _WORLDS[towers]


class TestPoolInvariance:
    @given(
        towers=st.integers(2, 3),
        pool_size=st.integers(1, 4),
        n_jobs=st.integers(1, 3),
        data=st.data(),
    )
    @settings(max_examples=10, deadline=None)
    def test_pool_size_never_changes_results_and_cycles_add_up(
        self, towers, pool_size, n_jobs, data
    ):
        params, bfv, keys, encoder = _world(towers)
        rng = random.Random(data.draw(st.integers(0, 2**16)))
        operands = [
            (
                bfv.encrypt(encoder.encode(
                    [rng.randrange(16) for _ in range(N)]), keys.public),
                bfv.encrypt(encoder.encode(
                    [rng.randrange(16) for _ in range(N)]), keys.public),
            )
            for _ in range(n_jobs)
        ]
        results = {}
        for size in (1, pool_size):
            registry = SessionRegistry()
            backend = ChipPoolBackend(pool_size=size)
            scheduler = BatchingScheduler(
                registry, {"chip_pool": backend}, default="chip_pool",
                max_batch=4,
            )
            session = registry.open_session("prop", params, relin=keys.relin)
            jobs = [
                scheduler.submit(Job(
                    session_id=session.session_id, tenant="prop",
                    kind=JobKind.MULTIPLY, operands=list(ops),
                ))
                for ops in operands
            ]
            scheduler.run_all()
            for job in jobs:
                assert job.status is JobStatus.DONE
                m = job.metrics
                assert m.fidelity == "chip"
                assert len(m.tower_cycles) == towers
                # Per-tower cycles sum to the reported job total.
                assert m.cycles == sum(m.tower_cycles) + m.relin_cycles
            # Work is conserved: the pool total is the sum of job totals.
            assert backend.total_cycles == sum(j.metrics.cycles for j in jobs)
            assert backend.wall_cycles <= backend.total_cycles
            results[size] = [
                [p.coeffs for p in job.result.polys] for job in jobs
            ]
        # Sharded execution is bit-identical to the sequential worker.
        assert results[pool_size] == results[1]
