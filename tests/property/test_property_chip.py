"""Property-based tests: the chip datapath is bit-exact vs the reference,
and the cycle model keeps its closed-form invariants at every degree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chip import CoFHEE
from repro.core.driver import CofheeDriver
from repro.core.timing import STAGE_OVERHEAD, TimingModel
from repro.polymath.ntt import NttContext, reference_negacyclic_multiply
from repro.polymath.primes import ntt_friendly_prime

N = 32
Q = ntt_friendly_prime(N, 40)
_CTX = NttContext(N, Q)


def _fresh_driver() -> CofheeDriver:
    driver = CofheeDriver(CoFHEE())
    driver.program(Q, N)
    return driver


coeffs = st.lists(st.integers(min_value=0, max_value=Q - 1),
                  min_size=N, max_size=N)


@given(a=coeffs)
@settings(max_examples=15, deadline=None)
def test_chip_ntt_matches_reference(a):
    driver = _fresh_driver()
    driver.load_polynomial("P0", a)
    driver.ntt("P0", "P1")
    got, _ = driver.read_polynomial("P1")
    assert got == _CTX.forward(a)


@given(a=coeffs, b=coeffs)
@settings(max_examples=10, deadline=None)
def test_chip_polymul_matches_reference(a, b):
    driver = _fresh_driver()
    driver.load_polynomial("P0", a)
    driver.load_polynomial("P1", b)
    driver.polynomial_multiply("P0", "P1", "P2")
    got, _ = driver.read_polynomial("P2")
    assert got == reference_negacyclic_multiply(a, b, Q)


@given(log_n=st.integers(min_value=2, max_value=16))
@settings(max_examples=50, deadline=None)
def test_ntt_cycles_closed_form_any_degree(log_n):
    tm = TimingModel()
    n = 1 << log_n
    ii = tm.butterfly_initiation_interval(n)
    assert tm.ntt_cycles(n) == (n // 2) * log_n * ii + STAGE_OVERHEAD * log_n + 1


@given(log_n=st.integers(min_value=3, max_value=14),
       towers=st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_ciphertext_mult_linear_in_towers(log_n, towers):
    tm = TimingModel()
    n = 1 << log_n
    assert tm.ciphertext_mult_cycles(n, towers) == towers * tm.ciphertext_mult_cycles(n, 1)


@given(log_n=st.integers(min_value=3, max_value=13))
@settings(max_examples=30, deadline=None)
def test_intt_always_costs_one_pointwise_more(log_n):
    tm = TimingModel()
    n = 1 << log_n
    assert tm.intt_cycles(n) - tm.ntt_cycles(n) == tm.pointwise_cycles(n)
