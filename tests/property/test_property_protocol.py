"""Property-based tests: wire-protocol framing is lossless and safe."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.protocol import (
    Frame,
    FrameType,
    ProtocolError,
    decode,
    encode,
)

word128 = st.integers(min_value=0, max_value=(1 << 128) - 1)
word32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
address = st.integers(min_value=0, max_value=(1 << 32) - 1)


@st.composite
def frames(draw):
    kind = draw(st.sampled_from(list(FrameType)))
    addr = draw(address)
    if kind is FrameType.REG_WRITE:
        return Frame(kind, addr, 0, (draw(word32),))
    if kind is FrameType.MEM_WRITE:
        payload = tuple(draw(st.lists(word128, min_size=1, max_size=16)))
        return Frame(kind, addr, len(payload), payload)
    if kind is FrameType.MEM_READ:
        return Frame(kind, addr, draw(st.integers(min_value=1, max_value=8192)))
    return Frame(kind, addr)


@given(frame=frames())
@settings(max_examples=300)
def test_encode_decode_roundtrip(frame):
    assert decode(encode(frame)) == frame


@given(frame=frames(), data=st.data())
@settings(max_examples=200)
def test_single_byte_corruption_never_misdecodes(frame, data):
    """Any single-byte flip either raises ProtocolError or (for flips the
    additive checksum cannot see, e.g. compensating within the byte —
    impossible for single flips) changes nothing. A flipped byte must
    never decode silently into a *different* frame."""
    encoded = bytearray(encode(frame))
    index = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    encoded[index] ^= flip
    try:
        result = decode(bytes(encoded))
    except ProtocolError:
        return  # detected — good
    assert result == frame  # only acceptable if nothing effectively changed


@given(frame=frames())
@settings(max_examples=200)
def test_truncation_always_detected(frame):
    encoded = encode(frame)
    for cut in (1, len(encoded) // 2):
        with pytest.raises(ProtocolError):
            decode(encoded[: len(encoded) - cut])
