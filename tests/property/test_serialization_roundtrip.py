"""Property tests: the wire format round-trips bit-exactly.

For every supported object and across three parameter sets,
``deserialize(serialize(x)) == x`` — plus negative cases: corrupted
bytes, truncation, wrong type tags, and cross-params digests are all
rejected before any polynomial math happens.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv import Bfv, BfvParameters
from repro.bfv.rotation import RotationEngine
from repro.polymath.poly import PolynomialRing
from repro.service.serialization import (
    ParamsMismatchError,
    WireFormatError,
    deserialize_ciphertext,
    deserialize_galois_key,
    deserialize_params,
    deserialize_polynomial,
    deserialize_public_key,
    deserialize_relin_key,
    params_digest,
    serialize_ciphertext,
    serialize_galois_key,
    serialize_params,
    serialize_polynomial,
    serialize_public_key,
    serialize_relin_key,
)

#: Three distinct parameter sets (the acceptance criterion's >= 3).
PARAM_SETS = [
    BfvParameters.toy(n=16, log_q=60),
    BfvParameters.toy(n=32, log_q=80),
    BfvParameters.toy(n=64, log_q=45),
]
PARAM_IDS = [f"n{p.n}_logq{p.log_q}" for p in PARAM_SETS]


@pytest.fixture(scope="module", params=PARAM_SETS, ids=PARAM_IDS)
def stack(request):
    params = request.param
    bfv = Bfv(params, seed=0xC0F4EE)
    keys = bfv.keygen(relin_digit_bits=12)
    return params, bfv, keys


class TestRoundTrip:
    def test_params(self, stack):
        params, _, _ = stack
        recovered = deserialize_params(serialize_params(params))
        assert recovered == params
        assert params_digest(recovered) == params_digest(params)

    def test_polynomial_random_sweep(self, stack):
        params, _, _ = stack
        ring = PolynomialRing(params.n, params.q, allow_non_ntt=True)
        rng = random.Random(7)
        for _ in range(25):
            poly = ring.random(rng)
            assert deserialize_polynomial(serialize_polynomial(poly)) == poly

    def test_polynomial_edge_values(self, stack):
        params, _, _ = stack
        ring = PolynomialRing(params.n, params.q, allow_non_ntt=True)
        for poly in (ring.zero(), ring.one(), ring([params.q - 1] * params.n)):
            assert deserialize_polynomial(serialize_polynomial(poly)) == poly

    def test_ciphertext_random_sweep(self, stack):
        params, bfv, keys = stack
        pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        rng = random.Random(13)
        for _ in range(10):
            ct = bfv.encrypt(pt_ring.random(rng), keys.public)
            wire = serialize_ciphertext(ct)
            recovered = deserialize_ciphertext(wire, params)
            assert recovered == ct
            # Determinism: re-serializing yields identical bytes.
            assert serialize_ciphertext(recovered) == wire

    def test_three_component_ciphertext(self, stack):
        """The Eq. 4 tensor output (size 3) round-trips too."""
        params, bfv, keys = stack
        pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        rng = random.Random(17)
        ct = bfv.multiply(
            bfv.encrypt(pt_ring.random(rng), keys.public),
            bfv.encrypt(pt_ring.random(rng), keys.public),
        )
        assert ct.size == 3
        assert deserialize_ciphertext(serialize_ciphertext(ct), params) == ct

    def test_public_key(self, stack):
        params, _, keys = stack
        wire = serialize_public_key(keys.public, params)
        assert deserialize_public_key(wire, params) == keys.public

    def test_relin_key(self, stack):
        params, _, keys = stack
        wire = serialize_relin_key(keys.relin, params)
        assert deserialize_relin_key(wire, params) == keys.relin

    def test_galois_key(self, stack):
        params, bfv, keys = stack
        engine = RotationEngine(bfv, keys.secret, digit_bits=12)
        key = engine.galois_key(pow(3, 1, 2 * params.n))
        wire = serialize_galois_key(key, params)
        recovered = deserialize_galois_key(wire, params)
        assert recovered == key

    def test_ciphertext_to_bytes_hook(self, stack):
        """The Ciphertext.to_bytes/from_bytes convenience hooks agree."""
        params, bfv, keys = stack
        pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        ct = bfv.encrypt(pt_ring.random(random.Random(3)), keys.public)
        assert type(ct).from_bytes(ct.to_bytes(), params) == ct


class TestRejection:
    @pytest.fixture(scope="class")
    def wire_ct(self):
        params = PARAM_SETS[0]
        bfv = Bfv(params, seed=5)
        keys = bfv.keygen(relin_digit_bits=14)
        ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        ct = bfv.encrypt(ring.random(random.Random(5)), keys.public)
        return params, serialize_ciphertext(ct)

    @given(position=st.integers(min_value=0, max_value=10_000), flip=st.integers(1, 255))
    @settings(max_examples=40, deadline=None)
    def test_corrupted_bytes_rejected(self, wire_ct, position, flip):
        """Flipping ANY byte anywhere in the message must be detected."""
        params, wire = wire_ct
        position %= len(wire)
        corrupted = bytearray(wire)
        corrupted[position] ^= flip
        with pytest.raises(WireFormatError):
            deserialize_ciphertext(bytes(corrupted), params)

    def test_wrong_params_digest_rejected(self, wire_ct):
        _, wire = wire_ct
        with pytest.raises(ParamsMismatchError):
            deserialize_ciphertext(wire, PARAM_SETS[1])

    def test_truncation_rejected(self, wire_ct):
        params, wire = wire_ct
        for cut in (1, 5, len(wire) // 2, len(wire) - 1):
            with pytest.raises(WireFormatError):
                deserialize_ciphertext(wire[:cut], params)

    def test_wrong_tag_rejected(self, wire_ct):
        params, wire = wire_ct
        with pytest.raises(WireFormatError):
            deserialize_relin_key(wire, params)

    def test_bad_magic_rejected(self, wire_ct):
        params, wire = wire_ct
        with pytest.raises(WireFormatError):
            deserialize_ciphertext(b"NOPE" + wire[4:], params)

    def test_trailing_garbage_rejected(self, wire_ct):
        params, wire = wire_ct
        with pytest.raises(WireFormatError):
            deserialize_ciphertext(wire + b"\x00", params)
