"""Boundary parity: engine rounding/digit kernels vs the scalar scheme.

The serve path replaced two per-coefficient Python loops with engine
kernels — :meth:`BatchedRnsEngine.round_scale` (the Eq. 4 ``t/q``
scaling via a vectorized floor identity) and
:meth:`BatchedRnsEngine.digit_decompose` (the relinearization base-T
split). Both must be *bit-identical* to the scalar references
(``_round_div`` and ``Bfv._decompose_digits``): a one-off at a rounding
boundary decrypts to garbage, silently.

The dangerous inputs for the rounding identity are the exact halves —
``t * c ≡ q/2 (mod q)`` — where half-away-from-zero and banker's
rounding (or a floor off-by-one) diverge. The scheme's ciphertext
modulus is an odd prime, so *no* scheme-generated input ever lands on
an exact half; these tests drive the kernel directly with an even
(power-of-two) ``q`` to force the tie cases the serving path can never
produce, plus the ``±1`` neighbours where a carry would first leak.
Every engine tower count (1-4, including the degenerate single tower)
runs the same draws.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv import Bfv, BfvParameters
from repro.bfv.scheme import _round_div
from repro.polymath.engine import BatchedRnsEngine
from repro.polymath.poly import Polynomial
from repro.polymath.rns import RnsBasis, plan_towers

N = 16

#: One engine per tower count; 24-bit towers keep every count on the
#: Shoup-lazy kernel while spanning P from ~2^24 to ~2^96.
_ENGINES: dict[int, BatchedRnsEngine] = {}
for _towers in (1, 2, 3, 4):
    _basis = RnsBasis(plan_towers(24 * _towers, 24, N))
    _ENGINES[_towers] = BatchedRnsEngine(_basis, N)

engines = st.sampled_from(sorted(_ENGINES))

#: A deliberately small-modulus engine: 14-bit towers put the 16- and
#: 22-bit digit masks *above* the tower moduli, so digit_decompose takes
#: its per-tower reduction path (the 24-bit engines cover the broadcast
#: fast path where every digit already fits below every modulus).
_SMALL = BatchedRnsEngine(RnsBasis(plan_towers(28, 14, N)), N)

#: The digit-decompose parity scheme: the real RNS multiplier carries
#: the batched engine the serving path uses, and one relin key per
#: digit width under test.
_PARAMS = BfvParameters.toy_rns(n=N, towers=3, tower_bits=24)
_BFV = Bfv(_PARAMS, seed=7)
_RELIN = {
    bits: _BFV.keygen(relin_digit_bits=bits).relin for bits in (8, 16, 22)
}

digit_widths = st.sampled_from(sorted(_RELIN))


def _encode(engine: BatchedRnsEngine, values: list[int]):
    """CRT-encode exact (possibly negative) integers as a tower stack."""
    return engine.stack(
        [[v % q for v in values] for q in engine.basis.moduli]
    )


@st.composite
def _half_case(draw, towers):
    """(t, q, values): q even, with values clustered on exact halves.

    ``q`` is a power of two and ``t`` odd, so ``t`` is invertible mod
    ``q`` and ``c ≡ (q/2) * t^{-1} (mod q)`` enumerates exactly the
    coefficients with ``t*c ≡ q/2 (mod q)``. Values mix those halves
    (both signs, shifted by multiples of q), their ``±1`` neighbours,
    and uniform draws, all within the centered range of the smallest
    engine modulus product.
    """
    q = 1 << draw(st.integers(min_value=1, max_value=12))
    t = draw(st.integers(min_value=0, max_value=(q - 1) // 2)) * 2 + 1
    half_root = (q >> 1) * pow(t, -1, q) % q
    bound = _ENGINES[towers].modulus // 2 - q
    k_max = max(0, (bound - half_root) // q)
    ks = st.integers(min_value=-min(k_max, 500), max_value=min(k_max, 500))
    halves = ks.map(lambda k: half_root + k * q)
    near = st.tuples(halves, st.sampled_from([-1, 1])).map(sum)
    uniform = st.integers(min_value=-bound, max_value=bound)
    values = draw(
        st.lists(
            st.one_of(halves, near, uniform), min_size=N, max_size=N
        )
    )
    return t, q, values


class TestRoundScaleParity:
    @given(data=st.data(), towers=engines)
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_round_div_at_exact_halves(self, data, towers):
        engine = _ENGINES[towers]
        t, q, values = data.draw(_half_case(towers))
        got = engine.round_scale(_encode(engine, values), t, q)
        assert got == [_round_div(t * c, q) % q for c in values]

    def test_exact_half_rounds_away_from_zero_both_signs(self):
        """Pin the tie-break direction itself: ±q/2 scale to ±1 (mod q),
        not to the even neighbour 0."""
        engine = _ENGINES[1]
        q = 1 << 10
        half = q >> 1
        values = [half, -half] + [0] * (N - 2)
        got = engine.round_scale(_encode(engine, values), 1, q)
        assert got[0] == 1
        assert got[1] == (-1) % q
        assert _round_div(half, q) == 1
        assert _round_div(-half, q) == -1


class TestDigitDecomposeParity:
    @given(data=st.data(), bits=digit_widths)
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_to_scheme_decompose(self, data, bits):
        """The batched split agrees digit-for-digit, tower-for-tower,
        with ``Bfv._decompose_digits`` on canonical scheme coefficients,
        across digit widths 8/16/22 and every engine tower count."""
        relin = _RELIN[bits]
        q = _PARAMS.q
        boundary = st.sampled_from(
            [0, 1, (1 << bits) - 1, 1 << bits, q - 1, q // 2]
        )
        coeffs = data.draw(
            st.lists(
                st.one_of(
                    st.integers(min_value=0, max_value=q - 1), boundary
                ),
                min_size=N, max_size=N,
            )
        )
        scalar = _BFV._decompose_digits(
            Polynomial.from_canonical(_BFV.ring, coeffs), relin
        )
        for engine in [*_ENGINES.values(), _SMALL]:
            rows = engine.digit_decompose(
                coeffs, relin.digit_bits, relin.num_digits
            )
            assert rows.shape == (relin.num_digits, engine.num_towers, N)
            for i, digit_poly in enumerate(scalar):
                for tower, modulus in enumerate(engine.basis.moduli):
                    assert rows[i, tower].tolist() == [
                        d % modulus for d in digit_poly.coeffs
                    ]

    def test_centered_coefficient_rejected_like_scalar_path(self):
        engine = _ENGINES[2]
        centered = [-1] + [0] * (N - 1)
        try:
            engine.digit_decompose(centered, 8, 4)
        except ValueError as exc:
            assert "canonical" in str(exc)
        else:  # pragma: no cover - the guard must fire
            raise AssertionError("negative coefficient was accepted")
