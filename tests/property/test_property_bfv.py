"""Property-based tests for BFV homomorphisms (small parameters)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv import Bfv, BfvParameters
from repro.polymath.poly import PolynomialRing

_PARAMS = BfvParameters.toy(n=16, log_q=70)
_BFV = Bfv(_PARAMS, seed=2024)
_KEYS = _BFV.keygen(relin_digit_bits=14)
_PT_RING = PolynomialRing(_PARAMS.n, _PARAMS.t, allow_non_ntt=True)

plaintexts = st.lists(
    st.integers(min_value=0, max_value=_PARAMS.t - 1), min_size=16, max_size=16
).map(_PT_RING)


@given(m=plaintexts)
@settings(max_examples=30, deadline=None)
def test_encrypt_decrypt_identity(m):
    assert _BFV.decrypt(_BFV.encrypt(m, _KEYS.public), _KEYS.secret) == m


@given(m1=plaintexts, m2=plaintexts)
@settings(max_examples=20, deadline=None)
def test_additive_homomorphism(m1, m2):
    ct = _BFV.add(_BFV.encrypt(m1, _KEYS.public), _BFV.encrypt(m2, _KEYS.public))
    assert _BFV.decrypt(ct, _KEYS.secret) == m1 + m2


@given(m1=plaintexts, m2=plaintexts)
@settings(max_examples=12, deadline=None)
def test_multiplicative_homomorphism_with_relin(m1, m2):
    ct = _BFV.multiply_relin(
        _BFV.encrypt(m1, _KEYS.public), _BFV.encrypt(m2, _KEYS.public),
        _KEYS.relin,
    )
    expected = m1.schoolbook_mul(m2)
    assert _BFV.decrypt(ct, _KEYS.secret) == expected


@given(m=plaintexts, scalar=st.integers(min_value=0, max_value=_PARAMS.t - 1))
@settings(max_examples=20, deadline=None)
def test_scalar_homomorphism(m, scalar):
    ct = _BFV.multiply_scalar(_BFV.encrypt(m, _KEYS.public), scalar)
    assert _BFV.decrypt(ct, _KEYS.secret) == m.scalar_mul(scalar)


@given(m=plaintexts)
@settings(max_examples=15, deadline=None)
def test_noise_budget_monotone_under_mult(m):
    ct = _BFV.encrypt(m, _KEYS.public)
    fresh = _BFV.noise_budget(ct, _KEYS.secret)
    squared = _BFV.square(ct)
    assert _BFV.noise_budget(squared, _KEYS.secret) <= fresh
