"""Property tests: stream framing and the control-plane codec.

The transport's reader loop is exactly ``FrameAssembler.feed`` over
arbitrary TCP segmentation, so these properties fuzz the production
code path directly: round trips survive any chunking, truncation never
yields a phantom frame, oversized announcements and corrupted bytes are
rejected with the existing :class:`FrameError`/``WireFormatError``
hierarchy, and no input crashes the loop with anything else.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.serialization import (
    AdminMsg,
    ErrorMsg,
    EventMsg,
    OpenSessionMsg,
    ResultMsg,
    SessionMsg,
    StatusMsg,
    SubmitMsg,
    WireFormatError,
    decode_admin,
    decode_error,
    decode_event,
    decode_open_session,
    decode_result,
    decode_session,
    decode_status,
    decode_submit,
    encode_admin,
    encode_error,
    encode_event,
    encode_open_session,
    encode_result,
    encode_session,
    encode_status,
    encode_submit,
)
from repro.service.transport import FrameAssembler, FrameError, encode_frame

# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

payloads = st.lists(st.binary(max_size=512), max_size=8)


def _chunked(stream: bytes, data) -> list[bytes]:
    """Split a byte stream at hypothesis-chosen cut points."""
    chunks = []
    pos = 0
    while pos < len(stream):
        step = data.draw(st.integers(1, max(1, len(stream) - pos)))
        chunks.append(stream[pos : pos + step])
        pos += step
    return chunks


class TestFraming:
    @given(frames=payloads, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_chunking(self, frames, data):
        stream = b"".join(encode_frame(f) for f in frames)
        assembler = FrameAssembler()
        out = []
        for chunk in _chunked(stream, data):
            out.extend(assembler.feed(chunk))
        assert out == frames
        assert assembler.buffered == 0

    @given(frame=st.binary(min_size=1, max_size=512),
           cut=st.integers(min_value=0))
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_yields_a_frame(self, frame, cut):
        stream = encode_frame(frame)
        cut %= len(stream)  # strictly shorter than one full frame
        assembler = FrameAssembler()
        assert assembler.feed(stream[:cut]) == []
        assert assembler.buffered == cut
        # Feeding the remainder completes the frame exactly.
        assert assembler.feed(stream[cut:]) == [frame]

    @given(excess=st.integers(min_value=1, max_value=1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_oversized_announcement_rejected_immediately(self, excess):
        limit = 4096
        assembler = FrameAssembler(max_frame=limit)
        header = (limit + excess).to_bytes(4, "big")
        with pytest.raises(FrameError):
            assembler.feed(header)

    def test_encode_respects_the_limit(self):
        with pytest.raises(FrameError):
            encode_frame(b"x" * 100, max_frame=99)
        assert encode_frame(b"x" * 99, max_frame=99)[4:] == b"x" * 99

    @given(garbage=st.binary(max_size=256), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_feed_never_raises_anything_unexpected(self, garbage, data):
        """The reader loop's only failure mode is FrameError."""
        assembler = FrameAssembler(max_frame=4096)
        try:
            for chunk in _chunked(garbage, data) if garbage else []:
                assembler.feed(chunk)
        except FrameError:
            pass


# ----------------------------------------------------------------------
# Control-plane codec
# ----------------------------------------------------------------------

request_ids = st.integers(min_value=0, max_value=0xFFFFFFFF)
short_text = st.text(max_size=40)
blob = st.binary(max_size=256)
#: Wire doubles: any finite float round-trips ">d" exactly (NaN would
#: break dataclass equality, so it is excluded, not supported).
wire_doubles = st.floats(allow_nan=False, width=64)


control_messages = st.one_of(
    st.builds(
        OpenSessionMsg,
        request_id=request_ids,
        tenant=short_text,
        params=blob,
        public_key=st.none() | blob,
        relin_key=st.none() | blob,
        galois_keys=st.tuples() | st.tuples(blob) | st.tuples(blob, blob),
        token=short_text,
    ).map(lambda m: (m, encode_open_session, decode_open_session)),
    st.builds(
        SessionMsg, request_id=request_ids, session_id=short_text,
    ).map(lambda m: (m, encode_session, decode_session)),
    st.builds(
        SubmitMsg,
        request_id=request_ids,
        session_id=short_text,
        kind=short_text,
        operands=st.tuples() | st.tuples(blob) | st.tuples(blob, blob),
        steps=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
        backend=short_text,
        subscribe=st.booleans(),
        deadline=wire_doubles,
    ).map(lambda m: (m, encode_submit, decode_submit)),
    st.builds(
        AdminMsg,
        request_id=request_ids,
        command=short_text,
        value=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
        result=short_text,
    ).map(lambda m: (m, encode_admin, decode_admin)),
    st.builds(
        StatusMsg, request_id=request_ids, job_id=short_text,
        status=short_text, error=short_text,
    ).map(lambda m: (m, encode_status, decode_status)),
    st.builds(
        ResultMsg, request_id=request_ids, job_id=short_text,
        status=short_text, payload=blob, error=short_text,
    ).map(lambda m: (m, encode_result, decode_result)),
    st.builds(
        EventMsg, job_id=short_text, status=short_text,
        payload=blob, error=short_text,
    ).map(lambda m: (m, encode_event, decode_event)),
    st.builds(
        ErrorMsg, request_id=request_ids, message=short_text,
        code=short_text,
    ).map(lambda m: (m, encode_error, decode_error)),
)


class TestControlCodec:
    @given(case=control_messages)
    @settings(max_examples=120, deadline=None)
    def test_round_trip(self, case):
        msg, encode, decode = case
        wire = encode(msg)
        assert decode(wire) == msg
        assert encode(decode(wire)) == wire  # deterministic re-encode

    @given(case=control_messages,
           position=st.integers(min_value=0, max_value=1 << 30),
           flip=st.integers(min_value=1, max_value=255))
    @settings(max_examples=120, deadline=None)
    def test_any_bit_flip_is_rejected(self, case, position, flip):
        """CRC32 catches a flipped byte anywhere in a control frame."""
        msg, encode, decode = case
        wire = bytearray(encode(msg))
        wire[position % len(wire)] ^= flip
        with pytest.raises(WireFormatError):
            decode(bytes(wire))

    @given(case=control_messages, cut=st.integers(min_value=0))
    @settings(max_examples=80, deadline=None)
    def test_truncation_is_rejected(self, case, cut):
        msg, encode, decode = case
        wire = encode(msg)
        with pytest.raises(WireFormatError):
            decode(wire[: cut % len(wire)])

    @given(garbage=st.binary(max_size=128), case=control_messages)
    @settings(max_examples=80, deadline=None)
    def test_garbage_never_crashes_a_decoder(self, garbage, case):
        """Arbitrary bytes fail with WireFormatError, nothing else."""
        _, _, decode = case
        with pytest.raises(WireFormatError):
            decode(garbage)

    def test_cross_tag_decode_is_rejected(self):
        wire = encode_status(StatusMsg(request_id=1, job_id="j1"))
        with pytest.raises(WireFormatError, match="expected a"):
            decode_submit(wire)
