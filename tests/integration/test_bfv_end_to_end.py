"""Integration: multi-step encrypted computations on the BFV layer."""

import random

import pytest

from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.polymath.poly import PolynomialRing


@pytest.fixture(scope="module")
def stack():
    params = BfvParameters.toy(n=16, log_q=100)
    bfv = Bfv(params, seed=99)
    keys = bfv.keygen(relin_digit_bits=10)
    encoder = BatchEncoder(params)
    return params, bfv, keys, encoder


class TestEncryptedPipelines:
    def test_batched_inner_product(self, stack):
        """<x, w> computed slot-wise then summed via plaintext rotation-free
        reduction (decrypt-side): validates mixed ct*pt / ct+ct chains."""
        params, bfv, keys, encoder = stack
        rng = random.Random(6)
        x = [rng.randint(0, 9) for _ in range(16)]
        w = [rng.randint(0, 9) for _ in range(16)]
        ct = bfv.encrypt(encoder.encode(x), keys.public)
        prod = bfv.multiply_plain(ct, encoder.encode(w))
        slots = encoder.decode(bfv.decrypt(prod, keys.secret))
        assert slots == [(a * b) % params.t for a, b in zip(x, w)]
        assert sum(slots) == sum(a * b for a, b in zip(x, w))  # no wrap

    def test_polynomial_evaluation_chain(self, stack):
        """Evaluate p(x) = x^4 + 2x^2 + 3 homomorphically (depth 2)."""
        params, bfv, keys, encoder = stack
        pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        x = 5
        ct = bfv.encrypt(pt_ring([x]), keys.public)
        x2 = bfv.relinearize(bfv.square(ct), keys.relin)
        x4 = bfv.relinearize(bfv.square(x2), keys.relin)
        acc = bfv.add(x4, bfv.multiply_scalar(x2, 2))
        acc = bfv.add_plain(acc, pt_ring([3]))
        expected = (x**4 + 2 * x**2 + 3) % params.t
        assert bfv.decrypt(acc, keys.secret).coeffs[0] == expected

    def test_depth_consumes_budget_gracefully(self, stack):
        params, bfv, keys, encoder = stack
        pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        ct = bfv.encrypt(pt_ring([2]), keys.public)
        budgets = [bfv.noise_budget(ct, keys.secret)]
        value = 2
        for _ in range(2):
            ct = bfv.relinearize(bfv.square(ct), keys.relin)
            value = value**2 % params.t
            budgets.append(bfv.noise_budget(ct, keys.secret))
        assert budgets == sorted(budgets, reverse=True)
        assert budgets[-1] > 0  # still decryptable
        assert bfv.decrypt(ct, keys.secret).coeffs[0] == value

    def test_sum_of_many_ciphertexts(self, stack):
        """Additive chains barely consume budget (linear noise growth)."""
        params, bfv, keys, encoder = stack
        pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        cts = [bfv.encrypt(pt_ring([i]), keys.public) for i in range(20)]
        acc = cts[0]
        for ct in cts[1:]:
            acc = bfv.add(acc, ct)
        assert bfv.decrypt(acc, keys.secret).coeffs[0] == sum(range(20)) % params.t
        assert bfv.noise_budget(acc, keys.secret) > 10


class TestCrossSeedDeterminism:
    def test_same_seed_same_ciphertext(self):
        params = BfvParameters.toy(n=16, log_q=60)
        pt_ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)
        m = pt_ring([1, 2, 3])
        a = Bfv(params, seed=7)
        b = Bfv(params, seed=7)
        ka, kb = a.keygen(None), b.keygen(None)
        assert a.encrypt(m, ka.public).polys == b.encrypt(m, kb.public).polys

    def test_different_seed_different_keys(self):
        params = BfvParameters.toy(n=16, log_q=60)
        a = Bfv(params, seed=1).keygen(None)
        b = Bfv(params, seed=2).keygen(None)
        assert a.secret.s != b.secret.s
