"""The paper's headline claims, each asserted against the reproduction.

One test per quotable claim from the abstract/introduction/conclusion —
the highest-level acceptance suite.
"""

import pytest

from repro.baselines.related_work import cofhee_record, efficiency, table11_rows
from repro.baselines.software import CpuCostModel
from repro.bfv.params import BfvParameters
from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.core.timing import TimingModel
from repro.eval.fig6 import cofhee_ciphertext_mult
from repro.eval.table10 import table10_rows
from repro.physical.synthesis import SynthesisEstimator


class TestAbstractClaims:
    def test_12mm2_design_in_55nm(self):
        inv = CoFHEE().inventory()
        assert inv["design_area_mm2"] == 12.0
        assert "55nm" in inv["technology"]

    def test_supports_n_up_to_2_14_and_128_bits(self):
        inv = CoFHEE().inventory()
        assert inv["max_native_n"] == 2**14
        assert inv["max_coeff_bits"] == 128

    def test_fundamental_operations_present(self):
        """'polynomial addition and subtraction, Hadamard product, and
        Number Theoretic Transform'."""
        from repro.core.isa import Opcode

        ops = {op.value for op in Opcode}
        assert {"PMODADD", "PMODSUB", "PMODMUL", "NTT", "iNTT"} <= ops


class TestPerformanceClaims:
    def test_polynomial_mult_fraction_of_millisecond(self):
        """'perform polynomial multiplication in a fraction of a
        millisecond'."""
        tm = TimingModel()
        for n in (2**12, 2**13):
            assert tm.cycles_to_us(tm.polymul_cycles(n)) < 1000

    def test_beats_single_thread_seal(self):
        """Fig. 6: 0.84 vs 1.5 ms and 3.58 vs 6.91 ms."""
        cm = CpuCostModel()
        for n, log_q in ((2**12, 109), (2**13, 218)):
            params = BfvParameters.from_paper(n=n, log_q=log_q)
            cofhee_ms = cofhee_ciphertext_mult(params).latency_ms
            assert cofhee_ms < cm.ciphertext_mult_ms(params, threads=1)

    def test_two_orders_of_magnitude_power_efficiency(self):
        """'CoFHEE is two orders of magnitude more efficient' in power."""
        params = BfvParameters.from_paper(n=2**12, log_q=109)
        report = cofhee_ciphertext_mult(params)
        cpu_w = CpuCostModel().power_w(params, 1)
        assert cpu_w / (report.power.avg_mw / 1000) > 50

    def test_end_to_end_speedups(self):
        """Table X: 2.23x CryptoNets, 1.46x logistic regression."""
        speedups = {r["application"]: r["speedup"] for r in table10_rows()}
        assert speedups["CryptoNets"] == pytest.approx(2.23, abs=0.05)
        assert speedups["LogisticRegression"] == pytest.approx(1.46, abs=0.05)

    def test_ntt_efficiency_vs_f1(self):
        """'a speedup of 6.3x' over F1 on normalized NTT efficiency."""
        from repro.baselines.related_work import DESIGNS

        ratio = efficiency(cofhee_record()) / efficiency(DESIGNS["F1"])
        assert ratio == pytest.approx(6.3, abs=0.1)


class TestImplementationClaims:
    def test_only_silicon_proven_design(self):
        """'no fabricated and silicon proven ASIC design' among peers."""
        silicon = [r["design"] for r in table11_rows() if r["silicon_proven"]]
        assert silicon == ["CoFHEE"]

    def test_synthesized_area_fits_12mm2_budget(self):
        assert SynthesisEstimator().total_mm2() < 12.0

    def test_250mhz_limited_by_memory_read(self):
        """Section III-D: ~4 ns memory read -> 250 MHz."""
        chip = CoFHEE()
        assert chip.clock.period_ns == 4.0

    def test_pe_occupies_about_6_pct(self):
        """Section III-E: the PE 'occupies 6% of the design area'."""
        est = SynthesisEstimator()
        assert est.pe_mm2(128) / est.total_mm2() == pytest.approx(0.065, abs=0.01)

    def test_ciphertext_mult_fully_on_chip_at_2_13(self):
        """No data round-trips for n <= 2^13 (Section III-C): the only
        host traffic is the 12 command frames, orders of magnitude below
        a single polynomial transfer."""
        chip = CoFHEE(ChipConfig(fidelity="timing"))
        driver = CofheeDriver(chip)
        from repro.polymath.primes import ntt_friendly_prime

        driver.program(ntt_friendly_prime(2**13, 109), 2**13)
        report, _ = driver.ciphertext_multiply("P0", "P1", "P2", "P3", "P4", "P5")
        one_polynomial = chip.spi.transfer_seconds(2**13 * 128)
        assert report.io_seconds < one_polynomial / 100
