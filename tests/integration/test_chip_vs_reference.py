"""Integration: chip model vs software baseline vs pure-math reference.

Three independently-implemented execution paths must agree bit-exactly on
the ciphertext tensor: the cycle-level chip driver (bank-resident data,
shared twiddle table, 6-buffer schedule), the SEAL-style software baseline
(per-tower NTT-domain evaluation), and the schoolbook reference.
"""

import random

import pytest

from repro.baselines.software import SoftwareBfv
from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.polymath.ntt import reference_negacyclic_multiply
from repro.polymath.rns import RnsBasis, plan_towers

N = 128


@pytest.fixture(scope="module")
def basis():
    return RnsBasis(plan_towers(78, 40, N))


@pytest.fixture(scope="module")
def ciphertexts(basis):
    rng = random.Random(404)
    big_q = basis.modulus
    ca = tuple([rng.randrange(big_q) for _ in range(N)] for _ in range(2))
    cb = tuple([rng.randrange(big_q) for _ in range(N)] for _ in range(2))
    return ca, cb


class TestThreeWayAgreement:
    def test_chip_vs_software_vs_schoolbook(self, basis, ciphertexts):
        ca, cb = ciphertexts
        big_q = basis.modulus
        chip_result, _ = CofheeDriver(CoFHEE()).ciphertext_multiply_rns(
            ca, cb, basis
        )
        sw_result = SoftwareBfv(basis, N).ciphertext_multiply(ca, cb)
        reference = [
            reference_negacyclic_multiply(ca[0], cb[0], big_q),
            [
                (x + y) % big_q
                for x, y in zip(
                    reference_negacyclic_multiply(ca[0], cb[1], big_q),
                    reference_negacyclic_multiply(ca[1], cb[0], big_q),
                )
            ],
            reference_negacyclic_multiply(ca[1], cb[1], big_q),
        ]
        assert chip_result == sw_result == reference


class TestFidelityEquivalence:
    def test_pe_and_vector_fidelity_identical(self, rng):
        """The per-butterfly Barrett path and the batched path are the
        same machine."""
        from repro.polymath.primes import ntt_friendly_prime

        q = ntt_friendly_prime(64, 40)
        a = [rng.randrange(q) for _ in range(64)]
        b = [rng.randrange(q) for _ in range(64)]
        outputs = {}
        for fidelity in ("pe", "vector"):
            driver = CofheeDriver(CoFHEE(ChipConfig(fidelity=fidelity)))
            driver.program(q, 64)
            driver.load_polynomial("P0", a)
            driver.load_polynomial("P1", b)
            report = driver.polynomial_multiply("P0", "P1", "P2")
            outputs[fidelity] = (driver.read_polynomial("P2")[0], report.cycles)
        assert outputs["pe"] == outputs["vector"]

    def test_timing_fidelity_same_cycles(self):
        """Timing-only mode reports identical cycle counts (data-free)."""
        from repro.polymath.primes import ntt_friendly_prime

        q = ntt_friendly_prime(64, 40)
        cycles = {}
        for fidelity in ("vector", "timing"):
            driver = CofheeDriver(CoFHEE(ChipConfig(fidelity=fidelity)))
            driver.program(q, 64)
            driver.load_polynomial("P0", [1] * 64)
            cycles[fidelity] = driver.polynomial_multiply("P0", "P0", "P1").cycles
        assert cycles["vector"] == cycles["timing"]


@pytest.mark.slow
class TestPaperScaleFunctional:
    def test_full_n_2_12_ntt_roundtrip(self):
        """One functional NTT/iNTT pair at the silicon-optimized degree."""
        from repro.polymath.primes import ntt_friendly_prime

        rng = random.Random(1)
        n = 2**12
        q = ntt_friendly_prime(n, 109)
        driver = CofheeDriver(CoFHEE())
        driver.program(q, n)
        a = [rng.randrange(q) for _ in range(n)]
        driver.load_polynomial("P0", a)
        driver.ntt("P0", "P1")
        driver.intt("P1", "P2")
        got, _ = driver.read_polynomial("P2")
        assert got == a
