"""Unit tests for the Table X application cost model."""

import pytest

from repro.apps.costmodel import CofheeAppCost, CpuAppCost, Workload
from repro.apps.cryptonets import CRYPTONETS_WORKLOAD
from repro.apps.logreg import LOGREG_WORKLOAD
from repro.bfv.params import BfvParameters


@pytest.fixture(scope="module")
def params():
    return BfvParameters.from_paper(n=2**12, log_q=109)


@pytest.fixture(scope="module")
def cofhee(params):
    return CofheeAppCost(params)


class TestWorkloads:
    def test_cryptonets_op_mix(self):
        """Section VI-C counts."""
        assert CRYPTONETS_WORKLOAD.ct_ct_adds == 457_550
        assert CRYPTONETS_WORKLOAD.ct_pt_mults == 449_000
        assert CRYPTONETS_WORKLOAD.ct_ct_mults == 10_200

    def test_logreg_op_mix(self):
        assert LOGREG_WORKLOAD.ct_ct_adds == 168_298
        assert LOGREG_WORKLOAD.ct_pt_mults == 49_500
        assert LOGREG_WORKLOAD.ct_ct_mults == 128_700

    def test_paper_speedups(self):
        assert CRYPTONETS_WORKLOAD.paper_speedup == pytest.approx(2.23, abs=0.01)
        assert LOGREG_WORKLOAD.paper_speedup == pytest.approx(1.46, abs=0.01)


class TestCofheeCosts:
    def test_add_cost_structure(self, cofhee, params):
        """2 polys x towers x pointwise pass."""
        expected = 2 * 1 * cofhee.timing.pointwise_cycles(params.n) / 250e6
        assert cofhee.add_seconds() == pytest.approx(expected)

    def test_ct_ct_is_ciphertext_mult(self, cofhee, params):
        expected = cofhee.timing.ciphertext_mult_cycles(params.n, 1) / 250e6
        assert cofhee.ct_ct_seconds() == pytest.approx(expected)

    def test_relin_grows_with_digits(self, cofhee):
        assert cofhee.relin_seconds(5) > cofhee.relin_seconds(13)

    def test_relin_validation(self, cofhee):
        with pytest.raises(ValueError):
            cofhee.relin_seconds(0)

    def test_cryptonets_total_matches_paper(self, cofhee):
        total = cofhee.workload_seconds(CRYPTONETS_WORKLOAD)["total_s"]
        assert total == pytest.approx(88.35, rel=0.02)

    def test_logreg_total_matches_paper(self, cofhee):
        total = cofhee.workload_seconds(LOGREG_WORKLOAD)["total_s"]
        assert total == pytest.approx(377.6, rel=0.02)

    def test_mult_relin_dominates_cryptonets(self, cofhee):
        """EvalMult is 'the slowest operation ... the main candidate for
        hardware acceleration' (Section II-C)."""
        breakdown = cofhee.workload_seconds(CRYPTONETS_WORKLOAD)
        assert breakdown["ct_ct_relin_s"] > breakdown["adds_s"]
        assert breakdown["ct_ct_relin_s"] > breakdown["ct_pt_s"]


class TestCpuCosts:
    def test_totals_match_paper(self):
        cpu = CpuAppCost()
        assert cpu.workload_seconds(CRYPTONETS_WORKLOAD)["total_s"] == pytest.approx(
            197.0, rel=0.01
        )
        assert cpu.workload_seconds(LOGREG_WORKLOAD)["total_s"] == pytest.approx(
            550.25, rel=0.01
        )

    def test_unknown_workload(self):
        wl = Workload(name="Unknown", ct_ct_adds=1, ct_pt_mults=1,
                      ct_ct_mults=1, relin_digit_bits=8,
                      paper_cpu_seconds=1, paper_cofhee_seconds=1)
        with pytest.raises(KeyError):
            CpuAppCost().workload_seconds(wl)


class TestSpeedups:
    @pytest.mark.parametrize("workload", [CRYPTONETS_WORKLOAD, LOGREG_WORKLOAD])
    def test_speedup_matches_paper(self, cofhee, workload):
        cpu_total = CpuAppCost().workload_seconds(workload)["total_s"]
        cof_total = cofhee.workload_seconds(workload)["total_s"]
        assert cpu_total / cof_total == pytest.approx(
            workload.paper_speedup, abs=0.05
        )
