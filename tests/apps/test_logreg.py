"""Functional tests for the miniature encrypted logistic regression."""

import random

import pytest

from repro.apps.logreg import MiniLogisticRegression


@pytest.fixture(scope="module")
def model():
    return MiniLogisticRegression(seed=11)


@pytest.fixture(scope="module")
def samples(model):
    rng = random.Random(31)
    return [
        [rng.randint(-3, 3) for _ in range(model.num_features)]
        for _ in range(12)
    ]


@pytest.mark.slow
class TestEncryptedInference:
    def test_predictions_match_plaintext(self, model, samples):
        assert model.predict(samples) == model.predict_plain(samples)

    def test_linear_only_path(self, model, samples):
        """Without the cubic surrogate the sign decision is identical."""
        assert model.predict(samples, use_sigmoid=False) == model.predict_plain(samples)

    def test_sigmoid_surrogate_uses_ct_ct(self, model, samples):
        model.op_log = {k: 0 for k in model.op_log}
        model.predict(samples[:4])
        assert model.op_log["ct_ct_mults"] == 2  # square + cube


class TestValidation:
    def test_feature_count_enforced(self, model):
        with pytest.raises(ValueError, match="features"):
            model.encrypt_features([[1, 2]])

    def test_batch_limit(self, model):
        too_many = [[0] * model.num_features] * (model.batch_size + 1)
        with pytest.raises(ValueError, match="batch"):
            model.encrypt_features(too_many)

    def test_needs_at_least_one_feature(self):
        with pytest.raises(ValueError):
            MiniLogisticRegression(num_features=0)

    def test_surrogate_preserves_sign_plain(self, model):
        """3s + s^3 has the same sign as s for every integer s."""
        for s in range(-100, 101):
            g = 3 * s + s**3
            assert (g > 0) == (s > 0) and (g < 0) == (s < 0)
