"""Functional tests for the miniature CryptoNets network."""

import random

import pytest

from repro.apps.cryptonets import MiniCryptoNets, NetworkSpec


@pytest.fixture(scope="module")
def net():
    return MiniCryptoNets(seed=7)


@pytest.fixture(scope="module")
def images(net):
    rng = random.Random(21)
    size = net.spec.image_size ** 2
    return [[rng.randint(0, 2) for _ in range(size)] for _ in range(5)]


@pytest.mark.slow
class TestEncryptedInference:
    def test_matches_plaintext_network(self, net, images):
        assert net.infer(images) == net.infer_plain(images)

    def test_classification(self, net, images):
        scores = net.infer_plain(images)
        labels = net.classify(scores)
        assert all(label in range(net.spec.classes) for label in labels)

    def test_op_log_populated(self, net, images):
        net.op_log = {k: 0 for k in net.op_log}
        net.infer(images[:1])
        counts = net.op_log
        expected = net.spec.op_counts()
        assert counts["ct_ct_mults"] == expected["ct_ct_mults"]
        assert counts["ct_pt_mults"] == expected["ct_pt_mults"]


class TestSpecAndValidation:
    def test_conv_output_size(self):
        spec = NetworkSpec(image_size=6, conv_kernel=3, conv_stride=2)
        assert spec.conv_out == 2

    def test_op_counts_structure(self):
        spec = NetworkSpec()
        counts = spec.op_counts()
        # two square layers: conv units + hidden units
        conv_units = spec.conv_maps * spec.conv_out**2
        assert counts["ct_ct_mults"] == conv_units + spec.hidden

    def test_batch_limited_by_slots(self, net):
        assert net.batch_size == net.params.n

    def test_wrong_image_size_rejected(self, net):
        with pytest.raises(ValueError, match="pixels"):
            net.encrypt_images([[1, 2, 3]])

    def test_oversized_batch_rejected(self, net):
        size = net.spec.image_size ** 2
        too_many = [[0] * size] * (net.batch_size + 1)
        with pytest.raises(ValueError, match="batch"):
            net.encrypt_images(too_many)
