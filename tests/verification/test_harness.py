"""Tests for the golden harness, FPGA build, and post-silicon bring-up."""

import pytest

from repro.core.isa import Opcode
from repro.verification import (
    FpgaBuild,
    GoldenHarness,
    PostSiliconValidator,
    TestVectorGenerator,
)
from repro.verification.fpga import NEXYS4
from repro.verification.vectors import TestVector


@pytest.fixture(scope="module")
def gen():
    return TestVectorGenerator(n=32, coeff_bits=60, seed=3)


class TestGoldenHarness:
    def test_full_regression_passes(self, gen):
        """Every Table I op + corner vectors pass at 'pe' fidelity — the
        pre-silicon signoff condition."""
        suite = gen.regression_suite() + gen.directed_corner_vectors()
        results = GoldenHarness().run_suite(suite)
        summary = GoldenHarness.summarize(results)
        assert summary["failed"] == 0
        assert summary["total"] == len(suite)

    def test_detects_injected_fault(self, gen):
        """A corrupted golden output must FAIL — the harness really diffs."""
        v = gen.vector(Opcode.PMODADD)
        bad = TestVector(
            opcode=v.opcode, n=v.n, q=v.q, x=v.x, y=v.y,
            constant=v.constant,
            expected=((v.expected[0] + 1) % v.q,) + v.expected[1:],
            description="fault-injected",
        )
        result = GoldenHarness().run(bad)
        assert not result.passed
        assert result.first_mismatch == 0

    def test_result_reports_cycles(self, gen):
        result = GoldenHarness().run(gen.vector(Opcode.NTT))
        assert result.cycles > 0
        assert "PASS" in str(result)


class TestFpgaBuild:
    def test_nexys4_max_degree_is_2_12(self):
        """Section III-J: 'the maximum polynomial degree that could be
        supported on a Digilent Nexys 4 is n = 2^12'."""
        assert FpgaBuild(NEXYS4).max_degree() == 2**12

    def test_2_13_does_not_fit(self):
        """'n = 2^13 is incompatible with the available resources'."""
        assert not FpgaBuild(NEXYS4).fits(2**13)

    def test_10mhz_slowdown(self):
        assert FpgaBuild(NEXYS4, clock_mhz=10.0).slowdown_vs_silicon() == 25.0

    def test_scaled_chip_is_functional(self, rng):
        """Bit-identical results at the FPGA scale — the validation value."""
        from repro.core.driver import CofheeDriver
        from repro.polymath.ntt import reference_negacyclic_multiply
        from repro.polymath.primes import ntt_friendly_prime

        chip = FpgaBuild(NEXYS4).instantiate()
        assert chip.clock.frequency_hz == 10e6
        driver = CofheeDriver(chip)
        n, q = 64, ntt_friendly_prime(64, 40)
        driver.program(q, n)
        a = [rng.randrange(q) for _ in range(n)]
        b = [rng.randrange(q) for _ in range(n)]
        driver.load_polynomial("P0", a)
        driver.load_polynomial("P1", b)
        driver.polynomial_multiply("P0", "P1", "P2")
        got, _ = driver.read_polynomial("P2")
        assert got == reference_negacyclic_multiply(a, b, q)

    def test_clock_validation(self):
        with pytest.raises(ValueError):
            FpgaBuild(NEXYS4, clock_mhz=500.0)


class TestPostSiliconBringUp:
    def test_fabricated_chip_fully_functional(self):
        """The Section V-F conclusion, replayed against the model."""
        report = PostSiliconValidator().run(smoke_degree=64)
        assert report.fully_functional
        assert len(report.steps) == 6

    def test_uart_time_accounted(self):
        report = PostSiliconValidator().run(smoke_degree=64)
        assert report.uart_seconds > 0

    def test_report_rendering(self):
        report = PostSiliconValidator().run(smoke_degree=64)
        text = str(report)
        assert "SIGNATURE" in text
        assert "fully functional" in text
