"""Unit tests for the test-vector generator (the Section III-J script)."""

import pytest

from repro.core.isa import Opcode
from repro.verification.vectors import TestVectorGenerator


@pytest.fixture(scope="module")
def gen():
    return TestVectorGenerator(n=32, coeff_bits=60, seed=1)


class TestGeneration:
    def test_modulus_follows_paper_form(self, gen):
        """q = 2kn + 1 (Section III-J)."""
        assert (gen.q - 1) % (2 * gen.n) == 0

    def test_suite_covers_every_opcode(self, gen):
        suite = gen.regression_suite()
        assert {v.opcode for v in suite} == set(Opcode)

    def test_vectors_deterministic_by_seed(self):
        a = TestVectorGenerator(n=16, coeff_bits=40, seed=9).vector(Opcode.NTT)
        b = TestVectorGenerator(n=16, coeff_bits=40, seed=9).vector(Opcode.NTT)
        assert a == b

    def test_random_coefficients_modulo_q(self, gen):
        v = gen.vector(Opcode.PMODADD)
        assert all(0 <= c < gen.q for c in v.x)
        assert all(0 <= c < gen.q for c in v.y)

    def test_golden_outputs_correct(self, gen):
        """Spot-check golden models against independent computation."""
        v = gen.vector(Opcode.PMODMUL)
        assert v.expected == tuple(a * b % gen.q for a, b in zip(v.x, v.y))
        v = gen.vector(Opcode.CMODMUL)
        assert v.expected == tuple(a * v.constant % gen.q for a in v.x)

    def test_intt_vector_carries_n_inverse(self, gen):
        v = gen.vector(Opcode.INTT)
        assert v.constant * gen.n % gen.q == 1


class TestDirectedCorners:
    def test_corner_vectors_present(self, gen):
        names = [v.description for v in gen.directed_corner_vectors()]
        assert any("zero" in d for d in names)
        assert any("delta" in d for d in names)
        assert any("q-1" in d or "maximum" in d for d in names)

    def test_delta_spectrum_is_flat(self, gen):
        delta = next(v for v in gen.directed_corner_vectors()
                     if "delta" in v.description)
        assert delta.expected == (1,) * gen.n


class TestTestbenchExport:
    def test_hex_lines_parse_back(self, gen):
        v = gen.vector(Opcode.PMODADD)
        lines = gen.to_testbench_hex(v)
        # header + constant + q + x + y + expected
        assert len(lines) == 3 + 3 * gen.n
        assert int(lines[2], 16) == gen.q
        assert int(lines[3], 16) == v.x[0]

    def test_hex_width_is_128_bits(self, gen):
        lines = gen.to_testbench_hex(gen.vector(Opcode.NTT))
        assert all(len(line) == 32 for line in lines[1:])
