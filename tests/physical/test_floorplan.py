"""Unit tests for the floorplanner (Table IV geometry)."""

import pytest

from repro.physical.floorplan import (
    MACRO_AREA_UM2,
    Floorplanner,
    Macro,
    fabricated_macro_list,
)


@pytest.fixture(scope="module")
def result():
    return Floorplanner().run()


class TestMacroInventory:
    def test_68_instances(self):
        """Section V-A: 68 memory instances (48 DP + 16 + 4 SP)."""
        macros = fabricated_macro_list()
        assert len(macros) == 68
        assert sum(1 for m in macros if m.name.startswith("DP")) == 48
        assert sum(1 for m in macros if m.name.startswith("SP")) == 16
        assert sum(1 for m in macros if m.name.startswith("CM0")) == 4

    def test_total_macro_area_matches_table4(self):
        total = sum(m.area_um2 for m in fabricated_macro_list())
        assert total == pytest.approx(MACRO_AREA_UM2, rel=0.001)


class TestPlacement:
    def test_no_overlaps(self, result):
        for i, a in enumerate(result.macros):
            for b in result.macros[i + 1:]:
                assert not a.overlaps(b), f"{a.name} overlaps {b.name}"

    def test_all_inside_core(self, result):
        for m in result.macros:
            assert m.x_um >= -1e-6 and m.y_um >= -1e-6
            assert m.x_um + m.width_um <= result.core_width_um + 1e-6
            assert m.y_um + m.height_um <= result.core_height_um + 1e-6

    def test_channels_exist(self, result):
        channels = Floorplanner().channel_positions(result)
        assert len(channels) >= 2  # columns separated by power channels


class TestGeometry:
    def test_die_equals_core_plus_padring(self, result):
        """DW = CW + 2*(HIO + CIO): 3400 + 260 = 3660 (Table IV)."""
        assert result.die_width_um == 3660.0
        assert result.die_height_um == 3842.0

    def test_aspect_ratio(self, result):
        assert result.aspect_ratio == pytest.approx(1.05, abs=0.01)

    def test_utilizations_near_paper(self, result):
        """Model reads ~1.5 points high (no blockage halos; Table IV
        reports 45 % / 59 %)."""
        assert abs(result.initial_utilization - 0.45) < 0.03
        assert abs(result.final_utilization - 0.59) < 0.03

    def test_die_area_about_14mm2(self, result):
        assert result.die_area_mm2 == pytest.approx(3.66 * 3.842, rel=0.001)

    def test_table4_dict_keys(self, result):
        t4 = result.table4()
        for key in ("IU_pct", "FU_pct", "MA_um2", "CW_um", "DH_um", "A"):
            assert key in t4


class TestValidation:
    def test_narrow_channels_rejected(self):
        with pytest.raises(ValueError, match="power"):
            Floorplanner(channel_um=5.0)

    def test_macro_overlap_detection(self):
        a = Macro("A", 10, 10, 0, 0)
        b = Macro("B", 10, 10, 5, 5)
        c = Macro("C", 10, 10, 20, 20)
        assert a.overlaps(b)
        assert not a.overlaps(c)
