"""Unit tests for the Table III PnR statistics model."""

import pytest

from repro.physical.pnr import TABLE3_PAPER, PnrFlow, PnrStage, table3_rows


@pytest.fixture(scope="module")
def stages():
    return PnrFlow().run()


class TestFlowInvariants:
    def test_four_stages_in_order(self, stages):
        assert [s.stage for s in stages] == [
            PnrStage.INITIAL, PnrStage.PLACE, PnrStage.CTS, PnrStage.ROUTE,
        ]

    def test_sequential_cells_invariant(self, stages):
        """No retiming: flop count never changes (Table III row 2)."""
        assert len({s.sequential_cells for s in stages}) == 1
        assert stages[0].sequential_cells == 18_686

    def test_cell_count_monotonic(self, stages):
        counts = [s.std_cells for s in stages]
        assert counts == sorted(counts)

    def test_buffer_growth_dominates(self, stages):
        """Cell growth is 'primarily due to buffers/inverters'."""
        added_cells = stages[-1].std_cells - stages[0].std_cells
        added_bufs = (stages[-1].buffer_inverter_cells
                      - stages[0].buffer_inverter_cells)
        assert added_bufs > 0.4 * added_cells

    def test_vt_mix_sums_to_100(self, stages):
        for s in stages:
            assert s.vt_sum() == pytest.approx(100.0, abs=0.5)

    def test_vt_migration_to_lvt(self, stages):
        """100% HVT start; timing closure swaps most cells to LVT."""
        assert stages[0].hvt_pct == 100.0
        assert stages[-1].lvt_pct > 70.0
        assert stages[-1].hvt_pct < 15.0


class TestCalibration:
    def test_matches_paper_within_tolerance(self):
        for row in table3_rows():
            assert abs(row["std_cells"] - row["paper_std_cells"]) < 100
            assert abs(row["signal_nets"] - row["paper_signal_nets"]) < 100
            assert abs(row["utilization_pct"] - row["paper_utilization_pct"]) < 0.5

    def test_paper_reference_complete(self):
        assert set(TABLE3_PAPER) == set(PnrStage)


class TestCustomInputs:
    def test_scales_with_netlist_size(self):
        small = PnrFlow(std_cells=50_000, sequential_cells=5_000,
                        buffer_inverter_cells=5_000, signal_nets=60_000,
                        clock_sinks=5_000).run()
        assert small[-1].std_cells < 120_000

    def test_validation(self):
        with pytest.raises(ValueError, match="sequential"):
            PnrFlow(std_cells=10, sequential_cells=20)
