"""Unit tests for the clock-tree synthesis model (Table IX QoR)."""

import pytest

from repro.physical.cts import TABLE9_CTS_PAPER, ClockTreeSynthesizer


@pytest.fixture(scope="module")
def result():
    return ClockTreeSynthesizer().build()


class TestFabricatedTree:
    def test_sink_count(self, result):
        assert result.sinks == 18_413

    def test_levels_match_paper(self, result):
        assert result.levels == TABLE9_CTS_PAPER["Levels"]

    def test_buffer_count_near_paper(self, result):
        assert abs(result.buffers - TABLE9_CTS_PAPER["Clock_tree_buffers"]) <= 5

    def test_skew_near_240ps(self, result):
        assert abs(result.global_skew_ps - 240) <= 15

    def test_insertion_delays(self, result):
        assert abs(result.longest_insertion_ns - 2.079) < 0.05
        assert abs(result.shortest_insertion_ns - 1.838) < 0.05
        assert result.shortest_insertion_ns < result.longest_insertion_ns

    def test_skew_is_delay_difference(self, result):
        assert result.global_skew_ps == pytest.approx(
            (result.longest_insertion_ns - result.shortest_insertion_ns) * 1000
        )

    def test_table9_block_format(self, result):
        block = result.table9_block()
        assert block["clock_name"] == "HCLK"
        assert block["cts_corner"] == "slow"


class TestScalingBehaviour:
    def test_fewer_sinks_fewer_buffers(self):
        cts = ClockTreeSynthesizer()
        xs, ys = cts.generate_sinks(2000)
        small = cts.build(xs, ys)
        assert small.buffers < 100

    def test_larger_core_longer_insertion(self):
        small = ClockTreeSynthesizer(core_width_um=1000, core_height_um=1000)
        xs, ys = small.generate_sinks(5000)
        small_result = small.build(xs, ys)
        big = ClockTreeSynthesizer(core_width_um=6000, core_height_um=6000)
        xb, yb = big.generate_sinks(5000)
        big_result = big.build(xb, yb)
        assert big_result.longest_insertion_ns > small_result.longest_insertion_ns

    def test_deterministic(self):
        a = ClockTreeSynthesizer(seed=1).build()
        b = ClockTreeSynthesizer(seed=1).build()
        assert a.levels == b.levels and a.buffers == b.buffers


class TestValidation:
    def test_empty_sinks(self):
        with pytest.raises(ValueError):
            ClockTreeSynthesizer().build([], [])

    def test_mismatched_coordinates(self):
        with pytest.raises(ValueError):
            ClockTreeSynthesizer().build([1.0], [1.0, 2.0])

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            ClockTreeSynthesizer(core_width_um=0)

    def test_bad_sink_count(self):
        with pytest.raises(ValueError):
            ClockTreeSynthesizer().generate_sinks(0)
