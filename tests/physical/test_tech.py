"""Unit tests for technology nodes and scaling factors."""

import pytest

from repro.physical.tech import (
    GF55_LPE,
    GF7,
    ScalingFactors,
    barrett_scaling,
    classical_dennard_estimate,
)


class TestScalingFactors:
    def test_paper_measured_values(self):
        """Section VII: area / 16.7, critical path / 3.7."""
        s = barrett_scaling()
        assert s.area_ratio == 16.7
        assert s.delay_ratio == 3.7

    def test_scale_area(self):
        s = ScalingFactors(area_ratio=4.0, delay_ratio=2.0, source="test")
        assert s.scale_area(8.0) == 2.0

    def test_scale_delay(self):
        s = ScalingFactors(area_ratio=4.0, delay_ratio=2.0, source="test")
        assert s.scale_delay(10.0) == 5.0

    def test_measured_below_dennard(self):
        """Real scaling (16.7x) is far below naive (55/7)^2 ~ 62x — SRAM
        periphery and wires do not shrink like logic."""
        ideal = classical_dennard_estimate(GF55_LPE, GF7)
        assert ideal.area_ratio > barrett_scaling().area_ratio * 2


class TestNodes:
    def test_cofhee_node(self):
        assert GF55_LPE.drawn_nm == 55
        assert GF55_LPE.core_voltage == 1.2  # Section III-A supplies

    def test_nodes_distinct(self):
        assert GF55_LPE != GF7
