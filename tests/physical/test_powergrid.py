"""Unit tests for the power-grid plan (Section V-B)."""

import pytest

from repro.physical.floorplan import Floorplanner
from repro.physical.powergrid import PowerGridPlan


@pytest.fixture(scope="module")
def grid():
    return PowerGridPlan()


class TestStructure:
    def test_ring_and_strap_plan(self, grid):
        desc = grid.describe()
        assert desc["ring_pairs"] == 4  # four VDD/VSS ring pairs
        assert desc["ring_layers"] == ("BA", "BB")
        assert desc["top_pitch_um"] == 30.0
        assert desc["mid_pitch_um"] == 50.0
        assert desc["m2_m3_straps"] == 0  # pin-access rule (Section V-B)

    def test_strap_counts_from_pitch(self, grid):
        assert grid.top_strap_count == int(3400 // 30)
        assert grid.mid_strap_count == int(3400 // 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerGridPlan(core_width_um=0)


class TestIrDrop:
    def test_within_signoff_budget(self, grid):
        """Static IR drop under 5% of the 1.2 V supply."""
        assert grid.ir_drop_ok()
        assert grid.worst_ir_drop_mv() < 60.5

    def test_scales_with_current(self, grid):
        assert grid.worst_ir_drop_mv(0.1) == pytest.approx(
            2 * grid.worst_ir_drop_mv(0.05)
        )

    def test_zero_current(self, grid):
        assert grid.worst_ir_drop_mv(0.0) == 0.0

    def test_negative_current_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.worst_ir_drop_mv(-0.1)


class TestChannelCoverage:
    def test_fabricated_channels_all_covered(self, grid):
        """The flow guarantee: every memory channel hosts a strap pair."""
        fp = Floorplanner()
        result = fp.run()
        channels = fp.channel_positions(result)
        widths = [20.0] * len(channels)  # fabricated channel width
        assert grid.verify_channel_coverage(widths) == []

    def test_narrow_channel_flagged(self, grid):
        assert grid.verify_channel_coverage([3.0]) == [3.0]

    def test_strap_count_in_channel(self, grid):
        assert grid.channel_strap_count(20.0) >= 3
        assert grid.channel_strap_count(5.0) == 0

    def test_negative_width_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.channel_strap_count(-1.0)
