"""Unit tests for the redundant-via model (Table VII)."""

import pytest

from repro.physical.vias import TABLE7_PAPER, RedundantViaModel, table7_rows


class TestFabricatedRun:
    def test_all_layers_present(self):
        layers = {r["layer"] for r in table7_rows()}
        assert layers == {"V1", "V2", "V3", "V4", "WT", "WA"}

    def test_percentages_match_paper(self):
        for row in table7_rows():
            assert abs(row["multi_cut_pct"] - row["paper_pct"]) < 0.1, row["layer"]

    def test_totals_match_paper(self):
        for row in table7_rows():
            assert abs(row["total"] - row["paper_total"]) < 20

    def test_lower_layers_above_98pct(self):
        """'more than 98% conversion ... for the lower via layers'."""
        for row in table7_rows():
            if row["layer"] in ("V1", "V2", "V3", "V4"):
                assert row["multi_cut_pct"] > 98.0

    def test_v1_is_worst_lower_layer(self):
        """V1 sits in the most congested routing — lowest conversion."""
        rows = {r["layer"]: r["multi_cut_pct"] for r in table7_rows()}
        assert rows["V1"] == min(rows["V1"], rows["V2"], rows["V3"], rows["V4"])

    def test_overall_conversion(self):
        assert RedundantViaModel().overall_conversion_pct() > 99.0


class TestModelBehaviour:
    def test_via_counts_scale_with_nets(self):
        small = RedundantViaModel(signal_nets=100_000).run()
        big = RedundantViaModel(signal_nets=400_000).run()
        assert big[0].total == pytest.approx(4 * small[0].total, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            RedundantViaModel(signal_nets=0)

    def test_paper_reference_self_consistent(self):
        for layer, (multi, total, pct) in TABLE7_PAPER.items():
            assert multi / total * 100 == pytest.approx(pct, abs=0.01)
