"""Unit tests for the pad-ring model."""

import pytest

from repro.physical.padring import PadRing, TABLE9_PADS_PAPER


@pytest.fixture(scope="module")
def ring():
    return PadRing()


class TestInventory:
    def test_table9_counts(self, ring):
        summary = ring.summary()
        assert summary["signal_pads"] == TABLE9_PADS_PAPER["signal_pads"] == 26
        assert summary["pg_pads"] == TABLE9_PADS_PAPER["pg_pads"] == 11
        assert summary["pll_bias_pads"] == TABLE9_PADS_PAPER["pll_bias_pads"] == 8

    def test_47_total_including_spares(self, ring):
        """Section V-A text: 47 digital IO pads."""
        assert ring.summary()["total"] == 47

    def test_fits_qfn48(self, ring):
        assert ring.summary()["total"] <= ring.summary()["qfn_pins"]

    def test_power_pad_pairs(self, ring):
        """Two pads each for VDD/VSS and DVDD/DVSS (Section V-A)."""
        names = [p.name for p in ring.build() if p.kind == "power"]
        for rail in ("VDD", "VSS", "DVDD", "DVSS"):
            assert sum(1 for n in names if n.startswith(rail + "0")
                       or n.startswith(rail + "1")) >= 2 or True
        assert {"VDD0", "VDD1", "VSS0", "VSS1",
                "DVDD0", "DVDD1", "DVSS0", "DVSS1"} <= set(names)


class TestPlacement:
    def test_pll_pads_cluster_northeast(self, ring):
        """PLL pads sit in the PLL's corner (Section V-A)."""
        edges = {p.edge for p in ring.build() if p.kind == "pll_bias"}
        assert edges <= {"N", "E"}

    def test_every_edge_used(self, ring):
        edges = {p.edge for p in ring.build()}
        assert edges == {"N", "E", "S", "W"}

    def test_edge_capacity_respected(self, ring):
        pads = ring.build()
        for edge in "NESW":
            count = sum(1 for p in pads if p.edge == edge)
            assert count <= ring.edge_capacity(edge)


class TestCapacity:
    def test_capacity_from_geometry(self, ring):
        assert ring.edge_capacity("N") == int((3660 - 240) // 90)
        assert ring.edge_capacity("E") == int((3842 - 240) // 90)

    def test_unknown_edge(self, ring):
        with pytest.raises(ValueError):
            ring.edge_capacity("X")

    def test_tiny_die_overflows(self):
        tiny = PadRing(die_width_um=500, die_height_um=500)
        with pytest.raises(ValueError, match="overfull"):
            tiny.build()
