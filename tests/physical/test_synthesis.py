"""Unit tests for the Table VIII synthesis-area estimator."""

import pytest

from repro.physical.synthesis import (
    TABLE8_PAPER_MM2,
    TABLE8_PAPER_TOTAL_MM2,
    SynthesisEstimator,
    table8_rows,
)


@pytest.fixture(scope="module")
def est():
    return SynthesisEstimator()


class TestBlockAreas:
    def test_every_block_within_1pct(self):
        for row in table8_rows():
            assert abs(row["error_pct"]) < 1.0, row["module"]

    def test_total_matches_paper(self, est):
        assert est.total_mm2() == pytest.approx(TABLE8_PAPER_TOTAL_MM2, rel=0.002)

    def test_dual_port_premium_about_2x(self, est):
        sp = est.sram_bank_mm2(8192, 128, dual_port=False, instances=4)
        dp = est.sram_bank_mm2(8192, 128, dual_port=True, instances=16)
        assert 2.0 < dp / sp < 2.4  # Section VIII-B: "2x the area"

    def test_sram_scales_with_bits(self, est):
        half = est.sram_bank_mm2(4096, 128, dual_port=False, instances=4)
        full = est.sram_bank_mm2(8192, 128, dual_port=False, instances=4)
        assert full > 1.9 * half - 0.01

    def test_memory_dominates(self, est):
        """Section III-A: SRAMs occupy the majority of the area."""
        assert est.memory_fraction() > 0.85

    def test_pe_quadratic_in_width(self, est):
        """Halving the multiplier width ~quarters the multiplier area."""
        full = est.pe_mm2(128)
        half = est.pe_mm2(64)
        assert half < full / 2.5

    def test_ahb_scales_with_ports(self, est):
        assert est.ahb_mm2(10, 11) > est.ahb_mm2(5, 6)

    def test_validation(self, est):
        with pytest.raises(ValueError):
            est.sram_bank_mm2(0, 128, False, 4)
        with pytest.raises(ValueError):
            est.pe_mm2(0)
        with pytest.raises(KeyError):
            est.fixed_mm2("FPU")


class TestPaperReference:
    def test_paper_table_consistency(self):
        """The reference table itself sums to the reported total."""
        assert sum(TABLE8_PAPER_MM2.values()) == pytest.approx(
            TABLE8_PAPER_TOTAL_MM2, abs=0.001
        )

    def test_delays_reported_where_available(self):
        rows = table8_rows()
        pe = next(r for r in rows if r["module"] == "PE")
        assert pe["delay_ns"] == 5.65
        # Post-synthesis paths above 4 ns close in the backend (III-K):
        mdmc = next(r for r in rows if r["module"] == "MDMC")
        assert mdmc["delay_ns"] < 4.22  # only MDMC beats the memory path
