"""Shared fixtures: toy parameter sets, chips, and drivers.

Tests default to small polynomial degrees (16-256) where the bit-exact
'pe' fidelity is affordable; the paper-scale degrees (2^12, 2^13) appear
only in timing-fidelity and slow-marked tests.
"""

from __future__ import annotations

import random

import pytest

from repro.bfv.params import BfvParameters
from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.polymath.primes import ntt_friendly_prime


# The --slow option and the paper_scale skip logic live in the repo-root
# conftest.py, shared with benchmarks/.


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0F4EE)


@pytest.fixture(scope="session")
def toy_q64() -> int:
    """NTT-friendly 40-bit prime for degree-64 tests."""
    return ntt_friendly_prime(64, 40)


@pytest.fixture(scope="session")
def toy_params() -> BfvParameters:
    """Small insecure BFV parameters for scheme tests."""
    return BfvParameters.toy(n=16, log_q=60)


@pytest.fixture
def chip() -> CoFHEE:
    """Default (vector-fidelity) chip instance."""
    return CoFHEE()


@pytest.fixture
def pe_chip() -> CoFHEE:
    """Bit-exact PE-fidelity chip for datapath verification."""
    return CoFHEE(ChipConfig(fidelity="pe"))


@pytest.fixture
def timing_chip() -> CoFHEE:
    """Timing-only chip for paper-scale latency checks."""
    return CoFHEE(ChipConfig(fidelity="timing"))


@pytest.fixture
def driver(chip: CoFHEE) -> CofheeDriver:
    return CofheeDriver(chip)


@pytest.fixture
def programmed_driver(driver: CofheeDriver, toy_q64: int) -> CofheeDriver:
    """Driver with q programmed for n = 64 and twiddles loaded."""
    driver.program(toy_q64, 64)
    return driver


def random_poly(rng: random.Random, n: int, q: int) -> list[int]:
    return [rng.randrange(q) for _ in range(n)]
