"""Batched RNS tower engine: the whole hot math path, vectorized.

Section II-D of the paper observes that SEAL keeps its RNS towers
word-sized precisely to unlock vectorized arithmetic. The pure-Python
:class:`~repro.polymath.ntt.NttContext` is exact for any modulus width
(CoFHEE's native 128 bits) but loops per butterfly; the previous numpy
fast path (:mod:`repro.polymath.fastntt`) vectorized one tower at a time.
This module finishes the trade: a ciphertext's *full tower stack* lives in
one ``(num_towers, n)`` int64 ndarray, and every operation — forward and
inverse negacyclic NTT, Hadamard and tensor products, additions, CRT
recombination — runs across all towers at once with a per-tower modulus
column.

Two butterfly kernels, selected per basis:

* **Shoup lazy** (all moduli below 2^30): every twiddle ``w`` carries a
  precomputed Shoup constant ``w' = floor(w * 2^32 / q)`` so the modular
  product ``w*x mod q`` costs one high-half estimate and one fused
  multiply-subtract — no division — and lands in ``[0, 2q)``. Values stay
  *lazily reduced* in ``[0, 4q)`` (forward) / ``[0, 2q)`` (inverse)
  between butterfly stages, with one full reduction at the end. This is
  the Harvey/SEAL lazy-butterfly formulation, vectorized.
* **Plain** (any modulus up to 2^31): per-stage ``% q`` with int64-safe
  products, the same kernel the single-tower fast path used.

Both are **bit-identical** to :class:`NttContext` — the twiddle tables are
built by the same per-tower contexts, and laziness only defers (never
changes) the mod-q result. The property suite proves it across random
(n, basis, tower-count) grids.

Engine selection is capability-based: :func:`get_engine` returns a cached
engine when every tower modulus is an NTT-friendly prime of at most
:data:`MAX_MODULUS_BITS` bits, and ``None`` otherwise — callers fall back
to the exact pure-Python path for wide moduli. Setting the environment
variable ``REPRO_ENGINE=off`` disables auto-selection globally (the
benchmark harness uses this to measure the pure-Python baseline).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.polymath.modmath import modinv
from repro.polymath.ntt import NttContext
from repro.polymath.primes import is_prime
from repro.polymath.rns import RnsBasis

#: Products a*b must fit int64: a, b < 2^31 keeps a*b < 2^62.
MAX_MODULUS_BITS = 31

#: Lazy (Shoup) kernels keep values in [0, 4q); 4q must fit the 2^32
#: input domain of the 32-bit Shoup estimate, so q stays below 2^30.
SHOUP_LAZY_MAX_BITS = 30

#: Shift width of the precomputed Shoup constants.
_SHOUP_SHIFT = 32
_SHOUP_SHIFT_U64 = np.uint64(_SHOUP_SHIFT)


def engine_enabled() -> bool:
    """Whether auto-selection of the batched engine is globally enabled.

    ``REPRO_ENGINE=off`` (or ``0`` / ``disabled``) forces every auto
    caller back onto the exact pure-Python path; explicit constructions
    of :class:`BatchedRnsEngine` are unaffected.
    """
    return os.environ.get("REPRO_ENGINE", "auto").lower() not in (
        "off", "0", "disabled",
    )


def supports(moduli: "RnsBasis | Sequence[int]", n: int) -> bool:
    """Can the batched engine run this basis at degree ``n``?

    Requires a power-of-two degree and, per tower, an NTT-friendly prime
    (``q === 1 mod 2n``) of at most :data:`MAX_MODULUS_BITS` bits. Wide
    moduli (e.g. SEAL's 54/55-bit CPU towers or CoFHEE's native 109-bit
    towers) fail the check and stay on the exact pure-Python path.
    """
    mods = moduli.moduli if isinstance(moduli, RnsBasis) else tuple(moduli)
    if n < 2 or n & (n - 1) or not mods:
        return False
    return all(
        q.bit_length() <= MAX_MODULUS_BITS
        and (q - 1) % (2 * n) == 0
        and is_prime(q)
        for q in mods
    )


def _shoup_mul_u64(
    x: np.ndarray, w: np.ndarray, w_shoup: np.ndarray, q: np.ndarray
) -> np.ndarray:
    """``w * x mod q`` into ``[0, 2q)`` via the Shoup estimate (uint64).

    Requires ``x < 2^32`` (the lazy domain guarantees ``x < 4q``) and
    ``w < q``; ``w_shoup = floor(w << 32 / q)``. The uint64 products wrap
    mod 2^64 but the true result fits, so the subtraction is exact.
    """
    t = (x * w_shoup) >> _SHOUP_SHIFT_U64
    return x * w - t * q


@lru_cache(maxsize=128)
def _build_engine(moduli: tuple[int, ...], n: int) -> "BatchedRnsEngine":
    return BatchedRnsEngine(RnsBasis(moduli), n)


def get_engine(basis: RnsBasis, n: int) -> "BatchedRnsEngine | None":
    """The shared cached engine for ``(basis, n)``, or ``None``.

    ``None`` means the caller must use the exact pure-Python path: the
    basis has a wide or non-NTT-friendly tower, or the engine was disabled
    via ``REPRO_ENGINE=off``. Engines are cached per (moduli, n) so every
    consumer — scheme multiplier, software baseline, chip-pool
    cross-check — shares one set of twiddle/Shoup tables.
    """
    if not engine_enabled() or not supports(basis, n):
        return None
    return _build_engine(basis.moduli, n)


def require_engine(basis: RnsBasis, n: int) -> "BatchedRnsEngine":
    """The shared cached engine for an *explicitly requested* basis.

    Unlike :func:`get_engine`, this ignores the ``REPRO_ENGINE`` kill
    switch (which only governs auto-selection) and raises instead of
    returning ``None`` when the basis cannot run on the engine.

    Raises:
        ValueError: if any tower is wide or non-NTT-friendly at ``n``.
    """
    if not supports(basis, n):
        raise ValueError(
            f"{basis!r} does not qualify for the batched engine at "
            f"n = {n} (wide or non-NTT-friendly towers)"
        )
    return _build_engine(basis.moduli, n)


class BatchedRnsEngine:
    """All towers of an RNS polynomial stack, transformed at once.

    The working representation is a ``(num_towers, n)`` int64 array whose
    row ``i`` holds the polynomial's residues mod ``moduli[i]``. All
    methods treat stacks as immutable inputs and return new arrays, fully
    reduced into ``[0, q_i)`` per row.

    Args:
        basis: pairwise-coprime NTT-friendly prime towers, each at most
            :data:`MAX_MODULUS_BITS` bits.
        n: polynomial degree (power of two).

    Raises:
        ValueError: if any tower cannot run the negacyclic NTT at ``n``
            or exceeds the int64-safe width.
    """

    def __init__(self, basis: RnsBasis, n: int):
        wide = [q for q in basis.moduli if q.bit_length() > MAX_MODULUS_BITS]
        if wide:
            raise ValueError(
                f"moduli of {[q.bit_length() for q in wide]} bits exceed the "
                f"int64-safe {MAX_MODULUS_BITS}; use NttContext for wide towers"
            )
        # Per-tower contexts build (and validate) the twiddle tables; the
        # engine sharing them with NttContext is what makes bit-identity
        # a construction property rather than a numerical accident.
        self._ctxs = tuple(NttContext(n, q) for q in basis.moduli)
        self._init_tables(basis, n)

    def _init_tables(self, basis: RnsBasis, n: int) -> None:
        self.basis = basis
        self.n = n
        self.num_towers = len(basis)
        self.modulus = basis.modulus
        self._q = np.asarray(basis.moduli, dtype=np.int64)[:, None]  # (L, 1)
        self._psi = np.asarray(
            [ctx._psi_brv for ctx in self._ctxs], dtype=np.int64
        )
        self._ipsi = np.asarray(
            [ctx._ipsi_brv for ctx in self._ctxs], dtype=np.int64
        )
        self._n_inv = np.asarray(
            [ctx.n_inv for ctx in self._ctxs], dtype=np.int64
        )[:, None]
        # Garner mixed-radix constants for CRT recombination: for tower
        # ``k``, ``prefix[i] = (q_0 * ... * q_{i-1}) mod q_k`` and ``inv``
        # is the inverse of the full prefix product mod q_k — the digit
        # computation then stays entirely in vectorized int64.
        self._garner: list[tuple[list[int], int]] = [([], 1)]
        for k in range(1, self.num_towers):
            qk = basis.moduli[k]
            prefix = []
            prod = 1
            for i in range(k):
                prefix.append(prod % qk)
                prod *= basis.moduli[i]
            self._garner.append((prefix, modinv(prod % qk, qk)))
        self.lazy = all(
            q.bit_length() <= SHOUP_LAZY_MAX_BITS for q in basis.moduli
        )
        if self.lazy:
            # Shoup constants: floor(w << 32 / q), one per twiddle. The
            # shifted products stay below 2^62, so int64 arithmetic is
            # exact; everything is stored unsigned so the lazy kernels run
            # natively in uint64 (values never go negative).
            self._psi_shoup = (
                (self._psi << np.int64(_SHOUP_SHIFT)) // self._q
            ).astype(np.uint64)
            self._ipsi_shoup = (
                (self._ipsi << np.int64(_SHOUP_SHIFT)) // self._q
            ).astype(np.uint64)
            self._n_inv_shoup = (
                (self._n_inv << np.int64(_SHOUP_SHIFT)) // self._q
            ).astype(np.uint64)
            self._psi_u64 = self._psi.astype(np.uint64)
            self._ipsi_u64 = self._ipsi.astype(np.uint64)
            self._n_inv_u64 = self._n_inv.astype(np.uint64)
            self._q_u64 = self._q.astype(np.uint64)

    # ------------------------------------------------------------------
    # Stack construction / deconstruction
    # ------------------------------------------------------------------

    def decompose(self, coeffs: Sequence[int]) -> np.ndarray:
        """Big-modulus coefficients -> ``(num_towers, n)`` residue stack.

        Accepts arbitrary (including negative/centered) Python ints; the
        big-int work is one object-array conversion plus one C-looped
        ``% q`` pass per tower.
        """
        if len(coeffs) != self.n:
            raise ValueError(f"expected {self.n} coefficients, got {len(coeffs)}")
        obj = np.asarray(coeffs, dtype=object)
        return np.asarray(
            [obj % q for q in self.basis.moduli], dtype=np.int64
        )

    def stack(self, towers: Sequence[Sequence[int]]) -> np.ndarray:
        """Per-tower residue vectors -> validated ``(num_towers, n)`` stack."""
        a = np.asarray(towers, dtype=np.int64)
        if a.shape != (self.num_towers, self.n):
            raise ValueError(
                f"expected a ({self.num_towers}, {self.n}) tower stack, "
                f"got {a.shape}"
            )
        return a % self._q

    def tower_rows(self, stack: np.ndarray) -> list[list[int]]:
        """Stack -> per-tower Python-int vectors (driver/wire form)."""
        return stack.tolist()

    def reconstruct(self, stack: np.ndarray) -> list[int]:
        """CRT-recombine a stack into big-modulus coefficients.

        Garner's mixed-radix algorithm, vectorized across coefficients:
        the digit extraction runs entirely in int64 (every intermediate is
        reduced mod one word-sized tower) and only the final Horner
        accumulation touches Python big ints — no per-coefficient wide
        modular reduction at all. The result is the unique representative
        in ``[0, q)``, bit-identical to
        :meth:`~repro.polymath.rns.RnsBasis.reconstruct_poly`.
        """
        stack = self._prepare(stack)
        moduli = self.basis.moduli
        digits = np.empty_like(stack)
        digits[0] = stack[0]
        for k in range(1, self.num_towers):
            qk = moduli[k]
            prefix, inv = self._garner[k]
            acc = digits[0] % qk
            for i in range(1, k):
                acc = (acc + digits[i] * prefix[i]) % qk
            digits[k] = (stack[k] - acc) * inv % qk
        out = digits[-1].astype(object)
        for k in range(self.num_towers - 2, -1, -1):
            out = out * moduli[k] + digits[k]
        return [int(v) for v in out]

    def centered_reconstruct(self, stack: np.ndarray) -> list[int]:
        """CRT-recombine into the symmetric interval ``(-q/2, q/2]``."""
        out = self.centered_values(stack)
        return [int(v) for v in out]

    def _garner_values(self, a: np.ndarray) -> np.ndarray:
        """Garner recombination of reduced ``(B, L, n)`` stacks.

        Returns a ``(B, n)`` object array of values in ``[0, P)``. The
        digit extraction stays in int64 (every intermediate is reduced
        mod one word-sized tower); only the final Horner accumulation
        touches Python big ints, as one C-looped object pass per tower.
        """
        moduli = self.basis.moduli
        digits = np.empty_like(a)
        digits[:, 0] = a[:, 0]
        for k in range(1, self.num_towers):
            qk = moduli[k]
            prefix, inv = self._garner[k]
            acc = digits[:, 0] % qk
            for i in range(1, k):
                acc = (acc + digits[:, i] * prefix[i]) % qk
            digits[:, k] = (a[:, k] - acc) * inv % qk
        # Combine adjacent digits in int64 first (``d_k + q_k * d_{k+1}``
        # stays below 2^62 for sub-31-bit towers), so the object-dtype
        # Horner pass runs over half as many limbs — same exact value,
        # half the big-int vector operations.
        limbs: list[np.ndarray] = []
        limb_moduli: list[int] = []
        k = 0
        while k + 1 < self.num_towers:
            limbs.append(digits[:, k] + moduli[k] * digits[:, k + 1])
            limb_moduli.append(moduli[k] * moduli[k + 1])
            k += 2
        if k < self.num_towers:
            limbs.append(digits[:, k])
            limb_moduli.append(moduli[k])
        out = limbs[-1].astype(object)
        for i in range(len(limbs) - 2, -1, -1):
            out = out * limb_moduli[i] + limbs[i]
        return out

    def centered_values(self, stack: np.ndarray) -> np.ndarray:
        """CRT values in ``(-P/2, P/2]`` as an object array.

        Accepts one ``(L, n)`` stack (returns shape ``(n,)``) or a batch
        ``(k, L, n)`` (returns ``(k, n)``). Bit-identical per coefficient
        to :meth:`centered_reconstruct`, without the Python list pass —
        callers that keep computing on the exact values (the scheme's
        ``t/q`` rounding, the relinearization fold) stay vectorized.
        """
        a, squeeze = self._prepare_nd(stack)
        out = self._garner_values(a)
        modulus = self.modulus
        out = np.where(out > modulus >> 1, out - modulus, out)
        return out[0] if squeeze else out

    def round_scale(self, stack: np.ndarray, t: int, q: int) -> list:
        """The Eq. 4 scaling: ``round(t * c / q) mod q`` per coefficient.

        ``c`` is the centered CRT value of each coefficient of ``stack``
        (the exact integer tensor product, carried in this engine's
        auxiliary basis). Rounding is half-away-from-zero, bit-identical
        to the scheme's scalar ``_round_div(t * c, q) % q``, via the
        floor-division identity ``(2*t*c + q - [c < 0]) // (2*q)`` — one
        vectorized object pass instead of a per-coefficient Python loop.

        Accepts one ``(L, n)`` stack (returns ``list[int]``) or a batch
        ``(k, L, n)`` (returns ``k`` coefficient lists — e.g. the three
        tensor components scale in one call).
        """
        if t < 1 or q < 1:
            raise ValueError("round_scale needs positive t and q")
        a, squeeze = self._prepare_nd(stack)
        c = self.centered_values(a)
        # adj must stay an object array: q may exceed int64.
        adj = np.full(c.shape, q, dtype=object)
        adj[c < 0] = q - 1
        scaled = (2 * t * c + adj) // (2 * q) % q
        if squeeze:
            return [int(v) for v in scaled[0]]
        return [[int(v) for v in row] for row in scaled]

    def digit_decompose(
        self, coeffs: Sequence[int], digit_bits: int, num_digits: int
    ) -> np.ndarray:
        """Base-T digit decomposition onto the full tower stack.

        Splits each *canonical* (``[0, q)``) coefficient into
        ``num_digits`` base-``2**digit_bits`` digits and broadcasts every
        digit polynomial across the engine's towers: the result is a
        ``(num_digits, num_towers, n)`` int64 batch, ready for one
        batched :meth:`forward` pass (the relinearization fold).

        Raises:
            ValueError: if any coefficient is negative — a centered
                coefficient would sign-extend under the mask and corrupt
                the fold, exactly like the scalar
                ``Bfv._decompose_digits`` path.
        """
        if digit_bits < 1 or num_digits < 1:
            raise ValueError("digit_bits and num_digits must be >= 1")
        obj = np.asarray(coeffs, dtype=object)
        if obj.shape != (self.n,):
            raise ValueError(f"expected {self.n} coefficients, got {obj.shape}")
        if bool((obj < 0).any()):
            raise ValueError(
                "digit decomposition requires canonical coefficients in "
                "[0, q); got a negative (centered?) coefficient"
            )
        mask = (1 << digit_bits) - 1
        rows = np.empty((num_digits, self.n), dtype=object)
        for i in range(num_digits):
            rows[i] = obj & mask
            obj = obj >> digit_bits
        if mask < min(self.basis.moduli):
            # Digits already lie below every tower modulus: one int64
            # conversion, broadcast across towers, zero reduction passes.
            flat = rows.astype(np.int64)
            return np.broadcast_to(
                flat[:, None, :], (num_digits, self.num_towers, self.n)
            ).copy()
        # Digits are < 2**digit_bits; the per-tower reduction keeps the
        # stack int64-safe even for digit widths near the modulus width.
        return np.asarray(
            [[row % q for q in self.basis.moduli] for row in rows],
            dtype=np.int64,
        ).reshape(num_digits, self.num_towers, self.n)

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------

    def forward(self, stack: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT (Cooley-Tukey DIT), all towers at once.

        Natural order in, bit-reversed order out per tower — identical
        values to ``NttContext.forward`` row by row. Accepts one stack
        ``(num_towers, n)`` or a batch ``(k, num_towers, n)`` — e.g. the
        Eq. 4 tensor transforms all four operand polynomials in one pass.
        """
        a, squeeze = self._prepare_nd(stack)
        B, L, n = a.shape
        m, t = 1, n
        if self.lazy:
            a = a.astype(np.uint64)
            q2 = (2 * self._q_u64).reshape(1, L, 1, 1)
            qq = self._q_u64.reshape(1, L, 1, 1)
            while m < n:
                t >>= 1
                a = a.reshape(B, L, m, 2 * t)
                u = a[..., :t]
                v = a[..., t:]
                s = self._psi_u64[None, :, m : 2 * m, None]
                ss = self._psi_shoup[None, :, m : 2 * m, None]
                # Conditional subtract in two passes: u - 2q wraps above
                # 2^63 in uint64 exactly when u < 2q, so min() selects it.
                u = np.minimum(u, u - q2)  # u < 2q
                vs = _shoup_mul_u64(v, s, ss, qq)  # < 2q
                out = np.empty_like(a)
                np.add(u, vs, out=out[..., :t])  # < 4q
                np.subtract(u + q2, vs, out=out[..., t:])  # < 4q
                a = out
                m <<= 1
            a = (a.reshape(B, L, n) % self._q_u64).astype(np.int64)
            return a[0] if squeeze else a
        q4 = self._q[None, :, :, None]
        while m < n:
            t >>= 1
            a = a.reshape(B, L, m, 2 * t)
            u = a[..., :t]
            v = a[..., t:]
            s = self._psi[None, :, m : 2 * m, None]
            vs = v * s % q4
            out = np.empty_like(a)
            out[..., :t] = (u + vs) % q4
            out[..., t:] = (u - vs) % q4
            a = out
            m <<= 1
        a = a.reshape(B, L, n)
        return a[0] if squeeze else a

    def inverse(self, stack: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT (Gentleman-Sande DIF) with n^-1 scaling.

        Bit-reversed order in, natural order out — identical values to
        ``NttContext.inverse`` row by row. Accepts one stack or a batch,
        like :meth:`forward`.
        """
        a, squeeze = self._prepare_nd(stack)
        B, L, n = a.shape
        t, m = 1, n
        if self.lazy:
            a = a.astype(np.uint64)
            q2 = (2 * self._q_u64).reshape(1, L, 1, 1)
            qq = self._q_u64.reshape(1, L, 1, 1)
            while m > 1:
                h = m >> 1
                a = a.reshape(B, L, h, 2 * t)
                u = a[..., :t]
                v = a[..., t:]
                s = self._ipsi_u64[None, :, h : 2 * h, None]
                ss = self._ipsi_shoup[None, :, h : 2 * h, None]
                summed = u + v  # < 4q
                summed = np.minimum(summed, summed - q2)  # < 2q
                diff = u + (q2 - v)  # u - v + 2q, < 4q
                out = np.empty_like(a)
                out[..., :t] = summed
                np.subtract(
                    diff * s, ((diff * ss) >> _SHOUP_SHIFT_U64) * qq,
                    out=out[..., t:],
                )  # Shoup product, < 2q
                a = out
                t <<= 1
                m = h
            a = a.reshape(B, L, n)
            ninv = self._n_inv_u64[None, :, :]
            r = _shoup_mul_u64(a, ninv, self._n_inv_shoup[None, :, :],
                               self._q_u64[None, :, :])  # < 2q
            qr = self._q_u64[None, :, :]
            r = np.where(r >= qr, r - qr, r).astype(np.int64)
            return r[0] if squeeze else r
        q4 = self._q[None, :, :, None]
        while m > 1:
            h = m >> 1
            a = a.reshape(B, L, h, 2 * t)
            u = a[..., :t]
            v = a[..., t:]
            s = self._ipsi[None, :, h : 2 * h, None]
            out = np.empty_like(a)
            out[..., :t] = (u + v) % q4
            out[..., t:] = (u - v) * s % q4
            a = out
            t <<= 1
            m = h
        a = a.reshape(B, L, n) * self._n_inv[None, :, :] % self._q[None, :, :]
        return a[0] if squeeze else a

    # ------------------------------------------------------------------
    # Pointwise arithmetic (NTT or coefficient domain alike)
    # ------------------------------------------------------------------

    def pointwise_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Hadamard product per tower (int64-safe: operands below 2^31)."""
        return a * b % self._q

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-tower modular addition."""
        return (a + b) % self._q

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-tower modular subtraction."""
        return (a - b) % self._q

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-tower polynomial product modulo ``x^n + 1``."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(self.pointwise_mul(fa, fb))

    def tensor(
        self,
        a0: np.ndarray,
        a1: np.ndarray,
        b0: np.ndarray,
        b1: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The Eq. 4 mod-q tensor across every tower at once.

        Four batched forward NTTs, four Hadamard products, one addition,
        three batched inverse NTTs — exactly the per-tower op mix of
        ``SoftwareBfv.tower_multiply`` and the chip's Algorithm 3, with
        all towers riding one vectorized pass.
        """
        fa0, fa1, fb0, fb1 = self.forward(np.stack((a0, a1, b0, b1)))
        q = self._q
        y0 = fa0 * fb0 % q
        y2 = fa1 * fb1 % q
        y1 = (fa0 * fb1 % q + fa1 * fb0 % q) % q
        out = self.inverse(np.stack((y0, y1, y2)))
        return out[0], out[1], out[2]

    def tensor_square(
        self, a0: np.ndarray, a1: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The Eq. 4 tensor of a ciphertext with itself.

        Two batched forward NTTs instead of four — the cross term is
        ``2 * a0 * a1`` — matching the scheme's ``square`` op mix.
        """
        f0, f1 = self.forward(np.stack((a0, a1)))
        q = self._q
        y0 = f0 * f0 % q
        y2 = f1 * f1 % q
        y1 = 2 * (f0 * f1 % q) % q
        out = self.inverse(np.stack((y0, y1, y2)))
        return out[0], out[1], out[2]

    def tensor_many(self, ops: np.ndarray) -> np.ndarray:
        """Eq. 4 tensors for ``J`` operand quadruples in one transform pass.

        ``ops`` is a ``(J, 4, L, n)`` stack of decomposed operands
        ``(a0, a1, b0, b1)`` per job (pass ``(a0, a1, a0, a1)`` to
        square — the cross term ``a0*a1 + a1*a0`` reduces to the same
        residues as :meth:`tensor_square`'s ``2*a0*a1``). Returns the
        ``(J, 3, L, n)`` tensor components, bit-identical per job to
        :meth:`tensor`; the fixed per-call transform overhead (stage
        loop, tower loop) is paid once for the whole batch instead of
        once per job.
        """
        ops = np.asarray(ops, dtype=np.int64)
        if (
            ops.ndim != 4
            or ops.shape[1] != 4
            or ops.shape[2:] != (self.num_towers, self.n)
        ):
            raise ValueError(
                f"expected a (J, 4, {self.num_towers}, {self.n}) operand "
                f"stack, got {ops.shape}"
            )
        J = ops.shape[0]
        fwd = self.forward(
            ops.reshape(4 * J, self.num_towers, self.n)
        ).reshape(J, 4, self.num_towers, self.n)
        q = self._q
        fa0, fa1, fb0, fb1 = fwd[:, 0], fwd[:, 1], fwd[:, 2], fwd[:, 3]
        y0 = fa0 * fb0 % q
        y2 = fa1 * fb1 % q
        y1 = (fa0 * fb1 % q + fa1 * fb0 % q) % q
        ys = np.stack((y0, y1, y2), axis=1)
        out = self.inverse(ys.reshape(3 * J, self.num_towers, self.n))
        return out.reshape(J, 3, self.num_towers, self.n)

    def nttdomain_fold(self, fwd: np.ndarray, key_fwd: np.ndarray) -> np.ndarray:
        """Key-switch fold in the NTT domain: ``sum_d fwd[:, d] ∘ key_fwd[d]``.

        ``fwd`` is a ``(J, D, L, n)`` batch of forward-transformed digit
        polynomials (J jobs, D digits); ``key_fwd`` a ``(D, L, n)`` stack
        of forward-transformed relin-key rows. Returns the ``(J, L, n)``
        mod-q accumulation, still in NTT (bit-reversed) order — callers
        run one batched :meth:`inverse` over every job/component at once.
        Each product is reduced before accumulating so the int64 domain
        is never exceeded.
        """
        q = self._q
        acc = fwd[:, 0] * key_fwd[0] % q
        for d in range(1, key_fwd.shape[0]):
            acc = (acc + fwd[:, d] * key_fwd[d]) % q
        return acc

    # ------------------------------------------------------------------
    # Sub-views
    # ------------------------------------------------------------------

    def select(self, indices: Sequence[int]) -> "BatchedRnsEngine":
        """An engine over a subset of towers, sharing all precomputation.

        The returned engine's twiddle/Shoup tables are row slices of this
        one's — no prime search, no twiddle rebuild. This is what makes
        per-tower use (the chip pool's mod-q cross-check) as cheap as the
        batched case.
        """
        sub = object.__new__(BatchedRnsEngine)
        sub._ctxs = tuple(self._ctxs[i] for i in indices)
        sub._init_tables(self.basis.sub_basis(indices), self.n)
        return sub

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _prepare(self, stack: np.ndarray) -> np.ndarray:
        a = np.asarray(stack, dtype=np.int64)
        if a.shape != (self.num_towers, self.n):
            raise ValueError(
                f"expected a ({self.num_towers}, {self.n}) tower stack, "
                f"got {a.shape}"
            )
        return a % self._q

    def _prepare_nd(self, stack: np.ndarray) -> tuple[np.ndarray, bool]:
        """Normalize to a reduced ``(batch, num_towers, n)`` array."""
        a = np.asarray(stack, dtype=np.int64)
        squeeze = a.ndim == 2
        if squeeze:
            a = a[None, :, :]
        if a.ndim != 3 or a.shape[1:] != (self.num_towers, self.n):
            raise ValueError(
                f"expected a (..., {self.num_towers}, {self.n}) tower "
                f"stack, got {np.shape(stack)}"
            )
        return a % self._q, squeeze

    def __repr__(self) -> str:
        bits = [q.bit_length() for q in self.basis.moduli]
        kernel = "shoup-lazy" if self.lazy else "plain"
        return (
            f"BatchedRnsEngine(n={self.n}, towers={self.num_towers}, "
            f"bits={bits}, kernel={kernel})"
        )
