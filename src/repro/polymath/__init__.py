"""Polynomial and modular-arithmetic substrate underlying CoFHEE.

This package is the pure-algorithm layer: modular arithmetic (including the
Barrett reduction scheme the chip implements and the Montgomery alternative
it argues against), NTT-friendly prime generation, the Cooley-Tukey /
Gentleman-Sande NTT pair with negacyclic (psi-merged) twiddles, polynomial
rings ``Z_q[x]/(x^n + 1)``, and the Residue Number System used to split
large moduli into towers.

Everything here is bit-exact reference code; the hardware model in
:mod:`repro.core` executes the same arithmetic through a cycle-level
micro-architecture and is validated against this layer.
"""

from repro.polymath.bitrev import bit_reverse, bit_reverse_indices, bit_reverse_permute
from repro.polymath.engine import BatchedRnsEngine, get_engine
from repro.polymath.modmath import (
    BarrettReducer,
    MontgomeryReducer,
    modadd,
    modexp,
    modinv,
    modmul,
    modsub,
)
from repro.polymath.ntt import NttContext
from repro.polymath.poly import Polynomial, PolynomialRing
from repro.polymath.primes import (
    find_primitive_root,
    is_prime,
    next_smaller_ntt_prime,
    ntt_friendly_prime,
    root_of_unity,
)
from repro.polymath.rns import RnsBasis, plan_towers

__all__ = [
    "BarrettReducer",
    "BatchedRnsEngine",
    "MontgomeryReducer",
    "NttContext",
    "Polynomial",
    "PolynomialRing",
    "RnsBasis",
    "bit_reverse",
    "bit_reverse_indices",
    "bit_reverse_permute",
    "find_primitive_root",
    "get_engine",
    "is_prime",
    "modadd",
    "modexp",
    "modinv",
    "modmul",
    "modsub",
    "next_smaller_ntt_prime",
    "ntt_friendly_prime",
    "plan_towers",
    "root_of_unity",
]
