"""Residue Number System (RNS) — splitting big moduli into towers.

Section II-D of the paper: coefficient moduli larger than the machine word
are decomposed by the Chinese Remainder Theorem into coprime towers, and
every polynomial operation is applied per-tower independently. The
evaluation hinges on tower counts: for ``log q = 109`` SEAL on a 64-bit CPU
needs two towers (54 + 55 bits) while CoFHEE's native 128-bit datapath
needs one; for ``log q = 218`` SEAL needs four (~55-bit) towers and CoFHEE
two (109 + 109).

:func:`plan_towers` reproduces that planning; :class:`RnsBasis` performs the
actual decomposition/reconstruction, which tests validate as a ring
isomorphism.
"""

from __future__ import annotations

from typing import Sequence

from repro.polymath.modmath import modinv
from repro.polymath.primes import next_smaller_ntt_prime, ntt_friendly_prime


class RnsBasis:
    """A CRT basis of pairwise-coprime moduli.

    Attributes:
        moduli: the tower moduli ``(q_1, ..., q_L)``.
        modulus: the composite modulus ``q = prod(q_i)``.
    """

    def __init__(self, moduli: Sequence[int]):
        if not moduli:
            raise ValueError("RNS basis needs at least one modulus")
        for i, a in enumerate(moduli):
            if a < 2:
                raise ValueError(f"modulus {a} must be >= 2")
            for b in moduli[i + 1 :]:
                if _gcd(a, b) != 1:
                    raise ValueError(f"moduli {a} and {b} are not coprime")
        self.moduli = tuple(moduli)
        self.modulus = 1
        for m in self.moduli:
            self.modulus *= m
        # Precompute CRT reconstruction constants: q/q_i and (q/q_i)^-1 mod q_i.
        self._punctured = [self.modulus // m for m in self.moduli]
        self._punctured_inv = [
            modinv(p % m, m) for p, m in zip(self._punctured, self.moduli)
        ]

    def __len__(self) -> int:
        return len(self.moduli)

    def decompose(self, value: int) -> tuple[int, ...]:
        """Map an integer to its residues (one per tower)."""
        v = value % self.modulus
        return tuple(v % m for m in self.moduli)

    def reconstruct(self, residues: Sequence[int]) -> int:
        """Inverse of :meth:`decompose` (Chinese Remainder Theorem)."""
        if len(residues) != len(self.moduli):
            raise ValueError(
                f"expected {len(self.moduli)} residues, got {len(residues)}"
            )
        acc = 0
        for r, m, p, p_inv in zip(
            residues, self.moduli, self._punctured, self._punctured_inv
        ):
            acc += (r % m) * p_inv % m * p
        return acc % self.modulus

    def decompose_poly(self, coeffs: Sequence[int]) -> list[list[int]]:
        """Split a big-modulus coefficient vector into per-tower vectors."""
        return [[c % m for c in coeffs] for m in self.moduli]

    def reconstruct_poly(self, towers: Sequence[Sequence[int]]) -> list[int]:
        """Recombine per-tower coefficient vectors into big-modulus form."""
        if len(towers) != len(self.moduli):
            raise ValueError(f"expected {len(self.moduli)} towers, got {len(towers)}")
        n = len(towers[0])
        if any(len(t) != n for t in towers):
            raise ValueError("tower length mismatch")
        return [self.reconstruct([t[i] for t in towers]) for i in range(n)]

    def centered_reconstruct(self, residues: Sequence[int]) -> int:
        """Reconstruct into the symmetric interval (-q/2, q/2]."""
        v = self.reconstruct(residues)
        return v - self.modulus if v > self.modulus // 2 else v

    def sub_basis(self, indices: Sequence[int]) -> "RnsBasis":
        """The basis restricted to a subset of towers (a shard).

        Tower-sharded execution splits one multi-tower operation across
        workers; each worker sees only its shard's moduli. Indices must be
        distinct and in range; order is preserved.
        """
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate tower indices in {list(indices)}")
        try:
            return RnsBasis([self.moduli[i] for i in indices])
        except IndexError:
            raise ValueError(
                f"tower index out of range for {len(self.moduli)}-tower "
                f"basis: {list(indices)}"
            ) from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RnsBasis) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        bits = [m.bit_length() for m in self.moduli]
        return f"RnsBasis({len(self.moduli)} towers, bits={bits})"


def shard_towers(num_towers: int, num_shards: int) -> list[list[int]]:
    """Partition tower indices ``0..num_towers-1`` into balanced shards.

    Round-robin assignment: shard ``s`` receives towers ``s, s+k, s+2k, ...``
    for ``k = num_shards``. Every tower lands in exactly one shard, the
    ``min(num_towers, num_shards)`` shards are all non-empty with sizes
    differing by at most one, and the split is deterministic — the
    property tests assert that recombining shard outputs (via
    :meth:`RnsBasis.sub_basis` and CRT) reproduces the sequential result.

    These helpers are the pure-math reference model for the serving
    layer's tower planner (:mod:`repro.service.towers`), which implements
    the same split/merge contract against live chip workers.
    """
    if num_towers < 1:
        raise ValueError(f"need at least one tower, got {num_towers}")
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    return [
        list(range(s, num_towers, num_shards))
        for s in range(min(num_towers, num_shards))
    ]


def merge_tower_outputs(
    shard_indices: Sequence[Sequence[int]],
    shard_outputs: Sequence[Sequence[object]],
) -> list[object]:
    """Restore tower order from per-shard outputs.

    ``shard_outputs[s][j]`` is whatever shard ``s`` produced for its
    ``j``-th tower (index ``shard_indices[s][j]``); the result lists the
    outputs in global tower order, ready for
    :meth:`RnsBasis.reconstruct_poly`.
    """
    total = sum(len(s) for s in shard_indices)
    merged: list[object] = [None] * total
    seen: set[int] = set()
    for indices, outputs in zip(shard_indices, shard_outputs):
        if len(indices) != len(outputs):
            raise ValueError(
                f"shard has {len(indices)} towers but {len(outputs)} outputs"
            )
        for i, out in zip(indices, outputs):
            if i in seen or not 0 <= i < total:
                raise ValueError(f"tower index {i} repeated or out of range")
            seen.add(i)
            merged[i] = out
    return merged


def plan_towers(total_bits: int, word_bits: int, n: int) -> list[int]:
    """Choose NTT-friendly prime towers covering ``total_bits`` of modulus.

    Reproduces the paper's tower planning: the modulus budget is split into
    the fewest towers that each fit in ``word_bits`` (54/55 bits for SEAL on
    a 64-bit CPU, 109 bits for CoFHEE's 128-bit datapath), balancing the
    sizes like SEAL does (109 -> 54 + 55, 218 -> 54 + 54 + 55 + 55).

    Args:
        total_bits: target ``log2 q`` of the composite modulus.
        word_bits: maximum bits per tower the platform handles natively.
        n: polynomial degree (towers must satisfy ``q_i === 1 mod 2n``).

    Returns:
        A list of distinct NTT-friendly primes whose bit lengths sum to
        ``total_bits``.
    """
    if total_bits < 2:
        raise ValueError(f"total_bits must be >= 2, got {total_bits}")
    count = -(-total_bits // word_bits)  # ceil division
    base = total_bits // count
    remainder = total_bits - base * count
    # `remainder` towers get one extra bit, listed last (54, 55 ordering).
    sizes = [base] * (count - remainder) + [base + 1] * remainder
    primes: list[int] = []
    for bits in sizes:
        q = ntt_friendly_prime(n, bits)
        while q in primes:  # ensure distinct (coprime) towers
            q = next_smaller_ntt_prime(q, n)
        primes.append(q)
    return primes


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
