"""Bit-reversal permutation helpers.

The iterative Cooley-Tukey NTT consumes/produces data in bit-reversed
order; CoFHEE exposes this as the ``MEMCPYR`` instruction ("memory data
transfer in bit-reverse", Table I), which the MDMC uses when reordering a
polynomial between transforms.
"""

from __future__ import annotations

from typing import Sequence


def bit_reverse(value: int, bits: int) -> int:
    """Return ``value`` with its ``bits`` least-significant bits reversed."""
    if value < 0 or value >= 1 << bits:
        raise ValueError(f"value {value} does not fit in {bits} bits")
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


#: memoized tables keyed by ``n`` — hot callers (the MDMC's iNTT twiddle
#: permutation) ask for the same table once per command.
_TABLES: dict[int, list[int]] = {}


def bit_reverse_indices(n: int) -> list[int]:
    """Return the length-``n`` bit-reversal index table (n a power of two).

    The table is cached per ``n`` and shared — callers must treat it as
    read-only.
    """
    if n < 1 or n & (n - 1):
        raise ValueError(f"length must be a power of two, got {n}")
    table = _TABLES.get(n)
    if table is None:
        bits = n.bit_length() - 1
        table = [0] * n
        for i in range(1, n):
            table[i] = (table[i >> 1] >> 1) | ((i & 1) << (bits - 1))
        if len(_TABLES) >= 32:
            _TABLES.pop(next(iter(_TABLES)))
        _TABLES[n] = table
    return table


def bit_reverse_permute(data: Sequence[int]) -> list[int]:
    """Return a new list with elements of ``data`` in bit-reversed order.

    This is the software equivalent of one ``MEMCPYR`` command.
    """
    table = bit_reverse_indices(len(data))
    return [data[table[i]] for i in range(len(data))]
