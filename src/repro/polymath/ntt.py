"""Number Theoretic Transform: Cooley-Tukey forward, Gentleman-Sande inverse.

CoFHEE implements the Cooley-Tukey algorithm (paper Algorithm 1) for the
forward transform and a decimation-in-frequency pass for the inverse
(Section VI-A notes the iNTT "includes a multiplication with a constant
(n^-1) and a decimation in frequency operation"). For negacyclic
convolution over ``x^n + 1`` the 2n-th root of unity ``psi`` is *merged
into the twiddle factors* (the standard Longa-Naehrig formulation), which
is why the chip needs no separate pre-scaling pass and why it can share one
twiddle table between NTT and iNTT (Section VIII-B, "CoFHEE uses the same
twiddle factors for both operations").

Both transforms run in place over a Python list of coefficients; each
butterfly performs exactly one modular multiplication, one modular
addition, and one modular subtraction — the three units of the chip's
processing element.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.polymath.modmath import modadd, modexp, modinv, modmul, modsub
from repro.polymath.primes import root_of_unity


class NttContext:
    """Precomputed transform context for degree ``n`` and prime modulus ``q``.

    The context owns the twiddle tables the chip keeps in its twiddle SRAM:
    powers of ``psi`` (2n-th root of unity) in bit-reversed order for the
    forward transform, powers of ``psi^-1`` for the inverse, and the scalar
    ``n^-1 mod q`` programmed into the ``INV_POLYDEG`` register (Table II).

    Args:
        n: polynomial degree; must be a power of two.
        q: prime modulus with ``q === 1 (mod 2n)``.
        psi: optional explicit primitive 2n-th root of unity; derived from
            the factorization of ``q - 1`` when omitted.
    """

    #: shared contexts keyed ``(n, q)`` — twiddle tables are immutable
    #: after construction, so every ring/driver for the same modulus can
    #: reuse one table instead of re-deriving psi per instance.
    _shared: dict[tuple[int, int], "NttContext"] = {}

    @classmethod
    def shared(cls, n: int, q: int) -> "NttContext":
        """Return (building once) the cached context for ``(n, q)``.

        The derived-psi constructor is deterministic, so the shared
        instance is bit-identical to a fresh one; only contexts with an
        explicit ``psi`` need private construction.
        """
        key = (n, q)
        ctx = cls._shared.get(key)
        if ctx is None:
            ctx = cls(n, q)
            if len(cls._shared) >= 64:
                cls._shared.pop(next(iter(cls._shared)))
            cls._shared[key] = ctx
        return ctx

    def __init__(self, n: int, q: int, psi: int | None = None):
        if n < 2 or n & (n - 1):
            raise ValueError(f"polynomial degree must be a power of two, got {n}")
        if (q - 1) % (2 * n):
            raise ValueError(f"q = {q} does not support negacyclic NTT of size {n}")
        self.n = n
        self.q = q
        self.log_n = n.bit_length() - 1
        self.psi = root_of_unity(2 * n, q) if psi is None else psi
        if pow(self.psi, n, q) != q - 1:
            raise ValueError(f"psi = {self.psi} is not a primitive 2n-th root")
        self.psi_inv = modinv(self.psi, q)
        self.omega = self.psi * self.psi % q  # n-th root for the cyclic NTT
        self.omega_inv = modinv(self.omega, q)
        self.n_inv = modinv(n, q)
        self._psi_brv = self._bitrev_powers(self.psi)
        self._ipsi_brv = self._bitrev_powers(self.psi_inv)

    def _bitrev_powers(self, base: int) -> list[int]:
        """Powers ``base**i`` stored in bit-reversed index order."""
        powers = [1] * self.n
        for i in range(1, self.n):
            powers[i] = powers[i - 1] * base % self.q
        bits = self.log_n
        return [powers[_reverse_bits(i, bits)] for i in range(self.n)]

    # ------------------------------------------------------------------
    # Negacyclic (psi-merged) transforms -- what the chip executes.
    # ------------------------------------------------------------------

    def forward(self, coeffs: Sequence[int]) -> list[int]:
        """Negacyclic forward NTT (Cooley-Tukey DIT).

        Consumes natural order, produces bit-reversed order — the layout the
        chip keeps between NTT and the Hadamard product. Equivalent to
        evaluating the polynomial at the odd powers of ``psi``; two
        polynomials transformed this way multiply pointwise to give their
        product reduced modulo ``x^n + 1`` with no separate polynomial
        reduction (the property Section IV-C relies on).
        """
        a = self._checked_copy(coeffs)
        q = self.q
        t = self.n
        m = 1
        while m < self.n:
            t >>= 1
            for i in range(m):
                j1 = 2 * i * t
                s = self._psi_brv[m + i]
                for j in range(j1, j1 + t):
                    u = a[j]
                    v = a[j + t] * s % q
                    a[j] = modadd(u, v, q)
                    a[j + t] = modsub(u, v, q)
            m <<= 1
        return a

    def inverse(self, values: Sequence[int]) -> list[int]:
        """Negacyclic inverse NTT (Gentleman-Sande DIF) including n^-1 scaling.

        Consumes bit-reversed order (the forward transform's output layout)
        and produces natural order. The final loop multiplies every coefficient by ``n^-1`` — on the
        chip this is the extra constant-multiply pass that makes iNTT take
        more cycles than NTT (Table V, Section VI-A).
        """
        a = self._checked_copy(values)
        q = self.q
        t = 1
        m = self.n
        while m > 1:
            j1 = 0
            h = m >> 1
            for i in range(h):
                s = self._ipsi_brv[h + i]
                for j in range(j1, j1 + t):
                    u = a[j]
                    v = a[j + t]
                    a[j] = modadd(u, v, q)
                    a[j + t] = (u - v) * s % q
                j1 += 2 * t
            t <<= 1
            m = h
        n_inv = self.n_inv
        return [x * n_inv % q for x in a]

    # ------------------------------------------------------------------
    # Plain cyclic transforms (omega-based) -- used by tests and by the
    # classic formulation with explicit psi pre/post-scaling.
    # ------------------------------------------------------------------

    def forward_cyclic(self, coeffs: Sequence[int]) -> list[int]:
        """Cyclic NTT: evaluate at powers of ``omega`` (paper Algorithm 1)."""
        a = self._checked_copy(coeffs)
        return _cooley_tukey(a, self.omega, self.q)

    def inverse_cyclic(self, values: Sequence[int]) -> list[int]:
        """Inverse cyclic NTT with ``n^-1`` scaling."""
        a = self._checked_copy(values)
        a = _cooley_tukey(a, self.omega_inv, self.q)
        return [x * self.n_inv % self.q for x in a]

    def negacyclic_multiply(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Multiply two polynomials modulo ``x^n + 1`` via the NTT.

        This is paper Algorithm 2 with the psi factors merged into the
        twiddles: forward both inputs, Hadamard product, inverse.
        """
        fa = self.forward(a)
        fb = self.forward(b)
        q = self.q
        prod = [x * y % q for x, y in zip(fa, fb)]
        return self.inverse(prod)

    def scale_psi(self, coeffs: Sequence[int], inverse: bool = False) -> list[int]:
        """Pointwise multiply by powers of psi (or psi^-1).

        Exposed for the classic Algorithm 2 formulation
        ``NTT((A . psi), omega)`` so tests can confirm both formulations
        agree.
        """
        base = self.psi_inv if inverse else self.psi
        q = self.q
        out = []
        p = 1
        for c in coeffs:
            out.append(c * p % q)
            p = p * base % q
        return out

    def _checked_copy(self, data: Iterable[int]) -> list[int]:
        a = [x % self.q for x in data]
        if len(a) != self.n:
            raise ValueError(f"expected {self.n} coefficients, got {len(a)}")
        return a


def reference_dft(coeffs: Sequence[int], omega: int, q: int) -> list[int]:
    """Quadratic-time cyclic DFT used as the ground truth in tests."""
    n = len(coeffs)
    out = []
    for k in range(n):
        acc = 0
        wk = pow(omega, k, q)
        term = 1
        for j in range(n):
            acc = (acc + coeffs[j] * term) % q
            term = term * wk % q
        out.append(acc)
    return out


def reference_negacyclic_multiply(
    a: Sequence[int], b: Sequence[int], q: int
) -> list[int]:
    """Schoolbook O(n^2) polynomial multiply reduced modulo ``x^n + 1``.

    The wrap-around term enters with a minus sign (negacyclic / negative
    wrapped convolution) — ground truth for the NTT-based product.
    """
    n = len(a)
    if len(b) != n:
        raise ValueError("operands must have equal length")
    out = [0] * n
    for i, ai in enumerate(a):
        if not ai:
            continue
        for j, bj in enumerate(b):
            k = i + j
            term = ai * bj
            if k < n:
                out[k] = (out[k] + term) % q
            else:
                out[k - n] = (out[k - n] - term) % q
    return out


def _cooley_tukey(a: list[int], root: int, q: int) -> list[int]:
    """In-place iterative cyclic Cooley-Tukey NTT, natural order in and out.

    Structurally equivalent to paper Algorithm 1: log n stages of n/2
    butterflies, each butterfly one multiply + one add + one subtract.
    """
    n = len(a)
    bits = n.bit_length() - 1
    # Decimation in time: consume input in bit-reversed order.
    for i in range(n):
        j = _reverse_bits(i, bits)
        if i < j:
            a[i], a[j] = a[j], a[i]
    length = 2
    while length <= n:
        w_len = pow(root, n // length, q)
        half = length >> 1
        for start in range(0, n, length):
            w = 1
            for j in range(start, start + half):
                u = a[j]
                v = a[j + half] * w % q
                a[j] = modadd(u, v, q)
                a[j + half] = modsub(u, v, q)
                w = w * w_len % q
        length <<= 1
    return a


def _reverse_bits(value: int, bits: int) -> int:
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result
