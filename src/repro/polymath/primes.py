"""NTT-friendly prime generation and roots of unity.

The paper's pre-silicon verification flow (Section III-J) uses a Python
script that "calculates the modulus following the equation q = 2k*n + 1,
where k >= 1 is an arbitrary constant", then finds twiddle factors and
expected results. This module is that script, made into a library: it
generates primes ``q === 1 (mod 2n)`` (so that a primitive 2n-th root of
unity ``psi`` exists, enabling the negacyclic NTT over ``x^n + 1``), finds
primitive roots, and derives the ``omega``/``psi`` twiddle bases.
"""

from __future__ import annotations

# Deterministic Miller-Rabin witness sets (Sinclair / Jaeschke bounds).
_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3317044064679887385961981  # all 12 witnesses suffice below


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test.

    Uses the 12-witness set that is provably correct for every
    ``n < 3.3 * 10**24``; above that (e.g. 109-bit CoFHEE moduli) the same
    witnesses make the error probability below ``4**-12`` per witness, far
    beyond any practical concern for test-vector generation.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _SMALL_PRIMES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def ntt_friendly_prime(n: int, bits: int) -> int:
    """Return the largest prime ``q = 2*k*n + 1`` with ``q.bit_length() == bits``.

    Such a prime supports a full negacyclic NTT of length ``n`` because its
    multiplicative group has order divisible by ``2n``.

    Args:
        n: polynomial degree (power of two).
        bits: desired bit length of the modulus (e.g. 54, 109, 128).

    Raises:
        ValueError: if ``n`` is not a power of two or no prime of the
            requested width exists (never happens for practical sizes).
    """
    if n < 2 or n & (n - 1):
        raise ValueError(f"polynomial degree must be a power of two, got {n}")
    if bits < n.bit_length() + 2:
        raise ValueError(f"{bits} bits is too small for a 2*{n}*k + 1 prime")
    step = 2 * n
    # Largest candidate of the form 2kn + 1 strictly below 2**bits.
    q = ((1 << bits) - 2) // step * step + 1
    while q >= 1 << (bits - 1):
        if is_prime(q):
            return q
        q -= step
    raise ValueError(f"no {bits}-bit prime of the form 2k*{n}+1 found")


def next_smaller_ntt_prime(q: int, n: int) -> int:
    """Return the next NTT-friendly prime strictly below ``q`` for degree ``n``.

    Walks down the ``2kn + 1`` ladder from ``q``; used wherever a basis
    needs several *distinct* coprime towers (RNS planning, the CRT bases
    of the exact multipliers).

    Raises:
        ValueError: if the ladder is exhausted before reaching ``2n``.
    """
    step = 2 * n
    candidate = q - step
    while candidate > 2 * n:
        if is_prime(candidate):
            return candidate
        candidate -= step
    raise ValueError("ran out of NTT-friendly primes")


def find_primitive_root(q: int) -> int:
    """Return a generator of the multiplicative group of ``Z_q`` (q prime)."""
    if not is_prime(q):
        raise ValueError(f"{q} is not prime")
    group_order = q - 1
    factors = _prime_factors(group_order)
    g = 2
    while g < q:
        if all(pow(g, group_order // f, q) != 1 for f in factors):
            return g
        g += 1
    raise ValueError(f"no primitive root found for {q}")  # unreachable for primes


def root_of_unity(order: int, q: int) -> int:
    """Return a primitive ``order``-th root of unity modulo prime ``q``.

    For the negacyclic NTT over ``x^n + 1`` the chip needs ``psi`` with
    ``order = 2n`` (then ``omega = psi**2`` is the n-th root used by the
    cyclic transform).

    Uses the standard exponent trick — ``x**((q-1)/order)`` has order
    dividing ``order`` and is primitive iff its ``order/2`` power is -1 —
    so no factorization of ``q - 1`` is needed (which can embed hard
    semiprimes for the 100+-bit moduli CoFHEE uses natively).

    Raises:
        ValueError: if ``order`` does not divide ``q - 1`` or ``order`` is
            not even (the negacyclic case always is).
    """
    if (q - 1) % order:
        raise ValueError(f"{order} does not divide q-1 = {q - 1}")
    if order % 2:
        raise ValueError(f"order must be even, got {order}")
    exponent = (q - 1) // order
    # Deterministic candidate sweep: about half of all bases yield a
    # primitive root, so a handful of small bases always suffices.
    for base in range(2, 1000):
        root = pow(base, exponent, q)
        if pow(root, order // 2, q) == q - 1:
            return root
    raise ValueError(f"no primitive {order}-th root found modulo {q}")


def _prime_factors(n: int) -> list[int]:
    """Return the distinct prime factors of ``n`` by trial division + rho."""
    factors: set[int] = set()
    for p in _SMALL_PRIMES:
        while n % p == 0:
            factors.add(p)
            n //= p
    # Trial division is enough for q-1 = 2kn with typically smooth k*n,
    # but fall back to Pollard rho for any large cofactor.
    d = 41
    while d * d <= n and d < 1 << 20:
        while n % d == 0:
            factors.add(d)
            n //= d
        d += 2
    if n > 1:
        if is_prime(n):
            factors.add(n)
        else:
            f = _pollard_rho(n)
            factors.update(_prime_factors(f))
            factors.update(_prime_factors(n // f))
    return sorted(factors)


def _pollard_rho(n: int) -> int:
    """Return a nontrivial factor of composite odd ``n`` (Brent's variant)."""
    if n % 2 == 0:
        return 2
    seed = 1
    while True:
        seed += 1
        x = y = 2
        c = seed
        d = 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = _gcd(abs(x - y), n)
        if d != n:
            return d


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
