"""Modular arithmetic primitives, including Barrett and Montgomery reducers.

CoFHEE's processing element performs every multiplication through a
*pipelined Barrett multiplier* (Section IV-A of the paper): Barrett was
chosen over Montgomery because it needs no domain transformation of the
operands and pipelines cleanly to match the SRAM read latency. Both
reduction schemes are implemented here so the design choice can be
exercised and benchmarked (see ``benchmarks/bench_ablation_design_choices``).

All functions operate on Python integers, which keeps the arithmetic exact
for the 128-bit (and larger) coefficient sizes the chip supports natively.
"""

from __future__ import annotations


def modadd(a: int, b: int, q: int) -> int:
    """Return ``(a + b) mod q`` for operands already reduced mod ``q``.

    Mirrors the chip's 1-cycle modular adder: one addition and one
    conditional subtraction, no division.
    """
    s = a + b
    if s >= q:
        s -= q
    return s


def modsub(a: int, b: int, q: int) -> int:
    """Return ``(a - b) mod q`` for operands already reduced mod ``q``.

    Mirrors the chip's 1-cycle modular subtractor: one subtraction and one
    conditional addition.
    """
    d = a - b
    if d < 0:
        d += q
    return d


def modmul(a: int, b: int, q: int) -> int:
    """Return ``(a * b) mod q``."""
    return a * b % q


def modexp(base: int, exponent: int, q: int) -> int:
    """Return ``base ** exponent mod q`` by square-and-multiply."""
    return pow(base, exponent, q)


def modinv(a: int, q: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``q``.

    Raises:
        ValueError: if ``a`` is not invertible modulo ``q``.
    """
    g, x = _extended_gcd(a % q, q)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {q} (gcd = {g})")
    return x % q


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    """Return ``(gcd(a, b), x)`` with ``a*x === gcd(a, b) (mod b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
    return old_r, old_x


class BarrettReducer:
    """Barrett modular reduction, as implemented by CoFHEE's multiplier.

    Barrett reduction replaces the division in ``x mod q`` with two
    multiplications by a precomputed reciprocal ``mu = floor(2**k / q)``.
    The chip stores ``k`` in the ``BARRETT_CTL1`` configuration register and
    ``mu`` in ``BARRETT_CTL2`` (Table II); the host driver computes both when
    programming a new modulus.

    The estimate ``floor(x * mu / 2**k)`` undershoots the true quotient by at
    most 2 when ``k >= 2 * q.bit_length()``, so at most two conditional
    subtractions complete the reduction — exactly the correction stage of the
    hardware pipeline.

    Attributes:
        q: the modulus.
        k: shift amount, ``2 * q.bit_length()``.
        mu: precomputed constant ``floor(2**k / q)``.
    """

    def __init__(self, q: int):
        if q < 2:
            raise ValueError(f"modulus must be >= 2, got {q}")
        self.q = q
        self.k = 2 * q.bit_length()
        self.mu = (1 << self.k) // q
        self.correction_count = 0  # conditional subtractions performed

    def reduce(self, x: int) -> int:
        """Reduce ``0 <= x < q**2`` modulo ``q`` without division."""
        if x < 0 or x >= self.q * self.q:
            raise ValueError(
                f"Barrett input must be in [0, q^2); got {x} for q={self.q}"
            )
        estimate = (x * self.mu) >> self.k
        r = x - estimate * self.q
        while r >= self.q:
            r -= self.q
            self.correction_count += 1
        return r

    def mulmod(self, a: int, b: int) -> int:
        """Return ``(a * b) mod q`` via full multiply then Barrett reduce."""
        return self.reduce((a % self.q) * (b % self.q))


class MontgomeryReducer:
    """Montgomery modular reduction (the alternative CoFHEE rejected).

    Operands must first be transformed into the Montgomery domain
    (``a -> a * R mod q``), which is the overhead the paper cites when
    preferring Barrett. Provided for baseline/ablation comparisons.

    Attributes:
        q: the (odd) modulus.
        r_bits: width of the Montgomery radix ``R = 2**r_bits``.
    """

    def __init__(self, q: int):
        if q < 3 or q % 2 == 0:
            raise ValueError(f"Montgomery modulus must be odd and >= 3, got {q}")
        self.q = q
        self.r_bits = q.bit_length()
        self.r = 1 << self.r_bits
        self.r_mask = self.r - 1
        # q' such that q * q' === -1 (mod R)
        self.q_prime = (-modinv(q, self.r)) % self.r
        self.r2 = self.r * self.r % q  # for to_montgomery via REDC

    def to_montgomery(self, a: int) -> int:
        """Transform ``a`` into the Montgomery domain (``a * R mod q``)."""
        return self.redc((a % self.q) * self.r2)

    def from_montgomery(self, a_mont: int) -> int:
        """Transform out of the Montgomery domain (``a_mont * R^-1 mod q``)."""
        return self.redc(a_mont)

    def redc(self, t: int) -> int:
        """Montgomery reduction: return ``t * R^-1 mod q`` for ``t < q*R``."""
        if t < 0 or t >= self.q * self.r:
            raise ValueError(f"REDC input must be in [0, q*R); got {t}")
        m = (t & self.r_mask) * self.q_prime & self.r_mask
        u = (t + m * self.q) >> self.r_bits
        if u >= self.q:
            u -= self.q
        return u

    def mulmod(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-domain values; result stays in-domain."""
        return self.redc(a_mont * b_mont)

    def mulmod_plain(self, a: int, b: int) -> int:
        """Return ``(a * b) mod q`` including both domain transformations.

        This is the apples-to-apples cost the paper's Barrett-vs-Montgomery
        argument is about: a standalone modular multiply pays the transform.
        """
        return self.from_montgomery(
            self.redc(self.to_montgomery(a) * self.to_montgomery(b))
        )
