"""Vectorized (numpy) negacyclic NTT for word-sized moduli.

The pure-Python :class:`~repro.polymath.ntt.NttContext` is exact for any
modulus width (CoFHEE's native 128 bits) but loops per butterfly. For
moduli below 31 bits — where every product fits ``int64`` — this module
provides a numpy-vectorized drop-in with identical semantics, used by the
software baseline and the larger property sweeps. It mirrors how SEAL
keeps its towers word-sized precisely to unlock vectorized arithmetic:
the same engineering trade the paper's Section II-D describes.
"""

from __future__ import annotations

import numpy as np

from repro.polymath.modmath import modinv
from repro.polymath.ntt import NttContext
from repro.polymath.primes import ntt_friendly_prime
from repro.polymath.rns import RnsBasis, _next_smaller_ntt_prime

#: Products a*b must fit int64: a, b < 2^31 keeps a*b < 2^62.
MAX_MODULUS_BITS = 31


class FastNttContext:
    """Numpy-vectorized negacyclic NTT, bit-identical to ``NttContext``.

    Args:
        n: polynomial degree (power of two).
        q: NTT-friendly prime below 2^31.
    """

    def __init__(self, n: int, q: int):
        if q.bit_length() > MAX_MODULUS_BITS:
            raise ValueError(
                f"modulus of {q.bit_length()} bits exceeds the int64-safe "
                f"{MAX_MODULUS_BITS}; use NttContext for wide moduli"
            )
        self.n = n
        self.q = q
        self._ref = NttContext(n, q)  # twiddle construction shared
        self._psi_brv = np.asarray(self._ref._psi_brv, dtype=np.int64)
        self._ipsi_brv = np.asarray(self._ref._ipsi_brv, dtype=np.int64)
        self._n_inv = modinv(n, q)

    @property
    def psi(self) -> int:
        return self._ref.psi

    def forward(self, coeffs) -> np.ndarray:
        """Cooley-Tukey DIT, natural -> bit-reversed order (vectorized)."""
        a = np.asarray(coeffs, dtype=np.int64) % self.q
        self._check(a)
        q = self.q
        t = self.n
        m = 1
        while m < self.n:
            t >>= 1
            # stage layout: m blocks of length 2t starting at 2*i*t
            a = a.reshape(m, 2 * t)
            u = a[:, :t]
            v = a[:, t:]
            s = self._psi_brv[m : 2 * m, None]
            vs = v * s % q
            a = np.concatenate(((u + vs) % q, (u - vs) % q), axis=1)
            m <<= 1
        return a.reshape(self.n)

    def inverse(self, values) -> np.ndarray:
        """Gentleman-Sande DIF + n^-1 scaling (vectorized)."""
        a = np.asarray(values, dtype=np.int64) % self.q
        self._check(a)
        q = self.q
        t = 1
        m = self.n
        while m > 1:
            h = m >> 1
            a = a.reshape(h, 2 * t)
            u = a[:, :t]
            v = a[:, t:]
            s = self._ipsi_brv[h : 2 * h, None]
            summed = (u + v) % q
            diff = (u - v) * s % q
            a = np.concatenate((summed, diff), axis=1)
            t <<= 1
            m = h
        return a.reshape(self.n) * self._n_inv % q

    def negacyclic_multiply(self, a, b) -> list[int]:
        """Polynomial product modulo ``x^n + 1`` via the fast transforms."""
        fa = self.forward(a)
        fb = self.forward(b)
        return [int(x) for x in self.inverse(fa * fb % self.q)]

    def _check(self, a: np.ndarray) -> None:
        if a.shape != (self.n,):
            raise ValueError(f"expected {self.n} coefficients, got {a.shape}")


class RnsExactMultiplier:
    """Exact integer negacyclic product via CRT over word-sized numpy NTTs.

    Drop-in replacement for the scheme's pure-Python auxiliary-prime
    multiplier (``repro.bfv.scheme._ExactMultiplier``): the Eq. 4 tensor
    needs the *integer* product of centered polynomials, whose coefficients
    are bounded by ``n * (q/2)**2`` — far beyond int64 for the paper's
    moduli. Instead of one wide auxiliary prime, the bound is covered by a
    basis of distinct sub-31-bit NTT-friendly primes so every tower runs
    through the vectorized :class:`FastNttContext`, and the exact result is
    CRT-reconstructed per coefficient. This is the trade SEAL makes
    (word-sized towers unlock vectorized arithmetic) applied to the serving
    layer's fast-numpy backend.

    Args:
        n: polynomial degree (power of two).
        q: the scheme's ciphertext modulus (any width).
        prime_bits: target width of each auxiliary tower prime.
    """

    def __init__(self, n: int, q: int, prime_bits: int = 30):
        if prime_bits > MAX_MODULUS_BITS:
            raise ValueError(
                f"tower primes must stay below {MAX_MODULUS_BITS} bits "
                f"for int64-safe numpy products, got {prime_bits}"
            )
        self.n = n
        # |product coefficient| <= n * (q/2)^2; the CRT modulus must exceed
        # twice that bound to recover signed values from centered residues.
        bound_bits = 2 * (q.bit_length() - 1) + n.bit_length() + 2
        primes: list[int] = []
        total = 1
        candidate = ntt_friendly_prime(n, prime_bits)
        while total.bit_length() <= bound_bits + 2:
            primes.append(candidate)
            total *= candidate
            candidate = _next_smaller_ntt_prime(candidate, n)
        self.basis = RnsBasis(primes)
        self._ctxs = [FastNttContext(n, p) for p in primes]

    def multiply(self, a_centered, b_centered) -> list[int]:
        """Return the exact integer negacyclic product of centered inputs."""
        residues = []
        for ctx in self._ctxs:
            p = ctx.q
            fa = ctx.forward([x % p for x in a_centered])
            fb = ctx.forward([x % p for x in b_centered])
            residues.append(ctx.inverse(fa * fb % p))
        return [
            self.basis.centered_reconstruct([int(r[i]) for r in residues])
            for i in range(self.n)
        ]
