"""Vectorized (numpy) negacyclic NTT for word-sized moduli.

The pure-Python :class:`~repro.polymath.ntt.NttContext` is exact for any
modulus width (CoFHEE's native 128 bits) but loops per butterfly. For
moduli below 31 bits — where every product fits ``int64`` — this module
provides numpy-vectorized drop-ins with identical semantics. It mirrors
how SEAL keeps its towers word-sized precisely to unlock vectorized
arithmetic: the same engineering trade the paper's Section II-D describes.

Both classes here are thin fronts over the batched tower engine
(:mod:`repro.polymath.engine`), which holds the shared precomputation —
twiddle tables, Shoup constants, CRT pieces — and runs every tower of a
stack in one vectorized pass. :class:`FastNttContext` is the single-tower
view (kept for API compatibility and per-tower call sites);
:class:`RnsExactMultiplier` batches its whole auxiliary CRT basis.
"""

from __future__ import annotations

import numpy as np

from repro.polymath.engine import MAX_MODULUS_BITS, require_engine
from repro.polymath.primes import next_smaller_ntt_prime, ntt_friendly_prime
from repro.polymath.rns import RnsBasis

__all__ = ["MAX_MODULUS_BITS", "FastNttContext", "RnsExactMultiplier"]


class FastNttContext:
    """Numpy-vectorized negacyclic NTT, bit-identical to ``NttContext``.

    A single-tower view of :class:`~repro.polymath.engine.BatchedRnsEngine`
    (degenerate ``(1, n)`` stacks) — the engine owns the twiddle/Shoup
    precomputation.

    Args:
        n: polynomial degree (power of two).
        q: NTT-friendly prime below 2^31.
    """

    def __init__(self, n: int, q: int):
        if q.bit_length() > MAX_MODULUS_BITS:
            raise ValueError(
                f"modulus of {q.bit_length()} bits exceeds the int64-safe "
                f"{MAX_MODULUS_BITS}; use NttContext for wide moduli"
            )
        self.n = n
        self.q = q
        # Shared per-(basis, n) cache: every FastNttContext over the same
        # modulus reuses one set of twiddle/Shoup tables.
        self._engine = require_engine(RnsBasis([q]), n)

    @property
    def psi(self) -> int:
        return self._engine._ctxs[0].psi

    def forward(self, coeffs) -> np.ndarray:
        """Cooley-Tukey DIT, natural -> bit-reversed order (vectorized)."""
        return self._engine.forward(self._as_stack(coeffs))[0]

    def inverse(self, values) -> np.ndarray:
        """Gentleman-Sande DIF + n^-1 scaling (vectorized)."""
        return self._engine.inverse(self._as_stack(values))[0]

    def negacyclic_multiply(self, a, b) -> list[int]:
        """Polynomial product modulo ``x^n + 1`` via the fast transforms."""
        prod = self._engine.negacyclic_multiply(
            self._as_stack(a), self._as_stack(b)
        )
        return prod[0].tolist()

    def _as_stack(self, coeffs) -> np.ndarray:
        a = np.asarray(coeffs, dtype=np.int64) % self.q
        if a.shape != (self.n,):
            raise ValueError(f"expected {self.n} coefficients, got {a.shape}")
        return a[None, :]


class RnsExactMultiplier:
    """Exact integer negacyclic product via CRT over batched numpy NTTs.

    Drop-in replacement for the scheme's pure-Python auxiliary-prime
    multiplier (``repro.bfv.scheme._ExactMultiplier``): the Eq. 4 tensor
    needs the *integer* product of centered polynomials, whose coefficients
    are bounded by ``n * (q/2)**2`` — far beyond int64 for the paper's
    moduli. Instead of one wide auxiliary prime, the bound is covered by a
    basis of distinct sub-31-bit NTT-friendly primes, the full tower stack
    runs through one :class:`~repro.polymath.engine.BatchedRnsEngine`
    pass, and the exact result is CRT-reconstructed per coefficient. This
    is the trade SEAL makes (word-sized towers unlock vectorized
    arithmetic) applied to the whole evaluation path.

    Args:
        n: polynomial degree (power of two).
        q: the scheme's ciphertext modulus (any width).
        prime_bits: target width of each auxiliary tower prime.
    """

    def __init__(self, n: int, q: int, prime_bits: int = 30):
        if prime_bits > MAX_MODULUS_BITS:
            raise ValueError(
                f"tower primes must stay below {MAX_MODULUS_BITS} bits "
                f"for int64-safe numpy products, got {prime_bits}"
            )
        self.n = n
        # |product coefficient| <= n * (q/2)^2; the CRT modulus must exceed
        # twice that bound to recover signed values from centered residues.
        bound_bits = 2 * (q.bit_length() - 1) + n.bit_length() + 2
        primes: list[int] = []
        total = 1
        candidate = ntt_friendly_prime(n, prime_bits)
        while total.bit_length() <= bound_bits + 2:
            primes.append(candidate)
            total *= candidate
            candidate = next_smaller_ntt_prime(candidate, n)
        self.basis = RnsBasis(primes)
        # The auxiliary basis is NTT-friendly sub-31-bit by construction,
        # so the shared engine cache always qualifies — every Bfv instance
        # over the same (n, q) reuses one precomputation.
        self._engine = require_engine(self.basis, n)

    def multiply(self, a_centered, b_centered) -> list[int]:
        """Return the exact integer negacyclic product of centered inputs."""
        eng = self._engine
        fa = eng.forward(eng.decompose(a_centered))
        fb = eng.forward(eng.decompose(b_centered))
        return eng.centered_reconstruct(eng.inverse(eng.pointwise_mul(fa, fb)))
