"""Polynomial rings ``Z_q[x]/(x^n + 1)`` — the BFV plaintext/ciphertext spaces.

A :class:`PolynomialRing` fixes ``(n, q)`` and caches the NTT context; a
:class:`Polynomial` is an immutable coefficient vector in that ring.
Arithmetic matches the paper's Section II-B/II-C formulation: addition and
subtraction are coefficient-wise (linear time), multiplication goes through
the negacyclic NTT (Algorithm 2), with a schoolbook path retained as the
quadratic-complexity baseline the paper contrasts against.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.polymath.modmath import modinv
from repro.polymath.ntt import NttContext, reference_negacyclic_multiply


class PolynomialRing:
    """The ring ``Z_q[x]/(x^n + 1)`` with a cached NTT context.

    Args:
        n: polynomial degree (power of two).
        q: coefficient modulus. Must be an NTT-friendly prime
            (``q === 1 mod 2n``) unless ``allow_non_ntt`` is set, in which
            case multiplication falls back to the schoolbook algorithm.
    """

    def __init__(self, n: int, q: int, allow_non_ntt: bool = False):
        if n < 2 or n & (n - 1):
            raise ValueError(f"polynomial degree must be a power of two, got {n}")
        if q < 2:
            raise ValueError(f"modulus must be >= 2, got {q}")
        self.n = n
        self.q = q
        self._ntt: NttContext | None = None
        if (q - 1) % (2 * n) == 0:
            try:
                self._ntt = NttContext.shared(n, q)
            except ValueError:
                self._ntt = None
        if self._ntt is None and not allow_non_ntt:
            raise ValueError(
                f"q = {q} is not NTT-friendly for n = {n}; "
                "pass allow_non_ntt=True for schoolbook multiplication"
            )

    @property
    def ntt(self) -> NttContext:
        """The ring's NTT context (raises if the modulus is not NTT-friendly)."""
        if self._ntt is None:
            raise ValueError("ring modulus does not support NTT")
        return self._ntt

    @property
    def coeff_byte_width(self) -> int:
        """Bytes per coefficient in the packed wire representation."""
        return (self.q.bit_length() + 7) // 8

    def unpack(self, data: bytes) -> "Polynomial":
        """Inverse of :meth:`Polynomial.pack` (strict: rejects coeffs >= q).

        The serving layer's wire format (:mod:`repro.service.serialization`)
        uses this as the innermost decoding step; out-of-range coefficients
        indicate corruption and raise rather than silently reducing mod q.
        """
        width = self.coeff_byte_width
        if len(data) != self.n * width:
            raise ValueError(
                f"packed polynomial needs {self.n * width} bytes "
                f"(n={self.n}, {width} B/coeff), got {len(data)}"
            )
        coeffs = [
            int.from_bytes(data[i * width : (i + 1) * width], "big")
            for i in range(self.n)
        ]
        bad = next((c for c in coeffs if c >= self.q), None)
        if bad is not None:
            raise ValueError(f"packed coefficient {bad} >= modulus {self.q}")
        return Polynomial(self, coeffs)

    @property
    def supports_ntt(self) -> bool:
        return self._ntt is not None

    def __call__(self, coeffs: Iterable[int]) -> "Polynomial":
        return Polynomial(self, coeffs)

    def zero(self) -> "Polynomial":
        return Polynomial(self, [0] * self.n)

    def one(self) -> "Polynomial":
        return Polynomial(self, [1] + [0] * (self.n - 1))

    def monomial(self, degree: int, coeff: int = 1) -> "Polynomial":
        """Return ``coeff * x**degree`` reduced into the ring.

        Degrees at or above ``n`` wrap with sign flips per ``x^n = -1``.
        """
        c = [0] * self.n
        wraps, d = divmod(degree, self.n)
        c[d] = coeff % self.q if wraps % 2 == 0 else (-coeff) % self.q
        return Polynomial(self, c)

    def random(self, rng) -> "Polynomial":
        """Uniform random ring element drawn from ``rng`` (random.Random)."""
        return Polynomial(self, [rng.randrange(self.q) for _ in range(self.n)])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PolynomialRing)
            and self.n == other.n
            and self.q == other.q
        )

    def __hash__(self) -> int:
        return hash((self.n, self.q))

    def __repr__(self) -> str:
        return f"PolynomialRing(n={self.n}, q={self.q})"


class Polynomial:
    """An element of ``Z_q[x]/(x^n + 1)``: an immutable coefficient tuple."""

    __slots__ = ("ring", "coeffs")

    def __init__(self, ring: PolynomialRing, coeffs: Iterable[int]):
        self.ring = ring
        reduced = tuple(c % ring.q for c in coeffs)
        if len(reduced) > ring.n:
            raise ValueError(
                f"too many coefficients ({len(reduced)}) for degree-{ring.n} ring"
            )
        if len(reduced) < ring.n:
            reduced = reduced + (0,) * (ring.n - len(reduced))
        self.coeffs = reduced

    @classmethod
    def from_canonical(
        cls, ring: PolynomialRing, coeffs: Iterable[int]
    ) -> "Polynomial":
        """Wrap length-``n`` coefficients already reduced into ``[0, q)``.

        Skips the constructor's per-coefficient ``% q`` pass — for hot
        paths whose outputs are canonical by construction (the batched
        engine's round-scaling and key-switch fold both end in an exact
        ``% q``). Callers own the invariant; nothing is re-checked.
        """
        p = object.__new__(cls)
        p.ring = ring
        p.coeffs = tuple(coeffs)
        if len(p.coeffs) != ring.n:
            raise ValueError(
                f"expected exactly {ring.n} canonical coefficients, "
                f"got {len(p.coeffs)}"
            )
        return p

    # -- ring operations -------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_ring(other)
        q = self.ring.q
        return Polynomial(
            self.ring, [(a + b) % q for a, b in zip(self.coeffs, other.coeffs)]
        )

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check_ring(other)
        q = self.ring.q
        return Polynomial(
            self.ring, [(a - b) % q for a, b in zip(self.coeffs, other.coeffs)]
        )

    def __neg__(self) -> "Polynomial":
        q = self.ring.q
        return Polynomial(self.ring, [(-a) % q for a in self.coeffs])

    def __mul__(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, int):
            return self.scalar_mul(other)
        self._check_ring(other)
        if self.ring.supports_ntt:
            product = self.ring.ntt.negacyclic_multiply(self.coeffs, other.coeffs)
        else:
            product = reference_negacyclic_multiply(
                self.coeffs, other.coeffs, self.ring.q
            )
        return Polynomial(self.ring, product)

    def __rmul__(self, other: int) -> "Polynomial":
        return self.scalar_mul(other)

    def scalar_mul(self, scalar: int) -> "Polynomial":
        """Multiply every coefficient by a scalar (chip op ``CMODMUL``)."""
        q = self.ring.q
        s = scalar % q
        return Polynomial(self.ring, [a * s % q for a in self.coeffs])

    def scalar_div_exact(self, scalar: int) -> "Polynomial":
        """Multiply by the modular inverse of ``scalar``."""
        return self.scalar_mul(modinv(scalar, self.ring.q))

    def schoolbook_mul(self, other: "Polynomial") -> "Polynomial":
        """Quadratic-time negacyclic product (the pre-NTT baseline)."""
        self._check_ring(other)
        return Polynomial(
            self.ring,
            reference_negacyclic_multiply(self.coeffs, other.coeffs, self.ring.q),
        )

    def hadamard(self, other: "Polynomial") -> "Polynomial":
        """Pointwise (NTT-domain) product — chip op ``PMODMUL``."""
        self._check_ring(other)
        q = self.ring.q
        return Polynomial(
            self.ring, [a * b % q for a, b in zip(self.coeffs, other.coeffs)]
        )

    # -- domain transforms ------------------------------------------------

    def to_ntt(self) -> "Polynomial":
        """Forward negacyclic NTT of this polynomial (chip op ``NTT``)."""
        return Polynomial(self.ring, self.ring.ntt.forward(self.coeffs))

    def from_ntt(self) -> "Polynomial":
        """Inverse negacyclic NTT (chip op ``iNTT``)."""
        return Polynomial(self.ring, self.ring.ntt.inverse(self.coeffs))

    # -- utilities ---------------------------------------------------------

    def pack(self) -> bytes:
        """Deterministic byte packing: fixed-width big-endian coefficients.

        The width is ``ring.coeff_byte_width`` so two equal polynomials in
        the same ring always produce identical bytes (the property the wire
        format's digests and checksums rely on).
        """
        width = self.ring.coeff_byte_width
        return b"".join(c.to_bytes(width, "big") for c in self.coeffs)

    def centered(self) -> list[int]:
        """Coefficients lifted to the symmetric interval (-q/2, q/2]."""
        q = self.ring.q
        half = q // 2
        return [c - q if c > half else c for c in self.coeffs]

    def infinity_norm(self) -> int:
        """Max absolute value of the centered coefficients."""
        return max((abs(c) for c in self.centered()), default=0)

    def is_zero(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    def evaluate(self, x: int) -> int:
        """Evaluate at a point modulo q (Horner); used in tests."""
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * x + c) % self.ring.q
        return acc

    def _check_ring(self, other: "Polynomial") -> None:
        if self.ring != other.ring:
            raise ValueError(f"ring mismatch: {self.ring} vs {other.ring}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and self.ring == other.ring
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.ring, self.coeffs))

    def __repr__(self) -> str:
        head = ", ".join(str(c) for c in self.coeffs[:4])
        tail = ", ..." if self.ring.n > 4 else ""
        return f"Polynomial(n={self.ring.n}, [{head}{tail}])"
