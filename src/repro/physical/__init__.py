"""Physical-design models: synthesis, floorplan, PnR, CTS, vias, power.

The paper is unusual among FHE-accelerator papers in reporting a *complete*
physical-design story — it is the only silicon-proven design in Table XI.
This package models each stage of that flow at the level the paper reports
it: a synthesis-area estimator (Table VIII), the floorplan geometry
(Table IV, Fig. 3a), place-and-route statistics evolution (Table III),
clock-tree synthesis quality-of-results (Table IX), redundant-via insertion
(Table VII), the pad ring, the power grid plan (Section V-B), and the
technology-scaling factors that underpin the Table XI cross-design
normalization.
"""

from repro.physical.tech import (
    GF55_LPE,
    GF12,
    GF7,
    TSMC7,
    ScalingFactors,
    TechNode,
    barrett_scaling,
)
from repro.physical.synthesis import SynthesisEstimator, table8_rows
from repro.physical.floorplan import Floorplanner, FloorplanResult
from repro.physical.pnr import PnrFlow, PnrStage
from repro.physical.cts import ClockTreeSynthesizer, ClockTreeResult
from repro.physical.vias import RedundantViaModel
from repro.physical.padring import PadRing
from repro.physical.powergrid import PowerGridPlan

__all__ = [
    "ClockTreeResult",
    "ClockTreeSynthesizer",
    "Floorplanner",
    "FloorplanResult",
    "GF12",
    "GF55_LPE",
    "GF7",
    "PadRing",
    "PnrFlow",
    "PnrStage",
    "PowerGridPlan",
    "RedundantViaModel",
    "ScalingFactors",
    "SynthesisEstimator",
    "TechNode",
    "TSMC7",
    "barrett_scaling",
    "table8_rows",
]
