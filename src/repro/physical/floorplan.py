"""Floorplanner: die/core geometry and macro placement (Table IV, Fig. 3a).

Reproduces the layout arithmetic of the fabricated chip:

* die = core + core-to-IO spacing + inline pad ring on all four sides
  (``DW = CW + 2*(HIO + CIO)``: 3400 + 2*130 = 3660 um, and likewise
  3582 + 260 = 3842 um);
* 68 memory macros (48 dual-port + 16 + 4 single-port instances) placed in
  abutted columns around the periphery with power-routable channels
  between them, leaving a central standard-cell region;
* utilization = standard-cell area / (core - macros - halos), 45 % at
  placement start and 59 % after routing (buffer insertion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Table IV values.
PAD_HEIGHT_UM = 120.0
CORE_TO_IO_UM = 10.0
CORE_WIDTH_UM = 3400.0
CORE_HEIGHT_UM = 3582.0
MACRO_AREA_UM2 = 8_941_959.0
STD_CELL_AREA_UM2 = 1_963_585.0
INITIAL_UTILIZATION = 0.45
FINAL_UTILIZATION = 0.59

#: Minimum channel between macro columns: must fit a power strap pair plus
#: routing (Section V-B's "delivering power in all the channels between
#: the memories was another challenge").
MIN_CHANNEL_UM = 20.0


@dataclass(frozen=True)
class Macro:
    """One placed memory macro instance."""

    name: str
    width_um: float
    height_um: float
    x_um: float = 0.0
    y_um: float = 0.0

    @property
    def area_um2(self) -> float:
        return self.width_um * self.height_um

    def placed_at(self, x: float, y: float) -> "Macro":
        return Macro(self.name, self.width_um, self.height_um, x, y)

    def overlaps(self, other: "Macro") -> bool:
        return not (
            self.x_um + self.width_um <= other.x_um
            or other.x_um + other.width_um <= self.x_um
            or self.y_um + self.height_um <= other.y_um
            or other.y_um + other.height_um <= self.y_um
        )


@dataclass
class FloorplanResult:
    """Geometry summary matching Table IV plus the macro placement."""

    core_width_um: float
    core_height_um: float
    die_width_um: float
    die_height_um: float
    macro_area_um2: float
    std_cell_area_um2: float
    initial_utilization: float
    final_utilization: float
    macros: list[Macro] = field(default_factory=list)

    @property
    def aspect_ratio(self) -> float:
        return self.core_height_um / self.core_width_um

    @property
    def core_area_um2(self) -> float:
        return self.core_width_um * self.core_height_um

    @property
    def die_area_mm2(self) -> float:
        return self.die_width_um * self.die_height_um / 1e6

    def table4(self) -> dict[str, float]:
        """Table IV as a dict (units as in the paper)."""
        return {
            "IU_pct": round(self.initial_utilization * 100, 1),
            "FU_pct": round(self.final_utilization * 100, 1),
            "MA_um2": round(self.macro_area_um2),
            "HIO_um": PAD_HEIGHT_UM,
            "CIO_um": CORE_TO_IO_UM,
            "A": round(self.aspect_ratio, 2),
            "CA_um2": round(self.std_cell_area_um2),
            "CW_um": self.core_width_um,
            "CH_um": self.core_height_um,
            "DW_um": self.die_width_um,
            "DH_um": self.die_height_um,
        }


def fabricated_macro_list() -> list[Macro]:
    """The 68 memory instances of Section V-A.

    48 dual-port macros (16 per logical DP bank), 16 single-port data
    macros (4 per SP bank), 4 CM0 macros. Dimensions derive from the
    synthesis estimator's per-bank areas with foundry-typical ~2:1 macro
    aspect, scaled so the 68 instances total the Table IV macro area.
    """
    from repro.physical.synthesis import SynthesisEstimator

    est = SynthesisEstimator()
    dp_bank = est.sram_bank_mm2(8192, 128, dual_port=True, instances=16) * 1e6
    sp_bank = est.sram_bank_mm2(8192, 128, dual_port=False, instances=4) * 1e6
    cm0_bank = est.sram_bank_mm2(4096, 128, dual_port=False, instances=4) * 1e6
    synth_total = 3 * dp_bank + 4 * sp_bank + cm0_bank
    # PnR macros include power rings/keepout the synthesis number lacks.
    inflate = MACRO_AREA_UM2 / synth_total
    macros = []
    for bank in range(3):
        inst_area = dp_bank * inflate / 16
        w = math.sqrt(inst_area / 2)
        for i in range(16):
            macros.append(Macro(f"DP{bank}_I{i}", w, 2 * w))
    for bank in range(4):
        inst_area = sp_bank * inflate / 4
        w = math.sqrt(inst_area / 2)
        for i in range(4):
            macros.append(Macro(f"SP{bank}_I{i}", w, 2 * w))
    for i in range(4):
        inst_area = cm0_bank * inflate / 4
        w = math.sqrt(inst_area / 2)
        macros.append(Macro(f"CM0_I{i}", w, 2 * w))
    return macros


class Floorplanner:
    """Places the macro set and derives the Table IV geometry."""

    def __init__(self, core_width_um: float = CORE_WIDTH_UM,
                 core_height_um: float = CORE_HEIGHT_UM,
                 channel_um: float = MIN_CHANNEL_UM):
        if channel_um < MIN_CHANNEL_UM:
            raise ValueError(
                f"channels below {MIN_CHANNEL_UM} um cannot carry the power "
                "straps the memory rows need (Section V-B)"
            )
        self.core_width_um = core_width_um
        self.core_height_um = core_height_um
        self.channel_um = channel_um

    def run(self, macros: list[Macro] | None = None) -> FloorplanResult:
        """Place macros in abutted peripheral columns; returns the result.

        The placement mirrors Fig. 3a/3f: memory columns along the left and
        right core edges with channels between columns, logic in the middle.
        """
        macros = macros if macros is not None else fabricated_macro_list()
        placed: list[Macro] = []
        x = 0.0
        y = 0.0
        col_width = 0.0
        side = "left"
        for m in sorted(macros, key=lambda mm: -mm.height_um):
            if y + m.height_um > self.core_height_um:
                # start a new column (switch side halfway through)
                x += col_width + self.channel_um
                y = 0.0
                col_width = 0.0
                if side == "left" and x > self.core_width_um * 0.35:
                    side = "right"
                    x = 0.0
            col_width = max(col_width, m.width_um)
            if side == "left":
                placed.append(m.placed_at(x, y))
            else:
                placed.append(
                    m.placed_at(self.core_width_um - x - m.width_um, y)
                )
            y += m.height_um + self.channel_um
        self._check_no_overlap(placed)
        macro_area = sum(m.area_um2 for m in placed)
        return FloorplanResult(
            core_width_um=self.core_width_um,
            core_height_um=self.core_height_um,
            die_width_um=self.core_width_um + 2 * (PAD_HEIGHT_UM + CORE_TO_IO_UM),
            die_height_um=self.core_height_um + 2 * (PAD_HEIGHT_UM + CORE_TO_IO_UM),
            macro_area_um2=macro_area,
            std_cell_area_um2=STD_CELL_AREA_UM2,
            initial_utilization=self._utilization(STD_CELL_AREA_UM2
                                                  * INITIAL_UTILIZATION
                                                  / FINAL_UTILIZATION,
                                                  macro_area),
            final_utilization=self._utilization(STD_CELL_AREA_UM2, macro_area),
            macros=placed,
        )

    def _utilization(self, cell_area: float, macro_area: float) -> float:
        """Std-cell utilization of the non-macro core region.

        Computed as ``cell area / (core - macros)``; the paper's 45 %/59 %
        bookkeeping additionally subtracts placement-blockage halos we do
        not model, so the model reads ~1.5 points high (60.7 % vs 59 %).
        """
        usable = self.core_width_um * self.core_height_um - macro_area
        return cell_area / usable

    @staticmethod
    def _check_no_overlap(placed: list[Macro]) -> None:
        for i, a in enumerate(placed):
            for b in placed[i + 1 :]:
                if a.overlaps(b):
                    raise ValueError(f"macro overlap: {a.name} vs {b.name}")

    def channel_positions(self, result: FloorplanResult) -> list[float]:
        """X coordinates of the vertical channels between macro columns —
        the power-grid plan must drop straps into each of these."""
        xs = sorted({round(m.x_um + m.width_um, 1) for m in result.macros})
        return [x for x in xs if x < self.core_width_um - 1.0]
