"""Post-synthesis area/delay estimator — regenerates Table VIII.

The estimator is mechanistic where the physics is simple and calibrated
where only silicon data can pin the constant:

* SRAM banks: ``bits x bit-area + instances x periphery`` with a measured
  dual-port premium (~2.2x per bit — the Section VIII-B lesson that
  "their area is 2x the area of single-port memories of the same size");
* the PE: the 128-bit Barrett multiplier dominates and scales with the
  *square* of the operand width (partial-product array), the adder and
  subtractor linearly;
* the AHB crossbar: managers x subordinates x datapath width;
* GPCFG: register bits x per-bit flop+decode cost;
* fixed IP blocks (ARM CM0, SPI, UART, DMA, GPIO): catalogue areas.

Post-synthesis critical-path delays are reported alongside; several exceed
the 4 ns clock because synthesis used only the worst (HVT) library corner —
Section III-K explains these long combinational paths close timing in the
backend where LVT cells are available, leaving the SRAM read as the true
critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

#: SRAM modeling constants (calibrated to the Table VIII bank areas).
SRAM_BIT_UM2 = 0.7528
SRAM_INSTANCE_PERIPHERY_UM2 = 2882.0
DUAL_PORT_BIT_RATIO = 2.201

#: PE modeling constants (multiplier ~ quadratic in width).
MULT_UM2_PER_BIT2 = 35.5
ADDSUB_UM2_PER_BIT = 180.0
PE_CONTROL_UM2 = 11_688.0

#: AHB crossbar constants.
AHB_UM2_PER_PORTPAIR_BIT = 5.25
AHB_FIXED_UM2 = 780.0

#: Configuration-register cost (flop + write decode + read mux per bit).
GPCFG_UM2_PER_BIT = 33.4

#: Fixed-IP catalogue (mm^2) — synthesized once, reused as hard data.
FIXED_BLOCKS_MM2 = {
    "ARM CM0": 0.0354,
    "MDMC": 0.0273,
    "SPI": 0.0202,
    "DMA": 0.0075,
    "UART": 0.0065,
    "GPIO": 0.0035,
    "Others": 0.0063,
}

#: Post-synthesis critical paths (ns), worst-VT-corner numbers from the
#: paper. Values above the 4 ns target are long combinational paths that
#: close in the backend (Section III-K).
BLOCK_DELAYS_NS = {
    "3 DP SRAMs": 4.22,
    "4 SP SRAMs": 4.19,
    "PE": 5.65,
    "CM0 SRAM": 6.13,
    "AHB": 5.76,
    "GPCFG": 7.03,
    "ARM CM0": 5.24,
    "MDMC": 4.16,
    "SPI": 7.74,
    "DMA": 7.17,
    "UART": 5.66,
    "GPIO": 6.73,
}


@dataclass(frozen=True)
class BlockEstimate:
    """One Table VIII row."""

    module: str
    area_mm2: float
    delay_ns: float | None


class SynthesisEstimator:
    """Area estimator for CoFHEE-style blocks in GF 55 nm."""

    def sram_bank_mm2(self, words: int, word_bits: int, dual_port: bool,
                      instances: int) -> float:
        """One logical bank composed of ``instances`` physical macros."""
        if words < 1 or word_bits < 1 or instances < 1:
            raise ValueError("words, word_bits, instances must be positive")
        bits = words * word_bits
        bit_area = SRAM_BIT_UM2 * (DUAL_PORT_BIT_RATIO if dual_port else 1.0)
        um2 = bits * bit_area + instances * SRAM_INSTANCE_PERIPHERY_UM2
        return um2 / 1e6

    def pe_mm2(self, coeff_bits: int = 128) -> float:
        """PE area: quadratic multiplier + linear add/sub + control."""
        if coeff_bits < 1:
            raise ValueError("coefficient width must be positive")
        um2 = (
            MULT_UM2_PER_BIT2 * coeff_bits * coeff_bits
            + 2 * ADDSUB_UM2_PER_BIT * coeff_bits
            + PE_CONTROL_UM2
        )
        return um2 / 1e6

    def ahb_mm2(self, managers: int = 10, subordinates: int = 11,
                data_bits: int = 128) -> float:
        """Crossbar area ~ port product x datapath width."""
        if managers < 1 or subordinates < 1 or data_bits < 1:
            raise ValueError("port counts and width must be positive")
        um2 = AHB_UM2_PER_PORTPAIR_BIT * managers * subordinates * data_bits
        return (um2 + AHB_FIXED_UM2) / 1e6

    def gpcfg_mm2(self, total_register_bits: int = 1598) -> float:
        """Register block area from total storage bits."""
        return total_register_bits * GPCFG_UM2_PER_BIT / 1e6

    def fixed_mm2(self, block: str) -> float:
        if block not in FIXED_BLOCKS_MM2:
            raise KeyError(f"unknown fixed block {block!r}")
        return FIXED_BLOCKS_MM2[block]

    # -- the fabricated configuration -------------------------------------

    def fabricated_blocks(self) -> list[BlockEstimate]:
        """Compute every Table VIII row for the fabricated chip."""
        rows = [
            BlockEstimate(
                "3 DP SRAMs",
                3 * self.sram_bank_mm2(8192, 128, dual_port=True, instances=16),
                BLOCK_DELAYS_NS["3 DP SRAMs"],
            ),
            BlockEstimate(
                "4 SP SRAMs",
                4 * self.sram_bank_mm2(8192, 128, dual_port=False, instances=4),
                BLOCK_DELAYS_NS["4 SP SRAMs"],
            ),
            BlockEstimate("PE", self.pe_mm2(128), BLOCK_DELAYS_NS["PE"]),
            BlockEstimate(
                "CM0 SRAM",
                self.sram_bank_mm2(4096, 128, dual_port=False, instances=4),
                BLOCK_DELAYS_NS["CM0 SRAM"],
            ),
            BlockEstimate("AHB", self.ahb_mm2(), BLOCK_DELAYS_NS["AHB"]),
            BlockEstimate("GPCFG", self.gpcfg_mm2(), BLOCK_DELAYS_NS["GPCFG"]),
        ]
        for name in ("ARM CM0", "MDMC", "SPI", "DMA", "UART", "GPIO"):
            rows.append(BlockEstimate(name, self.fixed_mm2(name),
                                      BLOCK_DELAYS_NS[name]))
        rows.append(BlockEstimate("Others", self.fixed_mm2("Others"), None))
        return rows

    def total_mm2(self) -> float:
        return sum(b.area_mm2 for b in self.fabricated_blocks())

    def memory_fraction(self) -> float:
        """Fraction of synthesized area that is SRAM — 'the majority of the
        available chip area is occupied by the SRAMs' (Section III-A)."""
        blocks = {b.module: b.area_mm2 for b in self.fabricated_blocks()}
        mem = blocks["3 DP SRAMs"] + blocks["4 SP SRAMs"] + blocks["CM0 SRAM"]
        return mem / self.total_mm2()


#: Paper Table VIII reference values (mm^2) for validation.
TABLE8_PAPER_MM2 = {
    "3 DP SRAMs": 5.3506,
    "4 SP SRAMs": 3.2036,
    "PE": 0.6394,
    "CM0 SRAM": 0.4062,
    "AHB": 0.0747,
    "GPCFG": 0.0534,
    "ARM CM0": 0.0354,
    "MDMC": 0.0273,
    "SPI": 0.0202,
    "DMA": 0.0075,
    "UART": 0.0065,
    "GPIO": 0.0035,
    "Others": 0.0063,
}
TABLE8_PAPER_TOTAL_MM2 = 9.8345


def table8_rows() -> list[dict[str, object]]:
    """Table VIII as model-vs-paper rows (consumed by the bench)."""
    est = SynthesisEstimator()
    rows = []
    for block in est.fabricated_blocks():
        paper = TABLE8_PAPER_MM2[block.module]
        rows.append(
            {
                "module": block.module,
                "model_mm2": round(block.area_mm2, 4),
                "paper_mm2": paper,
                "error_pct": round((block.area_mm2 - paper) / paper * 100, 2),
                "delay_ns": block.delay_ns,
            }
        )
    rows.append(
        {
            "module": "Total",
            "model_mm2": round(est.total_mm2(), 4),
            "paper_mm2": TABLE8_PAPER_TOTAL_MM2,
            "error_pct": round(
                (est.total_mm2() - TABLE8_PAPER_TOTAL_MM2)
                / TABLE8_PAPER_TOTAL_MM2 * 100, 2,
            ),
            "delay_ns": None,
        }
    )
    return rows
