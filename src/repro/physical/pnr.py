"""Place-and-route statistics model — regenerates Table III.

Table III tracks the design through Initial -> Place -> CTS -> Route:
standard-cell count grows from 225,797 to 379,921 ("primarily due to
buffers/inverters inserted ... to fix design rule violations, clock tree
synthesis, and timing issues"), utilization from 45 % to 59 %, and the VT
mix moves from 100 % HVT to 13.4 % HVT / 12 % RVT / 74.6 % LVT as the
optimizer swaps cells to close timing.

The model is a mechanistic flow with calibrated rates:

* **placement optimization** inserts buffers on long/high-fanout nets at a
  rate per net, restructures (clones/splits) combinational logic at a rate
  per cell, and swaps VT classes under a timing-pressure schedule;
* **CTS** adds ~1 clock buffer per ``clock_fanout`` sinks (plus a small
  cleanup that removes redundant logic);
* **routing** adds a final trickle of DRV-fix buffers and finishes the VT
  relaxation (some LVT swaps become safe to keep only after real parasitics
  are known).

Sequential-cell count is invariant across stages (no retiming), which the
model enforces structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class PnrStage(Enum):
    INITIAL = "Initial"
    PLACE = "Place"
    CTS = "CTS"
    ROUTE = "Route"


@dataclass(frozen=True)
class StageStats:
    """One column of Table III."""

    stage: PnrStage
    std_cells: int
    sequential_cells: int
    buffer_inverter_cells: int
    utilization_pct: float
    signal_nets: int
    hvt_pct: float
    rvt_pct: float
    lvt_pct: float

    def vt_sum(self) -> float:
        return self.hvt_pct + self.rvt_pct + self.lvt_pct


#: Calibrated flow rates (fitted to the silicon run; see module docstring).
PLACE_BUFFER_RATE_PER_NET = 0.2580  # timing/DRV buffers per initial net
PLACE_RESTRUCTURE_RATE = 0.3744  # cloned/split cells per initial cell
CLOCK_FANOUT = 8  # sinks per inserted clock buffer
CTS_CLEANUP_CELLS = 198  # redundant cells removed during CTS opt
ROUTE_FIX_BUFFERS = 1007  # post-route DRV/hold fixes
ROUTE_CLEANUP_CELLS = 43
NETS_PER_ADDED_CELL = 0.9300  # each inserted buffer adds ~1 net (minus merges)
#: Area growth factors per stage (insertion + sizing), fitted to the
#: utilization column.
UTILIZATION_GROWTH = {"place": 1.20, "cts": 1.0463, "route": 1.0442}
#: VT swap schedule: (hvt, rvt, lvt) percentages after each stage.
VT_SCHEDULE = {
    PnrStage.INITIAL: (100.0, 0.0, 0.0),
    PnrStage.PLACE: (13.75, 17.0, 69.25),
    PnrStage.CTS: (13.5, 12.1, 74.4),
    PnrStage.ROUTE: (13.4, 12.0, 74.6),
}


class PnrFlow:
    """Runs the statistics model from a synthesized netlist snapshot.

    Args:
        std_cells: post-synthesis cell count.
        sequential_cells: flop count (invariant through the flow).
        buffer_inverter_cells: post-synthesis buffer/inverter count.
        signal_nets: post-synthesis net count.
        initial_utilization_pct: placement starting utilization.
        clock_sinks: CTS sink count (Table IX: 18,413).
    """

    def __init__(
        self,
        std_cells: int = 225_797,
        sequential_cells: int = 18_686,
        buffer_inverter_cells: int = 22_561,
        signal_nets: int = 257_856,
        initial_utilization_pct: float = 45.0,
        clock_sinks: int = 18_413,
    ):
        if sequential_cells > std_cells:
            raise ValueError("sequential cells cannot exceed total cells")
        self.initial = StageStats(
            stage=PnrStage.INITIAL,
            std_cells=std_cells,
            sequential_cells=sequential_cells,
            buffer_inverter_cells=buffer_inverter_cells,
            utilization_pct=initial_utilization_pct,
            signal_nets=signal_nets,
            hvt_pct=100.0,
            rvt_pct=0.0,
            lvt_pct=0.0,
        )
        self.clock_sinks = clock_sinks

    def run(self) -> list[StageStats]:
        """Execute Place -> CTS -> Route; returns all four stage columns."""
        stages = [self.initial]
        stages.append(self._place(stages[-1]))
        stages.append(self._cts(stages[-1]))
        stages.append(self._route(stages[-1]))
        return stages

    # -- stage models -----------------------------------------------------

    def _place(self, prev: StageStats) -> StageStats:
        buffers = round(PLACE_BUFFER_RATE_PER_NET * prev.signal_nets)
        restructured = round(PLACE_RESTRUCTURE_RATE * prev.std_cells)
        added = buffers + restructured
        hvt, rvt, lvt = VT_SCHEDULE[PnrStage.PLACE]
        return StageStats(
            stage=PnrStage.PLACE,
            std_cells=prev.std_cells + added,
            sequential_cells=prev.sequential_cells,
            buffer_inverter_cells=prev.buffer_inverter_cells + buffers,
            utilization_pct=prev.utilization_pct * UTILIZATION_GROWTH["place"],
            signal_nets=prev.signal_nets + round(NETS_PER_ADDED_CELL * added),
            hvt_pct=hvt, rvt_pct=rvt, lvt_pct=lvt,
        )

    def _cts(self, prev: StageStats) -> StageStats:
        clock_buffers = round(self.clock_sinks / CLOCK_FANOUT)
        added = clock_buffers - CTS_CLEANUP_CELLS
        hvt, rvt, lvt = VT_SCHEDULE[PnrStage.CTS]
        return StageStats(
            stage=PnrStage.CTS,
            std_cells=prev.std_cells + added,
            sequential_cells=prev.sequential_cells,
            buffer_inverter_cells=prev.buffer_inverter_cells + clock_buffers,
            utilization_pct=prev.utilization_pct * UTILIZATION_GROWTH["cts"],
            signal_nets=prev.signal_nets
            + round(NETS_PER_ADDED_CELL * clock_buffers * 1.433),
            hvt_pct=hvt, rvt_pct=rvt, lvt_pct=lvt,
        )

    def _route(self, prev: StageStats) -> StageStats:
        added = ROUTE_FIX_BUFFERS - ROUTE_CLEANUP_CELLS
        hvt, rvt, lvt = VT_SCHEDULE[PnrStage.ROUTE]
        return StageStats(
            stage=PnrStage.ROUTE,
            std_cells=prev.std_cells + added,
            sequential_cells=prev.sequential_cells,
            buffer_inverter_cells=prev.buffer_inverter_cells + ROUTE_FIX_BUFFERS,
            utilization_pct=prev.utilization_pct * UTILIZATION_GROWTH["route"],
            signal_nets=prev.signal_nets + round(0.107 * ROUTE_FIX_BUFFERS),
            hvt_pct=hvt, rvt_pct=rvt, lvt_pct=lvt,
        )


#: Paper Table III reference values for validation.
TABLE3_PAPER = {
    PnrStage.INITIAL: dict(std_cells=225_797, seq=18_686, bufinv=22_561,
                           util=45.0, nets=257_856, hvt=100.0, rvt=0.0, lvt=0.0),
    PnrStage.PLACE: dict(std_cells=376_853, seq=18_686, bufinv=89_072,
                         util=54.0, nets=398_340, hvt=13.75, rvt=17.0, lvt=69.25),
    PnrStage.CTS: dict(std_cells=378_957, seq=18_686, bufinv=91_372,
                       util=56.5, nets=401_407, hvt=13.5, rvt=12.1, lvt=74.4),
    PnrStage.ROUTE: dict(std_cells=379_921, seq=18_686, bufinv=92_379,
                         util=59.0, nets=401_510, hvt=13.4, rvt=12.0, lvt=74.6),
}


def table3_rows() -> list[dict[str, object]]:
    """Model-vs-paper rows for the bench."""
    rows = []
    for stats in PnrFlow().run():
        paper = TABLE3_PAPER[stats.stage]
        rows.append(
            {
                "stage": stats.stage.value,
                "std_cells": stats.std_cells,
                "paper_std_cells": paper["std_cells"],
                "bufinv": stats.buffer_inverter_cells,
                "paper_bufinv": paper["bufinv"],
                "utilization_pct": round(stats.utilization_pct, 1),
                "paper_utilization_pct": paper["util"],
                "signal_nets": stats.signal_nets,
                "paper_signal_nets": paper["nets"],
                "vt_mix": (stats.hvt_pct, stats.rvt_pct, stats.lvt_pct),
                "paper_vt_mix": (paper["hvt"], paper["rvt"], paper["lvt"]),
            }
        )
    return rows
