"""Pad ring model: the chip's 47 IO pads on four die edges.

Section V-A: inline pads on all four sides, 120 um pad height; Table IX
counts 26 signal pads, 11 power/ground pads, and 8 PLL bias pads. Two pads
each exist for VDD/VSS (core) and DVDD/DVSS (IO), and the corner regions
overlap without DRC issues. The chip is packaged in a 48-pin QFN
(Section V-F), which bounds the usable pad count.

The model assembles the inventory, checks edge capacity against the die
perimeter, and assigns pads to edges (PLL pads clustered at the upper
right corner where the PLL macro sits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

PAD_HEIGHT_UM = 120.0
PAD_PITCH_UM = 90.0
QFN_PINS = 48


@dataclass(frozen=True)
class Pad:
    name: str
    kind: str  # "signal" | "power" | "pll_bias"
    edge: str  # "N" | "E" | "S" | "W"


#: The fabricated pad inventory (Table IX counts; names reconstructed from
#: the interface list of Sections III-H and Table II).
SIGNAL_PAD_NAMES = (
    "UARTM_TX", "UARTM_RX", "UARTS_TX", "UARTS_RX",
    "SPI_MOSI", "SPI_MISO", "SPI_CLK", "SPI_CSN",
    "HOST_IRQ", "CLK_REF", "RESET_N",
    "PLL_CTL0", "PLL_CTL1", "PLL_CTL2", "PLL_CTL3",
    "DBG0", "DBG1", "DBG2", "DBG3", "DBG4", "DBG5", "DBG6", "DBG7",
    "BOOT_SEL", "TEST_EN", "COMPUTE_DONE",
)
POWER_PAD_NAMES = (
    "VDD0", "VDD1", "VSS0", "VSS1",
    "DVDD0", "DVDD1", "DVSS0", "DVSS1",
    "VDD_PLL", "VSS_PLL", "VSUB",
)
PLL_BIAS_PAD_NAMES = (
    "PLL_IBIAS0", "PLL_IBIAS1", "PLL_VBIAS0", "PLL_VBIAS1",
    "PLL_VCTRL", "PLL_REF_SEL", "PLL_LOCK", "PLL_TEST",
)
#: Two spare pads close the gap between Table IX's 45 categorized pads and
#: the Section V-A text's "47 digital IO pads including power pads".
SPARE_PAD_NAMES = ("SPARE0", "SPARE1")


class PadRing:
    """Pad placement and capacity checking for the CoFHEE die."""

    def __init__(self, die_width_um: float = 3660.0,
                 die_height_um: float = 3842.0):
        if die_width_um <= 0 or die_height_um <= 0:
            raise ValueError("die dimensions must be positive")
        self.die_width_um = die_width_um
        self.die_height_um = die_height_um

    def edge_capacity(self, edge: str) -> int:
        """Pads that fit on one edge (corners excluded)."""
        if edge in ("N", "S"):
            usable = self.die_width_um - 2 * PAD_HEIGHT_UM
        elif edge in ("E", "W"):
            usable = self.die_height_um - 2 * PAD_HEIGHT_UM
        else:
            raise ValueError(f"unknown edge {edge!r}")
        return int(usable // PAD_PITCH_UM)

    def build(self) -> list[Pad]:
        """Assign the fabricated inventory to edges.

        PLL bias pads cluster on the north-east (the PLL corner,
        Section V-A); power pads spread across all edges for IR-drop
        symmetry; signal pads fill the remainder round-robin.
        """
        pads: list[Pad] = []
        for i, name in enumerate(PLL_BIAS_PAD_NAMES):
            pads.append(Pad(name, "pll_bias", "N" if i < 4 else "E"))
        edges = ("N", "E", "S", "W")
        for i, name in enumerate(POWER_PAD_NAMES):
            pads.append(Pad(name, "power", edges[i % 4]))
        for i, name in enumerate(SIGNAL_PAD_NAMES):
            pads.append(Pad(name, "signal", edges[i % 4]))
        for i, name in enumerate(SPARE_PAD_NAMES):
            pads.append(Pad(name, "spare", edges[(i + 2) % 4]))
        self._check_capacity(pads)
        return pads

    def _check_capacity(self, pads: list[Pad]) -> None:
        for edge in ("N", "E", "S", "W"):
            count = sum(1 for p in pads if p.edge == edge)
            if count > self.edge_capacity(edge):
                raise ValueError(
                    f"edge {edge} overfull: {count} pads > "
                    f"{self.edge_capacity(edge)} capacity"
                )

    def summary(self) -> dict[str, int]:
        """Pad counts in Table IX's terms."""
        pads = self.build()
        return {
            "signal_pads": sum(1 for p in pads if p.kind == "signal"),
            "pg_pads": sum(1 for p in pads if p.kind == "power"),
            "pll_bias_pads": sum(1 for p in pads if p.kind == "pll_bias"),
            "spare_pads": sum(1 for p in pads if p.kind == "spare"),
            "total": len(pads),
            "qfn_pins": QFN_PINS,
        }


#: Paper Table IX pad counts for validation.
TABLE9_PADS_PAPER = {"signal_pads": 26, "pg_pads": 11, "pll_bias_pads": 8}
