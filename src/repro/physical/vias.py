"""Redundant-via insertion model — regenerates Table VII.

After routing, single-cut vias are converted to multi-cut wherever
neighboring-track spacing allows, improving yield (Section V-C). The paper
achieves >98 % conversion on the lower via layers (V1-V4) and slightly
lower on the thick top layers (WT, WA) where the fat-metal power routing
competes for space.

The model computes the convertible fraction per layer from a congestion
parameter: a via converts unless a neighboring shape blocks the second
cut, which happens with probability ~ track occupancy x blocking window.
Via counts per layer derive from the signal-net count and the layer's
share of routing (lower layers carry most of the short nets).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-layer routing share and congestion (fraction of tracks occupied),
#: calibrated to the silicon run.
LAYER_PROFILE = {
    # layer: (vias per signal net, track occupancy)
    "V1": (0.05466, 0.130),
    "V2": (0.05440, 0.051),
    "V3": (0.05488, 0.020),
    "V4": (0.06589, 0.024),
    "WT": (0.00610, 0.049),
    "WA": (0.00347, 0.022),
}
#: Probability scale from occupancy to a blocked second cut.
BLOCKING_FACTOR = 0.10


@dataclass(frozen=True)
class ViaLayerResult:
    """One Table VII row."""

    layer: str
    multi_cut: int
    total: int

    @property
    def multi_cut_pct(self) -> float:
        return self.multi_cut / self.total * 100.0


class RedundantViaModel:
    """Per-layer single-to-multi-cut conversion estimator."""

    def __init__(self, signal_nets: int = 401_510):
        if signal_nets < 1:
            raise ValueError("signal net count must be positive")
        self.signal_nets = signal_nets

    def run(self) -> list[ViaLayerResult]:
        results = []
        for layer, (vias_per_net, occupancy) in LAYER_PROFILE.items():
            total = round(self.signal_nets * vias_per_net)
            blocked = round(total * occupancy * BLOCKING_FACTOR)
            results.append(
                ViaLayerResult(layer=layer, multi_cut=total - blocked, total=total)
            )
        return results

    def overall_conversion_pct(self) -> float:
        rows = self.run()
        return sum(r.multi_cut for r in rows) / sum(r.total for r in rows) * 100.0


#: Paper Table VII reference values for validation.
TABLE7_PAPER = {
    "V1": (21_659, 21_945, 98.70),
    "V2": (21_732, 21_844, 99.49),
    "V3": (21_991, 22_035, 99.80),
    "V4": (26_391, 26_455, 99.76),
    "WT": (2_438, 2_450, 99.51),
    "WA": (1_390, 1_393, 99.78),
}


def table7_rows() -> list[dict[str, object]]:
    """Model-vs-paper rows for the bench."""
    rows = []
    for result in RedundantViaModel().run():
        paper_multi, paper_total, paper_pct = TABLE7_PAPER[result.layer]
        rows.append(
            {
                "layer": result.layer,
                "multi_cut": result.multi_cut,
                "total": result.total,
                "multi_cut_pct": round(result.multi_cut_pct, 2),
                "paper_multi_cut": paper_multi,
                "paper_total": paper_total,
                "paper_pct": paper_pct,
            }
        )
    return rows
