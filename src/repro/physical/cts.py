"""Clock-tree synthesis model — regenerates the Table IX CTS QoR block.

The fabricated tree (main clock HCLK, built in the slow corner): 18,413
sinks, 26 levels, 464 clock-tree buffers, 240 ps global skew, insertion
delay 2.079 ns longest / 1.838 ns shortest.

Model structure (standard two-stage CTS): the sinks cluster under leaf
buffers (bounded fanout/capacitance), leaf buffers under mid-level
drivers, and one root driver — that head count reproduces the ~464 buffer
total. The *insertion path*, however, is dominated by repeater chains: a
sink near the core corner sits ~2.8 mm (Manhattan) from the clock root,
and with a slow-corner buffer reach of ~120 um the longest path crosses
~23 repeater stages plus the structural levels, giving the 26 "levels" and
(at ~78 ps/stage of double-width/double-spacing routed stages) the ~2.08 ns
longest insertion delay. Skew accumulates as per-stage OCV mismatch along
that deepest path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Slow-corner buffer stage delay (ps).
BUFFER_DELAY_PS = 78.0
#: Wire delay per um at double-width/double-spacing clock routing (ps).
WIRE_DELAY_PS_PER_UM = 0.012
#: Repeater reach in the slow corner (um of trunk per buffer stage).
BUFFER_REACH_UM = 120.0
#: Max sinks one leaf buffer drives.
LEAF_FANOUT = 43
#: Leaf buffers per mid-level driver.
MID_FANOUT = 13
#: Structural buffered levels (root -> mid -> leaf).
STRUCTURAL_LEVELS = 3
#: Per-stage mismatch contributing to skew (ps, slow-corner OCV).
STAGE_MISMATCH_PS = 9.3


@dataclass
class ClockTreeResult:
    """CTS quality-of-results, comparable with Table IX."""

    sinks: int
    levels: int
    buffers: int
    global_skew_ps: float
    longest_insertion_ns: float
    shortest_insertion_ns: float

    def table9_block(self) -> dict[str, object]:
        return {
            "clock_name": "HCLK",
            "cts_corner": "slow",
            "Levels": self.levels,
            "Sinks": self.sinks,
            "Clock_tree_buffers": self.buffers,
            "Global_skew_ps": round(self.global_skew_ps),
            "Longest_ins_delay_ns": round(self.longest_insertion_ns, 3),
            "Shortest_ins_delay_ns": round(self.shortest_insertion_ns, 3),
        }


class ClockTreeSynthesizer:
    """Fanout-staged CTS over explicit sink coordinates."""

    def __init__(self, core_width_um: float = 3400.0,
                 core_height_um: float = 3582.0, seed: int = 2023):
        if core_width_um <= 0 or core_height_um <= 0:
            raise ValueError("core dimensions must be positive")
        self.core_width_um = core_width_um
        self.core_height_um = core_height_um
        self._rng = random.Random(seed)

    def generate_sinks(self, count: int = 18_413) -> tuple[list[float], list[float]]:
        """Sink coordinates ~ uniform over the central std-cell region
        (the macro columns on the periphery hold no flops)."""
        if count < 1:
            raise ValueError("sink count must be positive")
        x0, x1 = 0.18 * self.core_width_um, 0.82 * self.core_width_um
        y0, y1 = 0.02 * self.core_height_um, 0.98 * self.core_height_um
        xs = [self._rng.uniform(x0, x1) for _ in range(count)]
        ys = [self._rng.uniform(y0, y1) for _ in range(count)]
        return xs, ys

    def build(self, xs: list[float] | None = None,
              ys: list[float] | None = None) -> ClockTreeResult:
        """Size the tree and integrate per-sink insertion delays."""
        if xs is None or ys is None:
            xs, ys = self.generate_sinks()
        if len(xs) != len(ys) or not xs:
            raise ValueError("sink coordinate lists must be equal and non-empty")
        sinks = len(xs)
        root_x = self.core_width_um / 2
        root_y = self.core_height_um / 2
        # -- buffer head count: leaf clusters, mid drivers, root. --
        leaves = -(-sinks // LEAF_FANOUT)
        mids = -(-leaves // MID_FANOUT)
        buffers = 1 + mids + leaves
        # -- insertion path: structural levels + repeater chain to the
        #    farthest / nearest sink. --
        dists = [abs(x - root_x) + abs(y - root_y) for x, y in zip(xs, ys)]
        d_max, d_min = max(dists), min(dists)
        chain_max = int(d_max // BUFFER_REACH_UM)
        chain_min = int(d_min // BUFFER_REACH_UM)
        levels = STRUCTURAL_LEVELS + chain_max
        longest = levels * BUFFER_DELAY_PS + d_max * WIRE_DELAY_PS_PER_UM
        shortest_levels = STRUCTURAL_LEVELS + chain_min
        # CTS balances shallow paths by padding them with delay, so the
        # minimum insertion is the longest path minus accumulated OCV
        # mismatch, not the raw nearest-sink delay.
        skew = levels * STAGE_MISMATCH_PS
        raw_shortest = (
            shortest_levels * BUFFER_DELAY_PS + d_min * WIRE_DELAY_PS_PER_UM
        )
        shortest = max(raw_shortest, longest - skew)
        return ClockTreeResult(
            sinks=sinks,
            levels=levels,
            buffers=buffers,
            global_skew_ps=longest - shortest,
            longest_insertion_ns=longest / 1000.0,
            shortest_insertion_ns=shortest / 1000.0,
        )


#: Paper Table IX CTS block for validation.
TABLE9_CTS_PAPER = {
    "Levels": 26,
    "Sinks": 18_413,
    "Clock_tree_buffers": 464,
    "Global_skew_ps": 240,
    "Longest_ins_delay_ns": 2.079,
    "Shortest_ins_delay_ns": 1.838,
}
