"""Technology nodes and cross-node scaling (the Table XI normalization).

To compare CoFHEE (GF 55 nm) with F1 (GF 14/12 nm), CraterLake (14/12 nm),
BTS and ARK (7 nm), the paper re-synthesized its Barrett modular multiplier
in the advanced-node library and measured the scaling: **area shrinks
16.7x and the critical path 3.7x** (Section VII). Those two numbers are
the entire normalization machinery of Table XI; they live here together
with the node descriptors used across the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechNode:
    """A CMOS technology node as used in the paper's comparisons.

    Attributes:
        name: marketing name.
        drawn_nm: nominal feature size.
        core_voltage: nominal logic supply.
        sram_bit_um2: modeled single-port SRAM bit cell + overhead area,
            calibrated so the fabricated bank areas reproduce Table VIII.
    """

    name: str
    drawn_nm: int
    core_voltage: float
    sram_bit_um2: float = 0.0


#: CoFHEE's node: GlobalFoundries 55 nm Low Power Enhanced.
GF55_LPE = TechNode("GF 55nm LPE", 55, 1.2, sram_bit_um2=0.7135)
#: F1 / CraterLake's node.
GF12 = TechNode("GF 12nm", 12, 0.8)
#: The library used for the scaling-factor synthesis experiment.
GF7 = TechNode("GF 7nm", 7, 0.75)
#: BTS / ARK's node (and the Ryzen 7 5800h CPU of Fig. 6).
TSMC7 = TechNode("TSMC 7nm FinFET", 7, 0.75)


@dataclass(frozen=True)
class ScalingFactors:
    """Area/delay ratios between two nodes, from a common-RTL synthesis."""

    area_ratio: float  # old_area / new_area
    delay_ratio: float  # old_delay / new_delay
    source: str

    def scale_area(self, area_mm2: float) -> float:
        """Map an area from the old node into the new node."""
        return area_mm2 / self.area_ratio

    def scale_delay(self, delay_ns: float) -> float:
        """Map a delay from the old node into the new node."""
        return delay_ns / self.delay_ratio


def barrett_scaling() -> ScalingFactors:
    """The paper's measured 55 nm -> advanced-node scaling factors.

    "We synthesized the Barrett modular multiplier using the GF7nm
    technology library ... the scaling factor reduces the area by 16.7x
    and the critical path by 3.7x."
    """
    return ScalingFactors(
        area_ratio=16.7,
        delay_ratio=3.7,
        source="Barrett multiplier re-synthesis (Section VII)",
    )


def classical_dennard_estimate(old: TechNode, new: TechNode) -> ScalingFactors:
    """Idealized (lambda^2, lambda) scaling — shown alongside the measured
    factors to document how far real libraries deviate from the textbook
    rule (the measured 16.7x area is *less* than the naive (55/7)^2 = 62x;
    wires and SRAM periphery do not shrink like logic)."""
    ratio = old.drawn_nm / new.drawn_nm
    return ScalingFactors(
        area_ratio=ratio * ratio,
        delay_ratio=ratio,
        source="idealized Dennard scaling",
    )
