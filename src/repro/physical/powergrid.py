"""Power-grid planning model (Section V-B, Figs. 3b/3d/3e, 4c/4d).

The fabricated network: four VDD/VSS ring pairs on the top two metals
(BA/BB), straps on BA/BB at 30 um pitch and on M5/M4 at 50 um pitch over
the whole core, M1 rails tapped from M4 through stacked vias (M2/M3 straps
avoided to preserve standard-cell pin access), and dedicated straps down
every channel between memory macros.

The model derives strap counts from pitch and core geometry, estimates the
worst-case static IR drop through the ring->strap->rail resistance ladder
at the chip's measured peak current, and verifies the memory-channel
coverage constraint that the paper calls out as a flow challenge.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Strap pitches (Section V-B).
TOP_METAL_PITCH_UM = 30.0  # BA/BB
MID_METAL_PITCH_UM = 50.0  # M4/M5
RING_PAIRS = 4

#: Sheet resistances (mOhm/sq) — thick top metals are low-resistance.
SHEET_R_TOP = 18.0
SHEET_R_MID = 70.0
SHEET_R_RAIL = 95.0
#: Strap widths (um).
TOP_STRAP_WIDTH_UM = 6.0
MID_STRAP_WIDTH_UM = 2.0
RAIL_WIDTH_UM = 0.4
#: Via-stack resistance per tap (Ohm).
VIA_STACK_OHM = 1.2

#: Peak core current (the Table V peak ~30 mW at 1.2 V => ~25 mA; with
#: margin the grid is sized for 50 mA).
DESIGN_CURRENT_A = 0.050


@dataclass
class PowerGridPlan:
    """A sized power distribution network for a core region."""

    core_width_um: float = 3400.0
    core_height_um: float = 3582.0

    def __post_init__(self):
        if self.core_width_um <= 0 or self.core_height_um <= 0:
            raise ValueError("core dimensions must be positive")

    # -- structure ---------------------------------------------------------

    @property
    def top_strap_count(self) -> int:
        """Vertical BA/BB strap pairs across the core width."""
        return int(self.core_width_um // TOP_METAL_PITCH_UM)

    @property
    def mid_strap_count(self) -> int:
        """M4/M5 strap pairs across the core width."""
        return int(self.core_width_um // MID_METAL_PITCH_UM)

    @property
    def rail_count(self) -> int:
        """M1 standard-cell rails (one per ~1.8 um row pitch)."""
        return int(self.core_height_um // 1.8)

    def describe(self) -> dict[str, object]:
        return {
            "ring_pairs": RING_PAIRS,
            "ring_layers": ("BA", "BB"),
            "top_straps": self.top_strap_count,
            "top_pitch_um": TOP_METAL_PITCH_UM,
            "mid_straps": self.mid_strap_count,
            "mid_pitch_um": MID_METAL_PITCH_UM,
            "m1_rails": self.rail_count,
            "m2_m3_straps": 0,  # avoided for std-cell pin access
        }

    # -- IR drop -----------------------------------------------------------

    def worst_ir_drop_mv(self, current_a: float = DESIGN_CURRENT_A) -> float:
        """Static IR drop at the core center through the resistance ladder.

        Current spreads over the parallel straps; each segment contributes
        R = rho * (length/2) / width / count for distributed loading.
        """
        if current_a < 0:
            raise ValueError("current must be non-negative")
        half_h = self.core_height_um / 2
        half_w = self.core_width_um / 2
        r_top = (SHEET_R_TOP / 1000) * (half_h / TOP_STRAP_WIDTH_UM) / max(
            1, self.top_strap_count
        ) / 2
        r_mid = (SHEET_R_MID / 1000) * (half_w / MID_STRAP_WIDTH_UM) / max(
            1, self.mid_strap_count
        ) / 2
        r_rail = (SHEET_R_RAIL / 1000) * (
            MID_METAL_PITCH_UM / 2 / RAIL_WIDTH_UM
        ) / max(1, self.rail_count) * 40  # local rail sees ~1/40 of rails
        r_via = VIA_STACK_OHM / max(1, self.mid_strap_count)
        total_r = r_top + r_mid + r_rail + r_via
        return current_a * total_r * 1000 * 2  # VDD + VSS paths

    def ir_drop_ok(self, supply_v: float = 1.2, budget_pct: float = 5.0) -> bool:
        """Standard sign-off: static drop under ``budget_pct`` of supply."""
        return self.worst_ir_drop_mv() <= supply_v * 1000 * budget_pct / 100

    # -- memory channel coverage (the Section V-B flow challenge) ----------

    def channel_strap_count(self, channel_width_um: float) -> int:
        """M4 power/ground straps that fit in one memory channel."""
        if channel_width_um < 0:
            raise ValueError("channel width must be non-negative")
        pair_width = 2 * MID_STRAP_WIDTH_UM + 2.0  # strap pair + spacing
        return int(channel_width_um // pair_width)

    def verify_channel_coverage(self, channel_widths_um: list[float]) -> list[float]:
        """Return the channels that CANNOT host a power strap pair — the
        flow was modified to ensure this list is empty on the real chip."""
        return [w for w in channel_widths_um if self.channel_strap_count(w) < 1]
