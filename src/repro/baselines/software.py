"""The software baseline: SEAL-style RNS BFV on a 64-bit CPU (Fig. 6).

Two layers:

* :class:`SoftwareBfv` executes the *same work* SEAL does functionally:
  the ciphertext is decomposed into ~55-bit RNS towers (54+55 for
  log q = 109, 54+54+55+55 for 218) and the Eq. 4 polynomial tensor runs
  per tower through NTT-domain arithmetic, bit-exact against the chip
  model's per-tower products.
* :class:`CpuCostModel` prices that work like the paper's measurement
  setup (SEAL 3.7, Ryzen 7 5800h @ 3.8 GHz, powertop): per-tower
  ciphertext-mult time calibrated to the two measured points (1.5 ms for
  2 towers at n = 2^12; 6.91 ms for 4 towers at n = 2^13), Amdahl-style
  thread scaling with the diminishing returns Fig. 6 shows, and
  near-linear power growth with thread count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bfv.params import BfvParameters
from repro.polymath.engine import BatchedRnsEngine, get_engine, require_engine
from repro.polymath.ntt import NttContext
from repro.polymath.rns import RnsBasis

#: The evaluation CPU (Section VI-B).
CPU_NAME = "AMD Ryzen 7 5800h"
CPU_TECHNOLOGY = "TSMC 7nm FinFET"
CPU_FREQ_GHZ = 3.8
CPU_AREA_MM2 = 180.0
CPU_THREADS_MAX = 16


class SoftwareBfv:
    """Functional RNS-tower execution of the Eq. 4 ciphertext tensor.

    This is the algorithmic mirror of ``CofheeDriver.ciphertext_multiply``:
    per tower, 4 forward NTTs, 4 Hadamard products, 1 addition, 3 inverse
    NTTs — the outputs CRT-recombine to the big-modulus tensor mod q.

    Where every tower modulus is a word-sized NTT-friendly prime, the
    whole tower stack executes in one pass on the batched engine
    (:mod:`repro.polymath.engine`) — this is what keeps the chip pool's
    per-tower mod-q cross-check from dominating chip-job wall time. Wide
    or non-NTT-friendly towers fall back, per basis, to the exact
    pure-Python :class:`NttContext` path; results are bit-identical.

    Args:
        basis: the RNS tower basis.
        n: polynomial degree.
        engine: ``"auto"`` (batched where the basis qualifies),
            ``"batched"`` (require the vectorized engine), or ``"pure"``
            (force the per-butterfly reference path).
    """

    def __init__(self, basis: RnsBasis, n: int, engine: str = "auto"):
        if engine not in ("auto", "batched", "pure"):
            raise ValueError(
                f"engine must be 'auto', 'batched', or 'pure', got {engine!r}"
            )
        self.basis = basis
        self.n = n
        self._engine: BatchedRnsEngine | None = None
        if engine == "batched":
            # An explicit request bypasses the REPRO_ENGINE kill switch
            # (which only governs auto-selection) and fails loudly when
            # the basis cannot run on the engine.
            self._engine = require_engine(basis, n)
        elif engine == "auto":
            self._engine = get_engine(basis, n)
        self._tower_index = {q: i for i, q in enumerate(basis.moduli)}
        if self._engine is None:
            self._ctx = {q: NttContext(n, q) for q in basis.moduli}
        else:
            self._ctx = {}
        # Full-stack tensor memo for the per-tower cross-check: keyed by
        # the identity of the four operand coefficient tuples, holding the
        # operands so the ids stay valid for the entry's lifetime.
        self._tensor_memo: dict[tuple[int, int, int, int], tuple] = {}
        self.tower_ops = {"ntt": 0, "intt": 0, "hadamard": 0, "add": 0}

    @property
    def engine_kind(self) -> str:
        """Which execution engine this instance selected."""
        return "batched" if self._engine is not None else "pure"

    def tower_multiply(
        self,
        q: int,
        ct_a: tuple[Sequence[int], Sequence[int]],
        ct_b: tuple[Sequence[int], Sequence[int]],
    ) -> list[list[int]]:
        """The Eq. 4 tensor on one tower: ``[y0, y1, y2]`` mod ``q``.

        This is the per-tower ground truth the chip pool cross-checks each
        worker's Algorithm 3 output against. On the batched path the tower
        runs as a degenerate single-row stack through a view that shares
        the full engine's precomputation.
        """
        if q not in self._tower_index:
            raise ValueError(f"modulus {q} is not a tower of {self.basis!r}")
        self._count_tensor_ops(towers=1)
        if self._engine is not None:
            idx = self._tower_index[q]
            full = self._full_tensor(ct_a, ct_b)
            return [y[idx].tolist() for y in full]
        ctx = self._ctx[q]
        a0 = ctx.forward([c % q for c in ct_a[0]])
        a1 = ctx.forward([c % q for c in ct_a[1]])
        b0 = ctx.forward([c % q for c in ct_b[0]])
        b1 = ctx.forward([c % q for c in ct_b[1]])
        y0 = [int(x) * int(y) % q for x, y in zip(a0, b0)]
        y2 = [int(x) * int(y) % q for x, y in zip(a1, b1)]
        cross1 = [int(x) * int(y) % q for x, y in zip(a0, b1)]
        cross2 = [int(x) * int(y) % q for x, y in zip(a1, b0)]
        y1 = [(u + v) % q for u, v in zip(cross1, cross2)]
        return [
            [int(c) for c in ctx.inverse(y0)],
            [int(c) for c in ctx.inverse(y1)],
            [int(c) for c in ctx.inverse(y2)],
        ]

    def _full_tensor(self, ct_a, ct_b):
        """Memoized full-stack tensor backing the per-tower cross-check.

        The chip pool calls :meth:`tower_multiply` once per tower with the
        *same* ciphertext pair (one work unit per tower). Computing the
        tensor over the whole tower stack once and slicing per call turns
        L single-tower engine passes into one batched pass. Entries are
        keyed by operand identity (the coefficient tuples of a ciphertext
        are stable) and hold the operands so the ids cannot be recycled.
        """
        key = (id(ct_a[0]), id(ct_a[1]), id(ct_b[0]), id(ct_b[1]))
        hit = self._tensor_memo.get(key)
        if hit is not None and all(
            x is y for x, y in zip(hit[0], (ct_a[0], ct_a[1], ct_b[0], ct_b[1]))
        ):
            return hit[1]
        eng = self._engine
        y = eng.tensor(
            eng.decompose(ct_a[0]),
            eng.decompose(ct_a[1]),
            eng.decompose(ct_b[0]),
            eng.decompose(ct_b[1]),
        )
        if len(self._tensor_memo) >= 8:
            self._tensor_memo.pop(next(iter(self._tensor_memo)))
        self._tensor_memo[key] = ((ct_a[0], ct_a[1], ct_b[0], ct_b[1]), y)
        return y

    def ciphertext_multiply(
        self,
        ct_a: tuple[Sequence[int], Sequence[int]],
        ct_b: tuple[Sequence[int], Sequence[int]],
    ) -> list[list[int]]:
        """Return the three tensor polynomials mod q (big-modulus form).

        On the batched path all towers of the tensor run in one engine
        pass and the CRT recombination is vectorized; the per-tower op
        counters tally the same logical work either way.
        """
        if self._engine is not None:
            eng = self._engine
            self._count_tensor_ops(towers=eng.num_towers)
            y0, y1, y2 = self._full_tensor(ct_a, ct_b)
            return [eng.reconstruct(y) for y in (y0, y1, y2)]
        tower_results = [
            self.tower_multiply(q, ct_a, ct_b) for q in self.basis.moduli
        ]
        return [
            self.basis.reconstruct_poly([tw[j] for tw in tower_results])
            for j in range(3)
        ]

    def _count_tensor_ops(self, towers: int) -> None:
        """SEAL's per-tower op mix: 4 NTT, 4 Hadamard, 1 add, 3 iNTT."""
        self.tower_ops["ntt"] += 4 * towers
        self.tower_ops["hadamard"] += 4 * towers
        self.tower_ops["add"] += towers
        self.tower_ops["intt"] += 3 * towers


@dataclass(frozen=True)
class CpuMeasurement:
    """One modeled CPU data point (a Fig. 6 bar)."""

    n: int
    log_q: int
    towers: int
    threads: int
    time_ms: float
    power_w: float

    @property
    def pdp_w_ms(self) -> float:
        return self.power_w * self.time_ms


class CpuCostModel:
    """SEAL-3.7-on-Ryzen calibrated wall-clock/power model.

    Calibration anchors (Section VI-B):

    * (n, log q) = (2^12, 109), 2 towers, 1 thread: **1.5 ms**, **1.48 W**;
    * (n, log q) = (2^13, 218), 4 towers, 1 thread: **6.91 ms**, **2.3 W**.

    Per-tower ciphertext-mult time follows ``c(n) * n log2 n`` with a weak
    cache-pressure term in ``c(n)``; threads scale by Amdahl's law with a
    fitted serial fraction (the paper's "diminishing returns as we add
    extra threads"); power grows near-linearly in active threads.
    """

    #: ns per (coefficient x stage) at n = 2^12, from the 1.5 ms anchor:
    #: 1.5 ms / (2 towers * 4096 * 12).
    BASE_NS = 15.259
    #: cache-pressure growth per octave of n, from the 6.91 ms anchor.
    CACHE_SLOPE = 0.0629
    #: Amdahl serial fraction (fits the Fig. 6 bar shape).
    SERIAL_FRACTION = 0.15
    #: Power split: idle-attributable base + per-thread active power.
    POWER_BASE_FRACTION = 0.30

    def tower_time_ms(self, n: int) -> float:
        """Single-thread per-tower Eq. 4 tensor time."""
        if n < 2 or n & (n - 1):
            raise ValueError(f"n must be a power of two, got {n}")
        log_n = n.bit_length() - 1
        c_ns = self.BASE_NS * (1.0 + self.CACHE_SLOPE * (log_n - 12))
        return c_ns * n * log_n / 1e6

    def ciphertext_mult_ms(self, params: BfvParameters, threads: int = 1) -> float:
        """Wall-clock for one big-modulus ciphertext multiplication."""
        if threads < 1:
            raise ValueError("thread count must be >= 1")
        single = params.cpu_tower_count * self.tower_time_ms(params.n)
        s = self.SERIAL_FRACTION
        return single * (s + (1.0 - s) / threads)

    def power_w(self, params: BfvParameters, threads: int = 1) -> float:
        """powertop-style package power attribution."""
        if threads < 1:
            raise ValueError("thread count must be >= 1")
        single = self.single_thread_power_w(params)
        base = self.POWER_BASE_FRACTION * single
        per_thread = (1.0 - self.POWER_BASE_FRACTION) * single
        return base + per_thread * threads

    def single_thread_power_w(self, params: BfvParameters) -> float:
        """Interpolate the two measured single-thread power points."""
        log_n = params.n.bit_length() - 1
        return 1.48 + (2.3 - 1.48) * (log_n - 12)

    def measurement(self, params: BfvParameters, threads: int) -> CpuMeasurement:
        return CpuMeasurement(
            n=params.n,
            log_q=params.log_q,
            towers=params.cpu_tower_count,
            threads=threads,
            time_ms=self.ciphertext_mult_ms(params, threads),
            power_w=self.power_w(params, threads),
        )

    def pdp_w_ms(self, params: BfvParameters, threads: int = 1) -> float:
        """Power-Delay Product — the paper's 2.22 W*ms (n = 2^12) and
        15.9 W*ms (n = 2^13) single-thread figures."""
        return self.ciphertext_mult_ms(params, threads) * self.power_w(
            params, threads
        )

    def crossover_threads(self, params: BfvParameters,
                          cofhee_ms: float) -> int | None:
        """Smallest thread count at which SEAL beats one CoFHEE instance
        ("to the point of becoming faster than a single instance")."""
        for threads in range(1, CPU_THREADS_MAX + 1):
            if self.ciphertext_mult_ms(params, threads) < cofhee_ms:
                return threads
        return None
