"""Comparison baselines: the SEAL/CPU software stack and related ASICs.

Two baseline families appear in the paper's evaluation:

* :mod:`repro.baselines.software` — Microsoft SEAL 3.7 on an AMD Ryzen 7
  5800h (Fig. 6): a functional RNS-tower BFV execution plus a calibrated
  cost model for wall-clock time (with thread scaling) and powertop-style
  power;
* :mod:`repro.baselines.related_work` — the ASIC/FPGA designs of Table XI
  (F1, CraterLake, BTS, ARK, HEAX, Roy) with the technology-normalized
  NTT-efficiency pipeline.
"""

from repro.baselines.software import CpuCostModel, SoftwareBfv
from repro.baselines.related_work import (
    DESIGNS,
    DesignRecord,
    efficiency,
    table11_rows,
)

__all__ = [
    "CpuCostModel",
    "DESIGNS",
    "DesignRecord",
    "SoftwareBfv",
    "efficiency",
    "table11_rows",
]
