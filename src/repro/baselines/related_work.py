"""Related-work ASIC/FPGA designs and the Table XI normalization pipeline.

Table XI compares the NTT operation (n = 2^13, 128-bit coefficients)
across designs by a technology- and area-normalized efficiency metric:

    efficiency = 1 / (time_ns * compute_area_mm2)      [NTT ops / ns / mm^2]

with three normalizations applied first:

1. **RNS tower factor** — a design with native coefficient width ``w``
   needs ``ceil(128 / w)`` tower passes to process 128-bit coefficients
   (F1's 32-bit datapath: 4 passes; BTS/ARK's 64-bit: 2; CoFHEE: 1);
2. **technology scaling** — CoFHEE's 55 nm numbers are scaled to the
   advanced node by the measured Barrett-synthesis factors (area / 16.7,
   delay / 3.7, Section VII);
3. **compute-area extraction** — only the NTT-relevant compute area counts
   (CoFHEE: the PE; F1: PE + register files), excluding the big on-chip
   memories that serve higher-level operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.timing import TimingModel
from repro.physical.synthesis import SynthesisEstimator
from repro.physical.tech import barrett_scaling

#: Normalization target: the Table XI footnote's evaluation point.
NORMALIZED_N = 2**13
NORMALIZED_COEFF_BITS = 128


@dataclass(frozen=True)
class DesignRecord:
    """One Table XI row.

    Attributes:
        name: design name.
        technology: node string as in the paper.
        max_n: largest supported polynomial degree.
        log_q_bits: native coefficient width.
        area_mm2: total chip area (None for FPGAs).
        power_w: reported power (None where unavailable).
        freq_mhz: clock frequency.
        ntt_cycles: clock cycles for one n = 2^13 NTT (Table XI's column).
        compute_area_mm2: NTT-relevant compute area used in the efficiency
            normalization (None for FPGAs, which can't be mapped to mm^2).
        silicon_proven: fabricated and validated?
        fpga_resources: LUT/FF/BRAM/DSP string for FPGA designs.
    """

    name: str
    technology: str
    max_n: int
    log_q_bits: int
    area_mm2: float | None
    power_w: float | None
    freq_mhz: float
    ntt_cycles: int
    compute_area_mm2: float | None
    silicon_proven: bool
    fpga_resources: str | None = None

    @property
    def tower_factor(self) -> int:
        """Passes needed for 128-bit coefficients via RNS."""
        return -(-NORMALIZED_COEFF_BITS // self.log_q_bits)

    def normalized_time_ns(self) -> float:
        """One 128-bit-coefficient NTT, after the tower factor."""
        return self.ntt_cycles / (self.freq_mhz / 1e3) * self.tower_factor


def cofhee_record() -> DesignRecord:
    """CoFHEE's row, built from the reproduction's own models.

    The cycle count is the paper's 53,248 (the pure butterfly count
    (n/2) log2 n; the +287 of stage overheads is under 0.6 % and the paper
    tabulates the round number). The compute area is the synthesized PE
    (Table VIII), which is what divides out in the paper's 4.54e-4 figure.
    """
    est = SynthesisEstimator()
    tm = TimingModel()
    butterflies = (NORMALIZED_N // 2) * (NORMALIZED_N.bit_length() - 1)
    assert tm.ntt_cycles(NORMALIZED_N) - butterflies < 300  # overheads only
    return DesignRecord(
        name="CoFHEE",
        technology="ASIC - GF 55nm",
        max_n=2**14,
        log_q_bits=128,
        area_mm2=12.0,
        power_w=2.3e-2,
        freq_mhz=250.0,
        ntt_cycles=butterflies,
        compute_area_mm2=est.pe_mm2(128),
        silicon_proven=True,
    )


#: The comparison designs (Table XI). Compute areas for the ASICs are the
#: PE+RF-class regions derived from each paper's area breakdown, the same
#: extraction the CoFHEE authors performed.
DESIGNS: dict[str, DesignRecord] = {
    "F1": DesignRecord(
        name="F1", technology="ASIC - GF 14/12nm", max_n=2**14, log_q_bits=32,
        area_mm2=151.4, power_w=180.4, freq_mhz=1000.0, ntt_cycles=476,
        compute_area_mm2=7.285, silicon_proven=False,
    ),
    "CraterLake": DesignRecord(
        name="CraterLake", technology="ASIC - 14/12nm", max_n=2**16,
        log_q_bits=28, area_mm2=472.3, power_w=320.0, freq_mhz=1000.0,
        ntt_cycles=22, compute_area_mm2=27.89, silicon_proven=False,
    ),
    "BTS": DesignRecord(
        name="BTS", technology="ASIC - 7nm", max_n=2**17, log_q_bits=64,
        area_mm2=373.6, power_w=163.2, freq_mhz=1200.0, ntt_cycles=554,
        compute_area_mm2=110.2, silicon_proven=False,
    ),
    "ARK": DesignRecord(
        name="ARK", technology="ASIC - 7nm", max_n=2**16, log_q_bits=64,
        area_mm2=418.3, power_w=281.3, freq_mhz=1000.0, ntt_cycles=104,
        compute_area_mm2=49.97, silicon_proven=False,
    ),
    "HEAX": DesignRecord(
        name="HEAX", technology="FPGA - Intel Arria10 GX 1150", max_n=2**14,
        log_q_bits=27, area_mm2=None, power_w=None, freq_mhz=300.0,
        ntt_cycles=1536, compute_area_mm2=None, silicon_proven=False,
        fpga_resources="582148 LUT / 1554005 FF / 3986 BRAM / 2018 DSP",
    ),
    "Roy": DesignRecord(
        name="Roy", technology="Xilinx Zynq UltraScale+ ZCU102", max_n=2**12,
        log_q_bits=30, area_mm2=None, power_w=None, freq_mhz=200.0,
        ntt_cycles=16425, compute_area_mm2=None, silicon_proven=False,
        fpga_resources="63522 LUT / 25622 FF / 400 BRAM / 200 DSP",
    ),
}


def efficiency(record: DesignRecord) -> float | None:
    """Normalized NTT ops / ns / mm^2 (None for FPGAs).

    CoFHEE's 55 nm time and area are first mapped to the advanced node by
    the measured Barrett-scaling factors; the other ASICs already are.
    """
    if record.compute_area_mm2 is None:
        return None
    time_ns = record.normalized_time_ns()
    area = record.compute_area_mm2
    if "55nm" in record.technology:
        scaling = barrett_scaling()
        time_ns = scaling.scale_delay(time_ns)
        area = scaling.scale_area(area)
    return 1.0 / (time_ns * area)


#: Paper Table XI efficiency values for validation.
TABLE11_PAPER_EFFICIENCY = {
    "CoFHEE": 4.54e-4,
    "F1": 7.21e-5,
    "CraterLake": 3.26e-4,
    "BTS": 9.83e-6,
    "ARK": 9.62e-5,
}
#: Paper speedups of CoFHEE over each design (Section VII prose).
PAPER_SPEEDUPS = {"F1": 6.3, "CraterLake": 1.39, "BTS": 46.19, "ARK": 4.72}


def table11_rows() -> list[dict[str, object]]:
    """Table XI with the reproduction's computed efficiencies."""
    rows = []
    cofhee = cofhee_record()
    cofhee_eff = efficiency(cofhee)
    for record in [cofhee] + list(DESIGNS.values()):
        eff = efficiency(record)
        rows.append(
            {
                "design": record.name,
                "technology": record.technology,
                "max_n": record.max_n,
                "log_q_bits": record.log_q_bits,
                "area": record.area_mm2 if record.area_mm2 is not None
                else record.fpga_resources,
                "power_w": record.power_w,
                "freq_mhz": record.freq_mhz,
                "ntt_cycles": record.ntt_cycles,
                "tower_factor": record.tower_factor,
                "efficiency": eff,
                "paper_efficiency": TABLE11_PAPER_EFFICIENCY.get(record.name),
                "cofhee_speedup": (cofhee_eff / eff) if eff else None,
                "paper_speedup": PAPER_SPEEDUPS.get(record.name),
                "silicon_proven": record.silicon_proven,
            }
        )
    return rows
