"""Table V: CoFHEE latency and power for PolyMul/NTT/iNTT at n = 2^12, 2^13.

Runs the chip simulator (timing fidelity — cycle counts are
data-independent) through the driver for each operation and compares
cycles, microseconds, and average/peak power against the silicon
measurements.
"""

from __future__ import annotations

from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.polymath.primes import ntt_friendly_prime

#: Silicon measurements (Table V): (cycles, us, avg mW, peak mW).
TABLE5_PAPER = {
    (2**12, "PolyMul"): (83_777, 335.1, 22.9, 30.4),
    (2**12, "NTT"): (24_841, 99.4, 24.5, 30.4),
    (2**12, "iNTT"): (29_468, 117.9, 19.9, 27.2),
    (2**13, "PolyMul"): (179_045, 716.2, 21.2, 29.7),
    (2**13, "NTT"): (53_535, 214.1, 24.4, 29.7),
    (2**13, "iNTT"): (62_770, 251.1, 18.3, 23.9),
}

#: Modulus width used for the silicon runs (one native 128-bit tower).
MODULUS_BITS = 109


def table5_rows(degrees: tuple[int, ...] = (2**12, 2**13)) -> list[dict[str, object]]:
    """Model-vs-paper rows for every (n, operation) pair."""
    chip = CoFHEE(ChipConfig(fidelity="timing"))
    driver = CofheeDriver(chip)
    rows = []
    for n in degrees:
        q = ntt_friendly_prime(n, MODULUS_BITS)
        driver.program(q, n)
        operations = {
            "PolyMul": lambda: driver.polynomial_multiply("P0", "P1", "P2"),
            "NTT": lambda: driver.ntt("P0", "P1"),
            "iNTT": lambda: driver.intt("P0", "P1"),
        }
        for op, run in operations.items():
            report = run()
            paper = TABLE5_PAPER.get((n, op))
            rows.append(
                {
                    "n": n,
                    "op": op,
                    "cycles": report.cycles,
                    "latency_us": round(report.latency_us, 1),
                    "avg_mw": round(report.power.avg_mw, 2),
                    "peak_mw": round(report.power.peak_mw, 2),
                    "paper_cycles": paper[0] if paper else None,
                    "paper_us": paper[1] if paper else None,
                    "paper_avg_mw": paper[2] if paper else None,
                    "paper_peak_mw": paper[3] if paper else None,
                }
            )
    return rows
