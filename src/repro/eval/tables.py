"""Fixed-width stdout tables shared by benchmarks, demos, and tools.

This used to live in ``benchmarks/conftest.py``, which the bench modules
imported as ``from conftest import print_table`` — but ``conftest`` is
whichever conftest module pytest happened to import first, so a combined
``pytest benchmarks tests`` run resolved it to ``tests/conftest.py`` and
died collecting. A real module has one unambiguous home.
"""

from __future__ import annotations


def format_row_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and abs(value) < 1e-2:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(title: str, rows: list[dict], columns: list[str]) -> str:
    """Render rows as a fixed-width table (one string, no trailing \\n)."""
    lines = [f"\n=== {title} ==="]
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    widths = {
        c: max(len(c), *(len(format_row_value(r.get(c))) for r in rows))
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            "  ".join(format_row_value(r.get(c)).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def print_table(title: str, rows: list[dict], columns: list[str]) -> None:
    print(format_table(title, rows, columns))
