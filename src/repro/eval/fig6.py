"""Fig. 6: ciphertext-multiplication time and power, CoFHEE vs SEAL/CPU.

Reproduces both panels for the two parameter sets (n, log q) = (2^12, 109)
and (2^13, 218): SEAL single-/multi-threaded on the Ryzen cost model
versus one CoFHEE instance from the cycle-calibrated simulator, plus the
Power-Delay-Product analysis of Section VI-B.
"""

from __future__ import annotations

from repro.baselines.software import CpuCostModel
from repro.bfv.params import BfvParameters
from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver, OperationReport
from repro.polymath.primes import ntt_friendly_prime

#: Paper reference points (Section VI-B prose + Fig. 6 bars).
FIG6_PAPER = {
    (2**12, "CoFHEE"): {"time_ms": 0.84, "power_w": 0.022},
    (2**12, "CPU-1T"): {"time_ms": 1.5, "power_w": 1.48},
    (2**13, "CoFHEE"): {"time_ms": 3.58, "power_w": 0.0212},
    (2**13, "CPU-1T"): {"time_ms": 6.91, "power_w": 2.3},
}
THREAD_COUNTS = (1, 4, 16)


def cofhee_ciphertext_mult(params: BfvParameters) -> OperationReport:
    """Run Algorithm 3 per CoFHEE tower on the timing-fidelity simulator."""
    chip = CoFHEE(ChipConfig(fidelity="timing"))
    driver = CofheeDriver(chip)
    q = ntt_friendly_prime(params.n, min(109, params.log_q))
    reports = []
    for _ in range(params.cofhee_tower_count):
        driver.program(q, params.n)
        report, _ = driver.ciphertext_multiply("P0", "P1", "P2", "P3", "P4", "P5")
        reports.append(report)
    return OperationReport.merge("CiphertextMul", reports, chip.power_model)


def fig6_rows() -> list[dict[str, object]]:
    """Both panels: one row per (parameter set, platform/threads)."""
    cpu = CpuCostModel()
    rows = []
    for n, log_q in ((2**12, 109), (2**13, 218)):
        params = BfvParameters.from_paper(n=n, log_q=log_q)
        report = cofhee_ciphertext_mult(params)
        paper = FIG6_PAPER[(n, "CoFHEE")]
        rows.append(
            {
                "n": n, "log_q": log_q, "platform": "CoFHEE", "threads": 1,
                "towers": params.cofhee_tower_count,
                "time_ms": round(report.latency_ms, 3),
                "power_w": round(report.power.avg_mw / 1000, 4),
                "paper_time_ms": paper["time_ms"],
                "paper_power_w": paper["power_w"],
            }
        )
        for threads in THREAD_COUNTS:
            m = cpu.measurement(params, threads)
            paper_cpu = FIG6_PAPER.get((n, "CPU-1T")) if threads == 1 else None
            rows.append(
                {
                    "n": n, "log_q": log_q, "platform": "CPU (SEAL)",
                    "threads": threads, "towers": params.cpu_tower_count,
                    "time_ms": round(m.time_ms, 3),
                    "power_w": round(m.power_w, 3),
                    "paper_time_ms": paper_cpu["time_ms"] if paper_cpu else None,
                    "paper_power_w": paper_cpu["power_w"] if paper_cpu else None,
                }
            )
    return rows


def fig6_pdp_rows() -> list[dict[str, object]]:
    """The Section VI-B PDP analysis: CoFHEE is 2-3 orders of magnitude
    more efficient (18.5e-3 vs 2.22 W*ms at n = 2^12; 75.9e-3 vs 15.9 at
    n = 2^13)."""
    cpu = CpuCostModel()
    rows = []
    paper_pdp = {2**12: (2.22, 18.5e-3), 2**13: (15.9, 75.9e-3)}
    for n, log_q in ((2**12, 109), (2**13, 218)):
        params = BfvParameters.from_paper(n=n, log_q=log_q)
        report = cofhee_ciphertext_mult(params)
        cofhee_pdp = report.power.pdp_w_ms()
        cpu_pdp = cpu.pdp_w_ms(params, threads=1)
        paper_cpu, paper_cof = paper_pdp[n]
        rows.append(
            {
                "n": n,
                "cpu_pdp_w_ms": round(cpu_pdp, 3),
                "cofhee_pdp_w_ms": round(cofhee_pdp, 5),
                "efficiency_ratio": round(cpu_pdp / cofhee_pdp, 1),
                "paper_cpu_pdp": paper_cpu,
                "paper_cofhee_pdp": paper_cof,
            }
        )
    return rows


def crossover_row(params: BfvParameters) -> dict[str, object]:
    """Threads at which SEAL overtakes one CoFHEE (Fig. 6 discussion)."""
    cpu = CpuCostModel()
    report = cofhee_ciphertext_mult(params)
    threads = cpu.crossover_threads(params, report.latency_ms)
    return {
        "n": params.n,
        "cofhee_ms": round(report.latency_ms, 3),
        "crossover_threads": threads,
    }
