"""Table X: end-to-end application comparison (CryptoNets, LogReg).

Prices each application's operation mix (Section VI-C) on the CoFHEE
simulator and on the calibrated CPU cost table, reporting totals and
speedups against the paper's 197 s -> 88.35 s (2.23x) and
550.25 s -> 377.6 s (1.46x).
"""

from __future__ import annotations

from repro.apps.costmodel import CofheeAppCost, CpuAppCost, Workload
from repro.apps.cryptonets import CRYPTONETS_WORKLOAD
from repro.apps.logreg import LOGREG_WORKLOAD
from repro.bfv.params import BfvParameters

#: Both applications run at the (2^12, 109) parameter set (one CoFHEE
#: tower, two CPU towers).
APP_N = 2**12
APP_LOG_Q = 109

WORKLOADS: tuple[Workload, ...] = (CRYPTONETS_WORKLOAD, LOGREG_WORKLOAD)


def table10_rows() -> list[dict[str, object]]:
    """One row per application: itemized model costs vs paper totals."""
    params = BfvParameters.from_paper(n=APP_N, log_q=APP_LOG_Q)
    cofhee = CofheeAppCost(params)
    cpu = CpuAppCost()
    rows = []
    for workload in WORKLOADS:
        c = cofhee.workload_seconds(workload)
        s = cpu.workload_seconds(workload)
        rows.append(
            {
                "application": workload.name,
                "cpu_s": round(s["total_s"], 2),
                "cofhee_s": round(c["total_s"], 2),
                "speedup": round(s["total_s"] / c["total_s"], 2),
                "paper_cpu_s": workload.paper_cpu_seconds,
                "paper_cofhee_s": workload.paper_cofhee_seconds,
                "paper_speedup": round(workload.paper_speedup, 2),
                "cofhee_breakdown": {k: round(v, 2) for k, v in c.items()},
                "op_mix": {
                    "ct_ct_adds": workload.ct_ct_adds,
                    "ct_pt_mults": workload.ct_pt_mults,
                    "ct_ct_mults": workload.ct_ct_mults,
                    "relin_digit_bits": workload.relin_digit_bits,
                },
            }
        )
    return rows
