"""Physical-design tables: III (PnR stats), IV (layout), VII (vias),
IX (pads + CTS QoR).

Each function runs the corresponding :mod:`repro.physical` model and
returns model-vs-paper records.
"""

from __future__ import annotations

from repro.physical.cts import ClockTreeSynthesizer, TABLE9_CTS_PAPER
from repro.physical.floorplan import Floorplanner
from repro.physical.padring import PadRing, TABLE9_PADS_PAPER
from repro.physical.pnr import table3_rows as _pnr_rows
from repro.physical.vias import table7_rows as _via_rows

#: Paper Table IV values for validation.
TABLE4_PAPER = {
    "IU_pct": 45.0,
    "FU_pct": 59.0,
    "MA_um2": 8_941_959,
    "HIO_um": 120.0,
    "CIO_um": 10.0,
    "A": 1.05,
    "CA_um2": 1_963_585,
    "CW_um": 3400.0,
    "CH_um": 3582.0,
    "DW_um": 3660.0,
    "DH_um": 3842.0,
}


def table3_rows() -> list[dict[str, object]]:
    """Table III: PnR statistics across Initial/Place/CTS/Route."""
    return _pnr_rows()


def table4_row() -> dict[str, object]:
    """Table IV: layout physical parameters, model vs paper."""
    result = Floorplanner().run()
    model = result.table4()
    return {
        "model": model,
        "paper": TABLE4_PAPER,
        "die_area_mm2": round(result.die_area_mm2, 2),
        "macros_placed": len(result.macros),
    }


def table7_rows() -> list[dict[str, object]]:
    """Table VII: redundant-via statistics per layer."""
    return _via_rows()


def table9_rows() -> dict[str, object]:
    """Table IX: die dims, pad counts, memory count, and CTS QoR."""
    pads = PadRing().summary()
    cts = ClockTreeSynthesizer().build().table9_block()
    return {
        "model": {
            "Width_um": 3660,
            "Height_um": 3842,
            "Signal_pads": pads["signal_pads"],
            "PG_pads": pads["pg_pads"],
            "PLL_bias_pads": pads["pll_bias_pads"],
            "Memories": 68,
            **cts,
        },
        "paper": {
            "Width_um": 3660,
            "Height_um": 3842,
            "Signal_pads": TABLE9_PADS_PAPER["signal_pads"],
            "PG_pads": TABLE9_PADS_PAPER["pg_pads"],
            "PLL_bias_pads": TABLE9_PADS_PAPER["pll_bias_pads"],
            "Memories": 68,
            **TABLE9_CTS_PAPER,
        },
    }
