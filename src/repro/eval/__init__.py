"""Experiment harness: one module per paper table/figure.

Each module exposes a ``rows()`` (or similarly named) function returning
structured model-vs-paper records; the ``benchmarks/`` suite prints them
and EXPERIMENTS.md records them. Keeping the harness in the library (not
in the bench scripts) makes every reproduced number unit-testable.
"""

from repro.eval.table5 import table5_rows
from repro.eval.fig6 import fig6_rows, fig6_pdp_rows
from repro.eval.table10 import table10_rows
from repro.eval.table11 import table11_rows
from repro.eval.table8 import table8_rows
from repro.eval.physical_tables import (
    table3_rows,
    table4_row,
    table7_rows,
    table9_rows,
)
from repro.eval.adpll_eval import adpll_rows
from repro.eval.tables import format_table, print_table

__all__ = [
    "adpll_rows",
    "format_table",
    "print_table",
    "fig6_pdp_rows",
    "fig6_rows",
    "table10_rows",
    "table11_rows",
    "table3_rows",
    "table4_row",
    "table5_rows",
    "table7_rows",
    "table8_rows",
    "table9_rows",
]
