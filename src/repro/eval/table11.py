"""Table XI: normalized NTT-efficiency comparison against related work.

Thin re-export of :func:`repro.baselines.related_work.table11_rows`, kept
here so the experiment index has one module per table.
"""

from repro.baselines.related_work import table11_rows

__all__ = ["table11_rows"]
