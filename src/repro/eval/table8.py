"""Table VIII: post-synthesis block areas and delays.

Thin re-export of :func:`repro.physical.synthesis.table8_rows`, kept here
so the experiment index has one module per table.
"""

from repro.physical.synthesis import table8_rows

__all__ = ["table8_rows"]
