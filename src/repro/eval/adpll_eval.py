"""ADPLL evaluation: lock behaviour across the tuning range (Section V-E).

The paper reports the ADPLL's implementation figures (0.05 mm^2, 350 uW
at 1.1 V, "compact, low power, and wide tuning range"); this harness
sweeps lock acquisition across target frequencies — including the chip's
250 MHz operating point — and reports lock time, residual frequency
error, and SAR/bang-bang step counts.
"""

from __future__ import annotations

from repro.core.adpll import Adpll, ADPLL_AREA_MM2, ADPLL_POWER_UW, ADPLL_SUPPLY_V


def adpll_rows(
    targets_mhz: tuple[float, ...] = (100.0, 175.0, 250.0, 350.0, 450.0),
) -> list[dict[str, object]]:
    """Lock-acquisition sweep across the tuning range."""
    pll = Adpll()
    lo, hi = pll.tuning_range()
    rows = []
    for target in targets_mhz:
        result = pll.lock(target * 1e6)
        rows.append(
            {
                "target_mhz": target,
                "locked": result.locked,
                "final_mhz": round(result.final_frequency_hz / 1e6, 4),
                "error_ppm": round(result.frequency_error_ppm, 1),
                "fll_steps": result.fll_steps,
                "pll_steps": result.pll_steps,
                "lock_time_us": round(pll.lock_time_seconds(result) * 1e6, 3),
            }
        )
    return rows


def adpll_summary() -> dict[str, object]:
    """Implementation figures + tuning range (paper Section V-E)."""
    pll = Adpll()
    lo, hi = pll.tuning_range()
    return {
        "area_mm2": ADPLL_AREA_MM2,
        "power_uw": ADPLL_POWER_UW,
        "supply_v": ADPLL_SUPPLY_V,
        "tuning_range_mhz": (round(lo / 1e6, 1), round(hi / 1e6, 1)),
        "architecture": "dual-loop: SAR FLL + bang-bang PD, segmented "
        "binary+unary current-DAC DCO",
    }
