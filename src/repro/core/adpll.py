"""Behavioral model of CoFHEE's All-Digital PLL (Section V-E).

The fabricated ADPLL is a dual-loop architecture: a Frequency-Locking Loop
(FLL) using a digitized phase-frequency detector with a Successive
Approximation Register (SAR) pulls the digitally-controlled oscillator
(DCO) into the capture range, then a modified Alexander (bang-bang) phase
detector with an all-digital loop filter locks phase. The DCO frequency is
set by switched current sources with segmented (binary + unary) decoding
to avoid glitches, and a digital lock detector arbitrates between the two
loops. It occupies 0.05 mm^2 and consumes 350 uW from 1.1 V in GF 55 nm.

The model simulates the control loops at reference-clock granularity:
SAR bisection on the frequency word, bang-bang dither on the phase word,
segmented DAC decode, and lock detection — reproducing the qualitative
behaviour (monotonic SAR convergence, bounded bang-bang jitter, wide
tuning range) and the headline area/power figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Reported implementation figures (Section V-E).
ADPLL_AREA_MM2 = 0.05
ADPLL_POWER_UW = 350.0
ADPLL_SUPPLY_V = 1.1


@dataclass(frozen=True)
class DcoConfig:
    """Digitally-controlled oscillator characteristics.

    The oscillator frequency is proportional to the switched supply
    current: ``f = f_min + gain_hz * code``. Segmented decoding splits the
    control word into ``binary_bits`` fine (binary-weighted) and
    ``unary_bits`` coarse (thermometer) segments.
    """

    f_min_hz: float = 40e6
    gain_hz: float = 55e3  # per fine LSB
    binary_bits: int = 6
    unary_bits: int = 7  # 127 thermometer segments

    @property
    def code_bits(self) -> int:
        return self.binary_bits + self.unary_bits

    @property
    def code_max(self) -> int:
        return (1 << self.code_bits) - 1

    @property
    def f_max_hz(self) -> float:
        return self.f_min_hz + self.gain_hz * self.code_max

    def frequency(self, code: int) -> float:
        if code < 0 or code > self.code_max:
            raise ValueError(f"DCO code {code} out of range [0, {self.code_max}]")
        return self.f_min_hz + self.gain_hz * code

    def decode_segments(self, code: int) -> tuple[int, int]:
        """Split a control word into (unary thermometer count, binary fine).

        Keeping the coarse segments thermometer-coded guarantees monotonic
        current steps — the "segmented decoding ... to avoid potential
        discontinuities and glitches" of the paper.
        """
        fine = code & ((1 << self.binary_bits) - 1)
        coarse = code >> self.binary_bits
        return coarse, fine


@dataclass
class LockResult:
    """Outcome of a locking simulation."""

    locked: bool
    fll_steps: int
    pll_steps: int
    final_frequency_hz: float
    frequency_error_ppm: float
    code: int
    history: list[float] = field(default_factory=list)


class Adpll:
    """Dual-loop ADPLL: SAR frequency acquisition + bang-bang phase lock."""

    def __init__(self, dco: DcoConfig | None = None, reference_hz: float = 25e6):
        self.dco = dco or DcoConfig()
        self.reference_hz = reference_hz
        self.area_mm2 = ADPLL_AREA_MM2
        self.power_uw = ADPLL_POWER_UW

    def tuning_range(self) -> tuple[float, float]:
        """The DCO's reachable output range ("wide tuning range")."""
        return self.dco.f_min_hz, self.dco.f_max_hz

    def lock(self, target_hz: float, max_pll_steps: int = 200) -> LockResult:
        """Acquire frequency then phase lock at ``target_hz``.

        The FLL runs one SAR bisection per control bit (MSB first), forcing
        the frequency error inside the bang-bang capture range; the PLL
        loop then dithers the fine word +-1 around the optimum, which the
        lock detector declares locked once the dither straddles the target.

        Raises:
            ValueError: if the target frequency is outside the DCO range.
        """
        lo, hi = self.tuning_range()
        if not lo <= target_hz <= hi:
            raise ValueError(
                f"target {target_hz / 1e6:.1f} MHz outside DCO range "
                f"[{lo / 1e6:.1f}, {hi / 1e6:.1f}] MHz"
            )
        history: list[float] = []
        # --- FLL: SAR binary search on the full control word. ---
        code = 0
        fll_steps = 0
        for bit in range(self.dco.code_bits - 1, -1, -1):
            trial = code | (1 << bit)
            f = self.dco.frequency(trial)
            history.append(f)
            fll_steps += 1
            if f <= target_hz:
                code = trial
        # --- PLL: bang-bang early/late dither on the fine word. ---
        pll_steps = 0
        locked = False
        straddle_count = 0
        for _ in range(max_pll_steps):
            f = self.dco.frequency(code)
            history.append(f)
            pll_steps += 1
            early = f > target_hz  # clock leads data: slow down
            step = -1 if early else 1
            next_code = min(max(code + step, 0), self.dco.code_max)
            f_next = self.dco.frequency(next_code)
            # Lock detector: consecutive dithers straddling the target.
            if (f - target_hz) * (f_next - target_hz) <= 0:
                straddle_count += 1
                if straddle_count >= 3:
                    locked = True
                    if abs(f_next - target_hz) < abs(f - target_hz):
                        code = next_code
                    break
            else:
                straddle_count = 0
            code = next_code
        final = self.dco.frequency(code)
        return LockResult(
            locked=locked,
            fll_steps=fll_steps,
            pll_steps=pll_steps,
            final_frequency_hz=final,
            frequency_error_ppm=(final - target_hz) / target_hz * 1e6,
            code=code,
            history=history,
        )

    def quantization_error_bound_hz(self) -> float:
        """Worst-case frequency error after lock: half a fine LSB of dither."""
        return self.dco.gain_hz

    def lock_time_seconds(self, result: LockResult) -> float:
        """Lock time assuming one loop update per reference cycle."""
        return (result.fll_steps + result.pll_steps) / self.reference_hz


class BangBangPhaseDetector:
    """Modified Alexander (early-late) phase detector (Section V-E).

    Three consecutive samples decide: no transition -> no action; clock
    early -> slow down; clock late -> speed up. Exposed standalone so its
    truth table is unit-testable.
    """

    EARLY = -1
    NO_TRANSITION = 0
    LATE = 1

    def decide(self, s0: int, s1: int, s2: int) -> int:
        """Classify from three consecutive binary samples."""
        for s in (s0, s1, s2):
            if s not in (0, 1):
                raise ValueError("samples must be binary")
        if s0 == s2:
            return self.NO_TRANSITION  # no data transition in the window
        if s1 == s2:
            return self.EARLY  # mid sample already matches the new value
        return self.LATE


def sar_capture_range_check(dco: DcoConfig, target_hz: float) -> float:
    """Residual frequency error after SAR acquisition, in Hz.

    The SAR leaves at most one fine LSB of error — within the bang-bang
    detector's narrow pull-in range, which is the architectural reason the
    dual-loop structure is needed (the BBPD alone captures only "a few
    percent of the reference clock frequency").
    """
    lo, hi = dco.f_min_hz, dco.f_max_hz
    if not lo <= target_hz <= hi:
        raise ValueError("target outside DCO range")
    code = round((target_hz - dco.f_min_hz) / dco.gain_hz)
    code = min(max(code, 0), dco.code_max)
    return abs(dco.frequency(code) - target_hz)
