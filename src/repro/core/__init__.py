"""Cycle-level model of the CoFHEE co-processor (the paper's contribution).

The package mirrors Fig. 1 of the paper block-for-block:

* :mod:`repro.core.pe` — the processing element: pipelined Barrett modular
  multiplier (5-cycle latency, II = 1), 1-cycle modular adder/subtractor,
  and the radix-2 butterfly mode.
* :mod:`repro.core.memory` — the 3 dual-port + 5 single-port SRAM banks
  (1 MB total) with read latency, plus the CM0 instruction memory.
* :mod:`repro.core.bus` — the AHB-Lite 10x11 crossbar with single and
  8-beat burst transfers.
* :mod:`repro.core.mdmc` — the Multiplier Data Mover and Controller state
  machine that sequences NTT stages, ping-pongs the dual-port banks, and
  streams pointwise operations.
* :mod:`repro.core.dma`, :mod:`repro.core.fifo`, :mod:`repro.core.regs`,
  :mod:`repro.core.cm0`, :mod:`repro.core.interfaces` — DMA engine,
  32-deep command FIFO, Table II configuration registers, the ARM
  Cortex-M0 sequencer, and the UART/SPI host links.
* :mod:`repro.core.chip` / :mod:`repro.core.driver` — the assembled chip
  and the host-side API with the three execution modes of Section III-I.
* :mod:`repro.core.timing` / :mod:`repro.core.power` — the calibrated
  cycle and power models (Table V).
* :mod:`repro.core.adpll` — behavioral model of the all-digital PLL.

The functional datapath is bit-exact against :mod:`repro.polymath`; the
cycle accounting reproduces Table V to within 0.02 %.
"""

from repro.core.chip import CoFHEE
from repro.core.driver import CofheeDriver, OperationReport
from repro.core.isa import Command, Opcode
from repro.core.timing import ClockConfig, TimingModel
from repro.core.power import PowerModel, PowerReport

__all__ = [
    "ClockConfig",
    "CoFHEE",
    "CofheeDriver",
    "Command",
    "Opcode",
    "OperationReport",
    "PowerModel",
    "PowerReport",
    "TimingModel",
]
