"""AHB-Lite interconnect model (Section III-G1).

CoFHEE uses a parameterized AHB-Lite crossbar — 10 manager x 11 subordinate
ports, 152-byte total width, 0.07 mm^2 in 55 nm — chosen over the heavy
crossbars of F1 for its low area and signal count. Three managers matter
for performance: the MDMC, the DMA, and the ARM CM0; the bus lets them
reach *different* SRAM banks in the same cycle (Section III-F: "the bus
architecture allows the MDMC, DMA, and ARM CM0 to access memories in
parallel"), while accesses to the same bank port serialize.

The model provides cycle-costed single and 8-beat burst transfers plus a
per-cycle arbitration check used by the MDMC/DMA overlap logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import BusError
from repro.core.memory import MemoryMap
from repro.core.timing import BURST_BEATS, BURST_OVERHEAD


@dataclass
class BusStats:
    """Transfer counters (for utilization reporting and the power model)."""

    single_transfers: int = 0
    burst_transfers: int = 0
    beats: int = 0
    conflicts: int = 0

    def reset(self) -> None:
        self.single_transfers = 0
        self.burst_transfers = 0
        self.beats = 0
        self.conflicts = 0


class AhbLiteBus:
    """The 10x11 AHB-Lite crossbar.

    Args:
        memory_map: the chip's SRAM map (subordinates).
        managers: names of manager ports; defaults to the fabricated set.
    """

    #: Fabricated configuration (Section III-G1).
    DEFAULT_MANAGERS = (
        "MDMC_A",
        "MDMC_B",
        "MDMC_C",
        "MDMC_D",  # MDMC operand/result lanes
        "DMA_RD",
        "DMA_WR",
        "CM0_I",
        "CM0_D",
        "SPI",
        "UART",
    )

    def __init__(self, memory_map: MemoryMap, managers: tuple[str, ...] | None = None):
        self.memory_map = memory_map
        self.managers = managers or self.DEFAULT_MANAGERS
        self.stats = BusStats()
        # Per-"cycle" port reservations: (bank name, port) -> manager.
        self._reservations: dict[tuple[str, int], str] = {}

    @property
    def manager_count(self) -> int:
        return len(self.managers)

    @property
    def subordinate_count(self) -> int:
        # Each dual-port bank is two subordinate windows ("treating them as
        # two distinct address spaces at the bus level"): 3x2 DP + 4 SP +
        # CM0 SRAM = 11, the fabricated 10x11 crossbar.
        windows = sum(b.ports for b in self.memory_map.data_banks)
        return windows + 1  # + CM0 SRAM window

    # -- cycle-level arbitration ------------------------------------------

    def begin_cycle(self) -> None:
        """Clear port reservations at a cycle boundary."""
        self._reservations.clear()

    def claim(self, manager: str, bank_name: str, port: int) -> bool:
        """Try to reserve a bank port for this cycle.

        Returns False (and counts a conflict) if another manager holds it —
        the serialization the paper avoids by giving the MDMC dual-port
        banks and the DMA the third bank.
        """
        if manager not in self.managers:
            raise BusError(f"unknown manager {manager!r}")
        key = (bank_name, port)
        holder = self._reservations.get(key)
        if holder is not None and holder != manager:
            self.stats.conflicts += 1
            return False
        self._reservations[key] = manager
        return True

    # -- costed transfers --------------------------------------------------

    def single_read(self, address: int) -> tuple[int, int]:
        """One AHB single transfer. Returns ``(value, cycles)``."""
        bank, _, word = self.memory_map.decode(address)
        self.stats.single_transfers += 1
        self.stats.beats += 1
        return bank.read(word), 1 + bank.read_latency

    def single_write(self, address: int, value: int) -> int:
        """One AHB single write. Returns cycle cost."""
        bank, _, word = self.memory_map.decode(address)
        bank.write(word, value)
        self.stats.single_transfers += 1
        self.stats.beats += 1
        return 1

    def burst_read(self, address: int, beats: int) -> tuple[list[int], int]:
        """Incrementing burst read. Returns ``(values, cycles)``.

        Bursts are split into 8-beat AHB INCR8 segments, each paying one
        re-arbitration cycle (the ``n/8`` overhead visible in Table V's
        pointwise timings).
        """
        bank, _, word = self.memory_map.decode(address)
        values = bank.read_block(word, beats)
        segments = -(-beats // BURST_BEATS)
        self.stats.burst_transfers += segments
        self.stats.beats += beats
        return values, beats + segments * BURST_OVERHEAD + bank.read_latency

    def burst_write(self, address: int, values: list[int]) -> int:
        """Incrementing burst write. Returns cycle cost."""
        bank, _, word = self.memory_map.decode(address)
        bank.write_block(word, values)
        segments = -(-len(values) // BURST_BEATS)
        self.stats.burst_transfers += segments
        self.stats.beats += len(values)
        return len(values) + segments * BURST_OVERHEAD

    # -- reporting ----------------------------------------------------------

    def crossbar_description(self) -> str:
        return (
            f"AHB-Lite {self.manager_count}x{self.subordinate_count} crossbar, "
            f"128-bit data, burst length {BURST_BEATS}"
        )
