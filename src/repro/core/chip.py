"""CoFHEE top level: the assembled chip of Fig. 1.

Composes the SRAM banks, AHB-Lite crossbar, PE, MDMC, DMA, command FIFO,
configuration registers, ARM Cortex-M0, host links, and the ADPLL into one
object. The companion :class:`repro.core.driver.CofheeDriver` plays the
host PC's role (loading polynomials over SPI/UART, issuing commands,
reading results); the chip object itself only exposes what the silicon
exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adpll import Adpll
from repro.core.bus import AhbLiteBus
from repro.core.cm0 import CortexM0
from repro.core.dma import DmaEngine
from repro.core.errors import ConfigError
from repro.core.fifo import CommandFifo
from repro.core.interfaces import SpiLink, UartLink
from repro.core.mdmc import Mdmc
from repro.core.memory import MemoryMap
from repro.core.pe import ProcessingElement
from repro.core.power import PowerModel
from repro.core.regs import ConfigRegisters
from repro.core.timing import ClockConfig, TimingModel

#: Headline implementation facts (abstract / Section V).
DESIGN_AREA_MM2 = 12.0
DIE_AREA_MM2 = 15.0  # including seal ring
TECHNOLOGY = "GF 55nm LPE"
MAX_NATIVE_N = 2**14
OPTIMIZED_N = 2**13


@dataclass(frozen=True)
class ChipConfig:
    """Build-time parameters of a CoFHEE instance.

    The defaults are the fabricated chip; the scalability studies of
    Section VIII-A instantiate variants (more banks, bigger banks).
    """

    poly_words: int = 8192  # one n = 2^13 polynomial per bank
    frequency_hz: float = 250e6
    fidelity: str = "vector"


class CoFHEE:
    """One CoFHEE co-processor instance."""

    def __init__(self, config: ChipConfig | None = None):
        self.config = config or ChipConfig()
        self.clock = ClockConfig(frequency_hz=self.config.frequency_hz)
        self.timing = TimingModel(self.clock, dual_port_words=self.config.poly_words)
        self.memory_map = MemoryMap.default(poly_words=self.config.poly_words)
        self.bus = AhbLiteBus(self.memory_map)
        self.pe = ProcessingElement()
        self.mdmc = Mdmc(
            self.memory_map, self.bus, self.pe, self.timing,
            fidelity=self.config.fidelity,
        )
        self.dma = DmaEngine(self.memory_map, self.bus, self.timing)
        self.fifo = CommandFifo()
        self.regs = ConfigRegisters()
        self.cm0 = CortexM0(self.memory_map.cm0_sram)
        self.spi = SpiLink()
        self.uart = UartLink()
        self.adpll = Adpll()
        self.power_model = PowerModel(self.clock)

    # ------------------------------------------------------------------

    def configure_modulus(self, q: int, n: int) -> None:
        """Program Q/N/INV_POLYDEG/BARRETT_CTL registers and the PE.

        Mirrors the silicon bring-up sequence: the host computes the
        Barrett constants and writes them; the PE consumes them.

        Raises:
            ConfigError: on out-of-range modulus or non-power-of-two n.
        """
        if n < 2 or n & (n - 1):
            raise ConfigError(f"n must be a power of two, got {n}")
        if n > MAX_NATIVE_N:
            raise ConfigError(
                f"n = {n} exceeds the native maximum {MAX_NATIVE_N}; larger "
                "degrees need host-assisted decomposition (Section III-C)"
            )
        self.regs.program_modulus(q, n)
        self.pe.configure(q)

    @property
    def programmed_q(self) -> int:
        return self.regs.read("Q")

    @property
    def programmed_n(self) -> int:
        return self.regs.read("N")

    @property
    def n_inverse(self) -> int:
        return self.regs.read("INV_POLYDEG")

    def reset_stats(self) -> None:
        """Clear every performance counter (between experiments)."""
        self.memory_map.reset_stats()
        self.pe.stats.reset()
        self.bus.stats.reset()
        self.mdmc.total_cycles = 0
        self.mdmc.commands_executed = 0

    def inventory(self) -> dict[str, object]:
        """Datasheet-style summary used by docs and sanity tests."""
        return {
            "technology": TECHNOLOGY,
            "design_area_mm2": DESIGN_AREA_MM2,
            "die_area_mm2": DIE_AREA_MM2,
            "frequency_mhz": self.clock.frequency_hz / 1e6,
            "max_native_n": MAX_NATIVE_N,
            "optimized_n": OPTIMIZED_N,
            "max_coeff_bits": 128,
            "dual_port_banks": len(self.memory_map.dual_port),
            "single_port_banks": len(self.memory_map.single_port),
            "data_memory_bytes": self.memory_map.total_data_bytes(),
            "command_fifo_depth": self.fifo.depth,
            "bus": self.bus.crossbar_description(),
        }
