"""Activity-based power model, calibrated to the silicon measurements.

The paper measures power with a current probe on the fabricated chip
(Table V) and explains the structure of the numbers by unit activity: NTT
keeps the multiplier, adder, subtractor, and five SRAM ports busy every
cycle (highest peak); the iNTT's decimation-in-frequency butterflies
switch less (the multiplier input is the correlated subtractor output) and
its constant-multiply tail uses only the multiplier and two ports (lowest
power); pointwise passes sit in between.

The model assigns each execution phase (see
:class:`repro.core.mdmc.PhaseRecord`) an average power with a small
per-octave size slope (larger polynomials spread accesses across more
physical SRAM instances with slightly lower per-access energy) and a peak
value for worst-case data switching. The six phase parameters are fitted
to the twelve Table V measurements; the model then *predicts* the Fig. 6b
ciphertext-multiplication readings (22 mW at n = 2^12, 21.2 mW at n = 2^13)
with no further tuning — reproduced to within 0.2 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mdmc import PhaseRecord
from repro.core.timing import ClockConfig

#: Reference size for the calibration points (n = 2^12).
_REF_LOG_N = 12
#: The slopes are fitted on the n = 2^12 -> 2^13 silicon measurements;
#: outside [2^12, 2^14] the linear extrapolation is clamped (sub-2^12
#: polynomials exercise the same banks, so their power floors at the
#: calibrated n = 2^12 point).
_OCTAVE_RANGE = (0, 2)


def _octaves(n: int) -> int:
    octaves = (n.bit_length() - 1) - _REF_LOG_N
    return min(max(octaves, _OCTAVE_RANGE[0]), _OCTAVE_RANGE[1])


@dataclass(frozen=True)
class PhasePower:
    """Power characteristics of one activity class.

    Attributes:
        avg_mw: average power at n = 2^12.
        avg_slope_mw: change per octave of n (fitted; negative values model
            the lower per-instance switching at larger sizes seen on
            silicon).
        peak_mw: worst-case switching power at n = 2^12.
        peak_slope_mw: peak change per octave of n.
    """

    avg_mw: float
    avg_slope_mw: float
    peak_mw: float
    peak_slope_mw: float

    def avg(self, n: int) -> float:
        return self.avg_mw + self.avg_slope_mw * _octaves(n)

    def peak(self, n: int) -> float:
        return self.peak_mw + self.peak_slope_mw * _octaves(n)


#: Calibrated phase table. Butterfly/const values are solved directly from
#: Table V (see EXPERIMENTS.md for the algebra); hadamard/pointwise-add are
#: least-squares fits against the PolyMul rows; memcpy/idle are the modeled
#: DMA-only and clock-tree/leakage floors.
PHASE_TABLE: dict[str, PhasePower] = {
    "dit_butterfly": PhasePower(avg_mw=24.5, avg_slope_mw=-0.1,
                                peak_mw=30.4, peak_slope_mw=-0.7),
    "dif_butterfly": PhasePower(avg_mw=21.5, avg_slope_mw=-1.9,
                                peak_mw=27.2, peak_slope_mw=-3.3),
    "const_mult": PhasePower(avg_mw=11.3, avg_slope_mw=-0.5,
                             peak_mw=14.0, peak_slope_mw=-0.5),
    "hadamard": PhasePower(avg_mw=20.0, avg_slope_mw=0.0,
                           peak_mw=26.0, peak_slope_mw=-0.5),
    "pointwise_add": PhasePower(avg_mw=15.0, avg_slope_mw=0.0,
                                peak_mw=18.0, peak_slope_mw=0.0),
    "memcpy": PhasePower(avg_mw=12.0, avg_slope_mw=0.0,
                         peak_mw=14.0, peak_slope_mw=0.0),
    "idle": PhasePower(avg_mw=8.0, avg_slope_mw=0.0,
                       peak_mw=8.0, peak_slope_mw=0.0),
}

#: Logic-core supply (Section III-A: 1.2 V core, 3.3 V IO).
CORE_VOLTAGE = 1.2


@dataclass(frozen=True)
class PowerReport:
    """Average/peak power and energy over an execution trace."""

    avg_mw: float
    peak_mw: float
    cycles: int
    seconds: float

    @property
    def energy_mj(self) -> float:
        return self.avg_mw * self.seconds

    @property
    def avg_current_ma(self) -> float:
        """Supply current at the 1.2 V core rail — the paper quotes the
        requirement as ~25 mA average / ~30 mA peak."""
        return self.avg_mw / CORE_VOLTAGE

    @property
    def peak_current_ma(self) -> float:
        return self.peak_mw / CORE_VOLTAGE

    def pdp_w_ms(self, latency_ms: float | None = None) -> float:
        """Power-Delay Product in W*ms (the paper's efficiency metric)."""
        t_ms = latency_ms if latency_ms is not None else self.seconds * 1e3
        return self.avg_mw * 1e-3 * t_ms


class PowerModel:
    """Phase-weighted power integration over MDMC execution traces."""

    def __init__(self, clock: ClockConfig | None = None,
                 phase_table: dict[str, PhasePower] | None = None):
        self.clock = clock or ClockConfig()
        self.phase_table = phase_table or PHASE_TABLE

    def phase_avg_mw(self, kind: str, n: int) -> float:
        return self._phase(kind).avg(n)

    def phase_peak_mw(self, kind: str, n: int) -> float:
        return self._phase(kind).peak(n)

    def report(self, phases: list[PhaseRecord]) -> PowerReport:
        """Integrate a phase trace into average/peak power.

        Average = energy-weighted mean of phase averages; peak = maximum
        phase peak present (the oscilloscope's max sample).
        """
        if not phases:
            return PowerReport(avg_mw=0.0, peak_mw=0.0, cycles=0, seconds=0.0)
        total_cycles = 0
        energy = 0.0  # mW * cycles
        peak = 0.0
        for rec in phases:
            power = self._phase(rec.kind)
            total_cycles += rec.cycles
            energy += power.avg(rec.n) * rec.cycles
            peak = max(peak, power.peak(rec.n))
        seconds = self.clock.cycles_to_seconds(total_cycles)
        return PowerReport(
            avg_mw=energy / total_cycles,
            peak_mw=peak,
            cycles=total_cycles,
            seconds=seconds,
        )

    def _phase(self, kind: str) -> PhasePower:
        if kind not in self.phase_table:
            raise KeyError(f"unknown power phase {kind!r}")
        return self.phase_table[kind]
