"""The Processing Element: Barrett multiplier + adder/subtractor + butterfly.

Section III-E: the PE holds one pipelined Barrett modular multiplier
(II = 1, 5-cycle latency), a 1-cycle modular adder and subtractor, and the
multiplexing that composes them into four modes: (1) modular
multiplication, (2) modular addition, (3) modular subtraction, and (4) the
radix-2 butterfly (multiply, then add and subtract) that is the atomic unit
of NTT/iNTT. Maximum native operand width is 128 bits; wider coefficients
must be RNS-decomposed by the host.

The model is bit-exact (it really runs Barrett reduction, so twiddle/modulus
programming errors surface as wrong data, like on silicon) and counts unit
activations for the power model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.errors import ConfigError
from repro.core.timing import ADD_LATENCY, MUL_LATENCY
from repro.polymath.modmath import BarrettReducer, modadd, modsub

#: Native coefficient width (Section III-C).
MAX_COEFF_BITS = 128


class PeMode(Enum):
    """The PE's four operating modes (Section III-E)."""

    MUL = "modular_multiplication"
    ADD = "modular_addition"
    SUB = "modular_subtraction"
    BUTTERFLY = "butterfly"


@dataclass
class PeStats:
    """Unit-activation counters feeding the power model."""

    multiplies: int = 0
    adds: int = 0
    subs: int = 0
    butterflies: int = 0

    def reset(self) -> None:
        self.multiplies = 0
        self.adds = 0
        self.subs = 0
        self.butterflies = 0


class ProcessingElement:
    """One CoFHEE PE (the chip has exactly one; Section VI-B notes four
    would enable radix-4 butterflies for ~4x NTT throughput).

    The modulus is programmed through :meth:`configure` — the driver's
    equivalent of writing the ``Q``/``BARRETT_CTL1``/``BARRETT_CTL2``
    configuration registers.
    """

    def __init__(self):
        self._barrett: BarrettReducer | None = None
        self.stats = PeStats()

    # -- configuration ------------------------------------------------------

    def configure(self, q: int) -> None:
        """Program the modulus (and derived Barrett constants).

        Raises:
            ConfigError: if ``q`` exceeds the native 128-bit width.
        """
        if q < 2:
            raise ConfigError(f"modulus must be >= 2, got {q}")
        if q.bit_length() > MAX_COEFF_BITS:
            raise ConfigError(
                f"modulus of {q.bit_length()} bits exceeds the native "
                f"{MAX_COEFF_BITS}-bit datapath; RNS-decompose on the host"
            )
        self._barrett = BarrettReducer(q)

    @property
    def q(self) -> int:
        return self._require_config().q

    @property
    def barrett_k(self) -> int:
        """Contents of the ``BARRETT_CTL1`` register."""
        return self._require_config().k

    @property
    def barrett_mu(self) -> int:
        """Contents of the ``BARRETT_CTL2`` register."""
        return self._require_config().mu

    # -- datapath operations -------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        """Modular multiplication through the Barrett pipeline (5 cycles,
        II = 1)."""
        barrett = self._require_config()
        self.stats.multiplies += 1
        return barrett.mulmod(a, b)

    def mul_plain(self, a: int, b: int) -> int:
        """Plain (non-modular) multiplication — the ``PMUL`` instruction.

        The 256-bit product is returned full-width; the MDMC stores the low
        and high halves to consecutive result words.
        """
        self.stats.multiplies += 1
        return a * b

    def add(self, a: int, b: int) -> int:
        """Modular addition (1 cycle)."""
        self.stats.adds += 1
        return modadd(a % self.q, b % self.q, self.q)

    def sub(self, a: int, b: int) -> int:
        """Modular subtraction (1 cycle)."""
        self.stats.subs += 1
        return modsub(a % self.q, b % self.q, self.q)

    def butterfly(self, u: int, v: int, twiddle: int) -> tuple[int, int]:
        """Radix-2 Cooley-Tukey butterfly: ``(u + t*v, u - t*v)``.

        One multiply feeding one add and one subtract — mode (4). At II = 1
        the MDMC issues one butterfly per cycle.
        """
        barrett = self._require_config()
        m = barrett.mulmod(v, twiddle)
        self.stats.multiplies += 1
        self.stats.adds += 1
        self.stats.subs += 1
        self.stats.butterflies += 1
        q = barrett.q
        return modadd(u % q, m, q), modsub(u % q, m, q)

    def gs_butterfly(self, u: int, v: int, twiddle: int) -> tuple[int, int]:
        """Gentleman-Sande (DIF) butterfly: ``(u + v, (u - v) * t)``.

        Used by the iNTT (Section VI-A's "decimation in frequency
        operation"); same unit activations as the CT butterfly, with the
        multiply on the subtractor output.
        """
        barrett = self._require_config()
        q = barrett.q
        s = modadd(u % q, v % q, q)
        d = modsub(u % q, v % q, q)
        m = barrett.mulmod(d, twiddle)
        self.stats.multiplies += 1
        self.stats.adds += 1
        self.stats.subs += 1
        self.stats.butterflies += 1
        return s, m

    # -- latency constants ----------------------------------------------------

    @staticmethod
    def latency(mode: PeMode) -> int:
        """Cycle latency per Section III-E."""
        if mode is PeMode.MUL:
            return MUL_LATENCY
        if mode in (PeMode.ADD, PeMode.SUB):
            return ADD_LATENCY
        return MUL_LATENCY + ADD_LATENCY  # butterfly: multiply then add/sub

    def _require_config(self) -> BarrettReducer:
        if self._barrett is None:
            raise ConfigError("PE modulus not configured (write Q register first)")
        return self._barrett
