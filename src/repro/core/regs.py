"""General Purpose Configuration registers (Table II).

CoFHEE has 35 configuration registers mapped at 0x4002_0000-0x4002_FFFF
following the ARM Cortex-M peripheral convention. Table II lists the
representative subset modeled here: IO pad controls, UART/SPI controls, the
crypto parameters (Q, N, INV_POLYDEG, BARRETT_CTL1/2), command/FIFO
triggers, PLL controls, and the chip-ID/debug registers.

Registers are genuinely load-bearing in the model: the driver programs
Q/N/BARRETT_* and the MDMC reads them back, so a mis-programmed modulus
produces wrong data exactly as it would on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError

#: Register block base (Section III-A / Table II).
GPCFG_BASE = 0x4002_0000

#: The chip SIGNATURE register's reset value (chip ID).
CHIP_SIGNATURE = 0xC0F4_EE01


@dataclass(frozen=True)
class RegisterSpec:
    """Static description of one configuration register."""

    name: str
    offset: int
    bits: int
    description: str
    reset: int = 0


#: Table II register map (offsets follow declaration order, word-aligned;
#: 128/160-bit registers occupy multiple words on the bus).
REGISTER_SPECS: tuple[RegisterSpec, ...] = (
    RegisterSpec("UARTM_TXPAD_CTL", 0x000, 32, "IO pad control for primary UART TX"),
    RegisterSpec("UARTM_RXPAD_CTL", 0x004, 32, "IO pad control for primary UART RX"),
    RegisterSpec("UARTS_TXPAD_CTL", 0x008, 32, "IO pad control for secondary UART TX"),
    RegisterSpec("SPI_MOSI_PAD_CTL", 0x00C, 32, "SPI data in pad control"),
    RegisterSpec("SPI_MISO_PAD_CTL", 0x010, 32, "SPI data out pad control"),
    RegisterSpec("SPI_CLK_PAD_CTL", 0x014, 32, "SPI clock pad control"),
    RegisterSpec("SPI_CSN_PAD_CTL", 0x018, 32, "SPI chip select pad control"),
    RegisterSpec("HOST_IRQ_PAD_CTL", 0x01C, 32, "IO pad control for Host Interrupt"),
    RegisterSpec("UARTM_BAUD_CTL", 0x020, 32, "Baud control for primary UART"),
    RegisterSpec("UARTS_BAUD_CTL", 0x024, 32, "Baud control for secondary UART"),
    RegisterSpec("UARTM_CTL", 0x028, 32, "Primary UART control"),
    RegisterSpec("UARTS_CTL", 0x02C, 32, "Secondary UART control"),
    RegisterSpec("SIGNATURE", 0x030, 32, "Stores Chip ID", reset=CHIP_SIGNATURE),
    RegisterSpec("Q", 0x040, 128, "Modulus q"),
    RegisterSpec("N", 0x050, 128, "Polynomial degree n"),
    RegisterSpec("INV_POLYDEG", 0x060, 128, "n^-1 mod q"),
    RegisterSpec("BARRETT_CTL1", 0x070, 32, "barrett k = 2*log(q)"),
    RegisterSpec("BARRETT_CTL2", 0x074, 160, "barrett constant = 2^k / q"),
    RegisterSpec("FHE_CTL1", 0x090, 32, "Command FIFO select and n"),
    RegisterSpec("FHE_CTL2", 0x094, 32, "Trigger bits for different commands"),
    RegisterSpec("FHE_CTL3", 0x098, 32, "Select or bypass PLL clock"),
    RegisterSpec("PLL_CTL", 0x09C, 32, "Control bits required for the PLL"),
    RegisterSpec("COMMAND_FIFO", 0x0A0, 32, "Trigger bits for different commands"),
    RegisterSpec("DBG_REG", 0x0A4, 32, "Debug register"),
)

#: Total register count on the fabricated chip (Table II shows a subset).
TOTAL_REGISTER_COUNT = 35


class ConfigRegisters:
    """The GPCFG block: named + address-mapped access with width checks."""

    def __init__(self):
        self._specs = {spec.name: spec for spec in REGISTER_SPECS}
        self._by_offset = {spec.offset: spec for spec in REGISTER_SPECS}
        self._values = {spec.name: spec.reset for spec in REGISTER_SPECS}

    def spec(self, name: str) -> RegisterSpec:
        if name not in self._specs:
            raise ConfigError(f"no configuration register named {name!r}")
        return self._specs[name]

    def read(self, name: str) -> int:
        return self._values[self.spec(name).name]

    def write(self, name: str, value: int) -> None:
        spec = self.spec(name)
        if value < 0 or value.bit_length() > spec.bits:
            raise ConfigError(
                f"{name}: value needs {value.bit_length()} bits, register has {spec.bits}"
            )
        self._values[name] = value

    # -- bus-mapped access (32-bit word granularity) -----------------------

    def bus_read(self, address: int) -> int:
        """Read a 32-bit word of the register block at a bus address."""
        name, word = self._locate(address)
        return (self._values[name] >> (32 * word)) & 0xFFFF_FFFF

    def bus_write(self, address: int, value: int) -> None:
        """Write one 32-bit word (wide registers are written word-by-word)."""
        if value < 0 or value.bit_length() > 32:
            raise ConfigError("bus writes are 32-bit")
        name, word = self._locate(address)
        spec = self._specs[name]
        mask = 0xFFFF_FFFF << (32 * word)
        merged = (self._values[name] & ~mask) | (value << (32 * word))
        if merged.bit_length() > spec.bits:
            merged &= (1 << spec.bits) - 1
        self._values[name] = merged

    def _locate(self, address: int) -> tuple[str, int]:
        if address < GPCFG_BASE or address >= GPCFG_BASE + 0x1_0000:
            raise ConfigError(f"address {address:#x} outside GPCFG range")
        offset = address - GPCFG_BASE
        base = offset & ~0x3
        # find the register containing this word
        for spec in REGISTER_SPECS:
            words = -(-spec.bits // 32)
            if spec.offset <= base < spec.offset + 4 * words:
                return spec.name, (base - spec.offset) // 4
        raise ConfigError(f"no register at offset {offset:#x}")

    # -- crypto-parameter convenience (what the driver programs) ------------

    def program_modulus(self, q: int, n: int) -> None:
        """Write Q, N, INV_POLYDEG, BARRETT_CTL1/2 for a new modulus."""
        from repro.polymath.modmath import modinv

        self.write("Q", q)
        self.write("N", n)
        self.write("INV_POLYDEG", modinv(n, q))
        k = 2 * q.bit_length()
        self.write("BARRETT_CTL1", k)
        self.write("BARRETT_CTL2", (1 << k) // q)

    def dump(self) -> dict[str, int]:
        """Snapshot of every modeled register (debug/verification aid)."""
        return dict(self._values)
