"""Cycle and wall-clock timing model, calibrated to the fabricated chip.

Every constant here is anchored to a statement or measurement in the paper:

* the chip runs at **250 MHz**, limited by the ~4 ns SRAM read path
  (Section III-D);
* modular add/sub have 1-cycle latency, modular multiply 5-cycle latency,
  all at II = 1 (Section III-E);
* each NTT stage streams ``n/2`` butterflies at II = 1 out of the dual-port
  banks (Section III-G2) and pays a fixed fill/drain + hand-off overhead of
  **22 cycles** (2-cycle SRAM read, 5-cycle multiplier, 1-cycle add/sub and
  1-cycle writeback fill and drain the 9-deep pipeline, plus 4 cycles of
  MDMC stage hand-off), with 1 dispatch cycle per command;
* pointwise operations stream through 8-beat AHB bursts, paying one
  re-arbitration cycle per burst and a 19-cycle setup/drain.

With those constants the model reproduces Table V *exactly* for NTT and
iNTT at n = 2^12 and 2^13 (24 841 / 53 535 / 29 468 / 62 770 cycles) and
polynomial multiplication to 0.02 %.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockConfig:
    """Chip clocking parameters.

    Attributes:
        frequency_hz: core clock; the silicon target is 250 MHz.
    """

    frequency_hz: float = 250e6

    @property
    def period_ns(self) -> float:
        return 1e9 / self.frequency_hz

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / self.frequency_hz

    def cycles_to_us(self, cycles: int) -> float:
        return cycles / self.frequency_hz * 1e6


# -- micro-architectural latency constants (Sections III-D/E/G) -----------

#: SRAM read latency in cycles (the ~4 ns read path at a 4 ns clock).
MEM_READ_CYCLES = 2
#: Modular multiplier pipeline latency (Section III-E: "five clock cycles").
MUL_LATENCY = 5
#: Modular adder/subtractor latency (Section III-E: "one clock cycle").
ADD_LATENCY = 1
#: Result writeback stage.
WRITE_CYCLES = 1
#: Butterfly pipeline depth: read + multiply + add/sub + write.
BUTTERFLY_PIPELINE = MEM_READ_CYCLES + MUL_LATENCY + ADD_LATENCY + WRITE_CYCLES
#: MDMC stage hand-off (swap ping-pong banks, reload address generators).
STAGE_HANDOFF = 4
#: Total fixed cost per NTT stage: fill + drain of the butterfly pipeline
#: plus the stage hand-off. 2*9 + 4 = 22, the constant that makes Table V
#: exact.
STAGE_OVERHEAD = 2 * BUTTERFLY_PIPELINE + STAGE_HANDOFF
#: Command decode/dispatch from FIFO to MDMC.
CMD_DISPATCH = 1

#: AHB burst length used by the MDMC/DMA streaming engines.
BURST_BEATS = 8
#: Re-arbitration/address cycle paid once per burst.
BURST_OVERHEAD = 1
#: Pointwise-pass setup + drain (address generator init, pipeline drain).
POINTWISE_SETUP = 19


class TimingModel:
    """Closed-form cycle counts for every Table I operation.

    The MDMC uses these same formulas while it sequences real data; they are
    also exposed directly so parameter sweeps (e.g. the Table XI efficiency
    normalization or the Section VIII-A scalability study) can query costs
    without instantiating a chip.

    Args:
        clock: chip clock configuration.
        dual_port_words: capacity of one dual-port bank in 128-bit words;
            polynomials larger than this force single-port operation at
            II = 2 (Section III-C: "for n >= 2^14 ... II = 2").
    """

    def __init__(self, clock: ClockConfig | None = None, dual_port_words: int = 8192):
        self.clock = clock or ClockConfig()
        self.dual_port_words = dual_port_words

    # -- primitive passes ------------------------------------------------

    def butterfly_initiation_interval(self, n: int) -> int:
        """II of the butterfly stream: 1 from dual-port banks, else 2."""
        return 1 if n <= self.dual_port_words else 2

    def ntt_cycles(self, n: int) -> int:
        """Forward NTT: log2(n) stages of n/2 butterflies plus overheads."""
        _check_power_of_two(n)
        stages = n.bit_length() - 1
        ii = self.butterfly_initiation_interval(n)
        return (n // 2) * stages * ii + STAGE_OVERHEAD * stages + CMD_DISPATCH

    def pointwise_cycles(self, n: int) -> int:
        """One pointwise pass (PMODMUL/PMODADD/PMODSUB/PMODSQR/CMODMUL/PMUL).

        II = 1 streaming through 8-beat bursts: ``n`` data beats,
        ``n/8`` burst overheads, plus setup/drain.
        """
        _check_power_of_two(n)
        return n + (n // BURST_BEATS) * BURST_OVERHEAD + POINTWISE_SETUP

    def intt_cycles(self, n: int) -> int:
        """Inverse NTT: the butterfly stages plus the merged n^-1 * psi^-1
        constant-multiply pass (Section VI-A)."""
        return self.ntt_cycles(n) + self.pointwise_cycles(n)

    def memcpy_cycles(self, n_words: int) -> int:
        """DMA memory-to-memory copy of ``n_words`` words (burst mode)."""
        bursts = -(-n_words // BURST_BEATS)
        return n_words + bursts * BURST_OVERHEAD + POINTWISE_SETUP

    # -- composed operations (Algorithms 2 and 3) ------------------------

    def polymul_cycles(self, n: int) -> int:
        """Polynomial multiplication: 2 NTT + Hadamard + iNTT (Algorithm 2).

        Reproduces Table V: 83 777 cycles at n = 2^12 (exact) and
        179 075 at n = 2^13 (paper measures 179 045; its DMA prefetch
        overlaps ~30 cycles of the second operand load).
        """
        return 2 * self.ntt_cycles(n) + self.pointwise_cycles(n) + self.intt_cycles(n)

    def ciphertext_mult_cycles(self, n: int, towers: int = 1) -> int:
        """Full Eq. 4 ciphertext multiplication per Algorithm 3.

        4 NTT + 4 Hadamard + 1 pointwise addition + 3 iNTT per RNS tower
        (Section III-B). Towers run sequentially on the single PE.
        """
        per_tower = (
            4 * self.ntt_cycles(n)
            + 4 * self.pointwise_cycles(n)
            + self.pointwise_cycles(n)
            + 3 * self.intt_cycles(n)
        )
        return towers * per_tower

    def relinearization_cycles(self, n: int, num_digits: int, towers: int = 1) -> int:
        """Key-switching cost: per digit one NTT + 2 Hadamard + 2 accumulate,
        one digit-extraction copy pass, then 2 iNTT + 2 final additions.

        ``num_digits`` is the base-T decomposition length, the Table X cost
        model's per-application knob (more digits = lower noise, more NTTs).
        """
        per_tower = (
            num_digits
            * (self.ntt_cycles(n) + 4 * self.pointwise_cycles(n))
            + num_digits * self.memcpy_cycles(n)  # digit extraction passes
            + 2 * self.intt_cycles(n)
            + 2 * self.pointwise_cycles(n)
        )
        return towers * per_tower

    # -- convenience -----------------------------------------------------

    def cycles_to_us(self, cycles: int) -> float:
        return self.clock.cycles_to_us(cycles)

    def table5_row(self, op: str, n: int) -> tuple[int, float]:
        """Return ``(cycles, microseconds)`` for a Table V row."""
        dispatch = {
            "PolyMul": self.polymul_cycles,
            "NTT": self.ntt_cycles,
            "iNTT": self.intt_cycles,
        }
        if op not in dispatch:
            raise ValueError(f"unknown Table V operation {op!r}")
        cycles = dispatch[op](n)
        return cycles, self.cycles_to_us(cycles)


def _check_power_of_two(n: int) -> None:
    if n < 2 or n & (n - 1):
        raise ValueError(f"polynomial degree must be a power of two, got {n}")
