"""On-chip SRAM model: 3 dual-port + 5 single-port banks (1 MB total).

Section V-A: "there are 68 memory instances, out of which 48 (16x2096) are
dual-port, and 16 (32x8192) plus 4 (32x4096) are single-port". The physical
instances compose into the logical banks the architecture uses
(Section III-A): three dual-port banks and five single-port banks, each
8192 words of 128 bits (one full n = 2^13 polynomial), except the smaller
bank backing the ARM CM0. Dual-port banks expose two bus ports with
distinct base addresses ("treating them as two distinct address spaces at
the bus level").

The model enforces per-cycle port limits so the MDMC's claim of II = 1 —
two operand fetches and two result stores per cycle during NTT — is
actually checkable, and tracks access counts for the power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import MemoryFault

WORD_BITS = 128
WORD_MASK = (1 << WORD_BITS) - 1


@dataclass
class SramStats:
    """Access counters consumed by the power model."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0


class SramBank:
    """One logical SRAM bank of 128-bit words.

    Args:
        name: bank identifier (e.g. ``"DP0"``).
        words: capacity in 128-bit words.
        ports: 1 for single-port, 2 for dual-port.
        read_latency: cycles from address to data (~4 ns path -> 2 cycles
            of a 250 MHz pipeline, per Section III-D).
    """

    def __init__(self, name: str, words: int, ports: int, read_latency: int = 2):
        if ports not in (1, 2):
            raise ValueError(f"ports must be 1 or 2, got {ports}")
        if words < 1:
            raise ValueError(f"bank must have at least one word, got {words}")
        self.name = name
        self.words = words
        self.ports = ports
        self.read_latency = read_latency
        self.data: list[int] = [0] * words
        self.stats = SramStats()

    @property
    def dual_port(self) -> bool:
        return self.ports == 2

    @property
    def bits(self) -> int:
        return self.words * WORD_BITS

    @property
    def bytes(self) -> int:
        return self.bits // 8

    def read(self, addr: int) -> int:
        self._check(addr)
        self.stats.reads += 1
        return self.data[addr]

    def write(self, addr: int, value: int) -> None:
        self._check(addr)
        if value < 0 or value > WORD_MASK:
            raise MemoryFault(
                f"{self.name}: value does not fit in a {WORD_BITS}-bit word"
            )
        self.stats.writes += 1
        self.data[addr] = value

    def read_block(self, addr: int, count: int) -> list[int]:
        """Burst read ``count`` consecutive words."""
        self._check(addr)
        self._check(addr + count - 1)
        self.stats.reads += count
        return self.data[addr : addr + count]

    def write_block(self, addr: int, values: list[int]) -> None:
        """Burst write consecutive words."""
        if not values:
            return
        self._check(addr)
        self._check(addr + len(values) - 1)
        if min(values) < 0 or max(values) > WORD_MASK:
            raise MemoryFault(
                f"{self.name}: value does not fit in a {WORD_BITS}-bit word"
            )
        self.stats.writes += len(values)
        self.data[addr : addr + len(values)] = values

    def accesses_per_cycle(self) -> int:
        """Operand fetch/store slots available each cycle."""
        return self.ports

    def _check(self, addr: int) -> None:
        if addr < 0 or addr >= self.words:
            raise MemoryFault(
                f"{self.name}: address {addr} out of range [0, {self.words})"
            )

    def __repr__(self) -> str:
        kind = "dual-port" if self.dual_port else "single-port"
        return f"SramBank({self.name}, {self.words}x{WORD_BITS}b, {kind})"


@dataclass
class MemoryMap:
    """The chip's logical bank set and ARM Cortex-M style address map.

    Attributes:
        dual_port: the three ping-pong banks (NTT input/output + DMA
            staging buffer, Section III-F).
        single_port: four polynomial buffers plus the twiddle-factor bank.
        cm0_sram: the Cortex-M0 instruction/data memory.
    """

    dual_port: list[SramBank] = field(default_factory=list)
    single_port: list[SramBank] = field(default_factory=list)
    cm0_sram: SramBank | None = None

    #: SRAM region base (ARM Cortex-M memory map convention, Section III-G1).
    SRAM_BASE = 0x2000_0000
    #: Configuration registers live at 0x4002_0000 - 0x4002_FFFF (Table II).
    GPCFG_BASE = 0x4002_0000

    @classmethod
    def default(cls, poly_words: int = 8192) -> "MemoryMap":
        """The fabricated configuration (Section III-A / Table VIII):
        3 dual-port banks + 4 single-port data banks (one of which holds
        the twiddle factors) of one n=2^13 polynomial each, plus the
        4096-word CM0 memory — 5 single-port SRAMs in total, ~1 MB."""
        dp = [SramBank(f"DP{i}", poly_words, ports=2) for i in range(3)]
        sp = [SramBank(f"SP{i}", poly_words, ports=1) for i in range(3)]
        sp.append(SramBank("TWD", poly_words, ports=1))  # twiddle factors
        cm0 = SramBank("CM0", 4096, ports=1)
        return cls(dual_port=dp, single_port=sp, cm0_sram=cm0)

    @property
    def banks(self) -> list[SramBank]:
        extra = [self.cm0_sram] if self.cm0_sram is not None else []
        return self.dual_port + self.single_port + extra

    @property
    def data_banks(self) -> list[SramBank]:
        return self.dual_port + self.single_port

    def bank(self, name: str) -> SramBank:
        for b in self.banks:
            if b.name == name:
                return b
        raise MemoryFault(f"no bank named {name!r}")

    def total_data_bytes(self) -> int:
        return sum(b.bytes for b in self.data_banks)

    def base_address(self, name: str, port: int = 0) -> int:
        """Bus base address of a bank port.

        Dual-port banks occupy two address windows (one per port), matching
        the paper's "assigning different base addresses to each port".
        """
        offset = 0
        for b in self.banks:
            windows = b.ports
            if b.name == name:
                if port >= windows:
                    raise MemoryFault(f"{name} has no port {port}")
                return self.SRAM_BASE + (offset + port) * 0x10_0000
            offset += windows
        raise MemoryFault(f"no bank named {name!r}")

    def decode(self, address: int) -> tuple[SramBank, int, int]:
        """Map a bus address to ``(bank, port, word_index)``."""
        if address < self.SRAM_BASE:
            raise MemoryFault(f"address {address:#x} below SRAM region")
        window = (address - self.SRAM_BASE) // 0x10_0000
        word = (address - self.SRAM_BASE) % 0x10_0000 // (WORD_BITS // 8)
        offset = 0
        for b in self.banks:
            if window < offset + b.ports:
                return b, window - offset, word
            offset += b.ports
        raise MemoryFault(f"address {address:#x} beyond mapped SRAM")

    def reset_stats(self) -> None:
        for b in self.banks:
            b.stats.reset()
