"""Host-link transaction protocol: the byte framing over SPI/UART.

Section III-H: the host "load[s] polynomials, trigger[s] the required
operation and read[s] back the result" over SPI or UART. This module
defines the wire protocol those transactions use in the model — a small
command set (register read/write, memory burst read/write, operation
trigger, status poll) with byte-level framing, big-endian addresses,
length-prefixed bursts, and a checksum — plus an encoder/decoder pair and
a :class:`HostEndpoint` that executes decoded frames against a chip
instance the way the chip's SPI slave logic does.

Having an explicit wire format makes the interface models honest: every
driver byte count traces to a frame layout, and the protocol round-trip
is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.chip import CoFHEE
from repro.core.errors import BusError, CofheeError
from repro.core.memory import WORD_BITS


class FrameType(Enum):
    """Transaction opcodes (one command byte on the wire)."""

    REG_WRITE = 0x01
    REG_READ = 0x02
    MEM_WRITE = 0x03
    MEM_READ = 0x04
    TRIGGER = 0x05
    STATUS = 0x06

    @property
    def has_payload(self) -> bool:
        return self in (FrameType.REG_WRITE, FrameType.MEM_WRITE)


@dataclass(frozen=True)
class Frame:
    """One host transaction before encoding.

    Attributes:
        kind: transaction type.
        address: register/memory byte address (32-bit).
        length: word count for memory bursts (128-bit words).
        payload: data words (32-bit for registers, 128-bit for memory).
    """

    kind: FrameType
    address: int = 0
    length: int = 0
    payload: tuple[int, ...] = ()

    def __post_init__(self):
        if not 0 <= self.address < (1 << 32):
            raise ValueError("address must fit 32 bits")
        if self.kind is FrameType.REG_WRITE and len(self.payload) != 1:
            raise ValueError("REG_WRITE carries exactly one 32-bit word")
        if self.kind is FrameType.MEM_WRITE and len(self.payload) != self.length:
            raise ValueError("MEM_WRITE payload must match length")


class ProtocolError(CofheeError):
    """Malformed frame bytes (bad opcode, truncation, checksum)."""


def _checksum(data: bytes) -> int:
    """Single-byte additive checksum (the simplicity SPI slaves afford)."""
    return sum(data) & 0xFF


def encode(frame: Frame) -> bytes:
    """Serialize a frame: opcode | addr(4) | len(3) | payload | checksum."""
    body = bytearray()
    body.append(frame.kind.value)
    body += frame.address.to_bytes(4, "big")
    body += frame.length.to_bytes(3, "big")
    word_bytes = 4 if frame.kind is FrameType.REG_WRITE else WORD_BITS // 8
    for word in frame.payload:
        body += word.to_bytes(word_bytes, "big")
    body.append(_checksum(bytes(body)))
    return bytes(body)


def decode(data: bytes) -> Frame:
    """Parse and checksum-verify frame bytes."""
    if len(data) < 9:
        raise ProtocolError(f"frame truncated at {len(data)} bytes")
    if _checksum(data[:-1]) != data[-1]:
        raise ProtocolError("checksum mismatch")
    try:
        kind = FrameType(data[0])
    except ValueError as exc:
        raise ProtocolError(f"unknown opcode 0x{data[0]:02x}") from exc
    address = int.from_bytes(data[1:5], "big")
    length = int.from_bytes(data[5:8], "big")
    payload: tuple[int, ...] = ()
    if kind.has_payload:
        word_bytes = 4 if kind is FrameType.REG_WRITE else WORD_BITS // 8
        count = 1 if kind is FrameType.REG_WRITE else length
        expected = 9 + count * word_bytes
        if len(data) != expected:
            raise ProtocolError(
                f"payload length {len(data)} != expected {expected}"
            )
        raw = data[8:-1]
        payload = tuple(
            int.from_bytes(raw[i * word_bytes : (i + 1) * word_bytes], "big")
            for i in range(count)
        )
    elif len(data) != 9:
        raise ProtocolError("unexpected payload on read/trigger frame")
    return Frame(kind=kind, address=address, length=length, payload=payload)


class HostEndpoint:
    """The chip-side transaction executor (the SPI slave's job).

    Decoded frames are applied to the chip: register frames hit the GPCFG
    block, memory frames burst through the AHB, TRIGGER pushes the staged
    command registers into the command FIFO, STATUS reports FIFO/interrupt
    state.
    """

    def __init__(self, chip: CoFHEE):
        self.chip = chip
        self.frames_handled = 0

    def handle(self, data: bytes) -> bytes:
        """Execute one encoded frame; returns the encoded response bytes.

        Responses reuse the frame format: reads answer with a MEM_WRITE /
        REG_WRITE-shaped frame carrying the data; writes and triggers
        answer with a STATUS frame.
        """
        frame = decode(data)
        self.frames_handled += 1
        if frame.kind is FrameType.REG_WRITE:
            self.chip.regs.bus_write(frame.address, frame.payload[0])
            return encode(self._status())
        if frame.kind is FrameType.REG_READ:
            value = self.chip.regs.bus_read(frame.address)
            return encode(Frame(FrameType.REG_WRITE, frame.address, 0, (value,)))
        if frame.kind is FrameType.MEM_WRITE:
            self.chip.bus.burst_write(frame.address, list(frame.payload))
            return encode(self._status())
        if frame.kind is FrameType.MEM_READ:
            if frame.length < 1:
                raise ProtocolError("MEM_READ needs a positive length")
            values, _ = self.chip.bus.burst_read(frame.address, frame.length)
            return encode(
                Frame(FrameType.MEM_WRITE, frame.address, frame.length,
                      tuple(values))
            )
        if frame.kind is FrameType.TRIGGER:
            # Staged command words live in FHE_CTL1/2 + COMMAND_FIFO on
            # silicon; the model driver pushes Commands directly, so the
            # endpoint just acknowledges.
            return encode(self._status())
        if frame.kind is FrameType.STATUS:
            return encode(self._status())
        raise ProtocolError(f"unhandled frame {frame.kind}")  # pragma: no cover

    def _status(self) -> Frame:
        flags = (
            (0 if self.chip.fifo.empty else 1)
            | ((1 if self.chip.fifo.full else 0) << 1)
        )
        return Frame(FrameType.STATUS, address=flags)

    @staticmethod
    def wire_bits(frame: Frame) -> int:
        """Bits on the serial line for one frame (drives link timing)."""
        return len(encode(frame)) * 8


def polynomial_write_frames(base_address: int, coeffs: list[int],
                            burst_words: int = 256) -> list[Frame]:
    """Split a polynomial download into MEM_WRITE bursts.

    The 3-byte length field and SPI slave buffering cap practical burst
    sizes; 256 words (4 KiB) per frame matches the modeled framing
    overhead of :class:`repro.core.interfaces.SpiLink`.
    """
    frames = []
    for start in range(0, len(coeffs), burst_words):
        chunk = coeffs[start : start + burst_words]
        frames.append(
            Frame(
                FrameType.MEM_WRITE,
                address=base_address + start * (WORD_BITS // 8),
                length=len(chunk),
                payload=tuple(chunk),
            )
        )
    return frames
