"""DMA controller: background transfers and NTT double-buffering.

Section III-F: while the MDMC computes an NTT out of two dual-port banks,
the DMA uses the *third* dual-port bank to stage the next polynomial
(loading it from a single-port bank), and afterwards offloads results —
"transparently in the background without performance degradation due to
data movement". Compute commands serialize on the PE, but memory commands
may overlap them because the AHB crossbar gives the DMA its own path
(Section III-B: "memory operations can be run simultaneously").

The model exposes that overlap: a transfer scheduled with
:meth:`schedule_background` is charged only the cycles that exceed the
concurrently-running compute window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bus import AhbLiteBus
from repro.core.isa import Command, Opcode
from repro.core.memory import MemoryMap
from repro.core.timing import TimingModel
from repro.polymath.bitrev import bit_reverse_indices


@dataclass
class DmaStats:
    transfers: int = 0
    words_moved: int = 0
    background_cycles_hidden: int = 0
    foreground_cycles: int = 0


class DmaEngine:
    """Memory-to-memory mover with background-overlap accounting."""

    def __init__(self, memory_map: MemoryMap, bus: AhbLiteBus, timing: TimingModel):
        self.memory_map = memory_map
        self.bus = bus
        self.timing = timing
        self.stats = DmaStats()

    def transfer_cycles(self, n_words: int) -> int:
        """Cycle cost of a foreground (blocking) copy."""
        return self.timing.memcpy_cycles(n_words)

    def copy(
        self,
        src_addr: int,
        dst_addr: int,
        n_words: int,
        bit_reversed: bool = False,
        functional: bool = True,
    ) -> int:
        """Foreground copy (MEMCPY / MEMCPYR semantics). Returns cycles."""
        if functional:
            data, _ = self.bus.burst_read(src_addr, n_words)
            if bit_reversed:
                table = bit_reverse_indices(n_words)
                data = [data[table[i]] for i in range(n_words)]
            self.bus.burst_write(dst_addr, data)
        cycles = self.transfer_cycles(n_words)
        self.stats.transfers += 1
        self.stats.words_moved += n_words
        self.stats.foreground_cycles += cycles
        return cycles

    def schedule_background(
        self,
        src_addr: int,
        dst_addr: int,
        n_words: int,
        compute_window_cycles: int,
        functional: bool = True,
    ) -> int:
        """Copy overlapped with a compute window; returns *exposed* cycles.

        If the transfer fits inside the concurrently running computation
        (the common case: one polynomial load of ~n + n/8 cycles inside an
        NTT of ~(n/2) log n cycles), its cost is fully hidden and 0 extra
        cycles are charged — the Section III-F double-buffering effect.
        """
        cycles = self.transfer_cycles(n_words)
        if functional:
            data, _ = self.bus.burst_read(src_addr, n_words)
            self.bus.burst_write(dst_addr, data)
        self.stats.transfers += 1
        self.stats.words_moved += n_words
        hidden = min(cycles, compute_window_cycles)
        self.stats.background_cycles_hidden += hidden
        exposed = cycles - hidden
        self.stats.foreground_cycles += exposed
        return exposed

    def command_for(self, src_addr: int, dst_addr: int, n_words: int,
                    bit_reversed: bool = False) -> Command:
        """Build the equivalent Table I memory command."""
        opcode = Opcode.MEMCPYR if bit_reversed else Opcode.MEMCPY
        return Command(opcode=opcode, x_addr=src_addr, out_addr=dst_addr,
                       length=n_words)
