"""Host communication interfaces: UART and SPI (Section III-H).

CoFHEE talks to its host through a 50 MHz SPI (synthesis-constrained;
Section III-K) and UARTs (the validation setup runs an FTDI USB-to-UART
link). These links are slow relative to compute — the reason the paper
stresses that ciphertext multiplication runs fully on-chip for n <= 2^13
"without requiring back-and-forth communication to the host", and that for
larger polynomials "the communication costs increase" (Section III-C).

The models charge wall-clock time per transferred polynomial and expose
the serialization framing, so the large-n experiments can quantify exactly
when communication dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memory import WORD_BITS


@dataclass
class LinkStats:
    bits_sent: int = 0
    bits_received: int = 0
    transactions: int = 0

    @property
    def total_bits(self) -> int:
        return self.bits_sent + self.bits_received


class SpiLink:
    """SPI host link at the synthesis-constrained 50 MHz (Section III-K).

    Single-bit data line; each byte pays one bit of framing overhead for
    command/address phases amortized over burst transfers.
    """

    def __init__(self, clock_hz: float = 50e6, framing_overhead: float = 0.02):
        if clock_hz <= 0:
            raise ValueError("SPI clock must be positive")
        self.clock_hz = clock_hz
        self.framing_overhead = framing_overhead
        self.stats = LinkStats()

    def transfer_seconds(self, bits: int) -> float:
        """Wall-clock seconds to move ``bits`` across the link."""
        if bits < 0:
            raise ValueError("bit count must be non-negative")
        return bits * (1.0 + self.framing_overhead) / self.clock_hz

    def send_polynomial(self, n: int, coeff_bits: int = WORD_BITS) -> float:
        """Host -> chip polynomial download; returns seconds."""
        bits = n * coeff_bits
        self.stats.bits_sent += bits
        self.stats.transactions += 1
        return self.transfer_seconds(bits)

    def receive_polynomial(self, n: int, coeff_bits: int = WORD_BITS) -> float:
        """Chip -> host result readback; returns seconds."""
        bits = n * coeff_bits
        self.stats.bits_received += bits
        self.stats.transactions += 1
        return self.transfer_seconds(bits)

    def register_write(self) -> float:
        """One 32-bit configuration register write (mode-1 execution cost)."""
        bits = 8 + 32 + 32  # command byte + address + data
        self.stats.bits_sent += bits
        self.stats.transactions += 1
        return self.transfer_seconds(bits)


class UartLink:
    """UART host link (the validation setup's FTDI USB bridge).

    8N1 framing: 10 line bits per data byte.
    """

    def __init__(self, baud_rate: int = 921_600):
        if baud_rate <= 0:
            raise ValueError("baud rate must be positive")
        self.baud_rate = baud_rate
        self.stats = LinkStats()

    def transfer_seconds(self, data_bits: int) -> float:
        bytes_needed = -(-data_bits // 8)
        return bytes_needed * 10 / self.baud_rate

    def send_polynomial(self, n: int, coeff_bits: int = WORD_BITS) -> float:
        bits = n * coeff_bits
        self.stats.bits_sent += bits
        self.stats.transactions += 1
        return self.transfer_seconds(bits)

    def receive_polynomial(self, n: int, coeff_bits: int = WORD_BITS) -> float:
        bits = n * coeff_bits
        self.stats.bits_received += bits
        self.stats.transactions += 1
        return self.transfer_seconds(bits)

    def register_write(self) -> float:
        bits = (1 + 4 + 4) * 8  # opcode + address + data bytes
        self.stats.bits_sent += bits
        self.stats.transactions += 1
        return self.transfer_seconds(bits)
