"""Exception hierarchy for the CoFHEE hardware model."""


class CofheeError(Exception):
    """Base class for all chip-model errors."""


class MemoryFault(CofheeError):
    """Out-of-range or misused SRAM access (bad address, port conflict)."""


class BusError(CofheeError):
    """AHB address decode failure or illegal transfer."""


class FifoOverflow(CofheeError):
    """Command written to a full command FIFO."""


class ConfigError(CofheeError):
    """Invalid configuration-register programming (bad modulus, size...)."""


class IsaError(CofheeError):
    """Malformed or unsupported instruction."""


class CapacityError(CofheeError):
    """Operands do not fit on chip for the requested on-chip execution."""
