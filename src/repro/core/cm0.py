"""ARM Cortex-M0 sequencer model — execution mode 3 (Section III-I).

For "faster and flexible sequencing" the chip embeds a 32-bit Cortex-M0
with dedicated instruction memory: the host compiles a subroutine of
CoFHEE commands (in embedded C on silicon), preloads it, and triggers
execution. The model captures what matters architecturally: a *program*
(command list with simple loop control) stored in the CM0 SRAM, issued to
the MDMC with small per-command dispatch overhead and no host round-trips
between commands — the property that makes mode 3 faster than mode 1
(per-command UART/SPI writes) for long sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import CapacityError, IsaError
from repro.core.isa import Command
from repro.core.memory import SramBank

#: Cycles the CM0 spends issuing one command to the MDMC (load registers,
#: write trigger): a handful of Thumb instructions.
CM0_DISPATCH_CYCLES = 12


@dataclass(frozen=True)
class LoopMarker:
    """Program-level repeat of a command block (compiled C ``for`` loop)."""

    count: int
    body: tuple[Command, ...]

    def __post_init__(self):
        if self.count < 1:
            raise IsaError(f"loop count must be >= 1, got {self.count}")
        if not self.body:
            raise IsaError("loop body must contain at least one command")


@dataclass
class Cm0Program:
    """A compiled command subroutine resident in CM0 instruction memory."""

    items: list[Command | LoopMarker] = field(default_factory=list)

    def add(self, command: Command) -> "Cm0Program":
        self.items.append(command)
        return self

    def loop(self, count: int, body: list[Command]) -> "Cm0Program":
        self.items.append(LoopMarker(count=count, body=tuple(body)))
        return self

    def flatten(self) -> list[Command]:
        """Unrolled command stream the MDMC will see."""
        out: list[Command] = []
        for item in self.items:
            if isinstance(item, LoopMarker):
                out.extend(list(item.body) * item.count)
            else:
                out.append(item)
        return out

    @property
    def stored_words(self) -> int:
        """Instruction-memory footprint (8 words per command frame plus a
        loop descriptor word per loop) — loops are stored rolled, which is
        the point of having a processor instead of a FIFO."""
        words = 0
        for item in self.items:
            if isinstance(item, LoopMarker):
                words += 1 + 8 * len(item.body)
            else:
                words += 8
        return words


class CortexM0:
    """The embedded sequencer bound to its instruction SRAM."""

    def __init__(self, instruction_memory: SramBank):
        self.imem = instruction_memory
        self._program: Cm0Program | None = None

    def load_program(self, program: Cm0Program) -> None:
        """Preload a compiled subroutine; checks the 4096-word SRAM bound."""
        if program.stored_words > self.imem.words:
            raise CapacityError(
                f"program needs {program.stored_words} words, CM0 SRAM has "
                f"{self.imem.words}"
            )
        # Commit encoded frames into the modeled instruction memory.
        addr = 0
        for item in program.items:
            frames = item.body if isinstance(item, LoopMarker) else (item,)
            if isinstance(item, LoopMarker):
                self.imem.write(addr, item.count)
                addr += 1
            for cmd in frames:
                for word in cmd.encode():
                    self.imem.write(addr, word)
                    addr += 1
        self._program = program

    def run(self, issue) -> tuple[int, int]:
        """Execute the loaded program.

        Args:
            issue: callable ``(Command) -> cycles`` (the MDMC hook).

        Returns:
            ``(total_cycles, commands_issued)`` including CM0 dispatch
            overhead.
        """
        if self._program is None:
            raise IsaError("no program loaded")
        total = 0
        count = 0
        for cmd in self._program.flatten():
            total += CM0_DISPATCH_CYCLES
            total += issue(cmd)
            count += 1
        return total, count
