"""CoFHEE's instruction set (Table I) with command encoding.

Each command names its operand/result memory regions by bus base address —
the "memory address function [.]" of Table I — plus the scalar inputs the
operation needs (modulus q is pre-programmed via configuration registers).
Commands are queued into the 32-deep command FIFO or issued directly by
register write / the ARM CM0 (the three execution modes of Section III-I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import IsaError


class Opcode(Enum):
    """Table I operations."""

    NTT = "NTT"
    INTT = "iNTT"
    PMODADD = "PMODADD"
    PMODMUL = "PMODMUL"
    PMODSQR = "PMODSQR"
    PMODSUB = "PMODSUB"
    CMODMUL = "CMODMUL"
    PMUL = "PMUL"
    MEMCPY = "MEMCPY"
    MEMCPYR = "MEMCPYR"

    @property
    def is_compute(self) -> bool:
        """Compute ops run sequentially on the PE; memory ops may overlap
        (Section III-B)."""
        return self not in (Opcode.MEMCPY, Opcode.MEMCPYR)

    @property
    def needs_y_operand(self) -> bool:
        return self in (Opcode.PMODADD, Opcode.PMODMUL, Opcode.PMODSUB, Opcode.PMUL)

    @property
    def needs_twiddles(self) -> bool:
        return self in (Opcode.NTT, Opcode.INTT)


#: Table I operand requirements, for validation: opcode -> required fields.
_REQUIRED_FIELDS: dict[Opcode, tuple[str, ...]] = {
    Opcode.NTT: ("n", "x_addr", "twiddle_addr", "out_addr"),
    Opcode.INTT: ("n", "x_addr", "twiddle_addr", "out_addr"),
    Opcode.PMODADD: ("n", "x_addr", "y_addr", "out_addr"),
    Opcode.PMODMUL: ("n", "x_addr", "y_addr", "out_addr"),
    Opcode.PMODSQR: ("n", "x_addr", "out_addr"),
    Opcode.PMODSUB: ("n", "x_addr", "y_addr", "out_addr"),
    Opcode.CMODMUL: ("n", "x_addr", "constant", "out_addr"),
    Opcode.PMUL: ("n", "x_addr", "y_addr", "out_addr"),
    Opcode.MEMCPY: ("length", "x_addr", "out_addr"),
    Opcode.MEMCPYR: ("length", "x_addr", "out_addr"),
}


@dataclass(frozen=True)
class Command:
    """One decoded CoFHEE instruction.

    Attributes:
        opcode: the Table I operation.
        n: polynomial degree for compute ops.
        x_addr: source base address (Table I's source ``[x]`` / start).
        y_addr: second operand base address where applicable.
        twiddle_addr: twiddle-factor table base for NTT/iNTT.
        out_addr: destination base address.
        constant: scalar constant for ``CMODMUL`` (also carries n^-1 for
            iNTT's final scaling in the fabricated flow).
        length: word count for memory ops (Table I's delta).
    """

    opcode: Opcode
    n: int = 0
    x_addr: int = 0
    y_addr: int = 0
    twiddle_addr: int = 0
    out_addr: int = 0
    constant: int = 0
    length: int = 0
    tag: str = field(default="", compare=False)

    def __post_init__(self):
        required = _REQUIRED_FIELDS[self.opcode]
        if "n" in required and (self.n < 2 or self.n & (self.n - 1)):
            raise IsaError(
                f"{self.opcode.value}: n must be a power of two >= 2, got {self.n}"
            )
        if "length" in required and self.length < 1:
            raise IsaError(f"{self.opcode.value}: length must be >= 1")
        if "constant" in required and self.constant < 0:
            raise IsaError(f"{self.opcode.value}: constant must be non-negative")

    def encode(self) -> tuple[int, ...]:
        """Pack into the 32-bit command words written to ``COMMAND_FIFO``.

        Word 0: opcode index (bits 0-7) | log2(n) (bits 8-15).
        Words 1-4: x, y, twiddle, out base addresses.
        Words 5-6: constant low/high (split; wide constants are staged in
        the 128-bit CFG registers on silicon).
        Word 7: length.
        """
        op_index = list(Opcode).index(self.opcode)
        log_n = self.n.bit_length() - 1 if self.n else 0
        return (
            op_index | (log_n << 8),
            self.x_addr,
            self.y_addr,
            self.twiddle_addr,
            self.out_addr,
            self.constant & 0xFFFF_FFFF,
            (self.constant >> 32) & 0xFFFF_FFFF,
            self.length,
        )

    @classmethod
    def decode(cls, words: tuple[int, ...]) -> "Command":
        """Inverse of :meth:`encode` (lossy for constants over 64 bits,
        mirroring the staged-register mechanism)."""
        if len(words) != 8:
            raise IsaError(f"command frame must be 8 words, got {len(words)}")
        op_index = words[0] & 0xFF
        opcodes = list(Opcode)
        if op_index >= len(opcodes):
            raise IsaError(f"bad opcode index {op_index}")
        opcode = opcodes[op_index]
        log_n = (words[0] >> 8) & 0xFF
        return cls(
            opcode=opcode,
            n=1 << log_n if opcode.is_compute else 0,
            x_addr=words[1],
            y_addr=words[2],
            twiddle_addr=words[3],
            out_addr=words[4],
            constant=words[5] | (words[6] << 32),
            length=words[7],
        )

    def __str__(self) -> str:
        return f"{self.opcode.value}(n={self.n or self.length})"
