"""Multiplier Data Mover and Controller (MDMC) — the chip's sequencer.

Section III-B/G2: the MDMC receives decoded commands (from the command
FIFO, a direct register write, or the CM0), then drives the address
generators, the SRAM ports, and the PE. For NTT/iNTT it walks the
``log2 n`` stages, fetching two coefficients per cycle from one dual-port
bank and a twiddle factor from the twiddle SRAM, issuing one butterfly per
cycle (II = 1), storing the pair through the output bank's two ports, and
swapping input/output banks at every stage boundary. For pointwise
operations it streams 8-beat AHB bursts. On completion it raises an
interrupt so the command FIFO can issue the next instruction (Fig. 2).

Three fidelity levels let callers trade speed for detail:

* ``"pe"`` — every butterfly goes through
  :class:`repro.core.pe.ProcessingElement` (bit-exact Barrett datapath,
  per-access SRAM statistics). Used by the verification tests.
* ``"vector"`` (default) — same stage walk and the same bank-resident
  twiddles, computed with batched modular arithmetic (numpy int64
  kernels for word-sized moduli, scalar otherwise); identical results
  and cycle counts, ~10x faster.
* ``"timing"`` — cycle/power accounting only, data untouched. Used by the
  paper-scale latency benches, where cycle counts are data-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bus import AhbLiteBus
from repro.core.errors import ConfigError, IsaError
from repro.core.isa import Command, Opcode
from repro.core.memory import MemoryMap, SramBank
from repro.core.pe import ProcessingElement
from repro.core.timing import TimingModel
from repro.polymath.bitrev import bit_reverse_indices
from repro.polymath.engine import engine_enabled

FIDELITY_LEVELS = ("pe", "vector", "timing")


@dataclass
class PhaseRecord:
    """One constant-activity execution phase, consumed by the power model.

    Attributes:
        kind: activity class (``dit_butterfly``, ``dif_butterfly``,
            ``const_mult``, ``hadamard``, ``pointwise_add``, ``memcpy``,
            ``idle``).
        cycles: duration.
        n: problem size during the phase (power scales weakly with n).
    """

    kind: str
    cycles: int
    n: int


@dataclass
class ExecutionTrace:
    """Cycle/phase record of one command or command sequence."""

    cycles: int = 0
    phases: list[PhaseRecord] = field(default_factory=list)
    interrupts: int = 0

    def add(self, kind: str, cycles: int, n: int) -> None:
        self.cycles += cycles
        self.phases.append(PhaseRecord(kind, cycles, n))

    def extend(self, other: "ExecutionTrace") -> None:
        self.cycles += other.cycles
        self.phases.extend(other.phases)
        self.interrupts += other.interrupts


class Mdmc:
    """The MDMC state machine.

    Args:
        memory_map: the chip's SRAM banks.
        bus: AHB crossbar (bursts are accounted through it).
        pe: the processing element.
        timing: calibrated cycle model.
        fidelity: default fidelity level (see module docstring).
    """

    def __init__(
        self,
        memory_map: MemoryMap,
        bus: AhbLiteBus,
        pe: ProcessingElement,
        timing: TimingModel,
        fidelity: str = "vector",
    ):
        if fidelity not in FIDELITY_LEVELS:
            raise ValueError(f"fidelity must be one of {FIDELITY_LEVELS}")
        self.memory_map = memory_map
        self.bus = bus
        self.pe = pe
        self.timing = timing
        self.fidelity = fidelity
        self.total_cycles = 0
        self.commands_executed = 0

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------

    def execute(self, cmd: Command, fidelity: str | None = None) -> ExecutionTrace:
        """Run one Table I command to completion; returns its trace."""
        level = fidelity or self.fidelity
        if level not in FIDELITY_LEVELS:
            raise ValueError(f"fidelity must be one of {FIDELITY_LEVELS}")
        trace = ExecutionTrace()
        handler = {
            Opcode.NTT: self._run_ntt,
            Opcode.INTT: self._run_intt,
            Opcode.PMODADD: self._run_pointwise,
            Opcode.PMODMUL: self._run_pointwise,
            Opcode.PMODSQR: self._run_pointwise,
            Opcode.PMODSUB: self._run_pointwise,
            Opcode.CMODMUL: self._run_pointwise,
            Opcode.PMUL: self._run_pointwise,
            Opcode.MEMCPY: self._run_memcpy,
            Opcode.MEMCPYR: self._run_memcpy,
        }[cmd.opcode]
        handler(cmd, trace, level)
        trace.interrupts += 1  # completion interrupt to the FIFO (Fig. 2)
        self.total_cycles += trace.cycles
        self.commands_executed += 1
        return trace

    # ------------------------------------------------------------------
    # NTT / iNTT
    # ------------------------------------------------------------------

    def _run_ntt(self, cmd: Command, trace: ExecutionTrace, level: str) -> None:
        n = cmd.n
        stages = n.bit_length() - 1
        cycles = self.timing.ntt_cycles(n)
        per_stage = cycles // stages if stages else cycles
        if level == "timing":
            trace.add("dit_butterfly", cycles, n)
            self._bulk_stats(n, stages)
            return
        q = self._modulus()
        a = self._load_vector(cmd.x_addr, n)
        twiddles = self._load_vector(cmd.twiddle_addr, n)
        in_bank, _, _ = self.memory_map.decode(cmd.x_addr)
        out_bank, _, _ = self.memory_map.decode(cmd.out_addr)
        if level == "vector" and self._numpy_ok(q):
            av = np.asarray(a, dtype=np.int64)
            tw = np.asarray(twiddles, dtype=np.int64)
            t, m = n, 1
            while m < n:
                t >>= 1
                av = av.reshape(m, 2 * t)
                u = av[:, :t]
                vs = av[:, t:] * tw[m : 2 * m, None] % q
                av = np.concatenate(((u + vs) % q, (u - vs) % q), axis=1)
                self._stage_stats(in_bank, out_bank, n, count_pe=True)
                in_bank, out_bank = out_bank, in_bank
                m <<= 1
            self._store_vector(cmd.out_addr, av.reshape(n).tolist())
            trace.add("dit_butterfly", cycles, n)
            return
        # Cooley-Tukey DIT with psi-merged (bit-reversed) twiddles.
        t = n
        m = 1
        while m < n:
            t >>= 1
            for i in range(m):
                j1 = 2 * i * t
                s = twiddles[m + i]
                if level == "pe":
                    for j in range(j1, j1 + t):
                        a[j], a[j + t] = self.pe.butterfly(a[j], a[j + t], s)
                else:
                    for j in range(j1, j1 + t):
                        u = a[j]
                        v = a[j + t] * s % q
                        a[j] = u + v if u + v < q else u + v - q
                        a[j + t] = u - v if u >= v else u - v + q
            self._stage_stats(in_bank, out_bank, n, count_pe=(level != "pe"))
            in_bank, out_bank = out_bank, in_bank  # ping-pong (Section III-G2)
            m <<= 1
        self._store_vector(cmd.out_addr, a)
        trace.add("dit_butterfly", cycles, n)

    def _run_intt(self, cmd: Command, trace: ExecutionTrace, level: str) -> None:
        n = cmd.n
        stages = n.bit_length() - 1
        butterfly_cycles = self.timing.ntt_cycles(n)
        const_cycles = self.timing.pointwise_cycles(n)
        if level == "timing":
            trace.add("dif_butterfly", butterfly_cycles, n)
            trace.add("const_mult", const_cycles, n)
            self._bulk_stats(n, stages, extra_pointwise=1)
            return
        q = self._modulus()
        a = self._load_vector(cmd.x_addr, n)
        # Section VIII-B: "CoFHEE uses the same twiddle factors for both
        # operations". The inverse twiddles are derived from the forward
        # (psi-power, bit-reversed) table by address permutation plus
        # negation: psi^-j = -psi^(n-j) because psi^n = -1, so
        # I[k] = q - F[brv(n - brv(k))]. The MDMC's address generator and
        # subtractor implement this with zero extra storage.
        forward = self._load_vector(cmd.twiddle_addr, n)
        brv = bit_reverse_indices(n)
        in_bank, _, _ = self.memory_map.decode(cmd.x_addr)
        out_bank, _, _ = self.memory_map.decode(cmd.out_addr)
        if level == "vector" and self._numpy_ok(q):
            fwd = np.asarray(forward, dtype=np.int64)
            brv_a = np.asarray(brv, dtype=np.intp)
            tw = np.empty(n, dtype=np.int64)
            tw[0] = 1
            tw[1:] = (q - fwd[brv_a[n - brv_a[1:]]]) % q
            av = np.asarray(a, dtype=np.int64)
            t, m = 1, n
            while m > 1:
                h = m >> 1
                av = av.reshape(h, 2 * t)
                u = av[:, :t]
                v = av[:, t:]
                s = tw[h : 2 * h, None]
                av = np.concatenate(((u + v) % q, (u - v) * s % q), axis=1)
                self._stage_stats(in_bank, out_bank, n, count_pe=True)
                in_bank, out_bank = out_bank, in_bank
                t <<= 1
                m = h
            n_inv = cmd.constant
            if n_inv == 0:
                raise ConfigError("iNTT requires n^-1 in the command constant field")
            av = av.reshape(n) * n_inv % q
            self.pe.stats.multiplies += n
            self._store_vector(cmd.out_addr, av.tolist())
            trace.add("dif_butterfly", butterfly_cycles, n)
            trace.add("const_mult", const_cycles, n)
            return
        twiddles = [0] * n
        twiddles[0] = 1
        for k in range(1, n):
            twiddles[k] = (q - forward[brv[n - brv[k]]]) % q
        # Gentleman-Sande DIF (Section VI-A's decimation in frequency).
        t = 1
        m = n
        while m > 1:
            j1 = 0
            h = m >> 1
            for i in range(h):
                s = twiddles[h + i]
                if level == "pe":
                    for j in range(j1, j1 + t):
                        a[j], a[j + t] = self.pe.gs_butterfly(a[j], a[j + t], s)
                else:
                    for j in range(j1, j1 + t):
                        u = a[j]
                        v = a[j + t]
                        a[j] = u + v if u + v < q else u + v - q
                        a[j + t] = (u - v) * s % q
                j1 += 2 * t
            self._stage_stats(in_bank, out_bank, n, count_pe=(level != "pe"))
            in_bank, out_bank = out_bank, in_bank
            t <<= 1
            m = h
        # Final n^-1 constant-multiply pass (INV_POLYDEG register).
        n_inv = cmd.constant
        if n_inv == 0:
            raise ConfigError("iNTT requires n^-1 in the command constant field")
        if level == "pe":
            a = [self.pe.mul(x, n_inv) for x in a]
        else:
            a = [x * n_inv % q for x in a]
            self.pe.stats.multiplies += n
        self._store_vector(cmd.out_addr, a)
        trace.add("dif_butterfly", butterfly_cycles, n)
        trace.add("const_mult", const_cycles, n)

    # ------------------------------------------------------------------
    # Pointwise streams
    # ------------------------------------------------------------------

    _POINTWISE_PHASE = {
        Opcode.PMODMUL: "hadamard",
        Opcode.PMUL: "hadamard",
        Opcode.PMODSQR: "hadamard",
        Opcode.PMODADD: "pointwise_add",
        Opcode.PMODSUB: "pointwise_add",
        Opcode.CMODMUL: "const_mult",
    }

    def _run_pointwise(self, cmd: Command, trace: ExecutionTrace, level: str) -> None:
        n = cmd.n
        cycles = self.timing.pointwise_cycles(n)
        phase = self._POINTWISE_PHASE[cmd.opcode]
        if level == "timing":
            trace.add(phase, cycles, n)
            self._bulk_pointwise_stats(cmd.opcode, n)
            return
        q = self._modulus()
        x = self._load_vector(cmd.x_addr, n)
        if cmd.opcode.needs_y_operand:
            y = self._load_vector(cmd.y_addr, n)
        op = cmd.opcode
        if level == "pe":
            out = self._pointwise_pe(op, x, y if op.needs_y_operand else None, cmd)
        elif (
            level == "vector" and op is not Opcode.PMUL and self._numpy_ok(q)
        ):
            # PMUL stays scalar: its 128-bit plain product overflows int64.
            xa = np.asarray(x, dtype=np.int64)
            if op is Opcode.PMODMUL:
                out_a = xa * np.asarray(y, dtype=np.int64) % q
            elif op is Opcode.PMODADD:
                out_a = (xa + np.asarray(y, dtype=np.int64)) % q
            elif op is Opcode.PMODSUB:
                out_a = (xa - np.asarray(y, dtype=np.int64)) % q
            elif op is Opcode.PMODSQR:
                out_a = xa * xa % q
            else:  # CMODMUL — dispatch guarantees coverage
                out_a = xa * (cmd.constant % q) % q
            out = out_a.tolist()
            self._bulk_pointwise_stats(op, n)
        else:
            if op is Opcode.PMODMUL:
                out = [a * b % q for a, b in zip(x, y)]
            elif op is Opcode.PMODADD:
                out = [(a + b) % q for a, b in zip(x, y)]
            elif op is Opcode.PMODSUB:
                out = [(a - b) % q for a, b in zip(x, y)]
            elif op is Opcode.PMODSQR:
                out = [a * a % q for a in x]
            elif op is Opcode.CMODMUL:
                c = cmd.constant % q
                out = [a * c % q for a in x]
            elif op is Opcode.PMUL:
                # plain product: low 128 bits stored (high half to out+n on
                # silicon; the model keeps full precision words mod 2^128).
                out = [(a * b) & ((1 << 128) - 1) for a, b in zip(x, y)]
            else:  # pragma: no cover - dispatch guarantees coverage
                raise IsaError(f"unhandled pointwise op {op}")
            self._bulk_pointwise_stats(op, n)
        self._store_vector(cmd.out_addr, out)
        trace.add(phase, cycles, n)

    def _pointwise_pe(
        self, op: Opcode, x: list[int], y: list[int] | None, cmd: Command
    ) -> list[int]:
        if op is Opcode.PMODMUL:
            return [self.pe.mul(a, b) for a, b in zip(x, y)]
        if op is Opcode.PMODADD:
            return [self.pe.add(a, b) for a, b in zip(x, y)]
        if op is Opcode.PMODSUB:
            return [self.pe.sub(a, b) for a, b in zip(x, y)]
        if op is Opcode.PMODSQR:
            return [self.pe.mul(a, a) for a in x]
        if op is Opcode.CMODMUL:
            c = cmd.constant
            return [self.pe.mul(a, c) for a in x]
        if op is Opcode.PMUL:
            return [self.pe.mul_plain(a, b) & ((1 << 128) - 1) for a, b in zip(x, y)]
        raise IsaError(f"unhandled pointwise op {op}")

    # ------------------------------------------------------------------
    # Memory ops
    # ------------------------------------------------------------------

    def _run_memcpy(self, cmd: Command, trace: ExecutionTrace, level: str) -> None:
        length = cmd.length
        cycles = self.timing.memcpy_cycles(length)
        if level != "timing":
            data = self._load_vector(cmd.x_addr, length)
            if cmd.opcode is Opcode.MEMCPYR:
                table = bit_reverse_indices(length)
                data = [data[table[i]] for i in range(length)]
            self._store_vector(cmd.out_addr, data)
        trace.add("memcpy", cycles, length)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _modulus(self) -> int:
        if self.pe._barrett is None:
            raise ConfigError("modulus not programmed (Q register)")
        return self.pe.q

    @staticmethod
    def _numpy_ok(q: int) -> bool:
        """Whether vector fidelity may use the int64 numpy kernels.

        Word-sized moduli (< 2^31) keep every butterfly product below
        2^62; the ``REPRO_ENGINE=off`` kill switch forces the scalar
        walk, which benchmarks use to time the pure-Python baseline.
        Either way the results are bit-identical — the numpy kernels run
        the same stage walk with the same bank-resident twiddles.
        """
        return engine_enabled() and q.bit_length() < 32 and q > 0

    def _load_vector(self, address: int, count: int) -> list[int]:
        values, _ = self.bus.burst_read(address, count)
        return values

    def _store_vector(self, address: int, values: list[int]) -> None:
        self.bus.burst_write(address, values)

    def _stage_stats(
        self, in_bank: SramBank, out_bank: SramBank, n: int, count_pe: bool
    ) -> None:
        """Account one NTT stage's SRAM traffic (and PE ops in vector mode)."""
        twd = self.memory_map.bank("TWD")
        in_bank.stats.reads += n  # two coefficients per butterfly
        twd.stats.reads += n // 2  # one twiddle per butterfly
        out_bank.stats.writes += n
        if count_pe:
            self.pe.stats.multiplies += n // 2
            self.pe.stats.adds += n // 2
            self.pe.stats.subs += n // 2
            self.pe.stats.butterflies += n // 2

    def _bulk_stats(self, n: int, stages: int, extra_pointwise: int = 0) -> None:
        dp = self.memory_map.dual_port
        twd = self.memory_map.bank("TWD")
        dp[0].stats.reads += n * stages // 2
        dp[1].stats.reads += n * stages // 2
        dp[0].stats.writes += n * stages // 2
        dp[1].stats.writes += n * stages // 2
        twd.stats.reads += (n // 2) * stages
        self.pe.stats.multiplies += (n // 2) * stages + extra_pointwise * n
        self.pe.stats.adds += (n // 2) * stages
        self.pe.stats.subs += (n // 2) * stages
        self.pe.stats.butterflies += (n // 2) * stages

    def _bulk_pointwise_stats(self, op: Opcode, n: int) -> None:
        if op in (Opcode.PMODMUL, Opcode.PMUL, Opcode.PMODSQR, Opcode.CMODMUL):
            self.pe.stats.multiplies += n
        elif op is Opcode.PMODADD:
            self.pe.stats.adds += n
        elif op is Opcode.PMODSUB:
            self.pe.stats.subs += n
