"""The 32-deep command FIFO (Section III-I, execution mode 2).

The host preloads a sequence of commands; the FIFO feeds them to the MDMC
one at a time, in order, and raises an interrupt when the queue drains.
"This requires less control logic and avoids complicated out-of-order
executions" — the model therefore enforces strict FIFO order and a
hard depth of 32.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.errors import FifoOverflow
from repro.core.isa import Command

#: Fabricated queue depth ("more than sufficient for our target applications").
FIFO_DEPTH = 32


@dataclass
class FifoStats:
    pushes: int = 0
    pops: int = 0
    high_watermark: int = 0
    empty_interrupts: int = 0


class CommandFifo:
    """Strictly-ordered command queue with completion interrupt."""

    def __init__(self, depth: int = FIFO_DEPTH):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self._queue: deque[Command] = deque()
        self.stats = FifoStats()
        self._interrupt_pending = False

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, command: Command) -> None:
        """Host writes one command (via the ``COMMAND_FIFO`` register).

        Raises:
            FifoOverflow: if the queue is full — on silicon the host is
                expected to poll the full flag before writing.
        """
        if self.full:
            raise FifoOverflow(f"command FIFO full (depth {self.depth})")
        self._queue.append(command)
        self.stats.pushes += 1
        self.stats.high_watermark = max(self.stats.high_watermark, len(self._queue))

    def push_all(self, commands: list[Command]) -> None:
        for c in commands:
            self.push(c)

    def pop(self) -> Command:
        """MDMC fetches the next command; raises interrupt on drain."""
        if not self._queue:
            raise FifoOverflow("pop from empty command FIFO")
        cmd = self._queue.popleft()
        self.stats.pops += 1
        if not self._queue:
            self._interrupt_pending = True
            self.stats.empty_interrupts += 1
        return cmd

    def take_interrupt(self) -> bool:
        """Read-and-clear the queue-empty interrupt flag."""
        pending = self._interrupt_pending
        self._interrupt_pending = False
        return pending
