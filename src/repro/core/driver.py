"""Host-side driver: CoFHEE's API across its three execution modes.

Plays the role of the host PC in the validation setup (Section V-F): it
programs the crypto parameters, downloads twiddle factors and polynomials
over SPI/UART, sequences Table I commands, and reads back results. The
three execution modes of Section III-I are all implemented:

* ``"direct"`` — every command is written to configuration registers over
  the host link ("slow as there are delays imposed by the communication
  interface");
* ``"fifo"`` — commands are preloaded into the 32-deep command FIFO and
  drain autonomously, the host waiting for the queue-empty interrupt;
* ``"cm0"`` — a compiled subroutine runs from the ARM Cortex-M0's
  instruction memory with no host involvement per command.

Composed operations implement paper Algorithm 2 (polynomial
multiplication) and Algorithm 3 (ciphertext multiplication: 4 NTT +
4 Hadamard + 1 pointwise addition + 3 iNTT), including the RNS tower loop
for moduli beyond 128 bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.chip import CoFHEE
from repro.core.cm0 import Cm0Program
from repro.core.errors import CapacityError, ConfigError
from repro.core.isa import Command, Opcode
from repro.core.mdmc import ExecutionTrace
from repro.core.power import PowerReport
from repro.polymath.bitrev import bit_reverse_indices
from repro.polymath.modmath import modinv
from repro.polymath.ntt import NttContext
from repro.polymath.rns import RnsBasis

EXECUTION_MODES = ("direct", "fifo", "cm0")

#: Register writes needed to stage one command in direct mode: the 8-word
#: frame plus the trigger write (Table II's FHE_CTL2/COMMAND_FIFO).
DIRECT_MODE_WRITES_PER_COMMAND = 9


@dataclass
class OperationReport:
    """Everything measured about one driver-level operation.

    Attributes:
        label: operation name.
        cycles: on-chip compute cycles.
        compute_seconds: cycles at the core clock.
        io_seconds: host-link time (polynomial loads, command writes,
            result readback) — zero for data already resident.
        power: phase-integrated power report.
        commands: number of Table I commands issued.
    """

    label: str
    cycles: int
    compute_seconds: float
    io_seconds: float
    power: PowerReport
    commands: int
    trace: ExecutionTrace = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.io_seconds

    @property
    def latency_us(self) -> float:
        return self.compute_seconds * 1e6

    @property
    def latency_ms(self) -> float:
        return self.compute_seconds * 1e3

    @staticmethod
    def merge(label: str, reports: "list[OperationReport]", power_model) -> "OperationReport":
        """Concatenate sequential operation reports."""
        trace = ExecutionTrace()
        io = 0.0
        commands = 0
        for r in reports:
            if r.trace is not None:
                trace.extend(r.trace)
            io += r.io_seconds
            commands += r.commands
        power = power_model.report(trace.phases)
        return OperationReport(
            label=label,
            cycles=trace.cycles,
            compute_seconds=power.seconds,
            io_seconds=io,
            power=power,
            commands=commands,
            trace=trace,
        )


class CofheeDriver:
    """Host driver bound to one chip instance.

    Args:
        chip: the CoFHEE instance.
        interface: ``"spi"`` (default) or ``"uart"`` host link.
        mode: default execution mode (see module docstring).
    """

    def __init__(self, chip: CoFHEE | None = None, interface: str = "spi",
                 mode: str = "fifo"):
        self.chip = chip or CoFHEE()
        if interface not in ("spi", "uart"):
            raise ValueError("interface must be 'spi' or 'uart'")
        if mode not in EXECUTION_MODES:
            raise ValueError(f"mode must be one of {EXECUTION_MODES}")
        self.link = self.chip.spi if interface == "spi" else self.chip.uart
        self.mode = mode
        self._buffers: dict[str, int] = {}
        self._n = 0
        self._ntt_ctx: NttContext | None = None
        self._programmed: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    # Bring-up: parameters, twiddles, buffers
    # ------------------------------------------------------------------

    @property
    def programmed(self) -> tuple[int, int] | None:
        """The ``(q, n)`` currently programmed, or ``None`` before bring-up."""
        return self._programmed

    def program(self, q: int, n: int) -> float:
        """Program modulus/degree and download the twiddle table.

        Returns the host-link seconds spent (twiddles are one polynomial's
        worth of data, downloaded once per modulus — Section III-J's
        Python script computes them host-side).
        """
        self.chip.configure_modulus(q, n)
        self._n = n
        self._ntt_ctx = NttContext.shared(n, q)
        self._allocate_buffers(n)
        # Download psi-power twiddles (bit-reversed order) into TWD.
        twd_addr = self.chip.memory_map.base_address("TWD")
        self.chip.bus.burst_write(twd_addr, list(self._ntt_ctx._psi_brv))
        self._programmed = (q, n)
        return self.link.send_polynomial(n)

    def ensure_programmed(self, q: int, n: int) -> float:
        """Program ``(q, n)`` only when it differs from the current state.

        The batched per-tower entry point: a worker sweeping a batch of
        same-modulus tower work units pays the twiddle download once, and a
        worker that kept a modulus programmed from the previous batch pays
        nothing. Returns the host-link seconds spent (0.0 on a hit).
        """
        if self._programmed == (q, n):
            return 0.0
        return self.program(q, n)

    def _allocate_buffers(self, n: int) -> None:
        """Carve the data banks into degree-n polynomial buffers.

        Dual-port banks get the low buffer numbers (the MDMC's ping-pong
        preference); the twiddle bank is reserved.
        """
        if n > self.chip.config.poly_words:
            raise CapacityError(
                f"one polynomial of degree {n} exceeds a "
                f"{self.chip.config.poly_words}-word bank; use the "
                "host-assisted large-n path (Section III-C)"
            )
        self._buffers.clear()
        mm = self.chip.memory_map
        index = 0
        for bank in mm.dual_port + [b for b in mm.single_port if b.name != "TWD"]:
            slots = bank.words // n
            for s in range(slots):
                addr = mm.base_address(bank.name) + s * n * 16  # 16 B/word
                self._buffers[f"P{index}"] = addr
                index += 1

    @property
    def buffer_names(self) -> list[str]:
        return sorted(self._buffers, key=lambda k: int(k[1:]))

    def buffer_address(self, name: str) -> int:
        if name not in self._buffers:
            raise ConfigError(
                f"unknown buffer {name!r}; call program() first "
                f"(available: {self.buffer_names[:8]}...)"
            )
        return self._buffers[name]

    # ------------------------------------------------------------------
    # Data movement (host link accounting)
    # ------------------------------------------------------------------

    def load_polynomial(self, name: str, coeffs: Sequence[int]) -> float:
        """Download a polynomial into an on-chip buffer; returns seconds."""
        if len(coeffs) != self._n:
            raise ConfigError(f"expected {self._n} coefficients, got {len(coeffs)}")
        q = self.chip.programmed_q
        self.chip.bus.burst_write(self.buffer_address(name), [c % q for c in coeffs])
        return self.link.send_polynomial(self._n)

    def read_polynomial(self, name: str) -> tuple[list[int], float]:
        """Read a buffer back to the host; returns ``(coeffs, seconds)``."""
        data, _ = self.chip.bus.burst_read(self.buffer_address(name), self._n)
        return data, self.link.receive_polynomial(self._n)

    # ------------------------------------------------------------------
    # Command execution (the three modes)
    # ------------------------------------------------------------------

    def execute(self, commands: list[Command], label: str = "sequence",
                mode: str | None = None) -> OperationReport:
        """Run a command sequence in the chosen execution mode."""
        mode = mode or self.mode
        if mode not in EXECUTION_MODES:
            raise ValueError(f"mode must be one of {EXECUTION_MODES}")
        trace = ExecutionTrace()
        io_seconds = 0.0
        if mode == "direct":
            for cmd in commands:
                for _ in range(DIRECT_MODE_WRITES_PER_COMMAND):
                    io_seconds += self.link.register_write()
                trace.extend(self.chip.mdmc.execute(cmd))
        elif mode == "fifo":
            # Preload in chunks of the FIFO depth; each command frame is 8
            # register writes; the FIFO drains autonomously.
            depth = self.chip.fifo.depth
            for start in range(0, len(commands), depth):
                chunk = commands[start : start + depth]
                for cmd in chunk:
                    for _ in range(8):
                        io_seconds += self.link.register_write()
                    self.chip.fifo.push(cmd)
                while not self.chip.fifo.empty:
                    trace.extend(self.chip.mdmc.execute(self.chip.fifo.pop()))
                self.chip.fifo.take_interrupt()
        else:  # cm0
            program = Cm0Program()
            for cmd in commands:
                program.add(cmd)
            # One-time program download (32-bit words over the link).
            io_seconds += self.link.transfer_seconds(program.stored_words * 32)
            self.chip.cm0.load_program(program)

            def issue(cmd: Command) -> int:
                t = self.chip.mdmc.execute(cmd)
                trace.extend(t)
                return t.cycles

            extra_cycles, _ = self.chip.cm0.run(issue)
            dispatch = extra_cycles - trace.cycles
            trace.add("idle", dispatch, max(self._n, 2))
        power = self.chip.power_model.report(trace.phases)
        return OperationReport(
            label=label,
            cycles=trace.cycles,
            compute_seconds=power.seconds,
            io_seconds=io_seconds,
            power=power,
            commands=len(commands),
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Table I primitives
    # ------------------------------------------------------------------

    def _twiddle_addr(self) -> int:
        return self.chip.memory_map.base_address("TWD")

    def ntt_command(self, src: str, dst: str) -> Command:
        return Command(Opcode.NTT, n=self._n, x_addr=self.buffer_address(src),
                       twiddle_addr=self._twiddle_addr(),
                       out_addr=self.buffer_address(dst))

    def intt_command(self, src: str, dst: str) -> Command:
        return Command(Opcode.INTT, n=self._n, x_addr=self.buffer_address(src),
                       twiddle_addr=self._twiddle_addr(),
                       out_addr=self.buffer_address(dst),
                       constant=self.chip.n_inverse)

    def pointwise_command(self, opcode: Opcode, x: str, dst: str,
                          y: str | None = None, constant: int = 0) -> Command:
        return Command(opcode, n=self._n, x_addr=self.buffer_address(x),
                       y_addr=self.buffer_address(y) if y else 0,
                       out_addr=self.buffer_address(dst), constant=constant)

    def ntt(self, src: str, dst: str | None = None, **kw) -> OperationReport:
        return self.execute([self.ntt_command(src, dst or src)], label="NTT", **kw)

    def intt(self, src: str, dst: str | None = None, **kw) -> OperationReport:
        return self.execute([self.intt_command(src, dst or src)], label="iNTT", **kw)

    def pointwise(self, opcode: Opcode, x: str, dst: str, y: str | None = None,
                  constant: int = 0, **kw) -> OperationReport:
        return self.execute(
            [self.pointwise_command(opcode, x, dst, y, constant)],
            label=opcode.value, **kw,
        )

    # ------------------------------------------------------------------
    # Composed operations (Algorithms 2 and 3)
    # ------------------------------------------------------------------

    def polynomial_multiply(self, a: str, b: str, out: str, **kw) -> OperationReport:
        """Algorithm 2: ``out = a * b`` in ``Z_q[x]/(x^n+1)``.

        Destroys ``a`` and ``b`` (they are transformed in place) — the
        on-chip scheduling choice that keeps buffer pressure minimal.
        """
        commands = [
            self.ntt_command(a, a),
            self.ntt_command(b, b),
            self.pointwise_command(Opcode.PMODMUL, a, out, y=b),
            self.intt_command(out, out),
        ]
        return self.execute(commands, label="PolyMul", **kw)

    def ciphertext_multiply(self, a0: str, a1: str, b0: str, b1: str,
                            t0: str, t1: str, **kw
                            ) -> tuple[OperationReport, tuple[str, str, str]]:
        """Algorithm 3: the Eq. 4 tensor on one RNS tower.

        4 NTT + 4 Hadamard + 1 pointwise addition + 3 iNTT, scheduled into
        exactly the six polynomial buffers the fabricated chip has at
        n = 2^13 (3 dual-port + 3 single-port data banks; the fourth
        single-port bank holds twiddles). The inputs are consumed:
        ``Y2`` finishes in ``b1``'s buffer and the cross term reuses
        ``b0``'s as scratch.

        Returns:
            ``(report, (y0, y1, y2))`` — the report and the buffer names
            now holding the three output polynomials.
        """
        cmds = [
            self.ntt_command(b0, b0),                               # B0'
            self.ntt_command(a0, a0),                               # A0'
            self.pointwise_command(Opcode.PMODMUL, a0, t0, y=b0),   # Y0'
            self.intt_command(t0, t0),                              # Y0
            self.ntt_command(b1, b1),                               # B1'
            self.pointwise_command(Opcode.PMODMUL, a0, t1, y=b1),   # Y01'
            self.ntt_command(a1, a1),                               # A1'
            self.pointwise_command(Opcode.PMODMUL, a1, b1, y=b1),   # Y2' -> b1
            self.intt_command(b1, b1),                              # Y2
            self.pointwise_command(Opcode.PMODMUL, a1, b0, y=b0),   # Y10' -> b0
            self.pointwise_command(Opcode.PMODADD, t1, t1, y=b0),   # Y1'
            self.intt_command(t1, t1),                              # Y1
        ]
        report = self.execute(cmds, label="CiphertextMul", **kw)
        return report, (t0, t1, b1)

    def ciphertext_multiply_tower(
        self,
        ct_a: tuple[Sequence[int], Sequence[int]],
        ct_b: tuple[Sequence[int], Sequence[int]],
        q: int,
        **kw,
    ) -> tuple[list[list[int]], OperationReport]:
        """Algorithm 3 on one RNS tower, with amortized reprogramming.

        Programs ``(q, n)`` only if the chip is not already configured for
        it (see :meth:`ensure_programmed`), reduces both input ciphertexts
        mod ``q``, runs the Eq. 4 tensor command stream, and reads the
        three outputs back. This is the work unit a tower-sharded pool
        dispatches: a worker sweeping many same-modulus units in a batch
        pays the twiddle download once.

        Returns:
            ``([y0, y1, y2] mod-q coefficient vectors, report)`` — the
            report's ``io_seconds`` includes any reprogramming plus the
            polynomial loads/readbacks.
        """
        io = self.ensure_programmed(q, len(ct_a[0]))
        names = self.buffer_names
        if len(names) < 6:
            raise CapacityError(
                "ciphertext multiplication needs 6 on-chip buffers"
            )
        a0, a1, b0, b1, t0, t1 = names[:6]
        io += self.load_polynomial(a0, [c % q for c in ct_a[0]])
        io += self.load_polynomial(a1, [c % q for c in ct_a[1]])
        io += self.load_polynomial(b0, [c % q for c in ct_b[0]])
        io += self.load_polynomial(b1, [c % q for c in ct_b[1]])
        report, (y0, y1, y2) = self.ciphertext_multiply(
            a0, a1, b0, b1, t0, t1, **kw
        )
        outs = []
        for name in (y0, y1, y2):
            data, dt = self.read_polynomial(name)
            io += dt
            outs.append(data)
        report.io_seconds += io
        return outs, report

    def ciphertext_multiply_rns(
        self,
        ct_a: tuple[Sequence[int], Sequence[int]],
        ct_b: tuple[Sequence[int], Sequence[int]],
        basis: RnsBasis,
        **kw,
    ) -> tuple[list[list[int]], OperationReport]:
        """Full big-modulus ciphertext multiplication across RNS towers.

        Decomposes both input ciphertexts into towers, runs Algorithm 3 per
        tower via :meth:`ciphertext_multiply_tower` (reprogramming the
        modulus between towers, as the host would), and CRT-reconstructs
        the three output polynomials.

        Returns:
            ``([y0, y1, y2] big-modulus coefficient vectors, merged report)``.
        """
        reports = []
        tower_outputs: list[list[list[int]]] = []
        io = 0.0
        for q_i in basis.moduli:
            outs, report = self.ciphertext_multiply_tower(ct_a, ct_b, q_i, **kw)
            io += report.io_seconds
            report.io_seconds = 0.0  # folded into the merged report below
            reports.append(report)
            tower_outputs.append(outs)
        merged = OperationReport.merge(
            "CiphertextMul_RNS", reports, self.chip.power_model
        )
        merged.io_seconds += io
        results = [
            basis.reconstruct_poly([tw[j] for tw in tower_outputs])
            for j in range(3)
        ]
        return results, merged

    # ------------------------------------------------------------------
    # Large-degree (host-assisted) operation (Section III-C)
    # ------------------------------------------------------------------

    def large_ntt_report(self, n: int) -> OperationReport:
        """Latency/IO model for NTT beyond on-chip capacity.

        * ``n = 2^14``: fits across banks but only via single-port
          memories, so the butterfly stream runs at II = 2; no host
          round-trips.
        * ``n >= 2^15``: four-step decomposition ``n = n1 x n2`` with
          ``n1, n2 <= 2^13``; every pass streams the full polynomial over
          the host link both ways, so communication swamps compute — the
          paper's "for larger polynomials the communication costs
          increase".
        """
        timing = self.chip.timing
        trace = ExecutionTrace()
        io_seconds = 0.0
        if n <= timing.dual_port_words:
            raise ConfigError(f"n = {n} fits on chip; use ntt()")
        if n <= 2 * timing.dual_port_words:  # n = 2^14: on-chip, II = 2
            cycles = timing.ntt_cycles(n)
            trace.add("dit_butterfly", cycles, n)
        else:
            n1 = timing.dual_port_words
            n2 = n // n1
            # Four-step decomposition: a column pass of n2 size-n1 NTTs and
            # a row pass of n1/... -> n/n2 size-n2 NTTs, both on-chip at
            # II = 1; the twiddle correction folds into the passes. The
            # host streams the whole polynomial in and out around each
            # pass.
            for _ in range(n2):
                trace.add("dit_butterfly", timing.ntt_cycles(n1), n1)
            row_size = max(n2, 2)
            for _ in range(n // row_size):
                trace.add("dit_butterfly", timing.ntt_cycles(row_size), row_size)
            io_seconds += 2 * (self.link.send_polynomial(n) +
                               self.link.receive_polynomial(n))
        power = self.chip.power_model.report(trace.phases)
        return OperationReport(
            label=f"NTT(n={n})", cycles=trace.cycles,
            compute_seconds=power.seconds, io_seconds=io_seconds,
            power=power, commands=1, trace=trace,
        )
