"""High-level operation scheduler: buffer allocation + DMA overlap.

The paper frames CoFHEE as "a small component in a much bigger design,
where the larger design will mostly focus on data movement". This module
is that data-movement layer in miniature: it takes a DAG of polynomial
operations (NTT, iNTT, pointwise, products of named values), performs
liveness-based allocation onto the chip's six polynomial buffers, emits
the Table I command stream, and schedules DMA prefetches of future
operands into the third dual-port bank so their load time hides behind
compute (Section III-F) — reporting how many cycles the overlap saved.

The 6-buffer Algorithm 3 schedule hand-written in the driver falls out of
this allocator automatically, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import CapacityError
from repro.core.timing import TimingModel


class OpKind(Enum):
    NTT = "ntt"
    INTT = "intt"
    HADAMARD = "hadamard"
    ADD = "add"
    SUB = "sub"
    SCALAR_MUL = "scalar_mul"
    LOAD = "load"  # host -> chip
    STORE = "store"  # chip -> host


@dataclass(frozen=True)
class Op:
    """One node of the polynomial-operation DAG.

    Attributes:
        kind: operation type.
        output: name of the value produced.
        inputs: names of the values consumed.
    """

    kind: OpKind
    output: str
    inputs: tuple[str, ...] = ()

    def __post_init__(self):
        arity = {
            OpKind.NTT: 1, OpKind.INTT: 1, OpKind.SCALAR_MUL: 1,
            OpKind.HADAMARD: 2, OpKind.ADD: 2, OpKind.SUB: 2,
            OpKind.LOAD: 0, OpKind.STORE: 1,
        }[self.kind]
        if len(self.inputs) != arity:
            raise ValueError(
                f"{self.kind.value} takes {arity} inputs, got {len(self.inputs)}"
            )


@dataclass
class ScheduledOp:
    """An op bound to physical buffers, with its cycle cost."""

    op: Op
    buffers: dict[str, int]  # value name -> buffer index
    cycles: int
    dma_exposed_cycles: int = 0


@dataclass
class Schedule:
    """The compiled program."""

    ops: list[ScheduledOp] = field(default_factory=list)
    compute_cycles: int = 0
    dma_hidden_cycles: int = 0
    dma_exposed_cycles: int = 0
    peak_buffers: int = 0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.dma_exposed_cycles

    def savings_fraction(self) -> float:
        """Fraction of data-movement cycles hidden behind compute."""
        moved = self.dma_hidden_cycles + self.dma_exposed_cycles
        return self.dma_hidden_cycles / moved if moved else 0.0


class Scheduler:
    """Compile an op list (topological order) onto the chip's buffers.

    Args:
        n: polynomial degree.
        num_buffers: on-chip polynomial buffers (6 at n = 2^13).
        timing: cycle model.
        prefetch: overlap LOAD transfers with preceding compute
            (the Section III-F double-buffering; requires a spare buffer,
            which is why the chip has a *third* dual-port bank).
    """

    def __init__(self, n: int, num_buffers: int = 6,
                 timing: TimingModel | None = None, prefetch: bool = True):
        if num_buffers < 2:
            raise ValueError("need at least two buffers")
        self.n = n
        self.num_buffers = num_buffers
        self.timing = timing or TimingModel()
        self.prefetch = prefetch

    # ------------------------------------------------------------------

    def compile(self, ops: list[Op]) -> Schedule:
        """Allocate buffers and cost the program.

        Raises:
            CapacityError: if live values ever exceed the buffer count.
            ValueError: on malformed programs (undefined inputs, dead
                stores...).
        """
        self._validate(ops)
        last_use = self._liveness(ops)
        free = list(range(self.num_buffers - 1, -1, -1))
        binding: dict[str, int] = {}
        schedule = Schedule()
        live_peak = 0
        pending_compute_window = 0  # cycles a background load can hide in
        for index, op in enumerate(ops):
            # free buffers whose values die before this op
            for name in [v for v, die in last_use.items() if die < index]:
                if name in binding:
                    free.append(binding.pop(name))
                    del last_use[name]
            cycles = self._op_cycles(op)
            exposed = 0
            if op.kind is OpKind.LOAD:
                if not free:
                    raise CapacityError(
                        f"no free buffer for LOAD {op.output} at op {index}"
                    )
                binding[op.output] = free.pop()
                transfer = self._load_cycles()
                if self.prefetch:
                    hidden = min(transfer, pending_compute_window)
                    pending_compute_window -= hidden
                    schedule.dma_hidden_cycles += hidden
                    exposed = transfer - hidden
                else:
                    exposed = transfer
                cycles = 0
            elif op.kind is OpKind.STORE:
                transfer = self._load_cycles()
                if self.prefetch:
                    hidden = min(transfer, pending_compute_window)
                    pending_compute_window -= hidden
                    schedule.dma_hidden_cycles += hidden
                    exposed = transfer - hidden
                else:
                    exposed = transfer
                cycles = 0
            else:
                # in-place if an input dies here (ownership transfers to
                # the output), else take a free buffer
                target = None
                for name in op.inputs:
                    if last_use.get(name) == index and name in binding:
                        target = binding.pop(name)
                        del last_use[name]
                        break
                if target is None:
                    if not free:
                        raise CapacityError(
                            f"buffer pressure at op {index} "
                            f"({op.kind.value} -> {op.output}): "
                            f"{len(binding)} live values, "
                            f"{self.num_buffers} buffers"
                        )
                    target = free.pop()
                binding[op.output] = target
                pending_compute_window += cycles
            live_peak = max(live_peak, len(binding))
            schedule.ops.append(
                ScheduledOp(
                    op=op,
                    buffers={name: binding[name]
                             for name in (*op.inputs, op.output)
                             if name in binding},
                    cycles=cycles,
                    dma_exposed_cycles=exposed,
                )
            )
            schedule.compute_cycles += cycles
            schedule.dma_exposed_cycles += exposed
        schedule.peak_buffers = live_peak
        return schedule

    # ------------------------------------------------------------------

    def _op_cycles(self, op: Op) -> int:
        if op.kind is OpKind.NTT:
            return self.timing.ntt_cycles(self.n)
        if op.kind is OpKind.INTT:
            return self.timing.intt_cycles(self.n)
        if op.kind in (OpKind.HADAMARD, OpKind.ADD, OpKind.SUB,
                       OpKind.SCALAR_MUL):
            return self.timing.pointwise_cycles(self.n)
        return 0  # LOAD/STORE costed as DMA transfers

    def _load_cycles(self) -> int:
        return self.timing.memcpy_cycles(self.n)

    @staticmethod
    def _liveness(ops: list[Op]) -> dict[str, int]:
        """Map each value to the index of its last use."""
        last: dict[str, int] = {}
        for i, op in enumerate(ops):
            last[op.output] = max(last.get(op.output, i), i)
            for name in op.inputs:
                last[name] = i
        return last

    @staticmethod
    def _validate(ops: list[Op]) -> None:
        defined: set[str] = set()
        for i, op in enumerate(ops):
            for name in op.inputs:
                if name not in defined:
                    raise ValueError(
                        f"op {i} ({op.kind.value}) consumes undefined "
                        f"value {name!r}"
                    )
            defined.add(op.output)


def ciphertext_multiply_program() -> list[Op]:
    """Algorithm 3 as a scheduler program (the driver's hand schedule,
    expressed as a DAG): 4 loads, 4 NTT, 4 Hadamard, 1 add, 3 iNTT,
    3 stores."""
    return [
        Op(OpKind.LOAD, "a0"), Op(OpKind.LOAD, "a1"),
        Op(OpKind.LOAD, "b0"), Op(OpKind.LOAD, "b1"),
        Op(OpKind.NTT, "B0", ("b0",)),
        Op(OpKind.NTT, "A0", ("a0",)),
        Op(OpKind.HADAMARD, "Y0f", ("A0", "B0")),
        Op(OpKind.INTT, "y0", ("Y0f",)),
        Op(OpKind.STORE, "y0_out", ("y0",)),
        Op(OpKind.NTT, "B1", ("b1",)),
        Op(OpKind.HADAMARD, "Y01", ("A0", "B1")),
        Op(OpKind.NTT, "A1", ("a1",)),
        Op(OpKind.HADAMARD, "Y2f", ("A1", "B1")),
        Op(OpKind.INTT, "y2", ("Y2f",)),
        Op(OpKind.STORE, "y2_out", ("y2",)),
        Op(OpKind.HADAMARD, "Y10", ("A1", "B0")),
        Op(OpKind.ADD, "Y1f", ("Y01", "Y10")),
        Op(OpKind.INTT, "y1", ("Y1f",)),
        Op(OpKind.STORE, "y1_out", ("y1",)),
    ]
