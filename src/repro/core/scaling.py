"""Scalability and design-choice what-if models (Sections VI-B and VIII-A).

The paper sketches several scaling options for CoFHEE:

* **more PEs / higher radix** (Section VI-B): four PEs allow radix-4
  butterflies in a pipeline; NTT cycle count is ``(N/radix) *
  log_radix(N)``, a ~4x speedup for +1.9 mm^2 (three extra PEs at the
  Table VIII PE area of 0.6394 mm^2 x ...; the paper quotes 1.9 mm^2);
* **split-polynomial parallelism** (Section VIII-A): doubling the
  multiplier pool and dual-port memories halves the II for the first
  ``log n - 1`` stages (two half-size NTTs in parallel) with the last
  recombination stage still at II = 1;
* **memory growth**: memory area scales linearly with n, and memory read
  latency (the critical path) grows with bank size, slightly lowering the
  clock;
* **dual-port vs single-port** (Section VIII-B): dual-port banks cost 2x
  the area of single-port banks of equal capacity but are what makes
  II = 1 possible.

These models quantify each claim so the ablation benches can print the
trade-off curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.timing import CMD_DISPATCH, STAGE_OVERHEAD, TimingModel

#: Post-synthesis PE area (Table VIII).
PE_AREA_MM2 = 0.6394
#: Incremental area the paper quotes for three additional PEs ("the area
#: would increase by only 1.9mm^2 for the addition of three additional
#: PEs") — sub-linear vs 3 x 0.6394 because the multiplier dominates and
#: control/muxing is shared.
THREE_EXTRA_PE_MM2 = 1.9
#: Dual-port SRAM area premium over single-port of equal capacity.
DUAL_PORT_AREA_FACTOR = 2.0


@dataclass(frozen=True)
class RadixConfig:
    """A multi-PE, higher-radix CoFHEE variant."""

    radix: int  # butterfly radix (2 on silicon; 4 with four PEs)

    @property
    def pe_count(self) -> int:
        return self.radix // 2 * (self.radix // 2) if self.radix > 2 else 1

    def ntt_cycles(self, n: int) -> int:
        """Section VI-B's formula: ``(N/radix) * log_radix(N)`` plus the
        same per-stage overheads as the base design."""
        if n < 2 or n & (n - 1):
            raise ValueError(f"n must be a power of two, got {n}")
        stages = int(round(math.log(n, self.radix)))
        return (n // self.radix) * stages + STAGE_OVERHEAD * stages + CMD_DISPATCH

    def extra_area_mm2(self) -> float:
        """Additional silicon over the fabricated single-PE chip."""
        if self.radix == 2:
            return 0.0
        if self.radix == 4:
            return THREE_EXTRA_PE_MM2
        # Beyond radix 4, extrapolate the per-PE increment.
        extra_pes = self.radix * self.radix // 4 - 1
        return THREE_EXTRA_PE_MM2 / 3 * extra_pes


def radix4_speedup(n: int) -> float:
    """NTT speedup of the 4-PE radix-4 variant over fabricated CoFHEE.

    The paper argues this "exceeds the performance achieved with 16
    threads" of the Ryzen CPU.
    """
    base = TimingModel().ntt_cycles(n)
    return base / RadixConfig(radix=4).ntt_cycles(n)


@dataclass(frozen=True)
class SplitParallelConfig:
    """Section VIII-A's split-polynomial scaling: ``pools`` multiplier
    pools, each with its own pair of dual-port banks."""

    pools: int = 2

    def ntt_cycles(self, n: int) -> int:
        """First ``log n - 1`` stages run as ``pools`` parallel sub-NTTs
        (II = 1/pools); the final recombination stage is II = 1."""
        if self.pools < 1 or self.pools & (self.pools - 1):
            raise ValueError("pools must be a power of two")
        if n < 2 * self.pools:
            raise ValueError("polynomial too small to split")
        stages = n.bit_length() - 1
        sub_stages = stages - (self.pools.bit_length() - 1)
        butterflies = (n // 2) * sub_stages // self.pools  # parallel part
        final = (n // 2) * (self.pools.bit_length() - 1)  # recombination
        return butterflies + final + STAGE_OVERHEAD * stages + CMD_DISPATCH

    def throughput_gain(self, n: int) -> float:
        return TimingModel().ntt_cycles(n) / self.ntt_cycles(n)

    def extra_dual_port_banks(self) -> int:
        """Each extra pool needs two more dual-port banks."""
        return 2 * (self.pools - 1)


@dataclass(frozen=True)
class MemoryScaling:
    """Memory area/latency scaling with polynomial degree (Section VIII-A).

    "CoFHEE needs more area for memories, which increase linearly to the
    polynomial degree. As the memory size increases, memory read latency
    increases, which leads to a minor reduction in clock frequency."
    """

    #: Fabricated data-memory area at n = 2^13 (3 DP + 5 SP banks,
    #: Table VIII: 5.3506 + 3.2036 + part of CM0 SRAM).
    base_area_mm2: float = 8.5542
    base_n: int = 2**13
    #: Read-latency growth per doubling of bank words (~RC of longer
    #: bit lines); 4 ns at the base size.
    base_read_ns: float = 4.0
    read_ns_per_octave: float = 0.35

    def memory_area_mm2(self, n: int) -> float:
        return self.base_area_mm2 * n / self.base_n

    def read_latency_ns(self, n: int) -> float:
        octaves = math.log2(n / self.base_n)
        return self.base_read_ns + self.read_ns_per_octave * max(0.0, octaves)

    def clock_mhz(self, n: int) -> float:
        """Memory read path sets the clock (Section III-D)."""
        return 1e3 / self.read_latency_ns(n)


def dual_port_tradeoff(n_banks_dp: int, n_banks_sp: int,
                       bank_area_sp_mm2: float = 0.8) -> dict[str, float]:
    """Area/II trade-off of a bank mix (Section VIII-B lesson).

    Returns the memory area of the mix and of the all-single-port
    alternative, plus the butterfly II each achieves: II = 1 needs at
    least two dual-port banks (fetch two operands and store two results
    per cycle); an all-single-port layout runs II = 2 and needs twice the
    bank count for the same bandwidth.
    """
    if n_banks_dp < 0 or n_banks_sp < 0:
        raise ValueError("bank counts must be non-negative")
    area = (n_banks_dp * DUAL_PORT_AREA_FACTOR + n_banks_sp) * bank_area_sp_mm2
    all_sp_area = (n_banks_dp + n_banks_sp) * bank_area_sp_mm2
    return {
        "area_mm2": area,
        "all_single_port_area_mm2": all_sp_area,
        "butterfly_ii": 1 if n_banks_dp >= 2 else 2,
        "all_single_port_ii": 2,
    }
