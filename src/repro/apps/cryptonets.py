"""CryptoNets: encrypted neural-network inference (Gilad-Bachrach et al.).

Two artifacts:

* :data:`CRYPTONETS_WORKLOAD` — the Section VI-C operation mix (457,550
  ct+ct additions, 449,000 ct*pt multiplications, 10,200 ct*ct
  multiplications each followed by relinearization) priced by the cost
  models for Table X;
* :class:`MiniCryptoNets` — a *runnable* CryptoNets-style network on the
  reproduction's BFV: SIMD batching packs one pixel position across a
  batch of images into each ciphertext (the original CryptoNets trick), a
  strided convolution runs as ct*pt multiply-accumulate, the activation is
  the FHE-friendly square function (ct*ct multiply + relinearization), and
  dense layers finish the classification. Outputs are verified against the
  identical plaintext network.

The network also **compiles itself** for the serving layer:
:meth:`MiniCryptoNets.to_circuit` emits the identical operation sequence
as a wire-encodable :class:`~repro.service.circuits.Circuit` (138 steps,
12 tensors across 2 dependency levels for the default topology), so an
inference batch can be served over TCP bit-identically to in-process
execution (``docs/serving-guide.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.costmodel import Workload
from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.bfv.scheme import Ciphertext

#: The paper's CryptoNets operation counts (Section VI-C).
CRYPTONETS_WORKLOAD = Workload(
    name="CryptoNets",
    ct_ct_adds=457_550,
    ct_pt_mults=449_000,
    ct_ct_mults=10_200,
    relin_digit_bits=5,  # 22 digits over the 109-bit modulus (deep circuit)
    paper_cpu_seconds=197.0,
    paper_cofhee_seconds=88.35,
)


@dataclass
class NetworkSpec:
    """Miniature CryptoNets topology (square activations, as in the paper).

    Default: 6x6 input, one 3x3/stride-2 conv with 2 maps, square, dense
    to 4, square, dense to 2 outputs.
    """

    image_size: int = 6
    conv_kernel: int = 3
    conv_stride: int = 2
    conv_maps: int = 2
    hidden: int = 4
    classes: int = 2

    @property
    def conv_out(self) -> int:
        return (self.image_size - self.conv_kernel) // self.conv_stride + 1

    def op_counts(self) -> dict[str, int]:
        """Homomorphic op mix of one batched inference (all images at once)."""
        conv_units = self.conv_maps * self.conv_out * self.conv_out
        k2 = self.conv_kernel * self.conv_kernel
        flat = conv_units
        return {
            "ct_pt_mults": conv_units * k2 + flat * self.hidden
            + self.hidden * self.classes,
            "ct_ct_adds": conv_units * (k2 - 1) + conv_units  # conv acc + bias
            + flat * self.hidden - self.hidden + self.hidden  # dense1
            + self.hidden * self.classes - self.classes + self.classes,
            "ct_ct_mults": conv_units + self.hidden,  # two square layers
        }


class MiniCryptoNets:
    """Runnable encrypted CNN with plaintext-verified outputs.

    Args:
        params: BFV parameters (use :meth:`BfvParameters.toy` scale).
        spec: network topology.
        seed: RNG seed for weights and keys.
    """

    def __init__(self, params: BfvParameters | None = None,
                 spec: NetworkSpec | None = None, seed: int = 7):
        if params is None:
            # A 20-bit plaintext prime (=== 1 mod 2n) keeps the network's
            # signed intermediate values inside (-t/2, t/2) so the batched
            # decode is exact for the default weight/pixel ranges.
            from repro.polymath.primes import ntt_friendly_prime

            params = BfvParameters.toy(n=16, log_q=120,
                                       t=ntt_friendly_prime(16, 20))
        self.params = params
        self.spec = spec or NetworkSpec()
        self.bfv = Bfv(self.params, seed=seed)
        self.encoder = BatchEncoder(self.params)
        # Deep circuits need fine relin digits, mirroring the workload model.
        self.keys = self.bfv.keygen(relin_digit_bits=8)
        rng = random.Random(seed)
        s = self.spec
        self.conv_w = [
            [rng.randint(-2, 2) for _ in range(s.conv_kernel * s.conv_kernel)]
            for _ in range(s.conv_maps)
        ]
        self.conv_b = [rng.randint(-2, 2) for _ in range(s.conv_maps)]
        flat = s.conv_maps * s.conv_out * s.conv_out
        self.fc1_w = [[rng.randint(-1, 1) for _ in range(flat)]
                      for _ in range(s.hidden)]
        self.fc1_b = [rng.randint(-1, 1) for _ in range(s.hidden)]
        self.fc2_w = [[rng.randint(-1, 1) for _ in range(s.hidden)]
                      for _ in range(s.classes)]
        self.fc2_b = [rng.randint(-1, 1) for _ in range(s.classes)]
        self.op_log = {"ct_pt_mults": 0, "ct_ct_adds": 0, "ct_ct_mults": 0}

    @property
    def batch_size(self) -> int:
        """Images processed per inference (the SIMD slot count)."""
        return self.encoder.slot_count

    # -- encrypted pipeline ------------------------------------------------

    def encrypt_images(self, images: list[list[int]]) -> list[Ciphertext]:
        """Pack pixel position p of every image into ciphertext p."""
        size = self.spec.image_size * self.spec.image_size
        if any(len(img) != size for img in images):
            raise ValueError(f"images must have {size} pixels")
        if len(images) > self.batch_size:
            raise ValueError(f"batch too large (max {self.batch_size})")
        cts = []
        for p in range(size):
            slots = [img[p] for img in images]
            cts.append(self.bfv.encrypt(self.encoder.encode(slots),
                                        self.keys.public))
        return cts

    def _scale(self, ct: Ciphertext, w: int) -> Ciphertext:
        self.op_log["ct_pt_mults"] += 1
        return self.bfv.multiply_scalar(ct, w)

    def _acc(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.op_log["ct_ct_adds"] += 1
        return self.bfv.add(a, b)

    def _add_bias(self, ct: Ciphertext, b: int) -> Ciphertext:
        self.op_log["ct_ct_adds"] += 1
        return self.bfv.add_plain(
            ct, self.encoder.encode([b] * self.batch_size)
        )

    def _square(self, ct: Ciphertext) -> Ciphertext:
        self.op_log["ct_ct_mults"] += 1
        return self.bfv.relinearize(self.bfv.square(ct), self.keys.relin)

    def infer(self, images: list[list[int]]) -> list[list[int]]:
        """Encrypted inference; returns per-image class scores (signed)."""
        s = self.spec
        cts = self.encrypt_images(images)
        # Convolution (stride s.conv_stride) + bias.
        conv_out: list[Ciphertext] = []
        for m in range(s.conv_maps):
            for oy in range(s.conv_out):
                for ox in range(s.conv_out):
                    acc = None
                    for ky in range(s.conv_kernel):
                        for kx in range(s.conv_kernel):
                            p = ((oy * s.conv_stride + ky) * s.image_size
                                 + ox * s.conv_stride + kx)
                            term = self._scale(
                                cts[p], self.conv_w[m][ky * s.conv_kernel + kx]
                            )
                            acc = term if acc is None else self._acc(acc, term)
                    conv_out.append(self._add_bias(acc, self.conv_b[m]))
        # Square activation.
        act1 = [self._square(c) for c in conv_out]
        # Dense 1 + square.
        hidden = []
        for h in range(s.hidden):
            acc = None
            for i, c in enumerate(act1):
                term = self._scale(c, self.fc1_w[h][i])
                acc = term if acc is None else self._acc(acc, term)
            hidden.append(self._add_bias(acc, self.fc1_b[h]))
        act2 = [self._square(c) for c in hidden]
        # Dense 2 (output scores).
        scores = []
        for k in range(s.classes):
            acc = None
            for h, c in enumerate(act2):
                term = self._scale(c, self.fc2_w[k][h])
                acc = term if acc is None else self._acc(acc, term)
            scores.append(self._add_bias(acc, self.fc2_b[k]))
        # Decrypt and unpack per image (same tail a served circuit uses).
        return self.scores_from_outputs(
            {f"score{k}": sc for k, sc in enumerate(scores)}, len(images)
        )

    # -- wire circuit compilation --------------------------------------------

    def packed_galois_exponents(self) -> list[int]:
        """Galois-key exponents the ``packed_dense=True`` circuit needs.

        The masked transpose aims values at arbitrary slots, so every
        row-rotation exponent plus the column swap may appear; register
        each returned exponent's key with the serving session.
        """
        from repro.bfv.rotation import RotationEngine

        n = self.params.n
        return [
            pow(RotationEngine.GENERATOR, k, 2 * n)
            for k in range(1, n // 2)
        ] + [2 * n - 1]

    def to_circuit(self, packed_dense: bool = False):
        """Compile the whole network into a servable wire circuit.

        The returned :class:`~repro.service.circuits.Circuit` performs
        exactly the operations :meth:`infer` performs, in the same order
        — conv multiply-accumulates, packed bias adds, square
        activations (``OP_SQUARE_RELIN``), and the two dense layers — so
        evaluating it on the ciphertexts from :meth:`encrypt_images`
        returns score ciphertexts bit-identical to in-process execution.
        Outputs are named ``"score0"`` … ``"score{classes-1}"``. The
        packed bias constants use the full SIMD batch width, as
        :meth:`infer` does, so one circuit serves any image batch.

        With ``packed_dense=True`` the dense layers compile as packed
        rotate-and-sum dot-products over a *single* image (batch of 1,
        the ciphertexts from ``encrypt_images([img])``): the conv
        activations are gathered into one slot-packed vector with a
        masked transpose (mask slot 0, rotate the value to its dense
        index), each dense row is one plaintext multiply by the
        slot-packed weight vector followed by the log-depth all-slots
        reduction, and the hidden activations re-pack the same way for
        the output layer. The session needs Galois keys for
        :meth:`packed_galois_exponents`; every slot of each
        ``score{k}`` output holds that class's score.
        """
        from repro.service.circuits import CircuitBuilder

        if packed_dense:
            return self._to_circuit_packed_dense()
        s = self.spec
        builder = CircuitBuilder("cryptonets")
        pixels = [
            builder.input(f"px{p}")
            for p in range(s.image_size * s.image_size)
        ]

        encoded_bias: dict[int, int] = {}  # value -> constant index

        def bias(value: int) -> int:
            # Encode each distinct bias once; the conv loop would
            # otherwise pay the O(n) encode per output position.
            if value not in encoded_bias:
                encoded_bias[value] = builder.plain(
                    self.encoder.encode([value] * self.batch_size).coeffs
                )
            return encoded_bias[value]

        def dot(regs: list[int], weights: list[int]) -> int:
            acc = None
            for reg, w in zip(regs, weights):
                if acc is None:
                    acc = builder.mul_const(reg, builder.scalar(w))
                else:
                    acc = builder.mac_const(acc, reg, builder.scalar(w))
            return acc

        conv_out = []
        for m in range(s.conv_maps):
            for oy in range(s.conv_out):
                for ox in range(s.conv_out):
                    taps = [
                        pixels[(oy * s.conv_stride + ky) * s.image_size
                               + ox * s.conv_stride + kx]
                        for ky in range(s.conv_kernel)
                        for kx in range(s.conv_kernel)
                    ]
                    acc = dot(taps, self.conv_w[m])
                    conv_out.append(builder.add_const(acc, bias(self.conv_b[m])))
        act1 = [builder.square_relin(c) for c in conv_out]
        hidden = [
            builder.add_const(dot(act1, self.fc1_w[h]), bias(self.fc1_b[h]))
            for h in range(s.hidden)
        ]
        act2 = [builder.square_relin(c) for c in hidden]
        for k in range(s.classes):
            score = builder.add_const(
                dot(act2, self.fc2_w[k]), bias(self.fc2_b[k])
            )
            builder.output(f"score{k}", score)
        return builder.build()

    def _to_circuit_packed_dense(self):
        """The rotate-and-sum lowering behind ``to_circuit(packed_dense=True)``.

        Single-image layout: every conv input/output lives in slot 0 (the
        other slots carry bias garbage the masks discard). ``_pack``
        gathers a list of such registers into one slot-packed vector —
        mask slot 0 (or the uniform value, post-reduction), rotate it to
        its dense index via the group recipe, accumulate — after which a
        dense layer is one ct*pt by the slot-packed weight row plus the
        log-depth rotate-and-sum reduction.
        """
        from repro.bfv.rotation import rotation_plan, slot_permutation
        from repro.service.circuits import CircuitBuilder

        s = self.spec
        n = self.params.n
        flat = s.conv_maps * s.conv_out * s.conv_out
        if flat > n or s.hidden > n:
            raise ValueError(
                f"packed dense layers need at most {n} units, have "
                f"{max(flat, s.hidden)}"
            )
        builder = CircuitBuilder("cryptonets-packed")
        pixels = [
            builder.input(f"px{p}")
            for p in range(s.image_size * s.image_size)
        ]
        # Step recipe moving slot ``src`` to slot ``dst``: the unique
        # group element g with perm_g[dst] == src, then its row/column
        # decomposition. Computed once from the encoder's points.
        plan = rotation_plan(n)
        perms = {g: slot_permutation(self.encoder, g) for g in plan}
        to_slot = {}
        for dst in range(n):
            for g, perm in perms.items():
                if perm[dst] == 0:
                    to_slot[dst] = plan[g]
                    break

        def mask(slot: int) -> int:
            one_hot = [0] * self.encoder.slot_count
            one_hot[slot] = 1
            return builder.plain(self.encoder.encode(one_hot).coeffs)

        def rotate_to(reg: int, dst: int) -> int:
            for kind, steps in to_slot[dst]:
                reg = (builder.rotate_rows(reg, steps) if kind == "rows"
                       else builder.rotate_columns(reg))
            return reg

        def pack(regs: list[int], mask_slot) -> int:
            acc = None
            for i, reg in enumerate(regs):
                masked = builder.mul_const(reg, mask(mask_slot(i)))
                moved = rotate_to(masked, i) if mask_slot(i) != i else masked
                acc = moved if acc is None else builder.add(acc, moved)
            return acc

        def sum_all_slots(reg: int) -> int:
            step = 1
            while step < n // 2:
                reg = builder.add(reg, builder.rotate_rows(reg, step))
                step <<= 1
            return builder.add(reg, builder.rotate_columns(reg))

        def bias(value: int) -> int:
            return builder.plain(
                self.encoder.encode([value] * self.encoder.slot_count).coeffs
            )

        def packed_row(vec: int, weights: list[int], b: int) -> int:
            row = builder.mul_const(
                vec, builder.plain(self.encoder.encode(weights).coeffs)
            )
            return builder.add_const(sum_all_slots(row), bias(b))

        conv_out = []
        for m in range(s.conv_maps):
            for oy in range(s.conv_out):
                for ox in range(s.conv_out):
                    acc = None
                    for ky in range(s.conv_kernel):
                        for kx in range(s.conv_kernel):
                            p = ((oy * s.conv_stride + ky) * s.image_size
                                 + ox * s.conv_stride + kx)
                            w = self.conv_w[m][ky * s.conv_kernel + kx]
                            if acc is None:
                                acc = builder.mul_const(
                                    pixels[p], builder.scalar(w)
                                )
                            else:
                                acc = builder.mac_const(
                                    acc, pixels[p], builder.scalar(w)
                                )
                    conv_out.append(
                        builder.add_const(acc, bias(self.conv_b[m]))
                    )
        act1 = [builder.square_relin(c) for c in conv_out]
        # Conv activations live in slot 0; gather them into slots 0..flat-1.
        vec1 = pack(act1, lambda _i: 0)
        hidden = [
            builder.square_relin(packed_row(vec1, self.fc1_w[h], self.fc1_b[h]))
            for h in range(s.hidden)
        ]
        # Hidden activations are uniform across slots (post-reduction), so
        # the mask picks each value at its own dense index — no rotation.
        vec2 = pack(hidden, lambda i: i)
        for k in range(s.classes):
            builder.output(
                f"score{k}", packed_row(vec2, self.fc2_w[k], self.fc2_b[k])
            )
        return builder.build()

    def scores_from_outputs(self, outputs: dict,
                            batch: int) -> list[list[int]]:
        """Decrypt a served circuit's named outputs into per-image scores.

        The client-side tail of a :meth:`to_circuit` round trip, matching
        :meth:`infer`'s return shape.
        """
        s = self.spec
        decoded = [
            self.encoder.decode_signed(
                self.bfv.decrypt(outputs[f"score{k}"], self.keys.secret)
            )
            for k in range(s.classes)
        ]
        return [[decoded[k][i] for k in range(s.classes)]
                for i in range(batch)]

    # -- plaintext reference -------------------------------------------------

    def infer_plain(self, images: list[list[int]]) -> list[list[int]]:
        """The identical network on plaintext integers (mod-t semantics
        avoided: verifies the encrypted path decodes to true values while
        magnitudes stay within t/2)."""
        s = self.spec
        results = []
        for img in images:
            conv = []
            for m in range(s.conv_maps):
                for oy in range(s.conv_out):
                    for ox in range(s.conv_out):
                        acc = 0
                        for ky in range(s.conv_kernel):
                            for kx in range(s.conv_kernel):
                                p = ((oy * s.conv_stride + ky) * s.image_size
                                     + ox * s.conv_stride + kx)
                                acc += img[p] * self.conv_w[m][
                                    ky * s.conv_kernel + kx
                                ]
                        conv.append(acc + self.conv_b[m])
            act1 = [v * v for v in conv]
            hidden = [
                sum(w * v for w, v in zip(self.fc1_w[h], act1)) + self.fc1_b[h]
                for h in range(s.hidden)
            ]
            act2 = [v * v for v in hidden]
            results.append(
                [
                    sum(w * v for w, v in zip(self.fc2_w[k], act2))
                    + self.fc2_b[k]
                    for k in range(s.classes)
                ]
            )
        return results

    @staticmethod
    def classify(scores: list[list[int]]) -> list[int]:
        return [max(range(len(s)), key=lambda k: s[k]) for s in scores]
