"""Privacy-preserving logistic-regression inference (Sarkar et al. [39]).

Two artifacts, mirroring :mod:`repro.apps.cryptonets`:

* :data:`LOGREG_WORKLOAD` — the Section VI-C operation mix (168,298 ct+ct
  additions, 49,500 ct*pt multiplications, 128,700 combined ct*ct
  multiplications and relinearizations) for the Table X estimator;
* :class:`MiniLogisticRegression` — runnable encrypted inference on the
  reproduction's BFV: features are SIMD-packed (one feature position
  across a batch of samples per ciphertext), the linear score
  ``w.x + b`` accumulates with ct*pt multiplies and ct+ct adds, and a
  degree-3 polynomial approximation of the sigmoid's decision behaviour
  (odd polynomial, fixed-point scaled) exercises the ct*ct + relin path
  like the paper's cancer-type predictor does.

The model also **compiles itself** for the serving layer:
:meth:`MiniLogisticRegression.to_circuit` emits the identical operation
sequence as a wire-encodable :class:`~repro.service.circuits.Circuit`,
so an inference batch can be served over TCP bit-identically to
in-process execution (``docs/serving-guide.md``).
"""

from __future__ import annotations

import random

from repro.apps.costmodel import Workload
from repro.bfv import BatchEncoder, Bfv, BfvParameters
from repro.bfv.scheme import Ciphertext

#: The paper's logistic-regression operation counts (Section VI-C). The
#: 128,700 "combined ct-ct multiplications and relinearizations" each pay
#: one tensor + one relin, with the shallow circuit affording coarse
#: 13-bit relin digits (9 over the 109-bit modulus).
LOGREG_WORKLOAD = Workload(
    name="LogisticRegression",
    ct_ct_adds=168_298,
    ct_pt_mults=49_500,
    ct_ct_mults=128_700,
    relin_digit_bits=13,
    paper_cpu_seconds=550.25,
    paper_cofhee_seconds=377.6,
)


class MiniLogisticRegression:
    """Runnable encrypted logistic-regression inference.

    The decision function is ``sign(w.x + b)``; to exercise the ct*ct path
    the model also evaluates the odd cubic ``g(s) = 3*s + s^3`` (a
    monotone, sign-preserving sigmoid surrogate in fixed point), so each
    inference performs genuine multiplications + relinearizations.

    Args:
        params: BFV parameters (toy scale by default).
        num_features: feature-vector length.
        seed: RNG seed for weights and keys.
    """

    def __init__(self, params: BfvParameters | None = None,
                 num_features: int = 8, seed: int = 11):
        if num_features < 1:
            raise ValueError("need at least one feature")
        if params is None:
            # The cubic surrogate reaches |3s + s^3| ~ 4.3e5 for the default
            # weight/feature ranges; a 21-bit plaintext prime keeps the
            # signed decode exact.
            from repro.polymath.primes import ntt_friendly_prime

            params = BfvParameters.toy(n=16, log_q=140,
                                       t=ntt_friendly_prime(16, 21))
        self.params = params
        self.bfv = Bfv(self.params, seed=seed)
        self.encoder = BatchEncoder(self.params)
        self.keys = self.bfv.keygen(relin_digit_bits=16)
        rng = random.Random(seed)
        self.weights = [rng.randint(-3, 3) for _ in range(num_features)]
        self.bias = rng.randint(-3, 3)
        self.num_features = num_features
        self.op_log = {"ct_pt_mults": 0, "ct_ct_adds": 0, "ct_ct_mults": 0}

    @property
    def batch_size(self) -> int:
        return self.encoder.slot_count

    def encrypt_features(self, samples: list[list[int]]) -> list[Ciphertext]:
        """Pack feature f of every sample into ciphertext f."""
        if any(len(s) != self.num_features for s in samples):
            raise ValueError(f"samples must have {self.num_features} features")
        if len(samples) > self.batch_size:
            raise ValueError(f"batch too large (max {self.batch_size})")
        cts = []
        for f in range(self.num_features):
            slots = [s[f] for s in samples]
            cts.append(self.bfv.encrypt(self.encoder.encode(slots),
                                        self.keys.public))
        return cts

    def score(self, samples: list[list[int]]) -> tuple[Ciphertext, int]:
        """Encrypted linear score ``w.x + b``; returns ``(ct, batch)``."""
        cts = self.encrypt_features(samples)
        acc = None
        for w, ct in zip(self.weights, cts):
            term = self.bfv.multiply_scalar(ct, w)
            self.op_log["ct_pt_mults"] += 1
            acc = term if acc is None else self.bfv.add(acc, term)
            if acc is not term:
                self.op_log["ct_ct_adds"] += 1
        bias_pt = self.encoder.encode([self.bias] * len(samples))
        self.op_log["ct_ct_adds"] += 1
        return self.bfv.add_plain(acc, bias_pt), len(samples)

    def sigmoid_surrogate(self, score_ct: Ciphertext) -> Ciphertext:
        """Odd cubic ``3*s + s^3`` — two ct*ct multiplications + relins."""
        squared = self.bfv.relinearize(self.bfv.square(score_ct),
                                       self.keys.relin)
        self.op_log["ct_ct_mults"] += 1
        cubed = self.bfv.relinearize(
            self.bfv.multiply(squared, score_ct), self.keys.relin
        )
        self.op_log["ct_ct_mults"] += 1
        tripled = self.bfv.multiply_scalar(score_ct, 3)
        self.op_log["ct_pt_mults"] += 1
        self.op_log["ct_ct_adds"] += 1
        return self.bfv.add(tripled, cubed)

    def predict(self, samples: list[list[int]],
                use_sigmoid: bool = True) -> list[int]:
        """Encrypted inference; returns 0/1 class per sample."""
        score_ct, batch = self.score(samples)
        if use_sigmoid:
            score_ct = self.sigmoid_surrogate(score_ct)
        return self.predictions_from_score(score_ct, batch)

    def predict_plain(self, samples: list[list[int]]) -> list[int]:
        """Plaintext reference decision (sign of the linear score — the
        cubic surrogate is sign-preserving by construction)."""
        out = []
        for s in samples:
            v = sum(w * x for w, x in zip(self.weights, s)) + self.bias
            out.append(1 if v > 0 else 0)
        return out

    # -- packed (rotate-and-sum) layout --------------------------------------

    def encrypt_packed(self, samples: list[list[int]]) -> list[Ciphertext]:
        """One ciphertext per sample: feature ``f`` in batching slot ``f``.

        The transposed layout of :meth:`encrypt_features` — what the
        ``packed=True`` circuit consumes. Unused slots pad with zero, so
        the rotate-and-sum reduction sees only the true features.
        """
        if any(len(s) != self.num_features for s in samples):
            raise ValueError(f"samples must have {self.num_features} features")
        if self.num_features > self.encoder.slot_count:
            raise ValueError(
                f"{self.num_features} features exceed "
                f"{self.encoder.slot_count} slots"
            )
        return [
            self.bfv.encrypt(self.encoder.encode(s), self.keys.public)
            for s in samples
        ]

    def packed_galois_exponents(self) -> list[int]:
        """Galois-key exponents the ``packed=True`` circuit rotates with.

        The rotate-and-sum reduction uses the power-of-two row rotations
        plus the column swap; register each returned exponent's key with
        the serving session before submitting.
        """
        from repro.bfv.rotation import RotationEngine

        n = self.params.n
        exponents, step = [], 1
        while step < n // 2:
            exponents.append(pow(RotationEngine.GENERATOR, step, 2 * n))
            step <<= 1
        exponents.append(2 * n - 1)
        return exponents

    # -- wire circuit compilation ------------------------------------------

    def to_circuit(self, batch: int, use_sigmoid: bool = True,
                   packed: bool = False):
        """Compile one inference batch into a servable wire circuit.

        The returned :class:`~repro.service.circuits.Circuit` performs
        exactly the operations :meth:`predict` performs, in the same
        order — multiply-accumulate per feature, the packed bias add,
        then the cubic sigmoid surrogate — so evaluating it on the
        ciphertexts from :meth:`encrypt_features` returns a score
        ciphertext bit-identical to in-process execution. Submit it with
        :meth:`~repro.service.client.FheClient.submit_circuit`; the one
        named output is ``"score"``.

        With ``packed=True`` the dense dot-product is compiled as a
        rotate-and-sum instead: inputs are the per-sample ciphertexts of
        :meth:`encrypt_packed` (``"s0"`` … ``"s{batch-1}"``), each is
        scaled by the slot-packed weight vector, reduced with
        ``log2(n/2)`` row rotations plus the column swap so every slot
        holds ``w.x``, and the bias and cubic tail run per sample. The
        session needs Galois keys for :meth:`packed_galois_exponents`;
        outputs are ``"score0"`` … ``"score{batch-1}"`` (decode any slot).

        Args:
            batch: number of samples in the batch (fixes the packed bias
                constant, exactly as :meth:`score` encodes it; with
                ``packed=True``, the number of inputs/outputs).
        """
        from repro.service.circuits import CircuitBuilder

        if packed:
            return self._to_circuit_packed(batch, use_sigmoid)
        builder = CircuitBuilder("logreg")
        features = [builder.input(f"x{f}") for f in range(self.num_features)]
        acc = None
        for reg, w in zip(features, self.weights):
            if acc is None:
                acc = builder.mul_const(reg, builder.scalar(w))
            else:
                acc = builder.mac_const(acc, reg, builder.scalar(w))
        bias_pt = self.encoder.encode([self.bias] * batch)
        score = builder.add_const(acc, builder.plain(bias_pt.coeffs))
        if use_sigmoid:
            squared = builder.square_relin(score)
            cubed = builder.mul_relin(squared, score)
            tripled = builder.mul_const(score, builder.scalar(3))
            score = builder.add(tripled, cubed)
        builder.output("score", score)
        return builder.build()

    def _to_circuit_packed(self, batch: int, use_sigmoid: bool):
        """The rotate-and-sum lowering behind ``to_circuit(packed=True)``."""
        from repro.service.circuits import CircuitBuilder

        if batch < 1:
            raise ValueError("packed circuits need at least one sample")
        builder = CircuitBuilder("logreg-packed")
        weights = builder.plain(self.encoder.encode(self.weights).coeffs)
        bias = builder.plain(
            self.encoder.encode(
                [self.bias] * self.encoder.slot_count
            ).coeffs
        )
        half = self.params.n // 2
        inputs = [builder.input(f"s{i}") for i in range(batch)]
        for i in range(batch):
            acc = builder.mul_const(inputs[i], weights)
            # Rotate-and-sum: after the power-of-two row rotations every
            # slot holds its half-ring's sum; the column swap finishes
            # the all-slots reduction, so w.x lands in every slot.
            step = 1
            while step < half:
                acc = builder.add(acc, builder.rotate_rows(acc, step))
                step <<= 1
            score = builder.add(acc, builder.rotate_columns(acc))
            score = builder.add_const(score, bias)
            if use_sigmoid:
                squared = builder.square_relin(score)
                cubed = builder.mul_relin(squared, score)
                tripled = builder.mul_const(score, builder.scalar(3))
                score = builder.add(tripled, cubed)
            builder.output(f"score{i}", score)
        return builder.build()

    def predictions_from_packed(self, outputs: dict, batch: int) -> list[int]:
        """Decrypt ``packed=True`` outputs into 0/1 classes per sample.

        Every slot of ``score{i}`` holds sample ``i``'s (post-surrogate)
        score after the all-slots reduction; slot 0 is decoded.
        """
        out = []
        for i in range(batch):
            decoded = self.encoder.decode_signed(
                self.bfv.decrypt(outputs[f"score{i}"], self.keys.secret)
            )
            out.append(1 if decoded[0] > 0 else 0)
        return out

    def predictions_from_score(self, score_ct: Ciphertext,
                               batch: int) -> list[int]:
        """Decrypt a served score ciphertext into 0/1 classes.

        The client-side tail of a :meth:`to_circuit` round trip: decode
        the signed slots and threshold, exactly as :meth:`predict` does.
        """
        decoded = self.encoder.decode_signed(
            self.bfv.decrypt(score_ct, self.keys.secret)
        )
        return [1 if v > 0 else 0 for v in decoded[:batch]]
