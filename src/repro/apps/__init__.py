"""End-to-end encrypted applications (Section VI-C, Table X).

Two layers per application:

* a **workload model** with the exact operation mixes the paper counts
  (CryptoNets: 457,550 ct+ct additions, 449,000 ct*pt multiplications,
  10,200 ct*ct multiplications + relinearizations; logistic regression:
  168,298 / 49,500 / 128,700), priced per-operation on the CoFHEE
  simulator and on the calibrated CPU cost table;
* a **functional miniature** that actually runs the encrypted inference on
  the reproduction's BFV at reduced scale (SIMD-batched CryptoNets-style
  CNN; packed-feature logistic regression), validating that the operation
  mix computes the right thing.
"""

from repro.apps.costmodel import CofheeAppCost, CpuAppCost, Workload
from repro.apps.cryptonets import CRYPTONETS_WORKLOAD, MiniCryptoNets
from repro.apps.logreg import LOGREG_WORKLOAD, MiniLogisticRegression

__all__ = [
    "CRYPTONETS_WORKLOAD",
    "CofheeAppCost",
    "CpuAppCost",
    "LOGREG_WORKLOAD",
    "MiniCryptoNets",
    "MiniLogisticRegression",
    "Workload",
]
