"""Operation-count application cost model (the Table X estimator).

The paper assesses the two applications "in relation to the number of
operations involved": each platform gets a per-operation cost table, and
the application time is the dot product with the operation mix.

**CoFHEE side** — priced entirely from the cycle-calibrated simulator:

* ``ct + ct``: two pointwise-addition passes (one per ciphertext
  polynomial) per RNS tower;
* ``ct * pt`` (scalar plaintexts, the CryptoNets/logreg weight case): two
  ``CMODMUL`` passes per tower;
* ``ct * ct``: the full Algorithm 3 tensor;
* relinearization: base-T key switching whose digit count is the
  application's noise-budget knob — CryptoNets' deep circuit needs
  fine digits (5-bit, 22 digits over the 109-bit modulus), logistic
  regression's shallower one uses coarse 13-bit digits (9 of them).

**CPU side** — SEAL add/ct*pt microbenchmark anchors plus the combined
mult+relin time calibrated per application to the authors' measured totals
(197 s / 550.25 s; the paper does not publish its per-op CPU table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfv.params import BfvParameters
from repro.core.timing import TimingModel


@dataclass(frozen=True)
class Workload:
    """An application's homomorphic operation mix (Section VI-C).

    Attributes:
        name: application name.
        ct_ct_adds: ciphertext + ciphertext additions.
        ct_pt_mults: ciphertext x plaintext multiplications.
        ct_ct_mults: ciphertext x ciphertext multiplications (each followed
            by a relinearization).
        relin_digit_bits: base-T digit width the relin keys use on CoFHEE.
        paper_cpu_seconds / paper_cofhee_seconds: Table X reference values.
    """

    name: str
    ct_ct_adds: int
    ct_pt_mults: int
    ct_ct_mults: int
    relin_digit_bits: int
    paper_cpu_seconds: float
    paper_cofhee_seconds: float

    @property
    def paper_speedup(self) -> float:
        return self.paper_cpu_seconds / self.paper_cofhee_seconds


class CofheeAppCost:
    """Per-operation CoFHEE costs from the cycle-calibrated simulator."""

    def __init__(self, params: BfvParameters, timing: TimingModel | None = None):
        self.params = params
        self.timing = timing or TimingModel()
        self.towers = params.cofhee_tower_count

    def _seconds(self, cycles: int) -> float:
        return self.timing.clock.cycles_to_seconds(cycles)

    def add_seconds(self) -> float:
        """ct+ct: one pointwise-add pass per polynomial per tower."""
        per_poly = self.timing.pointwise_cycles(self.params.n)
        return self._seconds(2 * self.towers * per_poly)

    def ct_pt_seconds(self) -> float:
        """ct*pt with scalar plaintext: one CMODMUL pass per polynomial per
        tower (no NTT needed — the Table I ``CMODMUL`` fast path)."""
        per_poly = self.timing.pointwise_cycles(self.params.n)
        return self._seconds(2 * self.towers * per_poly)

    def ct_ct_seconds(self) -> float:
        """Algorithm 3 tensor (without relinearization)."""
        return self._seconds(
            self.timing.ciphertext_mult_cycles(self.params.n, self.towers)
        )

    def relin_seconds(self, digit_bits: int) -> float:
        """Base-T key switching for the given digit width."""
        if digit_bits < 1:
            raise ValueError("digit width must be >= 1")
        num_digits = -(-self.params.log_q // digit_bits)
        return self._seconds(
            self.timing.relinearization_cycles(
                self.params.n, num_digits, self.towers
            )
        )

    def workload_seconds(self, workload: Workload) -> dict[str, float]:
        """Application total, itemized."""
        add = workload.ct_ct_adds * self.add_seconds()
        ctpt = workload.ct_pt_mults * self.ct_pt_seconds()
        mult = workload.ct_ct_mults * (
            self.ct_ct_seconds() + self.relin_seconds(workload.relin_digit_bits)
        )
        return {
            "adds_s": add,
            "ct_pt_s": ctpt,
            "ct_ct_relin_s": mult,
            "total_s": add + ctpt + mult,
        }


class CpuAppCost:
    """Per-operation SEAL/Ryzen costs for the Table X comparison.

    ``add`` and ``ct*pt`` come from SEAL microbenchmark anchors at the
    (2^12, 109) parameter set; the combined mult+relin cost is calibrated
    per application against the paper's measured totals (the paper reports
    only totals for the CPU side).
    """

    #: SEAL ct+ct addition, 2 towers at n = 2^12 (microbenchmark anchor).
    ADD_US = 30.0
    #: SEAL ct*pt scalar multiplication, same parameters.
    CT_PT_US = 60.0
    #: Calibrated combined mult+relin per application (ms).
    CT_CT_RELIN_MS = {
        "CryptoNets": 15.327,
        "LogisticRegression": 4.2132,
    }

    def workload_seconds(self, workload: Workload) -> dict[str, float]:
        if workload.name not in self.CT_CT_RELIN_MS:
            raise KeyError(
                f"no calibrated CPU mult+relin cost for {workload.name!r}"
            )
        add = workload.ct_ct_adds * self.ADD_US * 1e-6
        ctpt = workload.ct_pt_mults * self.CT_PT_US * 1e-6
        mult = workload.ct_ct_mults * self.CT_CT_RELIN_MS[workload.name] * 1e-3
        return {
            "adds_s": add,
            "ct_pt_s": ctpt,
            "ct_ct_relin_s": mult,
            "total_s": add + ctpt + mult,
        }
