"""Multi-tenant session and evaluation-key registry.

The serving layer's state store. Three invariants:

* **Sessions are keyed by params digest.** A session binds a tenant to one
  parameter set (identified by :func:`~repro.service.serialization.params_digest`)
  plus the evaluation keys the tenant uploaded. Re-opening a session for
  the same ``(tenant, digest)`` pair returns the existing one — evaluation
  keys are stored once per tenant, not once per request.
* **Ciphertexts only combine within a compatible session.** Every operand
  entering the service is checked against the session digest (wire-level
  inputs already carry the digest; in-memory operands are re-checked).
* **Per-params contexts are cached.** Building a :class:`~repro.bfv.Bfv`
  evaluation engine is expensive (auxiliary-prime search, NTT twiddle
  tables); the registry builds one per digest and shares it across every
  tenant and request using those parameters — the twiddle cache the chip
  driver gets by keeping a modulus programmed, applied server-side.
  Execution-engine selection happens here too, once per digest at
  context-cache time: the scheme auto-selects the batched RNS tower
  engine where a word-sized auxiliary basis qualifies and falls back to
  the exact pure-Python multiplier for wide moduli;
  :attr:`ParamsContext.engine_kind` records the choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bfv.keys import PublicKey, RelinKey
from repro.bfv.params import BfvParameters
from repro.bfv.rotation import GaloisKey
from repro.bfv.scheme import Bfv, Ciphertext
from repro.polymath.fastntt import RnsExactMultiplier
from repro.service.serialization import (
    deserialize_ciphertext,
    params_digest,
)


class SessionError(ValueError):
    """Unknown session, missing key material, or incompatible operands."""


@dataclass
class ParamsContext:
    """Everything cached once per parameter digest."""

    params: BfvParameters
    digest: bytes
    engine: Bfv
    _fast_engine: Bfv | None = field(default=None, repr=False)

    @property
    def engine_kind(self) -> str:
        """The exact-multiplier implementation the default engine selected
        for this parameter set (``RnsExactMultiplier`` = batched tower
        engine, ``_ExactMultiplier`` = pure-Python auxiliary prime)."""
        return self.engine.multiplier_kind

    @property
    def fast_engine(self) -> Bfv:
        """Evaluation engine that *requires* the numpy RNS multiplier.

        The default :attr:`engine` already auto-selects the batched tower
        engine where the basis qualifies; this accessor is for callers
        that must not silently fall back (the ``fastntt`` backend), so it
        raises ``ValueError`` when no word-sized basis exists.
        """
        if self._fast_engine is None:
            if self.engine.multiplier_kind == "RnsExactMultiplier":
                self._fast_engine = self.engine  # share the cached engine
            else:
                multiplier = RnsExactMultiplier(self.params.n, self.params.q)
                self._fast_engine = Bfv(self.params, multiplier=multiplier)
        return self._fast_engine


@dataclass
class Session:
    """One tenant's binding to a parameter set plus evaluation keys.

    The public key is optional (the server never encrypts on a tenant's
    behalf); the relin key gates multiply/square/relinearize jobs and the
    Galois keys gate rotations.
    """

    session_id: str
    tenant: str
    digest: bytes
    params: BfvParameters
    public: PublicKey | None = None
    relin: RelinKey | None = None
    galois: dict[int, GaloisKey] = field(default_factory=dict)

    def require_relin(self) -> RelinKey:
        if self.relin is None:
            raise SessionError(
                f"session {self.session_id} has no relinearization key; "
                "upload one before submitting multiply jobs"
            )
        return self.relin

    def require_galois(self, exponent: int) -> GaloisKey:
        try:
            return self.galois[exponent]
        except KeyError:
            raise SessionError(
                f"session {self.session_id} has no Galois key for exponent "
                f"{exponent} (registered: {sorted(self.galois)})"
            ) from None


class SessionRegistry:
    """The service's shared session/key/context store."""

    def __init__(self):
        self._contexts: dict[bytes, ParamsContext] = {}
        self._sessions: dict[str, Session] = {}
        self._by_tenant: dict[tuple[str, bytes], str] = {}
        self._counter = 0

    # -- parameter contexts ---------------------------------------------

    def context(self, params: BfvParameters) -> ParamsContext:
        """Return (building once) the cached context for a parameter set."""
        digest = params_digest(params)
        if digest not in self._contexts:
            self._contexts[digest] = ParamsContext(
                params=params, digest=digest, engine=Bfv(params)
            )
        return self._contexts[digest]

    @property
    def cached_digests(self) -> list[bytes]:
        return list(self._contexts)

    # -- session lifecycle ----------------------------------------------

    def open_session(
        self,
        tenant: str,
        params: BfvParameters,
        *,
        public: PublicKey | None = None,
        relin: RelinKey | None = None,
        galois: tuple[GaloisKey, ...] = (),
    ) -> Session:
        """Open (or return) the tenant's session for this parameter set.

        Idempotent per ``(tenant, digest)``: a second call returns the
        existing session, adding any newly supplied key material.
        """
        ctx = self.context(params)
        key = (tenant, ctx.digest)
        if key in self._by_tenant:
            session = self._sessions[self._by_tenant[key]]
        else:
            self._counter += 1
            session = Session(
                session_id=f"s{self._counter:04d}",
                tenant=tenant,
                digest=ctx.digest,
                params=ctx.params,
            )
            self._sessions[session.session_id] = session
            self._by_tenant[key] = session.session_id
        if public is not None:
            session.public = public
        if relin is not None:
            session.relin = relin
            # Key upload is untimed setup: transform the eval key's rows
            # into NTT form now so the first multiply batch finds the
            # shared engine's key-row cache warm.
            ctx.engine.prewarm_relin(relin)
        for g in galois:
            session.galois[g.exponent] = g
        return session

    def get(self, session_id: str) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def sessions_for(self, tenant: str) -> list[Session]:
        return [s for s in self._sessions.values() if s.tenant == tenant]

    # -- engines ----------------------------------------------------------

    def engine(self, session: Session) -> Bfv:
        """The shared pure-Python evaluation engine for this session."""
        return self._contexts[session.digest].engine

    def fast_engine(self, session: Session) -> Bfv:
        """The shared numpy-backed evaluation engine for this session."""
        return self._contexts[session.digest].fast_engine

    # -- compatibility enforcement ----------------------------------------

    def check_compatible(self, session: Session, ct: Ciphertext) -> None:
        """Reject ciphertexts from a different parameter universe."""
        if params_digest(ct.params) != session.digest:
            raise SessionError(
                f"ciphertext parameters are incompatible with session "
                f"{session.session_id} (tenant {session.tenant}): "
                "operands may only combine within one parameter digest"
            )

    def ingest_ciphertext(self, session: Session, data: bytes) -> Ciphertext:
        """Decode a wire ciphertext under the session's parameters.

        Digest checking happens inside deserialization, so cross-session
        material is rejected before any polynomial is unpacked.
        """
        return deserialize_ciphertext(data, session.params)
