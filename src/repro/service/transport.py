"""Asyncio wire transport: :class:`FheServer` behind a real TCP socket.

The ROADMAP's top open item — until now the serving layer only worked
in-process through the synchronous ``submit``/``poll``/``result`` loop,
even though the PR 1 wire format was designed to travel. This module puts
a listener in front of it:

* **Framing** — every connection is a stream of length-prefixed frames
  (``u32`` big-endian length, then that many bytes of one CRC-checked
  wire message from :mod:`repro.service.serialization`). The sans-IO
  :class:`FrameAssembler` does the splitting, so the property suite can
  fuzz the exact code the reader loop runs: truncated, bit-flipped, and
  oversized frames raise :class:`FrameError`/``WireFormatError`` without
  ever crashing the loop.
* **Execution** — the wrapped :class:`~repro.service.server.FheServer`
  is not thread-safe, so every interaction with it (session opens, job
  submits, scheduler ticks, result serialization) runs on a dedicated
  single-thread executor; the event loop never blocks on FHE math.
* **Completion callbacks** — a SUBMIT with ``subscribe`` set (the
  default) registers the connection for an EVENT push: the server's pump
  task drives :meth:`FheServer.tick` batch by batch and delivers each
  job's result frame the moment the gather barrier releases it. No
  client ever polls.

In-queue dedupe and the result cache live inside :class:`FheServer`
itself, so remote traffic gets cache-aware scheduling for free — two
clients submitting the identical job share one execution, and each
receives its own completion event.

App circuits ride the same machinery: a SUBMIT_CIRCUIT frame carries a
compiled multi-step program (see :mod:`repro.service.circuits`) plus its
input ciphertexts, the chip pool expands it into per-tower work units,
and the completion EVENT's payload is the framed named-output map — the
full Section VI-C applications served over one socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import hmac
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.service.errors import AuthError, ShuttingDownError
from repro.service.jobs import JobKind, JobStatus
from repro.service.serialization import (
    AdminMsg,
    ErrorMsg,
    EventMsg,
    OpenSessionMsg,
    ResultMsg,
    SessionMsg,
    StatsMsg,
    StatusMsg,
    SubmitCircuitMsg,
    SubmitMsg,
    TAG_ADMIN,
    TAG_OPEN_SESSION,
    TAG_RESULT,
    TAG_STATS,
    TAG_STATUS,
    TAG_SUBMIT,
    TAG_SUBMIT_CIRCUIT,
    TAG_TRACE,
    TraceMsg,
    WireFormatError,
    decode_admin,
    decode_open_session,
    decode_result,
    decode_stats,
    decode_status,
    decode_submit,
    decode_submit_circuit,
    decode_trace,
    encode_admin,
    encode_error,
    encode_event,
    encode_result,
    encode_session,
    encode_stats,
    encode_status,
    encode_trace,
    peek_tag,
)
from repro.service.server import FheServer

#: Default ceiling on one frame. Generous for toy/paper parameter sets
#: (an n = 2^13 ciphertext is ~200 KiB) while bounding what a broken or
#: hostile peer can make the reader buffer.
DEFAULT_MAX_FRAME = 16 * 2**20

_LENGTH_BYTES = 4
_READ_CHUNK = 1 << 16


class FrameError(WireFormatError):
    """Malformed stream framing: oversized or truncated frames."""


def encode_frame(message: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Length-prefix one wire message for the stream."""
    if len(message) > max_frame:
        raise FrameError(
            f"frame of {len(message)} bytes exceeds the {max_frame}-byte limit"
        )
    return len(message).to_bytes(_LENGTH_BYTES, "big") + message


class FrameAssembler:
    """Sans-IO splitter: feed stream chunks, get back complete frames.

    Carries partial frames across ``feed`` calls, so arbitrary TCP
    segmentation reassembles identically. An announced length above
    ``max_frame`` raises :class:`FrameError` immediately — before any
    of the oversized body is buffered.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < _LENGTH_BYTES:
                return frames
            length = int.from_bytes(self._buffer[:_LENGTH_BYTES], "big")
            if length > self.max_frame:
                raise FrameError(
                    f"peer announced a {length}-byte frame "
                    f"(limit {self.max_frame})"
                )
            end = _LENGTH_BYTES + length
            if len(self._buffer) < end:
                return frames
            frames.append(bytes(self._buffer[_LENGTH_BYTES:end]))
            del self._buffer[:end]


async def frame_stream(reader: asyncio.StreamReader,
                       max_frame: int = DEFAULT_MAX_FRAME):
    """Yield complete frames from a stream until EOF.

    EOF on a frame boundary ends the iteration; EOF mid-frame raises
    :class:`FrameError` (the peer died mid-message).
    """
    assembler = FrameAssembler(max_frame)
    while True:
        chunk = await reader.read(_READ_CHUNK)
        if not chunk:
            if assembler.buffered:
                raise FrameError(
                    f"connection closed mid-frame "
                    f"({assembler.buffered} bytes buffered)"
                )
            return
        for frame in assembler.feed(chunk):
            yield frame


async def write_frame(writer: asyncio.StreamWriter, message: bytes,
                      max_frame: int = DEFAULT_MAX_FRAME) -> None:
    writer.write(encode_frame(message, max_frame))
    await writer.drain()


def _short(message: str, limit: int = 2000) -> str:
    """Bound an error string so it always fits a wire string field."""
    return message if len(message) <= limit else message[: limit - 1] + "…"


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------


@dataclass
class _PendingJob:
    """Delivery bookkeeping for one not-yet-completed job."""

    job_id: str
    subscriber: "_Connection | None" = None
    #: RESULT requests waiting on completion: (connection, request_id).
    waiters: list[tuple["_Connection", int]] = field(default_factory=list)
    #: The connection whose submit window this job occupies (None when
    #: the submitter imposed no window or the entry came from RESULT).
    origin: "_Connection | None" = None


class _Connection:
    """One accepted client link; writes are serialized by a lock so the
    pump task and the dispatch path never interleave frames."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, max_frame: int,
                 metrics=None):
        self.reader = reader
        self.writer = writer
        self.max_frame = max_frame
        self.metrics = metrics
        self._write_lock = asyncio.Lock()
        #: Accepted-but-unsettled submissions from this link (the
        #: backpressure window counts these, never queued frames).
        self.inflight = 0
        #: Set whenever ``inflight`` drops — wakes a stalled submit.
        self.drained = asyncio.Event()

    async def send(self, message: bytes) -> None:
        async with self._write_lock:
            await write_frame(self.writer, message, self.max_frame)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_frames_sent_total", "wire frames written to clients"
            ).inc()
            self.metrics.counter(
                "repro_frame_bytes_sent_total",
                "wire payload bytes written to clients",
            ).inc(len(message))

    async def send_safe(self, message: bytes) -> bool:
        """Best-effort send: a dead peer must not break delivery to the
        rest of the pool. Returns whether the write went through."""
        try:
            await self.send(message)
            return True
        except (ConnectionError, RuntimeError, OSError, WireFormatError):
            return False

    async def close(self) -> None:
        with contextlib.suppress(Exception):
            self.writer.close()
            await self.writer.wait_closed()


class FheTransportServer:
    """Asyncio TCP front door for an :class:`FheServer`.

    Args:
        fhe: the server to expose; built from ``fhe_kwargs`` when omitted.
        host/port: listen address (``port=0`` picks an ephemeral port;
            :meth:`start` returns the bound address).
        max_frame: per-frame byte ceiling on every connection.
        max_inflight: per-connection submit window — a connection may
            have at most this many accepted-but-unsettled jobs; further
            SUBMIT frames stall (the reader stops consuming, so TCP
            pushes back on the flooding client) until one settles and
            its completion is delivered. ``0`` (the default) disables
            the window. No accepted job is ever dropped.
        tenants: per-tenant auth table ``{tenant: token}``. When set,
            every OPEN_SESSION must carry the matching token; unknown
            tenants and wrong tokens are rejected with the terminal
            ``auth`` error code before any server state is touched.
            ``None`` (the default) disables auth — open serving, as
            before this field existed.
        fhe_kwargs: forwarded to :class:`FheServer` when ``fhe`` is None
            (``pool_size``, ``max_batch``, ``result_cache_size``, …).

    Lifecycle: ``await start()`` → serve → ``await aclose()``. Closing
    drains by default: the listener stops accepting, in-flight jobs run
    to completion, and every subscribed client receives its completion
    event before the connections come down.
    """

    def __init__(self, fhe: FheServer | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 max_inflight: int = 0,
                 tenants: dict[str, str] | None = None, **fhe_kwargs):
        if fhe is not None and fhe_kwargs:
            raise ValueError("pass either a built FheServer or its kwargs")
        if max_inflight < 0:
            raise ValueError("max_inflight must be >= 0 (0 disables it)")
        self.fhe = fhe if fhe is not None else FheServer(**fhe_kwargs)
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._max_inflight = max_inflight
        self._tenants = dict(tenants) if tenants is not None else None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._pending: dict[str, _PendingJob] = {}
        self._pump_task: asyncio.Task | None = None
        self._connections: set[_Connection] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._closing = False
        self._paused = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listener; returns the (host, port) actually bound."""
        if self._server is not None:
            raise RuntimeError("transport server already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="fhe-engine"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._host, self._port = self._server.sockets[0].getsockname()[:2]
        return self._host, self._port

    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self, drain: bool = True) -> None:
        """Stop accepting, settle in-flight work, close every link.

        With ``drain`` (the default) queued and running jobs execute to
        completion and their events/results are delivered first; without
        it, undelivered jobs get a failure event instead.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            self._paused = False
            if self._pending:
                self._ensure_pump()
            if self._pump_task is not None:
                await self._pump_task
        else:
            if self._pump_task is not None:
                self._pump_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._pump_task
            await self._abandon_pending("server closed without draining")
        tasks = list(self._conn_tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for conn in list(self._connections):
            await conn.close()
        self._connections.clear()
        if self._executor is not None:
            # Shut the FheServer's backends (fleet worker processes)
            # down on the engine thread before retiring it.
            await self._call(self.fhe.close)
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "FheTransportServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- execution pump ------------------------------------------------

    def pause_execution(self) -> None:
        """Hold the scheduler: submissions queue but nothing executes.

        Drain/maintenance control — and the deterministic way to land
        several identical submissions in the in-queue dedupe window.
        """
        self._paused = True

    def resume_execution(self) -> None:
        self._paused = False
        if self._pending:
            self._ensure_pump()

    async def _call(self, fn, *args):
        """Run an FheServer interaction on the dedicated engine thread."""
        assert self._loop is not None and self._executor is not None
        if args:
            return await self._loop.run_in_executor(
                self._executor, lambda: fn(*args)
            )
        return await self._loop.run_in_executor(self._executor, fn)

    def _ensure_pump(self) -> None:
        if self._paused:
            return
        if self._pump_task is None or self._pump_task.done():
            self._pump_task = asyncio.ensure_future(self._pump())

    async def _pump(self) -> None:
        """Drive the scheduler and push completions until idle."""
        while not self._paused:
            progressed = await self._call(self.fhe.tick)
            await self._deliver_completions()
            if not self._pending and not progressed:
                return
            if not progressed:
                # Pending deliveries but an idle scheduler: every tracked
                # job should have settled above. Anything left is a
                # server bug — fail it rather than spin.
                await self._abandon_pending("job never completed")
                return

    def _collect_completions(self, job_ids: list[str]) -> list[EventMsg]:
        """(Engine thread) completion info for every settled tracked job."""
        return [
            self._completion_for(job_id)
            for job_id in job_ids
            if self.fhe.status(job_id) in (JobStatus.DONE, JobStatus.FAILED)
        ]

    async def _deliver_completions(self) -> None:
        # Snapshot on the loop thread: the engine thread must not walk a
        # dict the dispatch path is inserting into.
        tracked = list(self._pending)
        if not tracked:
            return
        for event in await self._call(self._collect_completions, tracked):
            entry = self._pending.pop(event.job_id, None)
            if entry is None:  # raced with another delivery path
                continue
            await self._deliver(entry, event)

    # -- backpressure ---------------------------------------------------

    async def _admit(self, conn: _Connection) -> None:
        """Hold a submit until the connection's window has room.

        Stalling here stalls the connection's reader loop — frames stop
        being consumed, the socket buffer fills, and TCP pushes back on
        the flooding client. Every frame already read is still served in
        order; nothing accepted is dropped. The short wait timeout makes
        the loop robust against set/clear races with the delivery path.
        """
        if self._max_inflight <= 0:
            return
        metrics = self.fhe.metrics
        stalled = False
        while conn.inflight >= self._max_inflight and not self._closing:
            if not stalled:
                stalled = True
                metrics.counter(
                    "repro_backpressure_stalls_total",
                    "submits stalled on a full per-connection window",
                ).inc()
                metrics.gauge(
                    "repro_backpressure_waiting",
                    "connections currently stalled on their window",
                ).inc()
            conn.drained.clear()
            self._ensure_pump()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(conn.drained.wait(), 0.05)
        if stalled:
            metrics.gauge(
                "repro_backpressure_waiting",
                "connections currently stalled on their window",
            ).dec()

    def _occupy(self, entry: _PendingJob, conn: _Connection) -> None:
        """Charge a tracked job to its submitter's window."""
        if self._max_inflight <= 0 or entry.origin is not None:
            return
        entry.origin = conn
        conn.inflight += 1

    @staticmethod
    def _release(entry: _PendingJob) -> None:
        """Return a settled job's window slot and wake stalled submits."""
        conn = entry.origin
        if conn is None:
            return
        entry.origin = None
        conn.inflight -= 1
        conn.drained.set()

    async def _deliver(self, entry: _PendingJob, event: EventMsg) -> None:
        """Push one completion: the subscriber's EVENT (exactly once per
        job) plus a RESULT reply per registered waiter."""
        self._release(entry)
        start = time.perf_counter()
        delivered = False
        if entry.subscriber is not None:
            await entry.subscriber.send_safe(encode_event(event))
            delivered = True
        for conn, request_id in entry.waiters:
            await conn.send_safe(encode_result(ResultMsg(
                request_id=request_id, job_id=event.job_id,
                status=event.status, payload=event.payload, error=event.error,
            )))
            delivered = True
        if delivered:
            end = time.perf_counter()
            await self._call(self._mark_reply, event.job_id, start, end)

    def _mark_reply(self, job_id: str, start: float, end: float) -> None:
        """(Engine thread) attribute the completion write to the trace."""
        try:
            trace = self.fhe.job_trace(job_id)
        except KeyError:
            return
        if trace.enabled:
            trace.mark("reply", start, end)

    async def _abandon_pending(self, reason: str) -> None:
        for job_id in list(self._pending):
            entry = self._pending.pop(job_id)
            await self._deliver(entry, EventMsg(
                job_id=job_id, status=JobStatus.FAILED.value,
                error=_short(reason),
            ))

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        metrics = self.fhe.metrics
        conn = _Connection(reader, writer, self._max_frame, metrics)
        self._connections.add(conn)
        metrics.gauge(
            "repro_connections", "currently accepted client links"
        ).inc()
        frames_in = metrics.counter(
            "repro_frames_received_total", "wire frames read from clients"
        )
        bytes_in = metrics.counter(
            "repro_frame_bytes_received_total",
            "wire payload bytes read from clients",
        )
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            async for frame in frame_stream(reader, self._max_frame):
                frames_in.inc()
                bytes_in.inc(len(frame))
                await self._dispatch(conn, frame)
        except WireFormatError as exc:
            # Framing or codec failure: the stream can no longer be
            # trusted. Tell the peer (request id 0 = connection-level)
            # and drop the link; the server itself keeps serving.
            await conn.send_safe(encode_error(ErrorMsg(
                request_id=0, message=_short(f"protocol error: {exc}")
            )))
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # peer vanished; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown; finally-block cleanup still runs
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._connections.discard(conn)
            self._drop_subscriber(conn)
            metrics.gauge(
                "repro_connections", "currently accepted client links"
            ).dec()
            await conn.close()

    def _drop_subscriber(self, conn: _Connection) -> None:
        """Forget a dead connection in every pending delivery record."""
        for entry in self._pending.values():
            if entry.subscriber is conn:
                entry.subscriber = None
            if entry.origin is conn:
                self._release(entry)
            entry.waiters = [(c, r) for c, r in entry.waiters if c is not conn]

    async def _dispatch(self, conn: _Connection, frame: bytes) -> None:
        tag = peek_tag(frame)
        if tag == TAG_OPEN_SESSION:
            await self._on_open_session(conn, decode_open_session(frame))
        elif tag == TAG_SUBMIT:
            await self._on_submit(conn, decode_submit(frame))
        elif tag == TAG_SUBMIT_CIRCUIT:
            await self._on_submit_circuit(conn, decode_submit_circuit(frame))
        elif tag == TAG_STATUS:
            await self._on_status(conn, decode_status(frame))
        elif tag == TAG_RESULT:
            await self._on_result(conn, decode_result(frame))
        elif tag == TAG_STATS:
            await self._on_stats(conn, decode_stats(frame))
        elif tag == TAG_TRACE:
            await self._on_trace(conn, decode_trace(frame))
        elif tag == TAG_ADMIN:
            await self._on_admin(conn, decode_admin(frame))
        else:
            raise WireFormatError(
                f"unexpected client frame tag 0x{tag:02x}"
            )

    async def _fail(self, conn: _Connection, request_id: int,
                    exc: Exception) -> None:
        await conn.send_safe(encode_error(ErrorMsg(
            request_id=request_id, message=_short(str(exc) or repr(exc)),
            code=getattr(exc, "code", ""),
        )))

    def _authorize(self, msg: OpenSessionMsg) -> None:
        """Check the OPEN_SESSION token against the tenant table.

        ``compare_digest`` keeps the comparison constant-time; unknown
        tenants burn the same comparison against a dummy so the two
        rejections are not distinguishable by timing.
        """
        if self._tenants is None:
            return
        expected = self._tenants.get(msg.tenant)
        supplied = msg.token.encode()
        if expected is None:
            hmac.compare_digest(supplied, b"\x00" * 32)
            raise AuthError(f"unknown tenant {msg.tenant!r}")
        if not hmac.compare_digest(supplied, expected.encode()):
            raise AuthError(f"bad token for tenant {msg.tenant!r}")

    async def _on_open_session(self, conn: _Connection,
                               msg: OpenSessionMsg) -> None:
        if self._closing:
            await self._fail(conn, msg.request_id,
                             ShuttingDownError("server is shutting down"))
            return
        try:
            self._authorize(msg)
        except AuthError as exc:
            self.fhe.metrics.counter(
                "repro_auth_rejections_total",
                "OPEN_SESSION frames refused by the tenant auth table",
                tenant=msg.tenant,
            ).inc()
            await self._fail(conn, msg.request_id, exc)
            return
        try:
            session_id = await self._call(
                lambda: self.fhe.open_session(
                    msg.tenant, msg.params,
                    public_key=msg.public_key,
                    relin_key=msg.relin_key,
                    galois_keys=msg.galois_keys,
                )
            )
        except Exception as exc:
            await self._fail(conn, msg.request_id, exc)
            return
        await conn.send_safe(encode_session(SessionMsg(
            request_id=msg.request_id, session_id=session_id
        )))

    async def _on_submit(self, conn: _Connection, msg: SubmitMsg) -> None:
        await self._admit(conn)
        if self._closing:
            await self._fail(conn, msg.request_id,
                             ShuttingDownError("server is shutting down"))
            return
        try:
            kind = JobKind(msg.kind)
        except ValueError as exc:
            await self._fail(conn, msg.request_id, exc)
            return
        if kind.is_app:
            await self._fail(conn, msg.request_id, ValueError(
                f"{kind.value} jobs are in-process only: app payloads do "
                "not cross the wire (compile to a circuit and use "
                "SUBMIT_CIRCUIT instead)"
            ))
            return
        if kind is JobKind.CIRCUIT:
            await self._fail(conn, msg.request_id, ValueError(
                "circuit jobs travel as SUBMIT_CIRCUIT frames, not SUBMIT"
            ))
            return
        try:
            job_id = await self._call(
                lambda: self.fhe.submit(
                    msg.session_id, kind, msg.operands,
                    steps=msg.steps, backend=msg.backend,
                    deadline=msg.deadline,
                )
            )
        except Exception as exc:
            await self._fail(conn, msg.request_id, exc)
            return
        await self._register_submission(
            conn, msg.request_id, job_id, msg.subscribe
        )

    async def _on_submit_circuit(self, conn: _Connection,
                                 msg: SubmitCircuitMsg) -> None:
        await self._admit(conn)
        if self._closing:
            await self._fail(conn, msg.request_id,
                             ShuttingDownError("server is shutting down"))
            return
        try:
            job_id = await self._call(
                lambda: self.fhe.submit(
                    msg.session_id, JobKind.CIRCUIT, msg.operands,
                    payload=msg.circuit, backend=msg.backend,
                    deadline=msg.deadline,
                )
            )
        except Exception as exc:
            await self._fail(conn, msg.request_id, exc)
            return
        await self._register_submission(
            conn, msg.request_id, job_id, msg.subscribe
        )

    async def _register_submission(self, conn: _Connection, request_id: int,
                                   job_id: str, subscribe: bool) -> None:
        """Answer a submit with STATUS and wire up completion delivery."""
        status = self.fhe.status(job_id)
        await conn.send_safe(encode_status(StatusMsg(
            request_id=request_id, job_id=job_id, status=status.value
        )))
        if status in (JobStatus.DONE, JobStatus.FAILED):
            # Cache hit (or submit-time failure): the completion event
            # follows the STATUS reply immediately — still exactly once.
            if subscribe:
                entry = _PendingJob(job_id, subscriber=conn)
                event = await self._call(
                    lambda: self._completion_for(job_id)
                )
                await self._deliver(entry, event)
            return
        entry = self._pending.get(job_id)
        if entry is None:
            entry = self._pending[job_id] = _PendingJob(job_id)
        if subscribe:
            entry.subscriber = conn
        self._occupy(entry, conn)
        self._ensure_pump()

    def _completion_for(self, job_id: str) -> EventMsg:
        """(Engine thread) completion event for one already-done job."""
        status = self.fhe.status(job_id)
        if status is JobStatus.DONE:
            wire = self.fhe.result(job_id)
            payload = wire if isinstance(wire, (bytes, bytearray)) else b""
            return EventMsg(
                job_id=job_id, status=status.value, payload=bytes(payload)
            )
        return EventMsg(
            job_id=job_id, status=JobStatus.FAILED.value,
            error=_short(self.fhe.job_error(job_id) or "job failed"),
        )

    async def _on_status(self, conn: _Connection, msg: StatusMsg) -> None:
        try:
            status = await self._call(self.fhe.status, msg.job_id)
        except KeyError as exc:
            await self._fail(conn, msg.request_id, exc)
            return
        error = None
        if status is JobStatus.FAILED:
            error = await self._call(self.fhe.job_error, msg.job_id)
        await conn.send_safe(encode_status(StatusMsg(
            request_id=msg.request_id, job_id=msg.job_id,
            status=status.value, error=_short(error or ""),
        )))

    async def _on_result(self, conn: _Connection, msg: ResultMsg) -> None:
        try:
            status = await self._call(self.fhe.status, msg.job_id)
        except KeyError as exc:
            await self._fail(conn, msg.request_id, exc)
            return
        if status in (JobStatus.DONE, JobStatus.FAILED):
            event = await self._call(lambda: self._completion_for(msg.job_id))
            await conn.send_safe(encode_result(ResultMsg(
                request_id=msg.request_id, job_id=msg.job_id,
                status=event.status, payload=event.payload, error=event.error,
            )))
            return
        entry = self._pending.get(msg.job_id)
        if entry is None:
            entry = self._pending[msg.job_id] = _PendingJob(msg.job_id)
        entry.waiters.append((conn, msg.request_id))
        self._ensure_pump()

    async def _on_stats(self, conn: _Connection, msg: StatsMsg) -> None:
        text = await self._call(self.fhe.stats_text)
        await conn.send_safe(encode_stats(StatsMsg(
            request_id=msg.request_id, text=text
        )))

    async def _on_trace(self, conn: _Connection, msg: TraceMsg) -> None:
        try:
            trace = await self._call(self.fhe.job_trace, msg.job_id)
        except KeyError as exc:
            await self._fail(conn, msg.request_id, exc)
            return
        await conn.send_safe(encode_trace(TraceMsg(
            request_id=msg.request_id, job_id=msg.job_id,
            wall_seconds=trace.wall_seconds,
            spans=tuple(
                (s.phase, s.parent, s.start, s.end) for s in trace.spans
            ),
        )))

    async def _on_admin(self, conn: _Connection, msg: AdminMsg) -> None:
        """Elastic fleet control over the wire: grow/shrink/resize.

        Replies with an ADMIN echo whose ``value`` is the fleet size
        after the operation. Requires the server to be fleet-backed.
        """
        fleet = getattr(self.fhe, "fleet", None)
        if fleet is None:
            await self._fail(conn, msg.request_id, RuntimeError(
                "server has no fleet backend to resize"
            ))
            return
        try:
            if msg.command == "grow":
                size = await self._call(fleet.grow, max(1, msg.value))
            elif msg.command == "shrink":
                size = await self._call(fleet.shrink, max(1, msg.value))
            elif msg.command == "resize":
                size = await self._call(fleet.resize, msg.value)
            else:
                raise ValueError(
                    f"unknown admin command {msg.command!r} "
                    "(supported: grow, shrink, resize)"
                )
        except Exception as exc:
            await self._fail(conn, msg.request_id, exc)
            return
        await conn.send_safe(encode_admin(AdminMsg(
            request_id=msg.request_id, command=msg.command,
            value=size, result="ok",
        )))

    async def stats_snapshot(self) -> dict:
        """Structured metrics snapshot off the engine thread (the
        ``repro-serve --stats-interval`` logger's data source)."""
        return await self._call(self.fhe.stats_snapshot)


# ----------------------------------------------------------------------
# Thread-hosted server (sync callers: demos, benchmarks, smoke tests)
# ----------------------------------------------------------------------


class ThreadedTransportServer:
    """Run a :class:`FheTransportServer` on a background event loop.

    Context manager for synchronous callers — the demo's ``--smoke``
    self-test, benchmarks, and tests driving the sync
    :class:`~repro.service.client.FheClient`::

        with ThreadedTransportServer(pool_size=4) as ts:
            client = FheClient(ts.host, ts.port)
            ...

    The wrapped :class:`FheServer` is reachable as ``.fhe`` for
    in-process inspection (``pool_report()`` and friends) after the
    traffic has drained.
    """

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.server: FheTransportServer | None = None
        self.host = ""
        self.port = 0

    @property
    def fhe(self) -> FheServer:
        assert self.server is not None, "server not started"
        return self.server.fhe

    def __enter__(self) -> "ThreadedTransportServer":
        started = threading.Event()
        failure: list[BaseException] = []

        async def _main():
            try:
                self.server = FheTransportServer(**self._kwargs)
                self.host, self.port = await self.server.start()
            except BaseException as exc:  # surface to the caller
                failure.append(exc)
                raise
            finally:
                started.set()

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="fhe-transport", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(_main(), self._loop)
        started.wait()
        if failure:
            self._stop_loop()
            raise failure[0]
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._loop is not None
        if self.server is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.aclose(), self._loop
            ).result(timeout=120)
        self._stop_loop()

    def _stop_loop(self) -> None:
        assert self._loop is not None and self._thread is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
